//! Cross-crate integration tests: full kernels on the full SoC model,
//! verified against the golden QNN models, plus the paper's headline
//! speedup bands.

use xpulpnn::measure::{measure, measure_paper_layer};
use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa, QuantMode};

/// Every variant of the paper's benchmark layer runs, halts, and matches
/// the golden model (measure() errors on any mismatch).
#[test]
fn paper_layer_all_variants_verified() {
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
            for hw in [false, true] {
                let m = measure_paper_layer(bits, isa, hw, 42)
                    .unwrap_or_else(|e| panic!("{bits}/{isa}/hw={hw}: {e}"));
                assert!(m.cycles > 0);
                assert!(m.macs_per_cycle() > 0.1, "{bits}/{isa}: implausibly slow");
            }
        }
    }
}

/// A2 — the headline result: sub-byte kernels on the extended core beat
/// the baseline by large factors (paper: 5.3× at 4-bit, 8.9× at 2-bit;
/// band checks per DESIGN.md's shape criteria).
#[test]
fn headline_speedups_in_band() {
    let w4_nn = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42).unwrap();
    let w4_v2 = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpV2, false, 42).unwrap();
    let s4 = w4_v2.cycles as f64 / w4_nn.cycles as f64;
    assert!(
        (3.0..7.0).contains(&s4),
        "4-bit speedup {s4:.2} outside band (paper 5.3)"
    );

    let w2_nn = measure_paper_layer(BitWidth::W2, KernelIsa::XpulpNN, true, 42).unwrap();
    let w2_v2 = measure_paper_layer(BitWidth::W2, KernelIsa::XpulpV2, false, 42).unwrap();
    let s2 = w2_v2.cycles as f64 / w2_nn.cycles as f64;
    assert!(
        (6.0..12.0).contains(&s2),
        "2-bit speedup {s2:.2} outside band (paper 8.9)"
    );

    // And the 2-bit gap exceeds the 4-bit gap, as in the paper.
    assert!(s2 > s4);
}

/// Sub-byte kernels scale almost linearly with bit width on the extended
/// core (Fig. 6's second claim).
#[test]
fn sub_byte_scaling_near_linear() {
    let w8 = measure_paper_layer(BitWidth::W8, KernelIsa::XpulpNN, false, 42).unwrap();
    let w4 = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42).unwrap();
    let w2 = measure_paper_layer(BitWidth::W2, KernelIsa::XpulpNN, true, 42).unwrap();
    let s4 = w8.cycles as f64 / w4.cycles as f64;
    let s2 = w8.cycles as f64 / w2.cycles as f64;
    assert!(
        (1.5..=2.0).contains(&s4),
        "4-bit scaling {s4:.2} (ideal 2.0)"
    );
    assert!(
        (2.6..=4.0).contains(&s2),
        "2-bit scaling {s2:.2} (ideal 4.0)"
    );
}

/// Determinism: same seed, same cycles and same outputs.
#[test]
fn measurements_are_deterministic() {
    let a = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 99).unwrap();
    let b = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 99).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.perf, b.perf);
    // A different seed changes data but not (native-kernel) cycle count:
    // the kernel is data-oblivious.
    let c = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 100).unwrap();
    assert_eq!(a.cycles, c.cycles, "native kernels are data-oblivious");
}

/// The dot-product unit's MAC counter agrees with the layer geometry for
/// native kernels (every MAC flows through the SIMD datapath).
#[test]
fn dotp_unit_mac_accounting() {
    let m = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42).unwrap();
    assert_eq!(m.perf.total_macs(), m.macs);
    // The baseline executes the same mathematical MACs through the 8-bit
    // datapath (after unpacking).
    let b = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpV2, false, 42).unwrap();
    assert_eq!(b.perf.total_macs(), b.macs);
    assert_eq!(
        b.perf.dotp[2], 0,
        "baseline must not touch the nibble datapath"
    );
}

/// pv.qnt count matches the number of output-pixel×channel-pair
/// quantizations.
#[test]
fn qnt_instruction_accounting() {
    let m = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42).unwrap();
    let shape = ConvShape::paper_benchmark();
    // One pv.qnt per pixel per channel pair.
    assert_eq!(m.perf.qnt, (shape.pixels() * shape.out_c / 2) as u64);
    let sw = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, false, 42).unwrap();
    assert_eq!(sw.perf.qnt, 0);
}

/// 1×1 convolutions (pure MatMul, no halo) work across widths and ISAs.
#[test]
fn pointwise_convolutions() {
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let in_c = (32 / bits.bits() as usize) * 2;
        let shape = ConvShape {
            in_h: 4,
            in_w: 4,
            in_c,
            out_c: 8,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
            let quant = match bits {
                BitWidth::W8 => QuantMode::Shift8 { shift: 6 },
                _ => QuantMode::SoftwareTree,
            };
            let cfg = ConvKernelConfig {
                shape,
                bits,
                out_bits: bits,
                isa,
                quant,
            };
            let m = measure(cfg, 5).unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
            assert!(m.cycles > 0);
        }
    }
}

/// Chaining layers through `from_parts` preserves golden-exactness.
#[test]
fn two_layer_chain_verified() {
    use xpulpnn::qnn::rng::TensorRng;
    use xpulpnn::qnn::tensor::QuantTensor;
    let bits = BitWidth::W4;
    let mut rng = TensorRng::new(3);
    let l1 = ConvShape {
        in_h: 6,
        in_w: 6,
        in_c: 8,
        out_c: 16,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };
    let l2 = ConvShape {
        in_h: 6,
        in_w: 6,
        in_c: 16,
        out_c: 8,
        k_h: 3,
        k_w: 3,
        stride: 1,
        pad: 1,
    };

    let cfg1 = ConvKernelConfig {
        shape: l1,
        bits,
        out_bits: bits,
        isa: KernelIsa::XpulpNN,
        quant: QuantMode::HardwareQnt,
    };
    let tb1 = ConvTestbench::new(cfg1, 3).unwrap();
    let r1 = tb1.run().unwrap();
    assert!(r1.matches());

    let cfg2 = ConvKernelConfig {
        shape: l2,
        bits,
        out_bits: bits,
        isa: KernelIsa::XpulpNN,
        quant: QuantMode::HardwareQnt,
    };
    let input2 = QuantTensor::activations(bits, r1.output.clone()).unwrap();
    let weights2 = rng.weights(bits, l2.weight_len());
    let thr2 = rng.thresholds(bits, l2.out_c, -1000, 1000);
    let tb2 = ConvTestbench::from_parts(cfg2, input2, weights2, Some(thr2)).unwrap();
    let r2 = tb2.run().unwrap();
    assert!(r2.matches(), "second layer diverged");
}

/// A general-purpose program (no SIMD, no QNN) runs with identical
/// cycles on the baseline and extended cores — the architectural side of
/// the paper's claim that the extension does not tax non-QNN code (its
/// power side is the GP row of Table III).
#[test]
fn general_purpose_code_is_isa_neutral() {
    use xpulpnn::pulp_asm::text::parse;
    use xpulpnn::pulp_soc::Soc;
    use xpulpnn::riscv_core::IsaConfig;
    // A little checksum/sort-flavoured mix of loads, stores, branches
    // and arithmetic.
    let prog = parse(
        r"
        .org 0x1c008000
        li   a0, 0x1c020000    # buffer
        li   a1, 64            # words
        li   a2, 0
        mv   t2, a0
    fill:
        slli t0, a2, 2
        xor  t1, t0, a2
        sw   t1, 0(t2)
        addi t2, t2, 4
        addi a2, a2, 1
        bne  a2, a1, fill
        li   a3, 0             # checksum
        mv   t2, a0
        li   a2, 0
    sum:
        lw   t0, 0(t2)
        add  a3, a3, t0
        srli t1, a3, 3
        xor  a3, a3, t1
        addi t2, t2, 4
        addi a2, a2, 1
        bne  a2, a1, sum
        mv   a0, a3
        ecall
    ",
    )
    .expect("gp program");
    let run = |isa: IsaConfig| {
        let mut soc = Soc::new(isa);
        soc.load(&prog);
        let r = soc.run(1_000_000).expect("gp run");
        assert!(r.exit.halted);
        (r.exit.exit_code, r.perf.cycles)
    };
    let (sum_v2, cyc_v2) = run(IsaConfig::xpulpv2());
    let (sum_nn, cyc_nn) = run(IsaConfig::xpulpnn());
    assert_eq!(sum_v2, sum_nn);
    assert_eq!(cyc_v2, cyc_nn, "GP code must not pay for the extension");
}

/// QNN kernel code barely benefits from RVC compression — its registers
/// and PULP opcodes live outside the 16-bit encoding windows. This is
/// why the generators emit 32-bit code (RVC trades size, not cycles, on
/// RI5CY).
#[test]
fn kernel_code_barely_compressible() {
    use xpulpnn::pulp_isa::compressed::code_size_report;
    let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
    let tb = ConvTestbench::new(cfg, 1).unwrap();
    let r = code_size_report(tb.program.instrs.iter());
    assert!(
        r.instructions > 50,
        "kernel has {} instructions",
        r.instructions
    );
    assert!(
        r.savings() < 0.25,
        "kernel code should compress poorly, got {:.0}% savings",
        r.savings() * 100.0
    );
}

/// The baseline core really cannot execute XpulpNN binaries (extension
/// gating end to end).
#[test]
fn extension_gating_end_to_end() {
    use xpulpnn::pulp_soc::Soc;
    use xpulpnn::riscv_core::{IsaConfig, Trap};
    let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
    let tb = ConvTestbench::new(cfg, 1).unwrap();
    let mut wrong_soc = Soc::new(IsaConfig::xpulpv2());
    wrong_soc.load(&tb.program);
    match wrong_soc.run(100_000_000) {
        Err(Trap::ExtensionFault { required, .. }) => assert_eq!(required, "xpulpnn"),
        other => panic!("expected extension fault, got {other:?}"),
    }
}
