//! The cycle-attribution ledger's global invariant, checked over every
//! variant of the paper's benchmark layer: each retired instruction's
//! cycles land in exactly one bucket, so the buckets always sum to the
//! cycle counter. The core re-checks this with a `debug_assert!` at every
//! retire; these tests assert it explicitly so release builds (where
//! `debug_assert!` compiles out) are covered too.

use riscv_core::perf::ALL_CYCLE_CLASSES;
use riscv_core::CycleClass;
use xpulpnn::measure::{measure_paper_layer, profile_paper_layer};
use xpulpnn::{BitWidth, KernelIsa};

/// `cycles == Σ bucket cycles` for all 12 paper-layer variants
/// (3 widths × 2 ISAs × hw-quant on/off).
#[test]
fn ledger_balances_for_every_paper_variant() {
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
            for hw in [false, true] {
                let m = measure_paper_layer(bits, isa, hw, 42)
                    .unwrap_or_else(|e| panic!("{bits}/{isa}/hw={hw}: {e}"));
                assert_eq!(
                    m.perf.cycles,
                    m.perf.ledger.total(),
                    "{bits}/{isa}/hw={hw}: ledger out of balance"
                );
                // The run did real work in the expected units.
                assert!(m.perf.ledger.get(CycleClass::Load) > 0);
                assert!(m.perf.ledger.get(CycleClass::HwLoop) > 0);
            }
        }
    }
}

/// Attribution is architecturally sensible: native sub-byte kernels on
/// the extended core spend their MAC cycles in the matching-format dotp
/// bucket, the baseline never touches sub-byte datapaths, and pv.qnt
/// cycles appear exactly when the hardware quantizer is in use.
#[test]
fn attribution_matches_the_datapath_in_use() {
    let nn4 = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42).unwrap();
    let l = &nn4.perf.ledger;
    assert!(l.get(CycleClass::Dotp(pulp_isa::SimdFmt::Nibble)) > 0);
    assert_eq!(l.get(CycleClass::Dotp(pulp_isa::SimdFmt::Crumb)), 0);
    assert!(
        l.get(CycleClass::Qnt) > 0,
        "hw-quant run must charge the qnt bucket"
    );

    let sw4 = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, false, 42).unwrap();
    assert_eq!(sw4.perf.ledger.get(CycleClass::Qnt), 0);

    let v2 = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpV2, false, 42).unwrap();
    let lb = &v2.perf.ledger;
    for fmt in [pulp_isa::SimdFmt::Nibble, pulp_isa::SimdFmt::Crumb] {
        assert_eq!(
            lb.get(CycleClass::Dotp(fmt)),
            0,
            "baseline must not use {fmt:?} dotp"
        );
        assert_eq!(lb.get(CycleClass::SimdAlu(fmt)), 0);
    }
    assert_eq!(lb.get(CycleClass::Qnt), 0);
}

/// The traced profile agrees with the untraced measurement: attaching
/// the tracer never perturbs timing, the hot-PC histogram accounts for
/// every cycle, and the JSON report carries a balanced ledger.
#[test]
fn profile_is_consistent_with_measurement() {
    let m = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42).unwrap();
    let p = profile_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42, 10).unwrap();
    assert_eq!(p.perf, m.perf, "tracing must not perturb the run");
    assert_eq!(p.perf.cycles, p.perf.ledger.total());

    // Every class is either in the ledger entries or zero.
    let entry_sum: u64 = ALL_CYCLE_CLASSES
        .iter()
        .map(|&c| p.perf.ledger.get(c))
        .sum();
    assert_eq!(entry_sum, p.perf.cycles);

    // Hotspots are sorted descending and genuinely hot: the top entry of
    // this kernel is from the inner loop, executed once per dot-product.
    assert!(!p.hotspots.is_empty());
    for w in p.hotspots.windows(2) {
        assert!(w[0].cycles >= w[1].cycles);
    }

    let json = p.to_json();
    assert!(json.contains(&format!("\"cycles\": {}", p.perf.cycles)));
    assert!(json.contains(&format!("\"total\": {}", p.perf.cycles)));
}
