//! Shape checks for every reproduced table and figure: the paper's
//! qualitative claims must hold in the reproduction, with quantitative
//! bands around the paper's stated factors.

use std::sync::OnceLock;
use xpulpnn::experiments::{self, PAPER_EFF_GAIN_MAX};

/// The 7-run measurement matrix is expensive; collect it once and share
/// it across every shape check.
fn matrix() -> &'static experiments::Measurements {
    static MATRIX: OnceLock<experiments::Measurements> = OnceLock::new();
    MATRIX.get_or_init(|| experiments::collect(42).expect("measurement matrix"))
}

#[test]
fn figure6_shape() {
    let f = experiments::figure6(matrix());
    for r in &f.rows {
        // pv.qnt always wins, by a factor in the paper's neighbourhood
        // (1.21×/1.16×).
        assert!(r.cycles_hw < r.cycles_sw, "{}", r.bits);
        assert!(
            (1.05..1.45).contains(&r.qnt_gain),
            "{}: qnt gain {:.2} (paper {:.2})",
            r.bits,
            r.qnt_gain,
            r.paper_qnt_gain
        );
        // "performance of sub-byte kernels scales almost linearly":
        // at least 80% of ideal (the fixed pv.qnt latency weighs more at
        // 2 bits, exactly as in the paper's Fig. 6, which also sits
        // slightly below ideal).
        assert!(
            r.scaling_vs_w8 > 0.80 * r.ideal_scaling,
            "{}: scaling {:.2} vs ideal {:.2}",
            r.bits,
            r.scaling_vs_w8,
            r.ideal_scaling
        );
        assert!(r.scaling_vs_w8 <= r.ideal_scaling * 1.05);
    }
}

#[test]
fn figure7_shape() {
    let f = experiments::figure7(matrix());
    // 8-bit: "without reducing the efficiency for 8-bit QNN kernels" —
    // within a few percent of 1×.
    assert!(
        (0.9..1.1).contains(&f.rows[0].gain),
        "8-bit gain {:.3}",
        f.rows[0].gain
    );
    // Sub-byte gains grow with quantization depth, 2-bit approaching the
    // paper's 9×.
    assert!(f.rows[1].gain > 3.0, "4-bit gain {:.2}", f.rows[1].gain);
    assert!(
        (5.5..PAPER_EFF_GAIN_MAX + 2.0).contains(&f.rows[2].gain),
        "2-bit gain {:.2} (paper up to 9)",
        f.rows[2].gain
    );
    assert!(f.rows[2].gain > f.rows[1].gain);
}

#[test]
fn figure8_shape() {
    let f = experiments::figure8(matrix());
    for r in &f.rows {
        // Both RISC-V cores beat both Cortex-M parts in cycles.
        assert!(r.xpulpnn < r.stm32l4 && r.xpulpnn < r.stm32h7, "{}", r.bits);
        assert!(r.ri5cy < r.stm32l4, "{}", r.bits);
        // The H7 needs fewer cycles than the L4 (wider pipeline).
        assert!(r.stm32h7 < r.stm32l4, "{}", r.bits);
    }
    // Sub-byte: "one order of magnitude" vs the MCUs.
    for r in &f.rows[1..] {
        assert!(
            r.stm32l4 as f64 / r.xpulpnn as f64 > 7.0,
            "{}: vs L4 only {:.1}x",
            r.bits,
            r.stm32l4 as f64 / r.xpulpnn as f64
        );
    }
    // Speedups over the baseline ordered and in band.
    assert!((3.0..7.0).contains(&f.rows[1].speedup_vs_ri5cy));
    assert!((6.0..12.0).contains(&f.rows[2].speedup_vs_ri5cy));
}

#[test]
fn figure9_shape() {
    let f = experiments::figure9(matrix());
    // Efficiency ordering on every row: XpulpNN core ≥ RI5CY ≫ L4 > H7.
    for r in &f.rows {
        assert!(r.ri5cy > r.stm32l4, "{}", r.bits);
        assert!(
            r.stm32l4 > r.stm32h7,
            "{}: the L4 out-efficiencies the H7",
            r.bits
        );
    }
    assert!(f.rows[2].xpulpnn > f.rows[1].xpulpnn);
    // "two orders of magnitude better than state-of-the-art MCUs" on the
    // 2-bit kernel.
    assert!(f.ratio_vs_l4_w2 > 100.0, "vs L4: {:.0}x", f.ratio_vs_l4_w2);
    assert!(f.ratio_vs_h7_w2 > 100.0, "vs H7: {:.0}x", f.ratio_vs_h7_w2);
    // Peak efficiency in the paper's neighbourhood (279 GMAC/s/W).
    assert!(
        (150.0..400.0).contains(&f.rows[2].xpulpnn),
        "peak efficiency {:.0} GMAC/s/W",
        f.rows[2].xpulpnn
    );
}

#[test]
fn table1_this_work_row_in_paper_band() {
    let t = experiments::table1(matrix());
    let this_work = t.rows.last().expect("this-work row");
    assert_eq!(this_work.name, "This Work");
    // Table I claims 1–5 Gop/s and 80–550 Gop/s/W.
    assert!(
        this_work.gops.1 >= 1.0 && this_work.gops.1 <= 5.0,
        "{:?}",
        this_work.gops
    );
    assert!(
        this_work.gops_w.1 >= 300.0 && this_work.gops_w.1 <= 550.0,
        "{:?}",
        this_work.gops_w
    );
    // It must beat the commercial-MCU row on efficiency by an order of
    // magnitude.
    let mcus = &t.rows[2];
    assert!(this_work.gops_w.1 > 10.0 * mcus.gops_w.1);
}

#[test]
fn pooling_speedup_scales_with_lanes() {
    let p = experiments::pooling_speedup().expect("pooling measurements");
    // SIMD processes 4/8/16 channels per pv.maxu; expect speedups that
    // grow with lane count and sit in the neighbourhood of the lane
    // factor (loop overheads keep them below it at 8-bit, the scalar
    // baseline's byte traffic pushes them above at 2-bit).
    assert!(
        (2.0..6.0).contains(&p.rows[0].speedup),
        "8-bit {:.2}",
        p.rows[0].speedup
    );
    assert!(
        (4.0..10.0).contains(&p.rows[1].speedup),
        "4-bit {:.2}",
        p.rows[1].speedup
    );
    assert!(
        (8.0..20.0).contains(&p.rows[2].speedup),
        "2-bit {:.2}",
        p.rows[2].speedup
    );
    assert!(p.rows[0].speedup < p.rows[1].speedup);
    assert!(p.rows[1].speedup < p.rows[2].speedup);
}

#[test]
fn full_report_renders() {
    let report = experiments::run_all(42).expect("full report");
    let text = report.to_string();
    for needle in [
        "Table I",
        "Table III",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Figure 9",
        "pv.qnt.n: 9 cycles",
        "pv.qnt.c: 5 cycles",
        "This Work",
        "Pooling",
    ] {
        assert!(text.contains(needle), "report missing {needle:?}:\n{text}");
    }
}
