//! Property tests spanning the whole stack: random layer geometries and
//! seeds must keep every kernel variant bit-exact against the golden
//! model, the text assembler must invert the disassembler for full
//! generated programs, and the core's hardware quantization unit must
//! agree with the golden staircase quantizer on arbitrary trees.
//!
//! Originally `proptest` properties; rewritten as seeded `xrand` loops so
//! the tree resolves offline. The loops run on the shared
//! [`xpulpnn::conformance::harness`], which prints a one-line
//! `XPULPNN_CASE_SEED=… cargo test …` repro command on failure and
//! replays a single case when that variable is set.

use xpulpnn::conformance::harness::{run_accepted, run_cases};
use xpulpnn::pulp_asm::text::parse;
use xpulpnn::pulp_isa::SimdFmt;
use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::qnn::quantizer::ThresholdSet;
use xpulpnn::riscv_core::bus::Bus;
use xpulpnn::riscv_core::{quant, SliceMem};
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa, QuantMode};

const WIDTHS: [BitWidth; 3] = [BitWidth::W8, BitWidth::W4, BitWidth::W2];
const ISAS: [KernelIsa; 2] = [KernelIsa::XpulpV2, KernelIsa::XpulpNN];

/// Builds a small-but-interesting conv shape that satisfies the kernel
/// alignment rules at the given width.
fn shape_from(
    bits: BitWidth,
    cmul: usize,
    h: usize,
    w: usize,
    oc_blocks: usize,
    stride: usize,
    pad: usize,
) -> ConvShape {
    let lanes = 32 / bits.bits() as usize;
    let k = if pad == 1 { 3 } else { 1 };
    ConvShape {
        in_h: h,
        in_w: w,
        in_c: lanes * cmul,
        out_c: 4 * oc_blocks,
        k_h: k,
        k_w: k,
        stride,
        pad,
    }
}

fn quant_for(bits: BitWidth, isa: KernelIsa, hw: bool) -> QuantMode {
    match (bits, isa, hw) {
        (BitWidth::W8, _, _) => QuantMode::Shift8 { shift: 7 },
        (_, KernelIsa::XpulpNN, true) => QuantMode::HardwareQnt,
        _ => QuantMode::SoftwareTree,
    }
}

/// The central cross-stack property: any valid configuration's
/// simulated output equals the golden model's.
#[test]
fn kernels_match_golden_on_random_shapes() {
    run_accepted(
        "kernels_match_golden_on_random_shapes",
        0xc0c5_0001,
        24,
        400,
        |r| {
            let bits = *r.choose(&WIDTHS);
            let isa = *r.choose(&ISAS);
            let hw = r.flip();
            let seed = r.below(1_000);
            let shape = shape_from(
                bits,
                r.range_usize(1, 2),
                r.range_usize(2, 6),
                r.range_usize(2, 6),
                r.range_usize(1, 2),
                r.range_usize(1, 2),
                r.range_usize(0, 1),
            );
            if shape.in_h + 2 * shape.pad < shape.k_h
                || shape.in_w + 2 * shape.pad < shape.k_w
                || !shape.pixels().is_multiple_of(2)
            {
                return false;
            }
            let cfg = ConvKernelConfig {
                shape,
                bits,
                out_bits: bits,
                isa,
                quant: quant_for(bits, isa, hw),
            };
            if cfg.validate().is_err() {
                return false;
            }
            let tb = ConvTestbench::new(cfg, seed).expect("build");
            let run = tb.run().expect("run");
            assert!(run.report.exit.halted);
            assert_eq!(
                &run.output,
                &run.golden,
                "{} on {:?} seed {}",
                cfg.name(),
                shape,
                seed
            );
            true
        },
    );
}

/// Text-assembling the disassembly of a generated kernel reproduces
/// the exact instruction stream (parse ∘ listing = id over real
/// programs, not just single instructions). Exhaustive over the
/// width × ISA matrix — there are only six combinations.
#[test]
fn parse_inverts_listing_for_generated_kernels() {
    for bits in WIDTHS {
        for isa in ISAS {
            let cfg = ConvKernelConfig::paper(bits, isa, isa == KernelIsa::XpulpNN);
            let tb = ConvTestbench::new(cfg, 0).expect("build");
            // Reassemble each instruction's disassembly (offsets are numeric,
            // so no label context is needed).
            let mut text = String::from(".org 0x1c008000\n");
            for i in &tb.program.instrs {
                text.push_str(&i.to_string());
                text.push('\n');
            }
            let reparsed = parse(&text).expect("reparse");
            assert_eq!(&reparsed.instrs, &tb.program.instrs, "{}", cfg.name());
            assert_eq!(&reparsed.words, &tb.program.words, "{}", cfg.name());
        }
    }
}

/// Exhaustive (non-random) sweep of every quantization mode on one
/// fixed shape per width — a deterministic complement to the random
/// property above.
#[test]
fn fixed_shape_full_matrix() {
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let lanes = 32 / bits.bits() as usize;
        let shape = ConvShape {
            in_h: 5,
            in_w: 4,
            in_c: lanes,
            out_c: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
            for hw in [false, true] {
                let cfg = ConvKernelConfig {
                    shape,
                    bits,
                    out_bits: bits,
                    isa,
                    quant: quant_for(bits, isa, hw),
                };
                if cfg.validate().is_err() {
                    continue;
                }
                let tb = ConvTestbench::new(cfg, 77).expect("build");
                let r = tb.run().expect("run");
                assert!(r.matches(), "{} mismatched", cfg.name());
            }
        }
    }
}

/// Cross-crate quantizer equivalence: the core's `pv.qnt` Eytzinger tree
/// walk ([`quant::execute`]) must agree with the golden staircase
/// quantizer ([`ThresholdSet::quantize`]) for random sorted per-channel
/// thresholds — including accumulators exactly equal to a threshold
/// (strict `<` keeps the lower bin) and i16-saturated accumulators.
#[test]
fn qnt_unit_matches_golden_quantizer() {
    run_cases(
        "qnt_unit_matches_golden_quantizer",
        0xc0c5_0002,
        200,
        |r, case| {
            let (bits, fmt) = if r.flip() {
                (BitWidth::W4, SimdFmt::Nibble)
            } else {
                (BitWidth::W2, SimdFmt::Crumb)
            };
            let n = bits.threshold_count();
            let channels = 2 * r.range_usize(1, 4); // pv.qnt consumes channel pairs
            let per_channel: Vec<Vec<i16>> = (0..channels)
                .map(|_| {
                    let mut t: Vec<i16> = (0..n).map(|_| r.range_i32(-3000, 3000) as i16).collect();
                    t.sort_unstable();
                    t
                })
                .collect();
            let golden = ThresholdSet::from_sorted(bits, per_channel.clone()).expect("sorted");

            // Lay the trees out the way the kernel library does: Eytzinger
            // order, one tree per channel at a fixed stride.
            let stride = quant::tree_stride(fmt);
            let base = 0x1000u32;
            let mut mem = SliceMem::new(base, (channels as u32 * stride + 64) as usize);
            for (ch, sorted) in per_channel.iter().enumerate() {
                let tree = quant::eytzinger(sorted);
                for (i, t) in tree.iter().enumerate() {
                    mem.write(
                        base + ch as u32 * stride + (i as u32) * 2,
                        2,
                        *t as u16 as u32,
                    )
                    .unwrap();
                }
            }

            for pair in 0..channels / 2 {
                let (ch0, ch1) = (2 * pair, 2 * pair + 1);
                // Mix of random, threshold-equal, and saturating accumulators.
                let mut accs: Vec<(i32, i32)> = (0..8)
                    .map(|_| (r.range_i32(-40_000, 40_000), r.range_i32(-40_000, 40_000)))
                    .collect();
                accs.push((
                    per_channel[ch0][r.below(n as u64) as usize] as i32,
                    per_channel[ch1][r.below(n as u64) as usize] as i32,
                ));
                accs.push((i32::MAX, i32::MIN));
                accs.push((i16::MAX as i32, i16::MIN as i32));
                for (a0, a1) in accs {
                    // The MatMul inner loop saturates accumulators to i16
                    // before handing them to the quantization unit.
                    let x0 = a0.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                    let x1 = a1.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
                    let rs1 = (x0 as u16 as u32) | ((x1 as u16 as u32) << 16);
                    let rs2 = base + ch0 as u32 * stride;
                    let got = quant::execute(&mut mem, fmt, rs1, rs2).expect("qnt");
                    let q = fmt.bits();
                    let mask = (1u32 << q) - 1;
                    assert_eq!(
                        got.rd & mask,
                        golden.quantize(ch0, a0) as u32,
                        "case {case} ch {ch0} acc {a0}"
                    );
                    assert_eq!(
                        (got.rd >> q) & mask,
                        golden.quantize(ch1, a1) as u32,
                        "case {case} ch {ch1} acc {a1}"
                    );
                }
            }
        },
    );
}
