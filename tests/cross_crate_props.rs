//! Property tests spanning the whole stack: random layer geometries and
//! seeds must keep every kernel variant bit-exact against the golden
//! model, and the text assembler must invert the disassembler for full
//! generated programs.

use proptest::prelude::*;
use xpulpnn::pulp_asm::text::parse;
use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa, QuantMode};

fn any_bits() -> impl Strategy<Value = BitWidth> {
    prop_oneof![Just(BitWidth::W8), Just(BitWidth::W4), Just(BitWidth::W2)]
}

/// Builds a small-but-interesting conv shape that satisfies the kernel
/// alignment rules at the given width.
fn shape_from(
    bits: BitWidth,
    cmul: usize,
    h: usize,
    w: usize,
    oc_blocks: usize,
    stride: usize,
    pad: usize,
) -> ConvShape {
    let lanes = 32 / bits.bits() as usize;
    let k = if pad == 1 { 3 } else { 1 };
    ConvShape {
        in_h: h,
        in_w: w,
        in_c: lanes * cmul,
        out_c: 4 * oc_blocks,
        k_h: k,
        k_w: k,
        stride,
        pad,
    }
}

fn quant_for(bits: BitWidth, isa: KernelIsa, hw: bool) -> QuantMode {
    match (bits, isa, hw) {
        (BitWidth::W8, _, _) => QuantMode::Shift8 { shift: 7 },
        (_, KernelIsa::XpulpNN, true) => QuantMode::HardwareQnt,
        _ => QuantMode::SoftwareTree,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central cross-stack property: any valid configuration's
    /// simulated output equals the golden model's.
    #[test]
    fn kernels_match_golden_on_random_shapes(
        bits in any_bits(),
        isa in prop_oneof![Just(KernelIsa::XpulpV2), Just(KernelIsa::XpulpNN)],
        hw in any::<bool>(),
        seed in 0u64..1_000,
        cmul in 1usize..=2,
        h in 2usize..=6,
        w in 2usize..=6,
        oc_blocks in 1usize..=2,
        stride in 1usize..=2,
        pad in 0usize..=1,
    ) {
        let shape = shape_from(bits, cmul, h, w, oc_blocks, stride, pad);
        prop_assume!(shape.in_h + 2 * shape.pad >= shape.k_h);
        prop_assume!(shape.in_w + 2 * shape.pad >= shape.k_w);
        prop_assume!(shape.pixels() % 2 == 0);
        let cfg = ConvKernelConfig { shape, bits, out_bits: bits, isa, quant: quant_for(bits, isa, hw) };
        prop_assume!(cfg.validate().is_ok());
        let tb = ConvTestbench::new(cfg, seed).expect("build");
        let r = tb.run().expect("run");
        prop_assert!(r.report.exit.halted);
        prop_assert_eq!(&r.output, &r.golden, "{} on {:?}", cfg.name(), shape);
    }

    /// Text-assembling the disassembly of a generated kernel reproduces
    /// the exact instruction stream (parse ∘ listing = id over real
    /// programs, not just single instructions).
    #[test]
    fn parse_inverts_listing_for_generated_kernels(
        bits in any_bits(),
        isa in prop_oneof![Just(KernelIsa::XpulpV2), Just(KernelIsa::XpulpNN)],
    ) {
        let cfg = ConvKernelConfig::paper(bits, isa, isa == KernelIsa::XpulpNN);
        let tb = ConvTestbench::new(cfg, 0).expect("build");
        // Reassemble each instruction's disassembly (offsets are numeric,
        // so no label context is needed).
        let mut text = String::from(".org 0x1c008000\n");
        for i in &tb.program.instrs {
            text.push_str(&i.to_string());
            text.push('\n');
        }
        let reparsed = parse(&text).expect("reparse");
        prop_assert_eq!(&reparsed.instrs, &tb.program.instrs);
        prop_assert_eq!(&reparsed.words, &tb.program.words);
    }
}

/// Exhaustive (non-random) sweep of every quantization mode on one
/// fixed shape per width — a deterministic complement to the random
/// property above.
#[test]
fn fixed_shape_full_matrix() {
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let lanes = 32 / bits.bits() as usize;
        let shape = ConvShape {
            in_h: 5,
            in_w: 4,
            in_c: lanes,
            out_c: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
            for hw in [false, true] {
                let cfg = ConvKernelConfig { shape, bits, out_bits: bits, isa, quant: quant_for(bits, isa, hw) };
                if cfg.validate().is_err() {
                    continue;
                }
                let tb = ConvTestbench::new(cfg, 77).expect("build");
                let r = tb.run().expect("run");
                assert!(r.matches(), "{} mismatched", cfg.name());
            }
        }
    }
}
