//! The paper's benchmark sweep: the 16×16×32 → 64×3×3×32 convolution at
//! 8/4/2 bits on both cores, with both quantization paths — i.e. the raw
//! data behind Figs. 6–9.
//!
//! ```sh
//! cargo run --release --example conv_layer_sweep
//! ```

use xpulpnn::experiments;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("collecting the paper-layer measurement matrix (7 verified runs)...\n");
    let m = experiments::collect(42)?;

    println!(
        "raw measurements (16x16x32 input, 64 filters 3x3x32, {} MACs):",
        m.w8.macs
    );
    for (name, lm) in [
        ("8-bit  both cores     shift+clip", &m.w8),
        ("4-bit  RI5CY baseline sw-tree   ", &m.w4_v2),
        ("4-bit  XpulpNN        sw-tree   ", &m.w4_nn_sw),
        ("4-bit  XpulpNN        pv.qnt    ", &m.w4_nn_hw),
        ("2-bit  RI5CY baseline sw-tree   ", &m.w2_v2),
        ("2-bit  XpulpNN        sw-tree   ", &m.w2_nn_sw),
        ("2-bit  XpulpNN        pv.qnt    ", &m.w2_nn_hw),
    ] {
        println!(
            "  {name}  {:>9} cycles  {:>5.2} MAC/cycle",
            lm.cycles,
            lm.macs_per_cycle()
        );
    }
    println!();
    println!("{}", experiments::figure6(&m));
    println!("{}", experiments::figure8(&m));
    Ok(())
}
