//! One depthwise-separable block of MobileNetV1 — the network the
//! paper's introduction uses to motivate sub-byte quantization — run end
//! to end on the simulated extended core:
//!
//! 1. depthwise 3×3 (8-bit, scalar MACs — the dotp unit cannot help), then
//! 2. pointwise 1×1 (8-bit operands → 4-bit outputs via `pv.qnt`,
//!    mixed precision per Rusci et al.).
//!
//! The MAC/cycle gap between the two stages is the reproduction's
//! version of the well-known depthwise bottleneck on MCU-class cores.
//!
//! ```sh
//! cargo run --release --example mobilenet_block
//! ```

use xpulpnn::pulp_kernels::depthwise::{DepthwiseKernelConfig, DepthwiseTestbench};
use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::qnn::depthwise::DepthwiseShape;
use xpulpnn::qnn::rng::TensorRng;
use xpulpnn::qnn::tensor::QuantTensor;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (h, w, c) = (16, 16, 16);

    // Stage 1: depthwise 3×3, 8-bit.
    let dw_cfg = DepthwiseKernelConfig {
        shape: DepthwiseShape {
            in_h: h,
            in_w: w,
            c,
            k: 3,
            stride: 1,
            pad: 1,
        },
        shift: 7,
    };
    let dw = DepthwiseTestbench::new(dw_cfg, 5)?;
    let dw_r = dw.run()?;
    assert!(
        dw_r.matches(),
        "depthwise stage diverged from the golden model"
    );
    println!(
        "depthwise 3x3   {:>4} ch  {:>8} cycles  {:>5.2} MAC/cycle  verified",
        c,
        dw_r.cycles(),
        dw_r.macs_per_cycle(&dw_cfg)
    );

    // Stage 2: pointwise 1×1, 8-bit operands -> 4-bit outputs (pv.qnt).
    let pw_shape = ConvShape {
        in_h: h,
        in_w: w,
        in_c: c,
        out_c: 2 * c,
        k_h: 1,
        k_w: 1,
        stride: 1,
        pad: 0,
    };
    let pw_cfg = ConvKernelConfig::mixed(pw_shape, BitWidth::W8, BitWidth::W4);
    let mut rng = TensorRng::new(6);
    let pw_input = QuantTensor::activations(BitWidth::W8, dw_r.output.clone())
        .expect("depthwise outputs are valid 8-bit activations");
    let pw_weights = rng.weights(BitWidth::W8, pw_shape.weight_len());
    let pw_thresholds = rng.thresholds(BitWidth::W4, pw_shape.out_c, -1500, 1500);
    let pw = ConvTestbench::from_parts(pw_cfg, pw_input, pw_weights, Some(pw_thresholds))?;
    let pw_r = pw.run()?;
    assert!(
        pw_r.matches(),
        "pointwise stage diverged from the golden model"
    );
    println!(
        "pointwise 1x1   {:>4} ch  {:>8} cycles  {:>5.2} MAC/cycle  verified (8-bit -> 4-bit)",
        pw_shape.out_c,
        pw_r.cycles(),
        pw_r.macs_per_cycle(&pw_cfg)
    );

    let dw_rate = dw_r.macs_per_cycle(&dw_cfg);
    let pw_rate = pw_r.macs_per_cycle(&pw_cfg);
    println!(
        "\nthe depthwise bottleneck: pointwise runs {:.1}x more MACs per cycle",
        pw_rate / dw_rate
    );
    println!(
        "block total: {} cycles for {} MACs",
        dw_r.cycles() + pw_r.cycles(),
        dw_cfg.shape.macs() + pw_shape.macs()
    );
    Ok(())
}
