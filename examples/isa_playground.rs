//! Write XpulpNN assembly as text, run it on the SoC model, inspect the
//! result — a REPL-style tour of the ISA extension.
//!
//! ```sh
//! cargo run --release --example isa_playground
//! ```

use xpulpnn::pulp_asm::text::parse;
use xpulpnn::pulp_isa::Reg;
use xpulpnn::pulp_soc::Soc;
use xpulpnn::riscv_core::IsaConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A nibble-SIMD program: 8 packed 4-bit MACs per pv.sdotsp.n, inside
    // a zero-overhead hardware loop.
    let source = r"
        .org 0x1c008000
        li   a1, 0x21212121     # vector of nibbles (1,2,1,2,...)
        li   a2, 0x11111111     # vector of ones
        li   a0, 0              # accumulator
        li   t0, 10             # iterations
        lp.setup x0, t0, done
        pv.sdotsp.n a0, a1, a2  # a0 += sum of 8 nibble products
    done:
        ecall
    ";

    let prog = parse(source)?;
    println!("disassembly:\n{}", prog.listing());

    let mut soc = Soc::new(IsaConfig::xpulpnn());
    soc.load(&prog);
    let report = soc.run(10_000)?;

    // 8 lanes of (1·1 + 2·1)·4 = 12 per instruction, 10 iterations.
    println!("a0 = {}", soc.core.reg(Reg::A0));
    println!(
        "cycles = {} (note: one per SIMD MAC bundle, zero loop overhead)",
        report.perf.cycles
    );
    println!("dotp unit ops [h b n c] = {:?}", report.perf.dotp);
    println!("hardware-loop back-edges = {}", report.perf.hwloop_backs);
    assert_eq!(soc.core.reg(Reg::A0), 120);

    // The same program refuses to run on the baseline core.
    let mut baseline = Soc::new(IsaConfig::xpulpv2());
    baseline.load(&prog);
    match baseline.run(10_000) {
        Err(trap) => println!("\non baseline RI5CY: {trap}"),
        Ok(_) => unreachable!("sub-byte SIMD must trap on the baseline"),
    }
    Ok(())
}
