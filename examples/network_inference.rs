//! Whole-network deployment through the [`xpulpnn::network`] API: a
//! LeNet-flavoured quantized CNN — conv / pool / conv / pool / linear —
//! compiled to simulator kernels and run end to end, every layer
//! verified against its golden model.
//!
//! ```sh
//! cargo run --release --example network_inference
//! ```

use xpulpnn::network::{Layer, Network};
use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::qnn::linear::LinearShape;
use xpulpnn::qnn::pool::PoolShape;
use xpulpnn::BitWidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = Network::new(vec![
        // 16×16×8 input, 8-bit stem quantized down to 4 bits.
        Layer::conv(
            ConvShape {
                in_h: 16,
                in_w: 16,
                in_c: 8,
                out_c: 16,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W8,
            BitWidth::W4,
        ),
        Layer::maxpool(
            PoolShape {
                in_h: 16,
                in_w: 16,
                c: 16,
                k: 2,
                stride: 2,
            },
            BitWidth::W4,
        ),
        Layer::conv(
            ConvShape {
                in_h: 8,
                in_w: 8,
                in_c: 16,
                out_c: 32,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W4,
            BitWidth::W4,
        ),
        Layer::maxpool(
            PoolShape {
                in_h: 8,
                in_w: 8,
                c: 32,
                k: 2,
                stride: 2,
            },
            BitWidth::W4,
        ),
        // Classifier head over the 4×4×32 feature map.
        Layer::linear(
            LinearShape {
                in_features: 4 * 4 * 32,
                out_features: 10 * 2,
            },
            BitWidth::W4,
        ),
    ])?;

    let run = net.run(2026)?;
    println!("{run}");

    // Argmax over the 20 class logits (quantized activations).
    let best = run
        .output
        .values()
        .iter()
        .enumerate()
        .max_by_key(|(_, v)| **v)
        .map(|(i, _)| i)
        .expect("non-empty output");
    println!("\npredicted class: {best}");
    Ok(())
}
