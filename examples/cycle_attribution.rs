//! Cycle attribution: where do the cycles go, and what caps the speedup?
//!
//! Runs the paper's benchmark layer at 4 bits twice — baseline XpulpV2
//! and extended XpulpNN + `pv.qnt` — with the cycle ledger attributing
//! every cycle to an instruction class, then traces the extended run to
//! list its hottest instructions. This is the workflow behind deviation
//! D1 in EXPERIMENTS.md: the ledger shows which baseline costs the
//! extension eliminates, and the non-dotp remainder bounds the
//! achievable speedup (Amdahl).
//!
//! ```sh
//! cargo run --release --example cycle_attribution
//! ```

use xpulpnn::measure::{measure_paper_layer, profile_paper_layer};
use xpulpnn::{BitWidth, KernelIsa};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = BitWidth::W4;
    let base = measure_paper_layer(bits, KernelIsa::XpulpV2, false, 42)?;
    let ext = measure_paper_layer(bits, KernelIsa::XpulpNN, true, 42)?;

    println!("paper benchmark layer, {bits}:");
    println!("  baseline (xpulpv2):  {:>9} cycles", base.cycles);
    println!("  extended (xpulpnn):  {:>9} cycles", ext.cycles);
    println!(
        "  speedup:             {:>9.2}x\n",
        base.cycles as f64 / ext.cycles as f64
    );

    // The ledger's invariant: every cycle is attributed to exactly one
    // class, so the buckets sum to the cycle counter.
    for (name, m) in [("baseline", &base), ("extended", &ext)] {
        assert_eq!(m.perf.cycles, m.perf.ledger.total());
        println!("{name} cycle ledger:\n{}", m.perf.ledger);
    }

    // Amdahl: cycles the extended kernel spends outside the dotp unit
    // cannot be removed by a faster dot product.
    let dotp: u64 = ext
        .perf
        .ledger
        .entries()
        .filter(|(c, _)| c.name().starts_with("dotp"))
        .map(|(_, n)| n)
        .sum();
    let serial = ext.cycles - dotp;
    println!(
        "extended kernel: {dotp} dotp cycles, {serial} other cycles -> \
         even a free dot product caps the speedup at {:.2}x\n",
        base.cycles as f64 / serial as f64
    );

    // The tracer names the hot instructions behind those buckets.
    let profile = profile_paper_layer(bits, KernelIsa::XpulpNN, true, 42, 8)?;
    println!("hottest static instructions (extended kernel):");
    for h in &profile.hotspots {
        println!(
            "  {:#010x}  {:<32} {:>9} cycles ({:>7} executions)",
            h.pc,
            h.instr.to_string(),
            h.cycles,
            h.count
        );
    }
    Ok(())
}
