//! End-to-end inference of a small **mixed-precision** quantized CNN on
//! the simulator — the per-layer quantization use-case the paper's
//! introduction motivates (Rusci et al.): an 8-bit stem, 4-bit middle
//! layers and a 2-bit final stage. Every convolution executes on the
//! extended core with the hardware quantizer; each layer's output tensor
//! feeds the next layer and is verified against the golden model on the
//! way.
//!
//! ```sh
//! cargo run --release --example cnn_inference
//! ```

use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::qnn::rng::TensorRng;
use xpulpnn::qnn::tensor::QuantTensor;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (shape, operand bits, output bits) per layer; layer k's output
    // width is layer k+1's operand width.
    let layers = [
        (
            ConvShape {
                in_h: 16,
                in_w: 16,
                in_c: 8,
                out_c: 16,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W8,
            BitWidth::W4,
        ),
        (
            ConvShape {
                in_h: 16,
                in_w: 16,
                in_c: 16,
                out_c: 16,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W4,
            BitWidth::W4,
        ),
        (
            ConvShape {
                in_h: 16,
                in_w: 16,
                in_c: 16,
                out_c: 32,
                k_h: 3,
                k_w: 3,
                stride: 2,
                pad: 1,
            },
            BitWidth::W4,
            BitWidth::W2,
        ),
    ];

    let mut rng = TensorRng::new(7);
    let mut activations = rng.activations(layers[0].1, layers[0].0.input_len());
    let mut total_cycles = 0u64;
    let mut total_macs = 0u64;

    for (i, (shape, bits, out_bits)) in layers.iter().enumerate() {
        let cfg = ConvKernelConfig::mixed(*shape, *bits, *out_bits);
        let weights = rng.weights(*bits, shape.weight_len());
        let thresholds = if out_bits.is_sub_byte() {
            Some(rng.thresholds(*out_bits, shape.out_c, -1500, 1500))
        } else {
            None
        };
        let tb = ConvTestbench::from_parts(cfg, activations, weights, thresholds)?;
        let r = tb.run()?;
        assert!(r.matches(), "layer {i} diverged from the golden model");
        println!(
            "layer {}: {:>2}ch {} -> {:>2}ch {}  {:>8} cycles  {:>5.2} MAC/cycle  verified",
            i + 1,
            shape.in_c,
            bits,
            shape.out_c,
            out_bits,
            r.cycles(),
            r.macs_per_cycle(&cfg),
        );
        total_cycles += r.cycles();
        total_macs += shape.macs();
        activations = QuantTensor::activations(*out_bits, r.output.clone())
            .expect("quantized outputs are valid activations");
    }

    // Tiny "classifier": channel with the largest activation energy.
    let out_c = layers.last().expect("layers is non-empty").0.out_c;
    let mut sums = vec![0i64; out_c];
    for (i, v) in activations.values().iter().enumerate() {
        sums[i % out_c] += *v as i64;
    }
    let best = sums
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| **s)
        .map(|(c, _)| c)
        .expect("out_c > 0");

    println!("\nnetwork total : {total_cycles} cycles, {total_macs} MACs");
    println!(
        "at 250 MHz    : {:.2} ms per inference, {:.2} GMAC/s",
        total_cycles as f64 / 250e3,
        total_macs as f64 / total_cycles as f64 * 0.25
    );
    println!("predicted class (argmax of channel energy): {best}");
    Ok(())
}
