//! Quickstart: run one quantized convolution on the extended-RI5CY
//! simulator and verify it against the golden model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa, QuantMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small 4-bit layer: 8×8×16 input, 16 filters of 3×3×16.
    let cfg = ConvKernelConfig {
        shape: ConvShape {
            in_h: 8,
            in_w: 8,
            in_c: 16,
            out_c: 16,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        },
        bits: BitWidth::W4,
        out_bits: BitWidth::W4,
        isa: KernelIsa::XpulpNN,
        quant: QuantMode::HardwareQnt,
    };

    // Generate deterministic synthetic tensors, build the kernel, run.
    let tb = ConvTestbench::new(cfg, 42)?;
    println!("kernel: {}", cfg.name());
    println!("program: {} instructions\n", tb.program.instrs.len());

    // A taste of the generated code: the head of the MatMul inner loop.
    let listing = tb.program.listing();
    for line in listing
        .lines()
        .skip_while(|l| !l.starts_with("mm_block"))
        .take(16)
    {
        println!("{line}");
    }

    let r = tb.run()?;
    println!("\ncycles           : {}", r.cycles());
    println!("MACs             : {}", cfg.shape.macs());
    println!("MAC/cycle        : {:.2}", r.macs_per_cycle(&cfg));
    println!("golden match     : {}", r.matches());
    println!("\nperformance counters:\n{}", r.report.perf);
    assert!(r.matches(), "device output must match the golden model");
    Ok(())
}
