#![warn(missing_docs)]

//! A PULPissimo-like microcontroller model hosting the extended RI5CY
//! core.
//!
//! The paper integrates its core into the open-source PULPissimo SoC
//! (512 kB of SRAM, a µDMA and peripherals — Fig. 5) to measure
//! system-level cycles and power. The kernels only exercise the core and
//! the single-cycle memory, so this model provides exactly that contract:
//!
//! * **L2 SRAM**: 512 kB at `0x1C00_0000` holding code and data, with
//!   single-cycle access (the [`riscv_core::timing`] rules account
//!   misalignment);
//! * **console peripheral**: a write-only byte register (standing in for
//!   PULPissimo's UART through the µDMA) so programs can print;
//! * **end-of-computation**: the `ecall` halt convention of the core.
//!
//! # Example
//!
//! ```
//! use pulp_soc::Soc;
//! use pulp_asm::Asm;
//! use pulp_isa::Reg;
//! use riscv_core::IsaConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut a = Asm::new(pulp_soc::CODE_BASE);
//! a.li(Reg::A0, '4' as i32);
//! a.li(Reg::A1, pulp_soc::CONSOLE_ADDR as i32);
//! a.sb(Reg::A0, 0, Reg::A1);
//! a.li(Reg::A0, 2);
//! a.ecall();
//! let prog = a.assemble()?;
//!
//! let mut soc = Soc::new(IsaConfig::xpulpnn());
//! soc.load(&prog);
//! let report = soc.run(10_000)?;
//! assert!(report.exit.halted);
//! assert_eq!(report.exit.exit_code, 2);
//! assert_eq!(soc.console_text(), "4");
//! # Ok(())
//! # }
//! ```

pub mod cluster;

use pulp_asm::Program;
use riscv_core::{Bus, BusError, Core, ExitStatus, IsaConfig, PerfCounters, Snapshot, Trap};

/// Base address of the 512 kB L2 SRAM.
pub const L2_BASE: u32 = 0x1c00_0000;
/// Size of the L2 SRAM in bytes (PULPissimo ships 512 kB).
pub const L2_SIZE: u32 = 512 * 1024;
/// Conventional load address for program code within L2.
pub const CODE_BASE: u32 = 0x1c00_8000;
/// Write-only console byte register (stands in for the UART).
pub const CONSOLE_ADDR: u32 = 0x1a10_0000;
/// Initial stack pointer: top of L2.
pub const STACK_TOP: u32 = L2_BASE + L2_SIZE;

/// The SoC memory system: L2 SRAM plus peripherals.
#[derive(Debug, Clone)]
pub struct SocMem {
    l2: Vec<u8>,
    console: Vec<u8>,
}

impl SocMem {
    /// Creates zeroed SRAM and an empty console buffer.
    pub fn new() -> SocMem {
        SocMem {
            l2: vec![0; L2_SIZE as usize],
            console: Vec::new(),
        }
    }

    #[inline]
    fn l2_offset(&self, addr: u32, size: u32) -> Option<usize> {
        let off = addr.checked_sub(L2_BASE)? as usize;
        if off + size as usize <= self.l2.len() {
            Some(off)
        } else {
            None
        }
    }

    /// Bytes written to the console peripheral so far.
    pub fn console_bytes(&self) -> &[u8] {
        &self.console
    }

    /// Host-side bulk write into L2 (for loading tensors).
    ///
    /// # Panics
    ///
    /// Panics if the range leaves L2; host-side setup bugs should fail
    /// loudly.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let off = self
            .l2_offset(addr, bytes.len() as u32)
            .unwrap_or_else(|| panic!("host write outside L2: {addr:#010x}"));
        self.l2[off..off + bytes.len()].copy_from_slice(bytes);
    }

    /// Host-side bulk read from L2 (for collecting results).
    ///
    /// # Panics
    ///
    /// Panics if the range leaves L2.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        let off = self
            .l2_offset(addr, len as u32)
            .unwrap_or_else(|| panic!("host read outside L2: {addr:#010x}"));
        &self.l2[off..off + len]
    }

    /// Host-side 16-bit little-endian write helper.
    pub fn write_i16(&mut self, addr: u32, value: i16) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Host-side 32-bit little-endian read helper.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let b = self.read_bytes(addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }
}

impl Default for SocMem {
    fn default() -> Self {
        SocMem::new()
    }
}

impl Bus for SocMem {
    #[inline]
    fn read(&mut self, addr: u32, size: u32) -> Result<u32, BusError> {
        if let Some(off) = self.l2_offset(addr, size) {
            let mut v = 0u32;
            for i in (0..size as usize).rev() {
                v = (v << 8) | self.l2[off + i] as u32;
            }
            return Ok(v);
        }
        Err(BusError {
            addr,
            size,
            write: false,
        })
    }

    #[inline]
    fn write(&mut self, addr: u32, size: u32, value: u32) -> Result<(), BusError> {
        if addr == CONSOLE_ADDR {
            self.console.push(value as u8);
            return Ok(());
        }
        if let Some(off) = self.l2_offset(addr, size) {
            for i in 0..size as usize {
                self.l2[off + i] = (value >> (8 * i)) as u8;
            }
            return Ok(());
        }
        Err(BusError {
            addr,
            size,
            write: true,
        })
    }
}

/// Outcome of a program run: exit status plus a snapshot of the core's
/// performance counters for this run only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Halt/budget status and exit code.
    pub exit: ExitStatus,
    /// Counters accumulated during this run.
    pub perf: PerfCounters,
}

/// A checkpoint of the whole SoC: the core's architectural
/// [`Snapshot`] plus the L2 image and console buffer. Restoring it and
/// re-running is deterministic, which is what rollback recovery and
/// fault replay build on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocSnapshot {
    core: Snapshot,
    l2: Vec<u8>,
    console: Vec<u8>,
}

impl SocSnapshot {
    /// Cycle count at the checkpoint.
    pub fn cycles(&self) -> u64 {
        self.core.cycles()
    }

    /// Program counter at the checkpoint.
    pub fn pc(&self) -> u32 {
        self.core.pc()
    }

    /// FNV-1a style checksum over the whole checkpoint: the core's
    /// architectural state, the L2 image (folded 8 bytes at a time) and
    /// the console buffer. Two snapshots compare equal iff their
    /// checksums do for all practical purposes; the serving layer
    /// verifies it on every template fork to catch corrupted state
    /// before it reaches a worker.
    pub fn checksum(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        self.core.fold_fnv(&mut h);
        let mut fold = |x: u64| {
            h ^= x;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        let mut chunks = self.l2.chunks_exact(8);
        for c in &mut chunks {
            fold(u64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]));
        }
        for &b in chunks.remainder() {
            fold(u64::from(b));
        }
        fold(self.console.len() as u64);
        for &b in &self.console {
            fold(u64::from(b));
        }
        h
    }

    /// Fault-injection hook: flips one bit of the L2 image inside the
    /// checkpoint (offset is wrapped into range). Models a soft error
    /// striking a stored template/checkpoint while it sits in host
    /// memory — exactly what [`SocSnapshot::checksum`] verification is
    /// there to catch. Never used on the clean serving path.
    pub fn corrupt_l2_bit(&mut self, offset: usize, bit: u8) {
        let off = offset % self.l2.len();
        self.l2[off] ^= 1 << (bit % 8);
    }
}

/// The microcontroller: one RI5CY-family core plus [`SocMem`].
#[derive(Debug, Clone)]
pub struct Soc {
    /// The core (exposed for register inspection in tests/examples).
    pub core: Core,
    /// The memory system (exposed for host-side tensor I/O).
    pub mem: SocMem,
}

impl Soc {
    /// Creates an SoC with the given core configuration.
    pub fn new(isa: IsaConfig) -> Soc {
        Soc {
            core: Core::new(isa),
            mem: SocMem::new(),
        }
    }

    /// Creates an SoC whose core carries a vector unit of the given
    /// VLEN (in bits). Shorthand for [`Soc::new`] followed by
    /// [`riscv_core::Core::set_vlen`]; use with
    /// [`IsaConfig::vector`](riscv_core::IsaConfig::vector).
    pub fn with_vlen(isa: IsaConfig, vlen_bits: u32) -> Soc {
        let mut soc = Soc::new(isa);
        soc.core.set_vlen(vlen_bits);
        soc
    }

    /// Enables the core's decoded-block fast path (see
    /// [`riscv_core::fastpath`]). Call [`Soc::invalidate_fastpath`]
    /// after any later host-side write that may touch already-fetched
    /// code; [`Soc::load`] and [`Soc::restore`] handle themselves.
    pub fn enable_fastpath(&mut self) {
        self.core.enable_fastpath();
    }

    /// Drops cached decoded blocks after host-side writes that bypass
    /// the bus (no-op when the fast path is disabled).
    pub fn invalidate_fastpath(&mut self) {
        self.core.invalidate_fastpath();
    }

    /// Loads a program's code and data into L2 and points the core at
    /// its entry, with the stack at the top of L2.
    ///
    /// # Panics
    ///
    /// Panics if any segment falls outside L2.
    pub fn load(&mut self, prog: &Program) {
        for (i, w) in prog.words.iter().enumerate() {
            self.mem
                .write_bytes(prog.base + (i as u32) * 4, &w.to_le_bytes());
        }
        for (addr, bytes) in &prog.data {
            self.mem.write_bytes(*addr, bytes);
        }
        // The load bypasses the bus, so any blocks decoded from a
        // previously-loaded program are stale.
        self.core.invalidate_fastpath();
        self.core.pc = prog.base;
        self.core.set_reg(pulp_isa::Reg::Sp, STACK_TOP);
    }

    /// Runs until halt or the cycle budget expires.
    ///
    /// # Errors
    ///
    /// Propagates any [`Trap`] from the core.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunReport, Trap> {
        let before = self.core.perf;
        let exit = self.core.run(&mut self.mem, max_cycles)?;
        let perf = self.core.perf.delta_since(&before);
        Ok(RunReport { exit, perf })
    }

    /// Captures a checkpoint of the core and the full memory image.
    pub fn snapshot(&self) -> SocSnapshot {
        SocSnapshot {
            core: self.core.snapshot(),
            l2: self.mem.l2.clone(),
            console: self.mem.console.clone(),
        }
    }

    /// Restores a checkpoint taken with [`Soc::snapshot`]. An attached
    /// tracer on the core stays attached untouched.
    pub fn restore(&mut self, snap: &SocSnapshot) {
        self.core.restore(&snap.core);
        self.mem.l2.clear();
        self.mem.l2.extend_from_slice(&snap.l2);
        self.mem.console.clear();
        self.mem.console.extend_from_slice(&snap.console);
    }

    /// The console output interpreted as UTF-8 (lossy).
    pub fn console_text(&self) -> String {
        String::from_utf8_lossy(self.mem.console_bytes()).into_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_asm::Asm;
    use pulp_isa::Reg;

    #[test]
    fn load_and_run_in_l2() {
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::A0, 7);
        a.slli(Reg::A0, Reg::A0, 2);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        let r = soc.run(1000).unwrap();
        assert!(r.exit.halted);
        assert_eq!(r.exit.exit_code, 28);
        assert_eq!(soc.core.reg(Reg::Sp), STACK_TOP);
    }

    #[test]
    fn data_segments_are_loaded() {
        let mut a = Asm::new(CODE_BASE);
        a.la(Reg::A1, "table");
        a.lw(Reg::A0, 4, Reg::A1);
        a.ecall();
        a.data_words("table", &[11, 22, 33]);
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        let r = soc.run(1000).unwrap();
        assert_eq!(r.exit.exit_code, 22);
    }

    #[test]
    fn console_collects_bytes() {
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::A1, CONSOLE_ADDR as i32);
        for c in b"ok" {
            a.li(Reg::A0, *c as i32);
            a.sb(Reg::A0, 0, Reg::A1);
        }
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        soc.run(1000).unwrap();
        assert_eq!(soc.console_text(), "ok");
    }

    #[test]
    fn unmapped_access_is_a_bus_trap() {
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::A0, 0x1000_0000);
        a.lw(Reg::A1, 0, Reg::A0);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        assert!(matches!(soc.run(1000), Err(Trap::Bus { .. })));
    }

    #[test]
    fn host_io_round_trip() {
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.mem.write_bytes(L2_BASE + 0x100, &[1, 2, 3, 4]);
        assert_eq!(soc.mem.read_bytes(L2_BASE + 0x100, 4), &[1, 2, 3, 4]);
        assert_eq!(soc.mem.read_u32(L2_BASE + 0x100), 0x0403_0201);
        soc.mem.write_i16(L2_BASE + 0x200, -2);
        assert_eq!(soc.mem.read_bytes(L2_BASE + 0x200, 2), &[0xfe, 0xff]);
    }

    #[test]
    #[should_panic(expected = "outside L2")]
    fn host_write_outside_l2_panics() {
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.mem.write_bytes(0x1000, &[0]);
    }

    #[test]
    fn run_report_isolates_counters_per_run() {
        let mut a = Asm::new(CODE_BASE);
        a.nop();
        a.nop();
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        let r1 = soc.run(1000).unwrap();
        soc.load(&prog); // reset PC; counters keep accumulating
        let r2 = soc.run(1000).unwrap();
        // Reports are full per-run deltas: every counter matches, not
        // just cycles/instret, and each run's ledger balances on its own.
        assert_eq!(r1.perf, r2.perf);
        assert_eq!(soc.core.perf.cycles, r1.perf.cycles * 2);
        assert_eq!(r1.perf.ledger.total(), r1.perf.cycles);
        assert_eq!(r2.perf.ledger.total(), r2.perf.cycles);
    }

    #[test]
    fn soc_snapshot_round_trip_restores_memory_and_console() {
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::A1, CONSOLE_ADDR as i32);
        a.li(Reg::A0, b'x' as i32);
        a.sb(Reg::A0, 0, Reg::A1);
        a.li(Reg::A2, (L2_BASE + 0x1_0000) as i32);
        a.li(Reg::A0, 77);
        a.sw(Reg::A0, 0, Reg::A2);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        let snap = soc.snapshot();
        let r1 = soc.run(1000).unwrap();
        assert_eq!(soc.console_text(), "x");

        // Roll back: memory write and console byte must both vanish,
        // and a re-run must reproduce the original run exactly.
        let mut replay = soc.clone();
        replay.restore(&snap);
        assert_eq!(replay.snapshot(), snap);
        assert_eq!(replay.console_text(), "");
        assert_eq!(replay.mem.read_u32(L2_BASE + 0x1_0000), 0);
        let r2 = replay.run(1000).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(replay.core.perf, soc.core.perf);
    }

    #[test]
    fn budget_exhaustion_is_a_watchdog_trap() {
        let mut a = Asm::new(CODE_BASE);
        a.label("spin");
        a.j("spin");
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        assert!(matches!(
            soc.run(100),
            Err(Trap::Watchdog { budget: 100, .. })
        ));
    }

    /// Serving-template audit pin (fast-path staleness): restoring a
    /// snapshot of a *different* program staged at the same base must
    /// never replay decoded blocks of the previous one. `Core::restore`
    /// flushes the block cache unconditionally — this test holds that
    /// contract for the snapshot-forked worker path.
    #[test]
    fn restore_of_another_template_cannot_replay_stale_blocks() {
        let prog = |k: i32| {
            let mut a = Asm::new(CODE_BASE);
            a.li(Reg::A0, k);
            a.ecall();
            a.assemble().unwrap()
        };
        let (prog_a, prog_b) = (prog(11), prog(22));
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog_a);
        let template_a = soc.snapshot();
        soc.load(&prog_b);
        let template_b = soc.snapshot();

        soc.enable_fastpath();
        soc.restore(&template_a);
        // Warm the block cache on program A's code.
        assert_eq!(soc.run(1000).unwrap().exit.exit_code, 11);
        // Re-fork onto template B at the same addresses: stale blocks
        // from A must not survive the restore.
        soc.restore(&template_b);
        assert_eq!(soc.run(1000).unwrap().exit.exit_code, 22);
        // And back again, still exact.
        soc.restore(&template_a);
        assert_eq!(soc.run(1000).unwrap().exit.exit_code, 11);
    }

    /// Serving-template audit pin (data divergence): two workers forked
    /// from ONE post-staging snapshot, with host-diverged input words,
    /// must each compute from their own data — decoded blocks may be
    /// shared conceptually, data never.
    #[test]
    fn two_forks_from_one_template_diverge_on_inputs() {
        let data = L2_BASE + 0x2_0000;
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::A1, data as i32);
        a.lw(Reg::A0, 0, Reg::A1);
        a.slli(Reg::A0, Reg::A0, 1);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut staged = Soc::new(IsaConfig::xpulpnn());
        staged.load(&prog);
        let template = staged.snapshot();

        let fork = |input: u32| {
            let mut soc = Soc::new(IsaConfig::xpulpnn());
            soc.enable_fastpath();
            soc.restore(&template);
            soc.mem.write_bytes(data, &input.to_le_bytes());
            soc.run(1000).unwrap()
        };
        let r1 = fork(21);
        let r2 = fork(100);
        assert_eq!(r1.exit.exit_code, 42);
        assert_eq!(r2.exit.exit_code, 200);
        // Same code path, same cost — only the data diverged.
        assert_eq!(r1.perf, r2.perf);
    }

    /// Snapshot-integrity pin: the checksum is stable across identical
    /// snapshots, sensitive to a single flipped L2 bit, and restored
    /// state round-trips back to the original checksum.
    #[test]
    fn snapshot_checksum_detects_single_bit_corruption() {
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::A0, 5);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        let snap = soc.snapshot();
        let sum = snap.checksum();
        assert_eq!(soc.snapshot().checksum(), sum, "checksum must be stable");

        let mut bad = snap.clone();
        bad.corrupt_l2_bit(0x1234, 3);
        assert_ne!(bad.checksum(), sum, "one flipped bit must change it");
        // Flipping the same bit back restores the checksum exactly.
        bad.corrupt_l2_bit(0x1234, 3);
        assert_eq!(bad.checksum(), sum);

        // Restore + re-snapshot reproduces the checksum.
        let mut other = Soc::new(IsaConfig::xpulpnn());
        other.restore(&snap);
        assert_eq!(other.snapshot().checksum(), sum);
    }

    /// Vector-backend plumbing pin: a `with_vlen` SoC runs Xrvv code
    /// end-to-end, the strip length honours the configured VLEN, and
    /// the vector register file survives a snapshot round trip.
    #[test]
    fn with_vlen_runs_vector_code_and_snapshots() {
        use pulp_isa::simd::DotSign;
        use pulp_isa::vec::{VReg, VecSew};

        let data = L2_BASE + 0x2_0000;
        let mut a = Asm::new(CODE_BASE);
        a.li(Reg::T0, 8);
        a.vsetvli(Reg::T1, Reg::T0, VecSew::E8);
        a.li(Reg::A1, data as i32);
        a.vle(VReg::new(0).unwrap(), Reg::A1);
        a.li(Reg::A2, (data + 8) as i32);
        a.vle(VReg::new(1).unwrap(), Reg::A2);
        a.li(Reg::A0, 0);
        a.vdot(
            DotSign::UnsignedSigned,
            Reg::A0,
            VReg::new(0).unwrap(),
            VReg::new(1).unwrap(),
        );
        a.ecall();
        let prog = a.assemble().unwrap();

        let mut soc = Soc::with_vlen(IsaConfig::vector(), 256);
        soc.load(&prog);
        soc.mem.write_bytes(data, &[1, 2, 3, 4, 5, 6, 7, 8]);
        soc.mem
            .write_bytes(data + 8, &[1u8, 1, 1, 1, 0xff, 1, 1, 1]);
        let snap = soc.snapshot();
        let r = soc.run(1000).unwrap();
        assert!(r.exit.halted);
        // 1+2+3+4-5+6+7+8 = 26 (weight -1 on the fifth lane).
        assert_eq!(r.exit.exit_code, 26);
        // vsetvli granted the full request: 8 <= VLMAX (32 at e8/256).
        assert_eq!(soc.core.reg(Reg::T1), 8);

        // Roll back and replay: vector state restores deterministically.
        let mut replay = soc.clone();
        replay.restore(&snap);
        assert_eq!(replay.run(1000).unwrap(), r);
    }

    #[test]
    fn stack_usable_at_top_of_l2() {
        let mut a = Asm::new(CODE_BASE);
        a.addi(Reg::Sp, Reg::Sp, -16);
        a.li(Reg::A0, 123);
        a.sw(Reg::A0, 0, Reg::Sp);
        a.li(Reg::A0, 0);
        a.lw(Reg::A0, 0, Reg::Sp);
        a.ecall();
        let prog = a.assemble().unwrap();
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&prog);
        let r = soc.run(1000).unwrap();
        assert_eq!(r.exit.exit_code, 123);
    }
}
