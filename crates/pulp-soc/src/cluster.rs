//! Cluster-side memory primitives: the banked L1 TCDM, the unified
//! L2+L1 address space, and the cluster DMA cost model.
//!
//! The paper's single-core PULPissimo story is a stepping stone to the
//! PULP cluster deployment (PULP-NN): N RI5CY cores sharing a
//! word-interleaved multi-banked L1 scratchpad (TCDM) through a
//! single-cycle logarithmic interconnect, with a cluster DMA moving
//! tiles between L2 and L1 in the background. This module provides the
//! *memory* half of that model — address map, banking arithmetic, the
//! shared image, and DMA transfer costs — while `pulp-cluster` provides
//! the harts, arbitration and event unit on top.
//!
//! Address map (in addition to the single-core map in the crate root):
//!
//! | range | contents |
//! |---|---|
//! | `0x1000_0000 .. +128 kB` | L1 TCDM, word-interleaved over 16 banks |
//! | `0x1020_0000` | event-unit barrier register (write = arrive) |
//! | `0x1c00_0000 .. +512 kB` | L2 (code + source/destination tensors) |

use pulp_asm::Program;

/// Base address of the cluster's L1 TCDM.
pub const TCDM_BASE: u32 = 0x1000_0000;
/// TCDM size: 128 kB, PULP-cluster class.
pub const TCDM_SIZE: u32 = 128 * 1024;
/// Number of word-interleaved TCDM banks.
pub const TCDM_BANKS: usize = 16;
/// Event-unit base address (outside the TCDM range).
pub const EU_BASE: u32 = 0x1020_0000;
/// Barrier-arrival register: a store here means "this hart reached the
/// barrier"; the cluster runner releases all harts once every one has
/// stored.
pub const EU_BARRIER: u32 = EU_BASE;

/// The TCDM bank a word-aligned address maps to (word-interleaved:
/// consecutive words live in consecutive banks).
#[inline]
pub fn tcdm_bank(addr: u32) -> usize {
    ((addr >> 2) as usize) % TCDM_BANKS
}

/// True when `addr..addr+size` lies entirely inside the TCDM.
#[inline]
pub fn in_tcdm(addr: u32, size: u32) -> bool {
    addr >= TCDM_BASE && addr.wrapping_add(size) <= TCDM_BASE + TCDM_SIZE
}

/// The cluster's shared memory image: L2 plus the banked L1 TCDM, with
/// host-side accessors over the unified address space. Bus-level access
/// (with bank accounting and write logging) is layered on top by the
/// per-hart ports in `pulp-cluster`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMem {
    /// The L2 image (same base/size as the single-core SoC).
    pub l2: Vec<u8>,
    /// The L1 TCDM image.
    pub tcdm: Vec<u8>,
}

impl ClusterMem {
    /// Creates a zeroed memory image.
    pub fn new() -> ClusterMem {
        ClusterMem {
            l2: vec![0; crate::L2_SIZE as usize],
            tcdm: vec![0; TCDM_SIZE as usize],
        }
    }

    /// Resolves an address range to (is_tcdm, offset), or `None` when it
    /// falls outside both memories.
    fn resolve(&self, addr: u32, len: u32) -> Option<(bool, usize)> {
        if in_tcdm(addr, len) {
            Some((true, (addr - TCDM_BASE) as usize))
        } else if addr >= crate::L2_BASE
            && addr.wrapping_add(len) <= crate::L2_BASE + crate::L2_SIZE
        {
            Some((false, (addr - crate::L2_BASE) as usize))
        } else {
            None
        }
    }

    /// Host-side bulk write (L2 or TCDM).
    ///
    /// # Panics
    ///
    /// Panics when the range leaves both memories; host staging bugs
    /// should fail loudly.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        match self.resolve(addr, bytes.len() as u32) {
            Some((true, off)) => self.tcdm[off..off + bytes.len()].copy_from_slice(bytes),
            Some((false, off)) => self.l2[off..off + bytes.len()].copy_from_slice(bytes),
            None => panic!("host write outside L2/TCDM: {addr:#010x}"),
        }
    }

    /// Host-side bulk read (L2 or TCDM).
    ///
    /// # Panics
    ///
    /// Panics when the range leaves both memories.
    pub fn read_bytes(&self, addr: u32, len: usize) -> &[u8] {
        match self.resolve(addr, len as u32) {
            Some((true, off)) => &self.tcdm[off..off + len],
            Some((false, off)) => &self.l2[off..off + len],
            None => panic!("host read outside L2/TCDM: {addr:#010x}"),
        }
    }

    /// Host-side 32-bit little-endian read helper.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let b = self.read_bytes(addr, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Host-side 32-bit little-endian write helper.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        self.write_bytes(addr, &value.to_le_bytes());
    }

    /// Loads a program's code and data segments into the image (the
    /// cluster boots from L2, like the single-core SoC).
    ///
    /// # Panics
    ///
    /// Panics when a segment falls outside L2/TCDM.
    pub fn load(&mut self, prog: &Program) {
        for (i, w) in prog.words.iter().enumerate() {
            self.write_bytes(prog.base + (i as u32) * 4, &w.to_le_bytes());
        }
        for (addr, bytes) in &prog.data {
            self.write_bytes(*addr, bytes);
        }
    }

    /// An internal copy over the unified address space — what a DMA
    /// transfer does functionally.
    ///
    /// # Panics
    ///
    /// Panics when either range leaves L2/TCDM.
    pub fn copy(&mut self, src: u32, dst: u32, len: usize) {
        let data = self.read_bytes(src, len).to_vec();
        self.write_bytes(dst, &data);
    }
}

impl Default for ClusterMem {
    fn default() -> Self {
        ClusterMem::new()
    }
}

/// Cost model of the cluster DMA engine.
///
/// The functional side of a transfer is an ordinary memory copy (the
/// DMA has its own TCDM ports, so it never contends with the cores for
/// banks); the timing side charges a fixed programming/setup overhead
/// plus one word per cycle, which is the mchan-class behaviour PULP
/// clusters ship.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaModel {
    /// Cycles to program one transfer (descriptor write + arbitration).
    pub setup_cycles: u64,
    /// Payload bytes moved per cycle once streaming.
    pub bytes_per_cycle: u64,
}

impl Default for DmaModel {
    fn default() -> Self {
        DmaModel {
            setup_cycles: 16,
            bytes_per_cycle: 4,
        }
    }
}

impl DmaModel {
    /// Cycles one transfer of `bytes` payload bytes takes. Zero-byte
    /// transfers are free (no descriptor is programmed).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if bytes == 0 {
            0
        } else {
            self.setup_cycles + bytes.div_ceil(self.bytes_per_cycle)
        }
    }
}

/// One scheduled DMA transfer: functional copy + cycle cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaTransfer {
    /// Source address (L2 or TCDM).
    pub src: u32,
    /// Destination address (L2 or TCDM).
    pub dst: u32,
    /// Payload length in bytes.
    pub bytes: u32,
}

impl DmaTransfer {
    /// Applies the transfer to the shared image.
    pub fn apply(&self, mem: &mut ClusterMem) {
        if self.bytes > 0 {
            mem.copy(self.src, self.dst, self.bytes as usize);
        }
    }

    /// The transfer's cost under `model`.
    pub fn cycles(&self, model: &DmaModel) -> u64 {
        model.transfer_cycles(u64::from(self.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banking_is_word_interleaved() {
        assert_eq!(tcdm_bank(TCDM_BASE), 0);
        assert_eq!(tcdm_bank(TCDM_BASE + 4), 1);
        assert_eq!(tcdm_bank(TCDM_BASE + 4 * TCDM_BANKS as u32), 0);
        // Sub-word accesses within one word hit the same bank.
        assert_eq!(tcdm_bank(TCDM_BASE + 1), tcdm_bank(TCDM_BASE));
    }

    #[test]
    fn unified_address_space_round_trip() {
        let mut m = ClusterMem::new();
        m.write_bytes(TCDM_BASE + 64, &[1, 2, 3, 4]);
        m.write_bytes(crate::L2_BASE + 64, &[5, 6, 7, 8]);
        assert_eq!(m.read_u32(TCDM_BASE + 64), 0x0403_0201);
        assert_eq!(m.read_u32(crate::L2_BASE + 64), 0x0807_0605);
        m.copy(crate::L2_BASE + 64, TCDM_BASE + 128, 4);
        assert_eq!(m.read_u32(TCDM_BASE + 128), 0x0807_0605);
    }

    #[test]
    #[should_panic(expected = "outside L2/TCDM")]
    fn host_access_outside_the_map_panics() {
        let mut m = ClusterMem::new();
        m.write_bytes(EU_BARRIER, &[0]);
    }

    #[test]
    fn dma_cost_is_setup_plus_streaming() {
        let d = DmaModel::default();
        assert_eq!(d.transfer_cycles(0), 0);
        assert_eq!(d.transfer_cycles(4), 16 + 1);
        assert_eq!(d.transfer_cycles(1024), 16 + 256);
        assert_eq!(d.transfer_cycles(5), 16 + 2, "partial words round up");
    }

    #[test]
    fn dma_transfer_applies_and_costs() {
        let mut m = ClusterMem::new();
        m.write_bytes(crate::L2_BASE + 0x100, &[9, 9, 9, 9, 9, 9, 9, 9]);
        let t = DmaTransfer {
            src: crate::L2_BASE + 0x100,
            dst: TCDM_BASE,
            bytes: 8,
        };
        t.apply(&mut m);
        assert_eq!(m.read_bytes(TCDM_BASE, 8), &[9; 8]);
        assert_eq!(t.cycles(&DmaModel::default()), 16 + 2);
    }
}
