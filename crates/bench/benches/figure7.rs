//! Figure 7 — energy-efficiency gain of the extended core over the
//! baseline RI5CY (paper: up to 9×, without hurting 8-bit kernels).

use criterion::{Criterion, black_box};
use xpulpnn::experiments;

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    let fig = experiments::figure7(&m);
    println!("\n{fig}\n");

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("figure7/efficiency_model", |b| {
        b.iter(|| black_box(experiments::figure7(black_box(&m)).rows[2].gain))
    });
    c.final_summary();
}
