//! Figure 7 — energy-efficiency gain of the extended core over the
//! baseline RI5CY (paper: up to 9×, without hurting 8-bit kernels).

use bench::Bench;
use std::hint::black_box;
use xpulpnn::experiments;

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    let fig = experiments::figure7(&m);
    println!("\n{fig}\n");

    Bench::new()
        .samples(20)
        .run("figure7/efficiency_model", || {
            black_box(experiments::figure7(black_box(&m)).rows[2].gain)
        });
}
