//! Figure 9 — energy efficiency across the four platforms (paper: 103×
//! vs STM32L4 and 354× vs STM32H7 on the 2-bit kernel).

use bench::Bench;
use std::hint::black_box;
use xpulpnn::experiments;

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    let fig = experiments::figure9(&m);
    println!("\n{fig}\n");

    Bench::new()
        .samples(20)
        .run("figure9/efficiency_matrix", || {
            black_box(experiments::figure9(black_box(&m)).ratio_vs_h7_w2)
        });
}
