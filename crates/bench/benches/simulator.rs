//! Infrastructure benchmark: how fast is the simulator itself?
//!
//! Reports host-side throughput (simulated instructions per second) for
//! the kernel mix that dominates every experiment, so regressions in the
//! model's own performance are visible.

use criterion::{Criterion, black_box};
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa};

fn main() {
    let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
    let tb = ConvTestbench::new(cfg, 42).expect("build kernel");
    // One run to size the workload.
    let r = tb.run().expect("kernel run");
    let instrs = r.report.perf.instret;
    println!(
        "\nworkload: {} ({} simulated instructions per run)\n",
        cfg.name(),
        instrs
    );

    let mut c = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(8))
        .configure_from_args();
    c.bench_function("simulator/instructions_per_run", |b| {
        b.iter(|| black_box(tb.run().expect("kernel run").report.perf.instret))
    });
    c.final_summary();
    println!("\n(divide {instrs} simulated instructions by the time above for sim MIPS)");
}
