//! Infrastructure benchmark: how fast is the simulator itself?
//!
//! Reports host-side throughput (simulated instructions per second) for
//! the kernel mix that dominates every experiment, so regressions in the
//! model's own performance are visible.

use bench::Bench;
use std::hint::black_box;
use std::time::Duration;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa};

fn main() {
    let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
    let tb = ConvTestbench::new(cfg, 42).expect("build kernel");
    // One run to size the workload.
    let r = tb.run().expect("kernel run");
    let instrs = r.report.perf.instret;
    println!(
        "\nworkload: {} ({} simulated instructions per run)\n",
        cfg.name(),
        instrs
    );

    Bench::new()
        .samples(10)
        .max_time(Duration::from_secs(8))
        .run("simulator/instructions_per_run", || {
            black_box(tb.run().expect("kernel run").report.perf.instret)
        });
    println!("\n(divide {instrs} simulated instructions by the time above for sim MIPS)");
}
