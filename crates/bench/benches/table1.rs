//! Table I — the QNN embedded-platform landscape with the "This Work"
//! row computed from measured throughput/efficiency.

use bench::Bench;
use std::hint::black_box;
use xpulpnn::experiments;

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    println!("\n{}\n", experiments::table1(&m));

    Bench::new().samples(20).run("table1/this_work_row", || {
        black_box(experiments::table1(black_box(&m)).rows.len())
    });
}
