//! Table I — the QNN embedded-platform landscape with the "This Work"
//! row computed from measured throughput/efficiency.

use criterion::{Criterion, black_box};
use xpulpnn::experiments;

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    println!("\n{}\n", experiments::table1(&m));

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("table1/this_work_row", |b| {
        b.iter(|| black_box(experiments::table1(black_box(&m)).rows.len()))
    });
    c.final_summary();
}
