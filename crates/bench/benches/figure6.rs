//! Figure 6 — impact of `pv.qnt` on sub-byte kernel cycles and the
//! near-linear scaling of sub-byte kernels vs 8-bit.
//!
//! Prints the reproduced figure, then benchmarks the four underlying
//! kernel simulations.

use bench::Bench;
use std::hint::black_box;
use std::time::Duration;
use xpulpnn::experiments;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa};

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    println!("\n{}\n", experiments::figure6(&m));

    let b = Bench::new().samples(10).max_time(Duration::from_secs(8));
    for (name, bits, hw) in [
        ("figure6/w4_sw_quant", BitWidth::W4, false),
        ("figure6/w4_pv_qnt", BitWidth::W4, true),
        ("figure6/w2_sw_quant", BitWidth::W2, false),
        ("figure6/w2_pv_qnt", BitWidth::W2, true),
    ] {
        let cfg = ConvKernelConfig::paper(bits, KernelIsa::XpulpNN, hw);
        let tb = ConvTestbench::new(cfg, 42).expect("build kernel");
        b.run(name, || black_box(tb.run().expect("kernel run").cycles()));
    }
}
