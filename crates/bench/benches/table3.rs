//! Table III — area and power of the baseline and extended cores
//! (calibrated model; the tests re-derive every percentage the paper
//! quotes).

use bench::Bench;
use std::hint::black_box;
use xpulpnn::experiments::Table3;
use xpulpnn::pulp_power::{AreaBreakdown, CoreVariant};

fn main() {
    println!("\n{}\n", Table3);

    Bench::new().samples(20).run("table3/area_model", || {
        black_box(AreaBreakdown::of(black_box(CoreVariant::ExtPm)).overhead_vs_baseline())
    });
}
