//! Table III — area and power of the baseline and extended cores
//! (calibrated model; the tests re-derive every percentage the paper
//! quotes).

use criterion::{Criterion, black_box};
use xpulpnn::experiments::Table3;
use xpulpnn::pulp_power::{AreaBreakdown, CoreVariant};

fn main() {
    println!("\n{}\n", Table3);

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("table3/area_model", |b| {
        b.iter(|| {
            black_box(
                AreaBreakdown::of(black_box(CoreVariant::ExtPm)).overhead_vs_baseline(),
            )
        })
    });
    c.final_summary();
}
