//! Figure 8 — execution cycles of the convolution layer on the XpulpNN
//! core, the baseline RI5CY, and the STM32L4/STM32H7 models (paper:
//! 5.3×/8.9× over the baseline, an order of magnitude over the MCUs).

use bench::Bench;
use std::hint::black_box;
use std::time::Duration;
use xpulpnn::cortexm_model::{STM32H743, STM32L476};
use xpulpnn::experiments;
use xpulpnn::qnn::conv::ConvShape;
use xpulpnn::{BitWidth, ConvKernelConfig, ConvTestbench, KernelIsa};

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    println!("\n{}\n", experiments::figure8(&m));

    let b = Bench::new().samples(10).max_time(Duration::from_secs(8));
    // The two headline kernels end to end.
    for (name, bits, isa) in [
        ("figure8/w4_xpulpnn", BitWidth::W4, KernelIsa::XpulpNN),
        (
            "figure8/w4_ri5cy_baseline",
            BitWidth::W4,
            KernelIsa::XpulpV2,
        ),
    ] {
        let cfg = ConvKernelConfig::paper(bits, isa, isa == KernelIsa::XpulpNN);
        let tb = ConvTestbench::new(cfg, 42).expect("build kernel");
        b.run(name, || black_box(tb.run().expect("kernel run").cycles()));
    }
    // The Cortex-M analytic models (cheap, but part of the figure).
    let shape = ConvShape::paper_benchmark();
    b.run("figure8/cortexm_models", || {
        black_box(
            STM32L476.conv_cycles(&shape, BitWidth::W2)
                + STM32H743.conv_cycles(&shape, BitWidth::W2),
        )
    });
}
