//! The quantization unit in isolation (§III-A/§III-B2): `pv.qnt`
//! latency vs the software balanced-tree walk.

use criterion::{Criterion, black_box};
use xpulpnn::experiments;

fn main() {
    let q = experiments::quant_microbench().expect("microbench");
    println!("\n{q}\n");

    let mut c = Criterion::default().sample_size(20).configure_from_args();
    c.bench_function("quant_unit/microbench_programs", |b| {
        b.iter(|| black_box(experiments::quant_microbench().expect("microbench").hw_nibble_pair))
    });
    c.final_summary();
}
