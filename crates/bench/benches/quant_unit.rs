//! The quantization unit in isolation (§III-A/§III-B2): `pv.qnt`
//! latency vs the software balanced-tree walk.

use bench::Bench;
use std::hint::black_box;
use xpulpnn::experiments;

fn main() {
    let q = experiments::quant_microbench().expect("microbench");
    println!("\n{q}\n");

    Bench::new()
        .samples(20)
        .run("quant_unit/microbench_programs", || {
            black_box(
                experiments::quant_microbench()
                    .expect("microbench")
                    .hw_nibble_pair,
            )
        });
}
