//! Ablation: the power-management design (clock gating on the dotp
//! unit's bitwidth regions + operand isolation on the quantization
//! unit, §III-B1/§IV-A) — efficiency with and without PM on every
//! kernel, plus the general-purpose workload the paper uses to show the
//! extension does not tax non-QNN code.

use bench::Bench;
use std::hint::black_box;
use xpulpnn::experiments;
use xpulpnn::pulp_power::{
    efficiency_gmac_s_w, matmul_workload, soc_power_mw, CoreVariant, Workload,
};

fn main() {
    let m = experiments::collect(42).expect("measurement matrix");
    println!("\nAblation — clock gating + operand isolation (paper Table III)\n");
    println!(
        " {:<22} {:>14} {:>14} {:>10}",
        "kernel", "no-PM [GMAC/s/W]", "PM [GMAC/s/W]", "PM gain"
    );
    for (name, lm) in [
        ("8-bit MatMul", &m.w8),
        ("4-bit MatMul (pv.qnt)", &m.w4_nn_hw),
        ("2-bit MatMul (pv.qnt)", &m.w2_nn_hw),
    ] {
        let wl = matmul_workload(lm.cfg.bits.bits());
        let no_pm = efficiency_gmac_s_w(lm.macs, lm.cycles, soc_power_mw(CoreVariant::ExtNoPm, wl));
        let pm = efficiency_gmac_s_w(lm.macs, lm.cycles, soc_power_mw(CoreVariant::ExtPm, wl));
        println!(
            " {:<22} {:>14.1} {:>14.1} {:>9.2}x",
            name,
            no_pm,
            pm,
            pm / no_pm
        );
    }
    let gp_no_pm = soc_power_mw(CoreVariant::ExtNoPm, Workload::GeneralPurpose);
    let gp_pm = soc_power_mw(CoreVariant::ExtPm, Workload::GeneralPurpose);
    let gp_base = soc_power_mw(CoreVariant::Ri5cy, Workload::GeneralPurpose);
    println!(
        "\n general-purpose app power: baseline {gp_base:.2} mW, ext no-PM {gp_no_pm:.2} mW \
         (+{:.1}%), ext PM {gp_pm:.2} mW (+{:.1}%)\n",
        (gp_no_pm - gp_base) / gp_base * 100.0,
        (gp_pm - gp_base) / gp_base * 100.0
    );

    Bench::new()
        .samples(20)
        .run("ablation_pm/efficiency_delta", || {
            let wl = Workload::MatMul2;
            black_box(soc_power_mw(CoreVariant::ExtNoPm, wl) - soc_power_mw(CoreVariant::ExtPm, wl))
        });
}
