#![warn(missing_docs)]

//! Benchmark harness for the reproduction's figure/table binaries.
//!
//! The benches need only "run this closure N times and report wall-clock
//! statistics"; a full statistical framework would pull registry
//! dependencies the offline build cannot resolve, so this crate carries
//! its own minimal stopwatch harness. Each `benches/*.rs` binary prints
//! the reproduced figure or table first, then times the underlying
//! computation with [`Bench`].

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A minimal wall-clock benchmark runner.
///
/// Samples are whole-closure timings; fast closures are batched so each
/// sample spans at least ~1 ms of work, which keeps timer granularity
/// out of the numbers without criterion-style analysis.
#[derive(Debug, Clone)]
pub struct Bench {
    samples: usize,
    max_time: Duration,
}

impl Default for Bench {
    fn default() -> Bench {
        Bench {
            samples: 20,
            max_time: Duration::from_secs(5),
        }
    }
}

impl Bench {
    /// A runner with default settings (20 samples, 5 s budget).
    pub fn new() -> Bench {
        Bench::default()
    }

    /// Sets the number of samples to collect.
    pub fn samples(mut self, n: usize) -> Bench {
        self.samples = n.max(1);
        self
    }

    /// Caps the total measurement time; sampling stops early when the
    /// budget is spent (at least one sample is always taken).
    pub fn max_time(mut self, d: Duration) -> Bench {
        self.max_time = d;
        self
    }

    /// Times `f`, printing mean / min / max per call.
    pub fn run<T, F: FnMut() -> T>(&self, name: &str, mut f: F) {
        // Warm up and calibrate the batch size to ~1 ms per sample.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        let batch = if once >= Duration::from_millis(1) {
            1
        } else {
            (Duration::from_millis(1).as_nanos() / once.as_nanos().max(1) + 1) as usize
        };

        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        let budget = Instant::now();
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(t.elapsed() / batch as u32);
            if budget.elapsed() > self.max_time {
                break;
            }
        }
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        let min = times.iter().min().copied().unwrap_or_default();
        let max = times.iter().max().copied().unwrap_or_default();
        println!(
            " {name:<40} {:>12} mean {:>12} min {:>12} max  ({} samples × {batch})",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            times.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_fast_and_slow_closures() {
        let b = Bench::new().samples(3).max_time(Duration::from_millis(100));
        let mut calls = 0u64;
        b.run("fast", || {
            calls += 1;
            calls
        });
        assert!(calls > 3, "fast closures are batched");
        b.run("slow", || std::thread::sleep(Duration::from_millis(2)));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.500 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
    }
}
