//! Host-side testbench: generates a layer's tensors, builds the kernel,
//! loads the SoC, runs, and checks the device output against the golden
//! model.

use crate::config::{ConvKernelConfig, KernelIsa, QuantMode};
use crate::descriptors::{encode_descriptors, im2col_descriptors};
use crate::emit::build_conv_program;
use crate::layout::LayerLayout;
use pulp_asm::{AsmError, Program};
use pulp_soc::{RunReport, Soc};
use qnn::quantizer::{Quantizer, ThresholdSet};
use qnn::rng::TensorRng;
use qnn::tensor::QuantTensor;
use riscv_core::quant::{eytzinger, tree_stride};
use riscv_core::{IsaConfig, Trap};
use std::fmt;

/// Failed to construct (or, for one-shot helpers, run) a testbench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The kernel configuration is invalid.
    Config(crate::config::ConfigError),
    /// The generator produced un-assemblable code (a generator bug).
    Asm(AsmError),
    /// The simulator trapped while running a one-shot helper.
    Trap(Trap),
    /// A caller-supplied tensor does not fit the configuration (wrong
    /// length, width, out-of-range values, or a missing/superfluous
    /// threshold set).
    Tensor {
        /// What was wrong.
        what: &'static str,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Config(e) => e.fmt(f),
            BuildError::Asm(e) => e.fmt(f),
            BuildError::Trap(t) => t.fmt(f),
            BuildError::Tensor { what } => write!(f, "tensor mismatch: {what}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Result of one verified kernel run.
#[derive(Debug, Clone)]
pub struct ConvRunResult {
    /// Exit status and performance counters.
    pub report: RunReport,
    /// Device output, unpacked to logical values.
    pub output: Vec<i16>,
    /// Golden output from [`qnn::conv::conv2d_quantized`].
    pub golden: Vec<i16>,
    /// Forensic tail of the instruction stream, captured by a traced
    /// re-run when the output mismatches the golden model (`None` on a
    /// clean run).
    pub trace: Option<String>,
}

impl ConvRunResult {
    /// True when the device output matches the golden model bit-exactly.
    pub fn matches(&self) -> bool {
        self.output == self.golden
    }

    /// Total kernel cycles.
    pub fn cycles(&self) -> u64 {
        self.report.perf.cycles
    }

    /// Multiply-accumulates per cycle achieved by the kernel; 0 when no
    /// cycles were recorded (e.g. an immediately-trapping run).
    pub fn macs_per_cycle(&self, cfg: &ConvKernelConfig) -> f64 {
        if self.report.perf.cycles == 0 {
            0.0
        } else {
            cfg.shape.macs() as f64 / self.report.perf.cycles as f64
        }
    }
}

/// A ready-to-run convolution layer: program + synthetic tensors.
#[derive(Debug, Clone)]
pub struct ConvTestbench {
    /// The kernel configuration.
    pub cfg: ConvKernelConfig,
    /// The L2 layout in use.
    pub layout: LayerLayout,
    /// The generated program (inspect `program.listing()` for the code).
    pub program: Program,
    input: QuantTensor,
    weights: QuantTensor,
    thresholds: Option<ThresholdSet>,
    quantizer: Quantizer,
}

impl ConvTestbench {
    /// Builds the kernel and deterministic synthetic tensors for `cfg`.
    ///
    /// # Errors
    ///
    /// [`BuildError`] if the configuration is invalid or the generator
    /// emits un-assemblable code.
    pub fn new(cfg: ConvKernelConfig, seed: u64) -> Result<ConvTestbench, BuildError> {
        cfg.validate().map_err(BuildError::Config)?;
        let layout = LayerLayout::default_for_l2();
        let program = build_conv_program(&cfg, &layout)?;
        let mut rng = TensorRng::new(seed);
        let input = rng.activations(cfg.bits, cfg.shape.input_len());
        let weights = rng.weights(cfg.bits, cfg.shape.weight_len());
        let (thresholds, quantizer) = match cfg.quant {
            QuantMode::Shift8 { shift } => (
                None,
                Quantizer::Shift8 {
                    shift,
                    bias: vec![],
                },
            ),
            QuantMode::SoftwareTree | QuantMode::HardwareQnt => {
                let t = rng.thresholds(cfg.out_bits, cfg.shape.out_c, -2000, 2000);
                (Some(t.clone()), Quantizer::Thresholds(t))
            }
        };
        Ok(ConvTestbench {
            cfg,
            layout,
            program,
            input,
            weights,
            thresholds,
            quantizer,
        })
    }

    /// Builds a testbench around caller-supplied tensors (e.g. to chain
    /// layers: feed one layer's output in as the next layer's input).
    ///
    /// # Errors
    ///
    /// [`BuildError`] for invalid configurations, and
    /// [`BuildError::Tensor`] if tensor lengths or widths do not match
    /// the shape, or if a threshold set is missing/superfluous for the
    /// quantization mode.
    pub fn from_parts(
        cfg: ConvKernelConfig,
        input: QuantTensor,
        weights: QuantTensor,
        thresholds: Option<ThresholdSet>,
    ) -> Result<ConvTestbench, BuildError> {
        cfg.validate().map_err(BuildError::Config)?;
        let tensor_err = |what| Err(BuildError::Tensor { what });
        if input.len() != cfg.shape.input_len() {
            return tensor_err("input length mismatch");
        }
        if weights.len() != cfg.shape.weight_len() {
            return tensor_err("weight length mismatch");
        }
        if input.bits() != cfg.bits {
            return tensor_err("input width mismatch");
        }
        if weights.bits() != cfg.bits {
            return tensor_err("weight width mismatch");
        }
        let layout = LayerLayout::default_for_l2();
        let program = build_conv_program(&cfg, &layout)?;
        let quantizer = match cfg.quant {
            QuantMode::Shift8 { shift } => {
                if thresholds.is_some() {
                    return tensor_err("8-bit kernels take no thresholds");
                }
                Quantizer::Shift8 {
                    shift,
                    bias: vec![],
                }
            }
            QuantMode::SoftwareTree | QuantMode::HardwareQnt => {
                let Some(t) = thresholds.clone() else {
                    return tensor_err("sub-byte kernels need thresholds");
                };
                if t.channels() != cfg.shape.out_c {
                    return tensor_err("threshold channel mismatch");
                }
                Quantizer::Thresholds(t)
            }
        };
        Ok(ConvTestbench {
            cfg,
            layout,
            program,
            input,
            weights,
            thresholds,
            quantizer,
        })
    }

    /// The input tensor this testbench will load.
    pub fn input(&self) -> &QuantTensor {
        &self.input
    }

    /// The packed input image, exactly as staged at `layout.input`.
    pub fn packed_input(&self) -> Vec<u8> {
        self.input.pack()
    }

    /// The packed weight image, exactly as staged at `layout.weights`.
    pub fn packed_weights(&self) -> Vec<u8> {
        self.weights.pack()
    }

    /// The threshold-tree memory image: `channels · stride` bytes with
    /// channel `ch`'s Eytzinger heap at offset `ch · stride` — the same
    /// bytes [`ConvTestbench::stage`] writes at `layout.thresholds`.
    /// `None` for shift-quantized (8-bit) kernels.
    pub fn threshold_image(&self) -> Option<Vec<u8>> {
        let t = self.thresholds.as_ref()?;
        let stride = tree_stride(crate::emit::simd_fmt(self.cfg.out_bits)) as usize;
        let mut image = vec![0u8; t.channels() * stride];
        for ch in 0..t.channels() {
            let heap = eytzinger(t.channel(ch));
            let bytes: Vec<u8> = heap.iter().flat_map(|v| v.to_le_bytes()).collect();
            image[ch * stride..ch * stride + bytes.len()].copy_from_slice(&bytes);
        }
        Some(image)
    }

    /// The core configuration this kernel requires.
    pub fn isa_config(&self) -> IsaConfig {
        match self.cfg.isa {
            KernelIsa::XpulpV2 => IsaConfig::xpulpv2(),
            KernelIsa::XpulpNN => IsaConfig::xpulpnn(),
            KernelIsa::Vector { .. } => IsaConfig::vector(),
        }
    }

    /// Loads program and data into a fresh SoC (carrying a vector unit
    /// of the configured VLEN for the vector backend).
    pub fn stage(&self) -> Soc {
        let mut soc = match self.cfg.isa.vlen_bits() {
            Some(vlen) => Soc::with_vlen(self.isa_config(), vlen),
            None => Soc::new(self.isa_config()),
        };
        soc.load(&self.program);
        soc.mem.write_bytes(self.layout.input, &self.input.pack());
        soc.mem
            .write_bytes(self.layout.weights, &self.weights.pack());
        let descs = im2col_descriptors(&self.cfg, self.layout.input);
        soc.mem
            .write_bytes(self.layout.descriptors, &encode_descriptors(&descs));
        if let Some(t) = &self.thresholds {
            let stride = tree_stride(crate::emit::simd_fmt(self.cfg.out_bits));
            for ch in 0..t.channels() {
                let heap = eytzinger(t.channel(ch));
                let bytes: Vec<u8> = heap.iter().flat_map(|v| v.to_le_bytes()).collect();
                soc.mem
                    .write_bytes(self.layout.thresholds + ch as u32 * stride, &bytes);
            }
        }
        soc
    }

    /// The watchdog budget [`ConvTestbench::run`] uses: generous (every
    /// variant runs well under 40 cycles/MAC), so exhausting it means a
    /// runaway kernel, not a slow one. Public so external drivers (fault
    /// injection, network recovery) apply the same contract.
    pub fn cycle_budget(&self) -> u64 {
        10_000_000 + self.cfg.shape.macs() * 40
    }

    /// Runs the kernel to completion and verifies against the golden
    /// model.
    ///
    /// Failures come with forensics: the simulation is deterministic, so
    /// on a trap or a golden-model mismatch the kernel is re-run with an
    /// execution tracer attached and the tail of the instruction stream
    /// is reported — on stderr for a trap, in [`ConvRunResult::trace`]
    /// for a mismatch. The first (hot) run itself is never traced.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps (a trap always indicates a kernel or
    /// model bug).
    pub fn run(&self) -> Result<ConvRunResult, Trap> {
        let mut soc = self.stage();
        let report = match soc.run(self.cycle_budget()) {
            Ok(r) => r,
            Err(trap) => {
                eprintln!(
                    "kernel {} trapped: {trap}\n{}",
                    self.cfg.name(),
                    self.trace_tail()
                );
                return Err(trap);
            }
        };
        Ok(self.collect(&soc, report))
    }

    /// Runs like [`ConvTestbench::run`] but with the core's
    /// decoded-block fast path enabled (see [`riscv_core::fastpath`]).
    /// Simulated results — output tensor, exit status, every cycle and
    /// event counter — are bit-exact with [`ConvTestbench::run`]; only
    /// host wall-clock differs.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps, like [`ConvTestbench::run`].
    pub fn run_fastpath(&self) -> Result<ConvRunResult, Trap> {
        let mut soc = self.stage();
        soc.enable_fastpath();
        let report = match soc.run(self.cycle_budget()) {
            Ok(r) => r,
            Err(trap) => {
                eprintln!(
                    "kernel {} trapped: {trap}\n{}",
                    self.cfg.name(),
                    self.trace_tail()
                );
                return Err(trap);
            }
        };
        Ok(self.collect(&soc, report))
    }

    /// Runs like [`ConvTestbench::run`] but with an execution tracer
    /// attached for the whole run, returning the tracer alongside the
    /// verified result — the input to hotspot profiling.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps, after dumping the trace tail to
    /// stderr.
    pub fn run_profiled(
        &self,
        ring: usize,
    ) -> Result<(ConvRunResult, Box<riscv_core::ExecTracer>), Trap> {
        let mut soc = self.stage();
        soc.core.attach_tracer(ring);
        let outcome = soc.run(self.cycle_budget());
        let tracer = soc.core.take_tracer().expect("tracer was attached");
        match outcome {
            Ok(report) => Ok((self.collect(&soc, report), tracer)),
            Err(trap) => {
                eprintln!(
                    "kernel {} trapped: {trap}\n{}",
                    self.cfg.name(),
                    tracer.dump_tail()
                );
                Err(trap)
            }
        }
    }

    /// The layer's golden output from the software model — what the
    /// device must produce, and what graceful degradation falls back to.
    pub fn golden(&self) -> Vec<i16> {
        qnn::conv::conv2d_quantized(
            &self.cfg.shape,
            self.input.values(),
            self.weights.values(),
            &self.quantizer,
        )
    }

    /// The golden output for a *caller-supplied* input under this
    /// testbench's weights and quantizer — what a serving worker must
    /// produce for a request carrying that input. The values must
    /// already be range-valid for `cfg.bits` (the serving layer
    /// validates at submit time).
    pub fn golden_for(&self, input: &[i16]) -> Vec<i16> {
        qnn::conv::conv2d_quantized(
            &self.cfg.shape,
            input,
            self.weights.values(),
            &self.quantizer,
        )
    }

    /// Unpacks the device output, runs the golden model, and flags a
    /// mismatch with a forensic re-run. Public so external drivers
    /// (fault injection) can run a staged SoC themselves and still get
    /// a verified result.
    pub fn collect(&self, soc: &Soc, report: RunReport) -> ConvRunResult {
        let out_len = self.cfg.shape.output_len();
        let out_bytes = qnn::tensor::packed_len(self.cfg.out_bits, out_len);
        let packed = soc.mem.read_bytes(self.layout.output, out_bytes);
        let output = qnn::tensor::unpack(self.cfg.out_bits, false, packed, out_len);
        let golden = self.golden();
        let mut result = ConvRunResult {
            report,
            output,
            golden,
            trace: None,
        };
        if !result.matches() {
            result.trace = Some(self.trace_tail());
        }
        result
    }

    /// Re-runs the kernel with an execution tracer attached and returns
    /// the dump of the last retired instructions (plus the trap, if the
    /// run ends in one). The simulator is deterministic, so this
    /// reproduces a failing run exactly.
    pub fn trace_tail(&self) -> String {
        const RING: usize = 64;
        let mut soc = self.stage();
        soc.core.attach_tracer(RING);
        let outcome = soc.run(self.cycle_budget());
        let tracer = soc.core.take_tracer().expect("tracer was attached");
        let mut s = tracer.dump_tail();
        if let Err(trap) = outcome {
            s.push_str(&format!("run ended in trap: {trap}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::conv::ConvShape;
    use qnn::BitWidth;

    /// A small layer exercising padding, multiple channel blocks and
    /// several pixel pairs, sized so in_c·bits is word-aligned at every
    /// width.
    fn small_shape(bits: BitWidth) -> ConvShape {
        let in_c = (32 / bits.bits() as usize) * 2;
        ConvShape {
            in_h: 4,
            in_w: 4,
            in_c,
            out_c: 8,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    fn check(cfg: ConvKernelConfig, seed: u64) -> ConvRunResult {
        let tb = ConvTestbench::new(cfg, seed).unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        let r = tb.run().unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        assert!(r.report.exit.halted, "{} did not halt", cfg.name());
        assert_eq!(r.report.exit.exit_code, 0, "{}", cfg.name());
        if !r.matches() {
            let diffs: Vec<_> = r
                .output
                .iter()
                .zip(&r.golden)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .take(8)
                .collect();
            panic!(
                "{}: output mismatch, first diffs {:?}\n{}",
                cfg.name(),
                diffs,
                r.trace.as_deref().unwrap_or("")
            );
        }
        r
    }

    #[test]
    fn trace_tail_reproduces_the_run() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::HardwareQnt,
        };
        let tb = ConvTestbench::new(cfg, 12).unwrap();
        let tail = tb.trace_tail();
        // The dump ends at the halt and carries disassembly + pc columns.
        assert!(tail.contains("ecall"), "missing halt in:\n{tail}");
        assert!(tail.contains("retired instructions"));
        // A clean run attaches no trace to the result.
        let r = tb.run().unwrap();
        assert!(r.matches());
        assert!(r.trace.is_none());
        // And the per-run ledger balances.
        assert_eq!(r.report.perf.ledger.total(), r.report.perf.cycles);
    }

    #[test]
    fn fastpath_run_is_bit_exact_with_interpreter() {
        for (bits, quant) in [
            (BitWidth::W8, QuantMode::Shift8 { shift: 8 }),
            (BitWidth::W4, QuantMode::HardwareQnt),
            (BitWidth::W4, QuantMode::SoftwareTree),
            (BitWidth::W2, QuantMode::HardwareQnt),
        ] {
            let cfg = ConvKernelConfig {
                shape: small_shape(bits),
                bits,
                out_bits: bits,
                isa: KernelIsa::XpulpNN,
                quant,
            };
            let tb = ConvTestbench::new(cfg, 21).unwrap();
            let interp = tb.run().unwrap();
            let fast = tb.run_fastpath().unwrap();
            assert!(fast.matches(), "{}", cfg.name());
            assert_eq!(interp.report, fast.report, "{}", cfg.name());
            assert_eq!(interp.output, fast.output, "{}", cfg.name());
        }
    }

    /// The Fig. 8 pinned cycle count (4-bit hardware-quantized layer,
    /// standard seed) must hold bit-exactly under the decoded-block
    /// fast path; `faultsim`'s `disarmed_runs_cost_nothing` pins the
    /// same constants for the interpreter.
    #[test]
    fn paper_layer_fastpath_pins_fig8_cycle_count() {
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        let tb = ConvTestbench::new(cfg, 42).unwrap();
        let r = tb.run_fastpath().unwrap();
        assert!(r.matches());
        assert_eq!(r.report.perf.cycles, 1_440_804);
        assert_eq!(r.report.perf.instret, 1_337_750);
        assert_eq!(r.report.perf.ledger.total(), r.report.perf.cycles);
    }

    #[test]
    fn trace_tail_rerun_never_perturbs_caller_observed_counters() {
        // The auto-dump re-run (`trace_tail`) must stage a *fresh* SoC:
        // the perf counters and cycle ledger a caller observes from
        // `run()` have to be identical whether or not a forensic dump
        // fired in between.
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::HardwareQnt,
        };
        let tb = ConvTestbench::new(cfg, 12).unwrap();
        let r1 = tb.run().unwrap();
        let _ = tb.trace_tail(); // simulate a trap-triggered dump
        let r2 = tb.run().unwrap();
        assert_eq!(r1.report.perf, r2.report.perf);
        assert_eq!(r1.report.perf.ledger, r2.report.perf.ledger);
        assert_eq!(r1.report.perf.ledger.total(), r1.report.perf.cycles);
        // Same invariant under the fast path.
        let f1 = tb.run_fastpath().unwrap();
        let _ = tb.trace_tail();
        let f2 = tb.run_fastpath().unwrap();
        assert_eq!(f1.report.perf, f2.report.perf);
        assert_eq!(f1.report.perf, r1.report.perf);
    }

    #[test]
    fn native_w8_small_layer_matches_golden() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W8),
            bits: BitWidth::W8,
            out_bits: BitWidth::W8,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::Shift8 { shift: 8 },
        };
        check(cfg, 11);
    }

    #[test]
    fn native_w4_hwquant_small_layer_matches_golden() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::HardwareQnt,
        };
        check(cfg, 12);
    }

    #[test]
    fn native_w4_swquant_small_layer_matches_golden() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::SoftwareTree,
        };
        check(cfg, 13);
    }

    #[test]
    fn native_w2_hwquant_small_layer_matches_golden() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W2),
            bits: BitWidth::W2,
            out_bits: BitWidth::W2,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::HardwareQnt,
        };
        check(cfg, 14);
    }

    /// Every vector-backend variant, at both comparison VLENs, must be
    /// bit-identical to the golden `qnn` reference — the same contract
    /// the SIMD kernels hold.
    #[test]
    fn vector_small_layers_match_golden_at_both_vlens() {
        for vlen in [128u32, 256] {
            for (bits, quant) in [
                (BitWidth::W8, QuantMode::Shift8 { shift: 8 }),
                (BitWidth::W4, QuantMode::HardwareQnt),
                (BitWidth::W4, QuantMode::SoftwareTree),
                (BitWidth::W2, QuantMode::HardwareQnt),
                (BitWidth::W2, QuantMode::SoftwareTree),
            ] {
                let cfg = ConvKernelConfig {
                    shape: small_shape(bits),
                    bits,
                    out_bits: bits,
                    isa: KernelIsa::vector(vlen),
                    quant,
                };
                check(cfg, 31);
            }
        }
    }

    #[test]
    fn vector_and_simd_backends_agree_bit_exactly() {
        // Same data, same quantizer semantics: the two backends differ
        // only in cycles.
        for bits in [BitWidth::W4, BitWidth::W2] {
            let mk = |isa| ConvKernelConfig {
                shape: small_shape(bits),
                bits,
                out_bits: bits,
                isa,
                quant: QuantMode::HardwareQnt,
            };
            let r_nn = check(mk(KernelIsa::XpulpNN), 33);
            let r_vec = check(mk(KernelIsa::vector(128)), 33);
            assert_eq!(r_nn.output, r_vec.output, "{bits}");
        }
    }

    #[test]
    fn wider_vlen_never_costs_more_cycles() {
        let mk = |vlen| ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::vector(vlen),
            quant: QuantMode::HardwareQnt,
        };
        let r128 = check(mk(128), 35);
        let r256 = check(mk(256), 35);
        assert_eq!(r128.output, r256.output);
        assert!(
            r256.cycles() < r128.cycles(),
            "doubling VLEN must shorten the strip loop: {} vs {}",
            r256.cycles(),
            r128.cycles()
        );
    }

    #[test]
    fn vector_run_charges_the_vector_ledger_buckets() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::vector(128),
            quant: QuantMode::HardwareQnt,
        };
        let tb = ConvTestbench::new(cfg, 36).unwrap();
        let r = tb.run().unwrap();
        assert!(r.matches());
        use riscv_core::perf::CycleClass;
        let ledger = r.report.perf.ledger;
        assert!(ledger.get(CycleClass::VecDot) > 0, "vdot cycles");
        assert!(ledger.get(CycleClass::VecQnt) > 0, "vqnt cycles");
        assert!(ledger.get(CycleClass::VecLoad) > 0, "vle cycles");
        assert!(ledger.get(CycleClass::VecCfg) > 0, "vsetvli cycles");
        assert!(r.report.perf.vec_macs > 0, "vector MACs counted");
        assert_eq!(ledger.total(), r.report.perf.cycles);
        // And the fast path reproduces the run bit-exactly.
        let fast = tb.run_fastpath().unwrap();
        assert_eq!(fast.report, r.report);
        assert_eq!(fast.output, r.output);
    }

    #[test]
    fn baseline_w4_small_layer_matches_golden() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpV2,
            quant: QuantMode::SoftwareTree,
        };
        check(cfg, 15);
    }

    #[test]
    fn baseline_w2_small_layer_matches_golden() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W2),
            bits: BitWidth::W2,
            out_bits: BitWidth::W2,
            isa: KernelIsa::XpulpV2,
            quant: QuantMode::SoftwareTree,
        };
        check(cfg, 16);
    }

    #[test]
    fn baseline_w8_equals_native_w8_cycles() {
        // The 8-bit kernel is identical on both cores (XpulpNN adds
        // nothing at 8 bits).
        let mk = |isa| ConvKernelConfig {
            shape: small_shape(BitWidth::W8),
            bits: BitWidth::W8,
            out_bits: BitWidth::W8,
            isa,
            quant: QuantMode::Shift8 { shift: 8 },
        };
        let r_v2 = check(mk(KernelIsa::XpulpV2), 17);
        let r_nn = check(mk(KernelIsa::XpulpNN), 17);
        assert_eq!(r_v2.cycles(), r_nn.cycles());
        assert_eq!(r_v2.output, r_nn.output);
    }

    #[test]
    fn hw_and_sw_quant_agree_bit_exactly() {
        // Fig. 6's two variants must produce identical tensors — only
        // the cycle count differs.
        let mk = |quant| ConvKernelConfig {
            shape: small_shape(BitWidth::W4),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant,
        };
        let hw = check(mk(QuantMode::HardwareQnt), 18);
        let sw = check(mk(QuantMode::SoftwareTree), 18);
        assert_eq!(hw.output, sw.output);
        assert!(
            hw.cycles() < sw.cycles(),
            "pv.qnt must beat the software tree ({} vs {})",
            hw.cycles(),
            sw.cycles()
        );
    }

    /// Mixed precision (per-layer quantization, the introduction's
    /// motivating use-case): every operand-width → output-width
    /// combination verifies against the golden model.
    #[test]
    fn mixed_precision_all_combinations_match_golden() {
        for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
            for out_bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
                if bits == out_bits {
                    continue; // homogeneous cases covered elsewhere
                }
                let cfg = ConvKernelConfig::mixed(small_shape(bits), bits, out_bits);
                check(cfg, 60 + out_bits.bits() as u64);
            }
        }
    }

    /// Mixed precision with the software tree (works on the baseline ISA
    /// too: thresholding needs no XpulpNN instruction).
    #[test]
    fn mixed_precision_sw_tree_on_baseline() {
        let cfg = ConvKernelConfig {
            shape: small_shape(BitWidth::W8),
            bits: BitWidth::W8,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpV2,
            quant: QuantMode::SoftwareTree,
        };
        check(cfg, 61);
    }

    #[test]
    fn strided_and_rectangular_shapes_match_golden() {
        for bits in [BitWidth::W4, BitWidth::W2] {
            let in_c = (32 / bits.bits() as usize) * 2;
            let shape = ConvShape {
                in_h: 6,
                in_w: 5,
                in_c,
                out_c: 4,
                k_h: 3,
                k_w: 3,
                stride: 2,
                pad: 1,
            };
            // 3×3 output = 9 pixels (odd) -> bump width for even pixels.
            let shape = ConvShape { in_w: 7, ..shape }; // 3×4 = 12 pixels
            let cfg = ConvKernelConfig {
                shape,
                bits,
                out_bits: bits,
                isa: KernelIsa::XpulpNN,
                quant: QuantMode::HardwareQnt,
            };
            check(cfg, 19);
        }
    }
}
