//! Fully-connected (linear) layer kernels — the classifier head of a
//! QNN, structured like one MatMul column: two output neurons per
//! iteration share the input vector, exactly as the paper's 2×2 MatMul
//! shares im2col buffers, so `pv.qnt` again receives two consecutive
//! channels.

use crate::config::{ConfigError, KernelIsa, QuantMode};
use crate::emit::quant::emit_sw_tree_walk;
use crate::emit::simd_fmt;
use crate::layout::LayerLayout;
use crate::runner::BuildError;
use pulp_asm::{Asm, Program};
use pulp_isa::instr::{Instr, LoopIdx};
use pulp_isa::simd::DotSign;
use pulp_isa::Reg::*;
use pulp_soc::{RunReport, Soc};
use qnn::linear::LinearShape;
use qnn::quantizer::{Quantizer, ThresholdSet};
use qnn::rng::TensorRng;
use qnn::tensor::QuantTensor;
use qnn::BitWidth;
use riscv_core::quant::{eytzinger, tree_stride};
use riscv_core::{IsaConfig, Trap};

/// A linear-layer kernel to generate (native packed SIMD; sub-byte
/// widths require the XpulpNN core, as in the convolution kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearKernelConfig {
    /// Layer geometry.
    pub shape: LinearShape,
    /// Operand width.
    pub bits: BitWidth,
    /// Re-quantization path (same rules as convolutions).
    pub quant: QuantMode,
}

impl LinearKernelConfig {
    /// Output neurons per channel-loop iteration.
    pub fn channel_block(&self) -> usize {
        if self.bits == BitWidth::W2 {
            4
        } else {
            2
        }
    }

    /// Checks generator preconditions.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] naming the violated rule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.shape.in_features == 0 {
            return Err(ConfigError::ZeroDimension {
                what: "in_features",
            });
        }
        if self.shape.out_features == 0 {
            return Err(ConfigError::ZeroDimension {
                what: "out_features",
            });
        }
        if !(self.shape.in_features * self.bits.bits() as usize).is_multiple_of(32) {
            return Err(ConfigError::ChannelAlignment {
                in_c: self.shape.in_features,
                bits: self.bits,
            });
        }
        let need = self.channel_block();
        if !self.shape.out_features.is_multiple_of(need) {
            return Err(ConfigError::OutChannelBlocking {
                out_c: self.shape.out_features,
                need,
            });
        }
        let ok = matches!(
            (self.bits, self.quant),
            (BitWidth::W8, QuantMode::Shift8 { .. })
                | (BitWidth::W4 | BitWidth::W2, QuantMode::SoftwareTree)
                | (BitWidth::W4 | BitWidth::W2, QuantMode::HardwareQnt)
        );
        if !ok {
            return Err(ConfigError::QuantMismatch {
                bits: self.bits,
                isa: KernelIsa::XpulpNN,
                quant: self.quant,
            });
        }
        Ok(())
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        format!("linear/{}/{}", self.bits, self.quant)
    }
}

/// Quantizes the pair `(s4, s6)` of consecutive-channel accumulators to
/// the low `2·Q` bits of `dst`.
fn emit_quant_pair(a: &mut Asm, cfg: &LinearKernelConfig, dst: pulp_isa::Reg) {
    let fmt = simd_fmt(cfg.bits);
    let stride = tree_stride(fmt) as i32;
    match cfg.quant {
        QuantMode::HardwareQnt => {
            a.i(Instr::PClip {
                rd: S4,
                rs1: S4,
                bits: 16,
            });
            a.i(Instr::PClip {
                rd: S6,
                rs1: S6,
                bits: 16,
            });
            a.i(Instr::PvInsert {
                fmt: pulp_isa::SimdFmt::Half,
                rd: S4,
                rs1: S6,
                idx: 1,
            });
            a.pv_qnt(fmt, dst, S4, A1);
        }
        QuantMode::SoftwareTree => {
            let q = fmt.bits();
            a.addi(T5, A1, -2);
            emit_sw_tree_walk(a, S4, T5, q);
            a.mv(T6, T1);
            a.addi(T5, A1, stride - 2);
            emit_sw_tree_walk(a, S6, T5, q);
            a.slli(T1, T1, q as i32);
            a.or(dst, T1, T6);
        }
        QuantMode::Shift8 { .. } => unreachable!("validated"),
    }
    a.addi(A1, A1, 2 * stride);
}

/// Builds the linear-layer program.
///
/// # Errors
///
/// [`BuildError::Config`] on invalid configurations (including weight
/// rows too large for the generator's `addi` addressing);
/// [`BuildError::Asm`] for assembler failures (generator bugs).
pub fn build_linear_program(
    cfg: &LinearKernelConfig,
    layout: &LayerLayout,
) -> Result<Program, BuildError> {
    cfg.validate().map_err(BuildError::Config)?;
    let fmt = simd_fmt(cfg.bits);
    let row_bytes = (cfg.shape.in_features * cfg.bits.bits() as usize / 8) as i32;
    let words = row_bytes / 4;
    let blocks = (cfg.shape.out_features / cfg.channel_block()) as i32;
    if row_bytes >= 2048 {
        // The generator addresses the second weight row with a 12-bit
        // `addi`; larger rows need a different addressing scheme.
        return Err(BuildError::Config(ConfigError::TooLarge {
            what: "in_features (weight row exceeds addi range)",
        }));
    }

    let mut a = Asm::new(pulp_soc::CODE_BASE);
    a.li(A0, layout.weights as i32);
    if cfg.bits.is_sub_byte() {
        a.li(A1, layout.thresholds as i32);
    }
    a.li(A3, layout.output as i32);
    a.li(A2, blocks);
    a.label("ch_loop");
    a.jal("mm_block");
    match cfg.bits {
        BitWidth::W8 => {
            let QuantMode::Shift8 { shift } = cfg.quant else {
                unreachable!()
            };
            for acc in [S4, S6] {
                a.srai(T0, acc, shift as i32);
                a.i(Instr::PClipU {
                    rd: T0,
                    rs1: T0,
                    bits: 9,
                });
                a.p_sb_postinc(T0, 1, A3);
            }
        }
        BitWidth::W4 => {
            emit_quant_pair(&mut a, cfg, T0);
            a.p_sb_postinc(T0, 1, A3);
        }
        BitWidth::W2 => {
            emit_quant_pair(&mut a, cfg, Sp);
            a.jal("mm_block");
            emit_quant_pair(&mut a, cfg, T0);
            a.slli(T0, T0, 4);
            a.or(T0, T0, Sp);
            a.p_sb_postinc(T0, 1, A3);
        }
    }
    a.addi(A2, A2, -1);
    a.bne(A2, Zero, "ch_loop");
    a.li(A0, 0);
    a.ecall();

    // Two consecutive output neurons against the shared input vector.
    a.label("mm_block");
    a.mv(S0, A0);
    a.addi(S1, A0, row_bytes);
    a.li(S2, layout.input as i32);
    a.li(S4, 0);
    a.li(S6, 0);
    a.li(T6, words);
    a.lp_setup(LoopIdx::L0, T6, "mm_end");
    a.p_lw_postinc(T0, 4, S0);
    a.p_lw_postinc(T1, 4, S1);
    a.p_lw_postinc(T2, 4, S2);
    a.pv_sdot(fmt, DotSign::UnsignedSigned, S4, T2, T0);
    a.pv_sdot(fmt, DotSign::UnsignedSigned, S6, T2, T1);
    a.label("mm_end");
    a.mv(A0, S1);
    a.ret();

    a.assemble().map_err(BuildError::Asm)
}

/// Result of a verified linear run.
#[derive(Debug, Clone)]
pub struct LinearRunResult {
    /// Exit status + counters.
    pub report: RunReport,
    /// Device output (logical values).
    pub output: Vec<i16>,
    /// Golden output.
    pub golden: Vec<i16>,
}

impl LinearRunResult {
    /// Device output equals the golden model.
    pub fn matches(&self) -> bool {
        self.output == self.golden
    }

    /// Kernel cycles.
    pub fn cycles(&self) -> u64 {
        self.report.perf.cycles
    }
}

/// A ready-to-run linear layer with synthetic tensors.
#[derive(Debug, Clone)]
pub struct LinearTestbench {
    /// Configuration.
    pub cfg: LinearKernelConfig,
    /// Generated program.
    pub program: Program,
    layout: LayerLayout,
    input: QuantTensor,
    weights: QuantTensor,
    thresholds: Option<ThresholdSet>,
    quantizer: Quantizer,
}

impl LinearTestbench {
    /// Builds the kernel and deterministic synthetic tensors.
    ///
    /// # Errors
    ///
    /// [`BuildError`] on invalid configurations or emitter bugs.
    pub fn new(cfg: LinearKernelConfig, seed: u64) -> Result<LinearTestbench, BuildError> {
        cfg.validate().map_err(BuildError::Config)?;
        let layout = LayerLayout::default_for_l2();
        let program = build_linear_program(&cfg, &layout)?;
        let mut rng = TensorRng::new(seed);
        let input = rng.activations(cfg.bits, cfg.shape.in_features);
        let weights = rng.weights(cfg.bits, cfg.shape.weight_len());
        let (thresholds, quantizer) = match cfg.quant {
            QuantMode::Shift8 { shift } => (
                None,
                Quantizer::Shift8 {
                    shift,
                    bias: vec![],
                },
            ),
            _ => {
                let t = rng.thresholds(cfg.bits, cfg.shape.out_features, -1200, 1200);
                (Some(t.clone()), Quantizer::Thresholds(t))
            }
        };
        Ok(LinearTestbench {
            cfg,
            program,
            layout,
            input,
            weights,
            thresholds,
            quantizer,
        })
    }

    /// The watchdog budget [`LinearTestbench::run`] applies.
    pub fn cycle_budget(&self) -> u64 {
        50_000_000
    }

    /// Runs and verifies against [`qnn::linear::linear_quantized`].
    ///
    /// # Errors
    ///
    /// Propagates simulator traps.
    pub fn run(&self) -> Result<LinearRunResult, Trap> {
        match self.run_with_input(self.input.values()) {
            Ok(r) => Ok(r),
            Err(BuildError::Trap(t)) => Err(t),
            // The testbench's own tensors always fit the configuration.
            Err(e) => unreachable!("self-generated tensors rejected: {e}"),
        }
    }

    /// Loads the program, caller-supplied activations, weights and
    /// threshold trees into a fresh SoC, ready to run.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] if `input` has the wrong length or
    /// out-of-range values.
    pub fn stage_with_input(&self, input: &[i16]) -> Result<Soc, BuildError> {
        if input.len() != self.cfg.shape.in_features {
            return Err(BuildError::Tensor {
                what: "input length mismatch",
            });
        }
        let tensor = QuantTensor::activations(self.cfg.bits, input.to_vec()).map_err(|_| {
            BuildError::Tensor {
                what: "input outside the activation range",
            }
        })?;
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&self.program);
        soc.mem.write_bytes(self.layout.input, &tensor.pack());
        soc.mem
            .write_bytes(self.layout.weights, &self.weights.pack());
        if let Some(t) = &self.thresholds {
            let stride = tree_stride(simd_fmt(self.cfg.bits));
            for ch in 0..t.channels() {
                let bytes: Vec<u8> = eytzinger(t.channel(ch))
                    .iter()
                    .flat_map(|v| v.to_le_bytes())
                    .collect();
                soc.mem
                    .write_bytes(self.layout.thresholds + ch as u32 * stride, &bytes);
            }
        }
        Ok(soc)
    }

    /// Unpacks the device output of a staged run and pairs it with the
    /// golden model for `input`.
    pub fn collect(&self, soc: &Soc, report: RunReport, input: &[i16]) -> LinearRunResult {
        let out_len = self.cfg.shape.out_features;
        let packed = soc.mem.read_bytes(
            self.layout.output,
            qnn::tensor::packed_len(self.cfg.bits, out_len),
        );
        let output = qnn::tensor::unpack(self.cfg.bits, false, packed, out_len);
        let golden = self.golden(input);
        LinearRunResult {
            report,
            output,
            golden,
        }
    }

    /// The golden software-model output for `input`.
    pub fn golden(&self, input: &[i16]) -> Vec<i16> {
        qnn::linear::linear_quantized(
            &self.cfg.shape,
            input,
            self.weights.values(),
            &self.quantizer,
        )
    }

    /// Runs with caller-supplied activations, e.g. to chain layers.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] for unusable inputs; [`BuildError::Trap`]
    /// for simulator traps.
    pub fn run_with_input(&self, input: &[i16]) -> Result<LinearRunResult, BuildError> {
        let mut soc = self.stage_with_input(input)?;
        let report = soc.run(self.cycle_budget()).map_err(BuildError::Trap)?;
        Ok(self.collect(&soc, report, input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(cfg: LinearKernelConfig, seed: u64) -> LinearRunResult {
        let tb = LinearTestbench::new(cfg, seed).unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        let r = tb.run().unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        assert!(r.report.exit.halted);
        assert!(
            r.matches(),
            "{}: {:?} vs {:?}",
            cfg.name(),
            &r.output[..4],
            &r.golden[..4]
        );
        r
    }

    #[test]
    fn linear_w8() {
        let cfg = LinearKernelConfig {
            shape: LinearShape {
                in_features: 64,
                out_features: 10 * 2,
            },
            bits: BitWidth::W8,
            quant: QuantMode::Shift8 { shift: 8 },
        };
        check(cfg, 41);
    }

    #[test]
    fn linear_w4_both_quant_paths_agree() {
        let shape = LinearShape {
            in_features: 128,
            out_features: 16,
        };
        let hw = check(
            LinearKernelConfig {
                shape,
                bits: BitWidth::W4,
                quant: QuantMode::HardwareQnt,
            },
            42,
        );
        let sw = check(
            LinearKernelConfig {
                shape,
                bits: BitWidth::W4,
                quant: QuantMode::SoftwareTree,
            },
            42,
        );
        assert_eq!(hw.output, sw.output);
        assert!(hw.cycles() < sw.cycles());
    }

    #[test]
    fn linear_w2() {
        let cfg = LinearKernelConfig {
            shape: LinearShape {
                in_features: 256,
                out_features: 8,
            },
            bits: BitWidth::W2,
            quant: QuantMode::HardwareQnt,
        };
        let r = check(cfg, 43);
        // 16 MACs per pv.sdotusp.c, 5 instructions per word pair-block.
        assert!(r.report.perf.dotp[3] > 0);
    }

    #[test]
    fn linear_validation() {
        let bad = LinearKernelConfig {
            shape: LinearShape {
                in_features: 6,
                out_features: 4,
            },
            bits: BitWidth::W4,
            quant: QuantMode::HardwareQnt,
        };
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::ChannelAlignment { .. })
        ));
        let odd = LinearKernelConfig {
            shape: LinearShape {
                in_features: 8,
                out_features: 3,
            },
            bits: BitWidth::W8,
            quant: QuantMode::Shift8 { shift: 8 },
        };
        assert!(matches!(
            odd.validate(),
            Err(ConfigError::OutChannelBlocking { .. })
        ));
    }

    #[test]
    fn linear_throughput_scales_with_width() {
        let mk = |bits, quant| LinearKernelConfig {
            shape: LinearShape {
                in_features: 512,
                out_features: 32,
            },
            bits,
            quant,
        };
        let w8 = check(mk(BitWidth::W8, QuantMode::Shift8 { shift: 8 }), 44).cycles();
        let w4 = check(mk(BitWidth::W4, QuantMode::HardwareQnt), 44).cycles();
        let w2 = check(mk(BitWidth::W2, QuantMode::HardwareQnt), 44).cycles();
        assert!(w4 < w8, "4-bit FC faster than 8-bit ({w4} vs {w8})");
        assert!(w2 < w4, "2-bit FC faster than 4-bit ({w2} vs {w4})");
    }
}
