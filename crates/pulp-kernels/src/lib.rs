#![warn(missing_docs)]

//! PULP-NN-style QNN kernels for the XpulpNN core simulator.
//!
//! This crate is the reproduction of the kernel library the paper
//! benchmarks (§IV): quantized convolutions implemented as
//! **im2col + MatMul** (the ARM/PULP execution model of §II-2), generated
//! as hand-scheduled assembly for every point of the evaluation matrix:
//!
//! | operands | ISA | MatMul inner loop | re-quantization |
//! |---|---|---|---|
//! | 8-bit | XpulpV2/XpulpNN | `pv.sdotusp.b`, 2×2 blocking | shift + clip |
//! | 4-bit | XpulpNN | `pv.sdotusp.n` on packed nibbles | `pv.qnt.n` **or** software tree |
//! | 2-bit | XpulpNN | `pv.sdotusp.c` on packed crumbs | `pv.qnt.c` **or** software tree |
//! | 4-bit | XpulpV2 (baseline) | unpack to 8-bit (shuffle-based), `pv.sdotusp.b` | software tree |
//! | 2-bit | XpulpV2 (baseline) | two-stage unpack to 8-bit, `pv.sdotusp.b` | software tree |
//!
//! The 2×2 MatMul blocking follows the paper exactly: weights from two
//! consecutive filters × activations from two im2col buffers, so each
//! inner-loop iteration feeds four accumulators, and the two per-pixel
//! accumulators handed to `pv.qnt` belong to *consecutive output
//! channels* — matching the quantization unit's hard-wired second-tree
//! offset.
//!
//! The im2col phase is descriptor-driven: the host (playing the role of
//! the compiler's static address computation) emits one `(src, pre,
//! copy, post)` run descriptor per kernel row, and the device walks them
//! with word copies — the baseline sub-byte variants fuse the
//! unpack-to-8-bit into this copy, exactly as PULP-NN's `im2col_u4_to_u8`
//! does.
//!
//! Start from [`ConvKernelConfig`] and [`runner::ConvTestbench`]; the
//! tests in this crate verify every variant bit-exactly against the
//! golden [`qnn::conv`] models.

pub mod cluster;
pub mod config;
pub mod depthwise;
pub mod descriptors;
pub mod emit;
pub mod layout;
pub mod linear;
pub mod pool;
pub mod runner;

pub use config::{ConvKernelConfig, KernelIsa, QuantMode};
pub use layout::LayerLayout;
pub use runner::{BuildError, ConvRunResult, ConvTestbench};
