//! Depthwise convolution kernels (8-bit operands).
//!
//! Depthwise layers have no cross-channel accumulation, so the packed
//! dot-product unit — which reduces *across* lanes — cannot help: the
//! kernel runs scalar `lbu`/`lb` + `p.mac` per tap. This reproduces the
//! well-known result that depthwise-separable blocks (MobileNetV1, the
//! paper's motivating network) are memory/ILP-bound on these cores and
//! run at a fraction of the MatMul kernels' MAC/cycle.
//!
//! Implementation notes:
//!
//! * the host **pre-pads** the input tensor (zero halo), so the device
//!   loop has no border conditionals — a standard embedded-deployment
//!   layout choice;
//! * weights are channel-major `w[c][ky][kx]` signed bytes;
//! * re-quantization is shift+clamp to 8-bit (depthwise stages in
//!   MobileNet-style networks keep 8-bit activations between the
//!   sub-byte pointwise stages).

use crate::config::{ConfigError, KernelIsa, QuantMode};
use crate::layout::LayerLayout;
use crate::runner::BuildError;
use pulp_asm::{Asm, Program};
use pulp_isa::instr::{Instr, LoadKind};
use pulp_isa::Reg::*;
use pulp_soc::{RunReport, Soc};
use qnn::depthwise::DepthwiseShape;
use qnn::quantizer::Quantizer;
use qnn::rng::TensorRng;
use qnn::tensor::QuantTensor;
use qnn::BitWidth;
use riscv_core::{IsaConfig, Trap};

/// A depthwise kernel to generate (8-bit operands and outputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthwiseKernelConfig {
    /// Layer geometry.
    pub shape: DepthwiseShape,
    /// Right-shift of the shift+clamp re-quantization.
    pub shift: u32,
}

impl DepthwiseKernelConfig {
    /// Checks generator preconditions (tap offsets must fit the 12-bit
    /// load immediates of the unrolled window).
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroDimension`] for degenerate shapes,
    /// [`ConfigError::Window`] for unsupported window sizes (only 1×1
    /// and 3×3), and [`ConfigError::TooLarge`] when the largest tap
    /// offset exceeds the immediate range (the remedy is fewer
    /// channels).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let s = self.shape;
        for (what, dim) in [
            ("in_h", s.in_h),
            ("in_w", s.in_w),
            ("c", s.c),
            ("stride", s.stride),
        ] {
            if dim == 0 {
                return Err(ConfigError::ZeroDimension { what });
            }
        }
        if !matches!(s.k, 1 | 3) {
            return Err(ConfigError::Window {
                k: s.k,
                stride: s.stride,
            });
        }
        let padded_w = s.in_w + 2 * s.pad;
        let max_off = ((s.k - 1) * padded_w + (s.k - 1)) * s.c;
        if max_off >= 2048 {
            return Err(ConfigError::TooLarge {
                what: "c (tap offset exceeds the load immediate range)",
            });
        }
        Ok(())
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        format!(
            "depthwise/{}x{}/c{}",
            self.shape.k, self.shape.k, self.shape.c
        )
    }
}

/// Builds the depthwise program over the pre-padded input at
/// `layout.input`.
///
/// # Errors
///
/// [`BuildError::Config`] on invalid configurations;
/// [`BuildError::Asm`] for assembler failures (generator bugs).
pub fn build_depthwise_program(
    cfg: &DepthwiseKernelConfig,
    layout: &LayerLayout,
) -> Result<Program, BuildError> {
    cfg.validate().map_err(BuildError::Config)?;
    let s = cfg.shape;
    let padded_w = (s.in_w + 2 * s.pad) as i32;
    let c = s.c as i32;
    let taps = s.k * s.k;

    let mut a = Asm::new(pulp_soc::CODE_BASE);
    a.li(A3, layout.output as i32);
    a.li(S1, layout.weights as i32); // channel-major weight base
    a.li(A1, layout.input as i32); // padded input, row base
    a.li(A7, s.out_h() as i32);
    a.label("oy_loop");
    a.mv(T2, A1); // pixel base within the row
    a.li(A2, s.out_w() as i32);
    a.label("ox_loop");
    a.mv(T5, T2); // channel walker (input)
    a.mv(T4, S1); // weight walker
    a.li(T3, c);
    a.label("ch_loop");
    a.li(S4, 0);
    for ky in 0..s.k {
        for kx in 0..s.k {
            let off = ((ky as i32) * padded_w + kx as i32) * c;
            a.i(Instr::Load {
                kind: LoadKind::ByteU,
                rd: T0,
                rs1: T5,
                offset: off,
            });
            a.i(Instr::Load {
                kind: LoadKind::Byte,
                rd: T1,
                rs1: T4,
                offset: (ky * s.k + kx) as i32,
            });
            a.i(Instr::PMac {
                rd: S4,
                rs1: T0,
                rs2: T1,
            });
        }
    }
    a.srai(T0, S4, cfg.shift as i32);
    a.i(Instr::PClipU {
        rd: T0,
        rs1: T0,
        bits: 9,
    });
    a.p_sb_postinc(T0, 1, A3);
    a.addi(T5, T5, 1);
    a.addi(T4, T4, taps as i32);
    a.addi(T3, T3, -1);
    a.bne(T3, Zero, "ch_loop");
    a.addi(T2, T2, (s.stride as i32) * c);
    a.addi(A2, A2, -1);
    a.bne(A2, Zero, "ox_loop");
    // Next output row: advance by stride input rows.
    for _ in 0..s.stride {
        a.addi(A1, A1, padded_w * c);
    }
    a.addi(A7, A7, -1);
    a.bne(A7, Zero, "oy_loop");
    a.li(A0, 0);
    a.ecall();
    a.assemble().map_err(BuildError::Asm)
}

/// Pads an HWC tensor with a zero halo of `pad` pixels on each side.
pub fn pad_input(shape: &DepthwiseShape, values: &[i16]) -> Vec<i16> {
    let (h, w, c, p) = (shape.in_h, shape.in_w, shape.c, shape.pad);
    let (ph, pw) = (h + 2 * p, w + 2 * p);
    let mut out = vec![0i16; ph * pw * c];
    for y in 0..h {
        for x in 0..w {
            let src = (y * w + x) * c;
            let dst = ((y + p) * pw + (x + p)) * c;
            out[dst..dst + c].copy_from_slice(&values[src..src + c]);
        }
    }
    out
}

/// Result of a verified depthwise run.
#[derive(Debug, Clone)]
pub struct DepthwiseRunResult {
    /// Exit status + counters.
    pub report: RunReport,
    /// Device output.
    pub output: Vec<i16>,
    /// Golden output.
    pub golden: Vec<i16>,
}

impl DepthwiseRunResult {
    /// Device output equals the golden model.
    pub fn matches(&self) -> bool {
        self.output == self.golden
    }

    /// Kernel cycles.
    pub fn cycles(&self) -> u64 {
        self.report.perf.cycles
    }

    /// MAC throughput.
    pub fn macs_per_cycle(&self, cfg: &DepthwiseKernelConfig) -> f64 {
        cfg.shape.macs() as f64 / self.cycles() as f64
    }
}

/// A ready-to-run depthwise layer.
#[derive(Debug, Clone)]
pub struct DepthwiseTestbench {
    /// Configuration.
    pub cfg: DepthwiseKernelConfig,
    /// Generated program.
    pub program: Program,
    layout: LayerLayout,
    input: QuantTensor,
    weights: QuantTensor,
}

impl DepthwiseTestbench {
    /// Builds the kernel and deterministic synthetic tensors.
    ///
    /// # Errors
    ///
    /// [`BuildError`] on invalid configurations or emitter bugs.
    pub fn new(cfg: DepthwiseKernelConfig, seed: u64) -> Result<DepthwiseTestbench, BuildError> {
        cfg.validate().map_err(BuildError::Config)?;
        let layout = LayerLayout::default_for_l2();
        let program = build_depthwise_program(&cfg, &layout)?;
        let mut rng = TensorRng::new(seed);
        let input = rng.activations(BitWidth::W8, cfg.shape.input_len());
        let weights = rng.weights(BitWidth::W8, cfg.shape.weight_len());
        Ok(DepthwiseTestbench {
            cfg,
            program,
            layout,
            input,
            weights,
        })
    }

    /// The watchdog budget [`DepthwiseTestbench::run`] applies.
    pub fn cycle_budget(&self) -> u64 {
        100_000_000
    }

    /// Runs and verifies against [`qnn::depthwise::depthwise_quantized`].
    ///
    /// # Errors
    ///
    /// Propagates simulator traps.
    pub fn run(&self) -> Result<DepthwiseRunResult, Trap> {
        match self.run_with_input(self.input.values()) {
            Ok(r) => Ok(r),
            Err(BuildError::Trap(t)) => Err(t),
            // The testbench's own tensors always fit the configuration.
            Err(e) => unreachable!("self-generated tensors rejected: {e}"),
        }
    }

    /// Loads the program, the pre-padded caller-supplied activations and
    /// the weights into a fresh SoC, ready to run.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] if `input` has the wrong length or
    /// out-of-range values.
    pub fn stage_with_input(&self, input: &[i16]) -> Result<Soc, BuildError> {
        if input.len() != self.cfg.shape.input_len() {
            return Err(BuildError::Tensor {
                what: "input length mismatch",
            });
        }
        if !input.iter().all(|&v| (0..=255).contains(&v)) {
            return Err(BuildError::Tensor {
                what: "depthwise inputs are unsigned 8-bit",
            });
        }
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&self.program);
        let padded = pad_input(&self.cfg.shape, input);
        let padded_bytes: Vec<u8> = padded.iter().map(|&v| v as u8).collect();
        soc.mem.write_bytes(self.layout.input, &padded_bytes);
        soc.mem
            .write_bytes(self.layout.weights, &self.weights.pack());
        Ok(soc)
    }

    /// Unpacks the device output of a staged run and pairs it with the
    /// golden model for `input`.
    pub fn collect(&self, soc: &Soc, report: RunReport, input: &[i16]) -> DepthwiseRunResult {
        let out_len = self.cfg.shape.output_len();
        let output: Vec<i16> = soc
            .mem
            .read_bytes(self.layout.output, out_len)
            .iter()
            .map(|&b| b as i16)
            .collect();
        DepthwiseRunResult {
            report,
            output,
            golden: self.golden(input),
        }
    }

    /// The golden software-model output for `input`.
    pub fn golden(&self, input: &[i16]) -> Vec<i16> {
        let quantizer = Quantizer::Shift8 {
            shift: self.cfg.shift,
            bias: vec![],
        };
        qnn::depthwise::depthwise_quantized(
            &self.cfg.shape,
            input,
            self.weights.values(),
            &quantizer,
        )
    }

    /// Runs with caller-supplied activations (same weights), e.g. to
    /// chain layers in a network.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] for unusable inputs; [`BuildError::Trap`]
    /// for simulator traps.
    pub fn run_with_input(&self, input: &[i16]) -> Result<DepthwiseRunResult, BuildError> {
        let mut soc = self.stage_with_input(input)?;
        let report = soc.run(self.cycle_budget()).map_err(BuildError::Trap)?;
        Ok(self.collect(&soc, report, input))
    }
}

/// The ISA this kernel runs on — XpulpV2 suffices (scalar MACs only);
/// exposed for symmetry with the other testbenches.
pub fn required_isa() -> KernelIsa {
    KernelIsa::XpulpV2
}

/// The quantization mode the kernel hard-codes.
pub fn quant_mode(cfg: &DepthwiseKernelConfig) -> QuantMode {
    QuantMode::Shift8 { shift: cfg.shift }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(cfg: DepthwiseKernelConfig, seed: u64) -> DepthwiseRunResult {
        let tb =
            DepthwiseTestbench::new(cfg, seed).unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        let r = tb.run().unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        assert!(r.report.exit.halted);
        assert!(
            r.matches(),
            "{}: {:?} vs {:?}",
            cfg.name(),
            &r.output[..6.min(r.output.len())],
            &r.golden[..6.min(r.golden.len())]
        );
        r
    }

    #[test]
    fn depthwise_3x3_matches_golden() {
        let cfg = DepthwiseKernelConfig {
            shape: DepthwiseShape {
                in_h: 8,
                in_w: 8,
                c: 16,
                k: 3,
                stride: 1,
                pad: 1,
            },
            shift: 7,
        };
        let r = check(cfg, 51);
        // Depthwise is scalar-bound: well under 1 MAC/cycle.
        let mpc = r.macs_per_cycle(&cfg);
        assert!((0.1..0.6).contains(&mpc), "depthwise at {mpc:.2} MAC/cycle");
    }

    #[test]
    fn depthwise_strided_and_1x1() {
        check(
            DepthwiseKernelConfig {
                shape: DepthwiseShape {
                    in_h: 8,
                    in_w: 8,
                    c: 8,
                    k: 3,
                    stride: 2,
                    pad: 1,
                },
                shift: 6,
            },
            52,
        );
        check(
            DepthwiseKernelConfig {
                shape: DepthwiseShape {
                    in_h: 5,
                    in_w: 7,
                    c: 4,
                    k: 1,
                    stride: 1,
                    pad: 0,
                },
                shift: 4,
            },
            53,
        );
    }

    #[test]
    fn depthwise_is_far_slower_per_mac_than_matmul() {
        // The reproduction's version of the depthwise bottleneck:
        // compare MAC rates of a depthwise 3x3 and the 8-bit MatMul conv.
        let dw = check(
            DepthwiseKernelConfig {
                shape: DepthwiseShape {
                    in_h: 8,
                    in_w: 8,
                    c: 16,
                    k: 3,
                    stride: 1,
                    pad: 1,
                },
                shift: 7,
            },
            54,
        );
        let dw_rate = dw.macs_per_cycle(&DepthwiseKernelConfig {
            shape: DepthwiseShape {
                in_h: 8,
                in_w: 8,
                c: 16,
                k: 3,
                stride: 1,
                pad: 1,
            },
            shift: 7,
        });
        assert!(
            dw_rate < 1.0,
            "depthwise cannot use the dotp unit ({dw_rate:.2})"
        );
    }

    #[test]
    fn pad_input_places_halo() {
        let s = DepthwiseShape {
            in_h: 2,
            in_w: 2,
            c: 1,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let p = pad_input(&s, &[1, 2, 3, 4]);
        assert_eq!(p.len(), 16);
        assert_eq!(p[5], 1);
        assert_eq!(p[6], 2);
        assert_eq!(p[9], 3);
        assert_eq!(p[10], 4);
        assert_eq!(p.iter().filter(|&&v| v == 0).count(), 12);
    }

    #[test]
    fn too_many_channels_rejected() {
        let cfg = DepthwiseKernelConfig {
            shape: DepthwiseShape {
                in_h: 16,
                in_w: 16,
                c: 64,
                k: 3,
                stride: 1,
                pad: 1,
            },
            shift: 7,
        };
        assert!(
            cfg.validate().is_err(),
            "tap offsets exceed the load immediate"
        );
    }
}
