//! Host-side im2col run descriptors.
//!
//! One descriptor per kernel row per output pixel: because activations
//! are HWC, the `k_w · in_c` window elements of one kernel row are a
//! single contiguous byte run in the packed input, possibly clipped by
//! zero padding at the borders. The host (standing in for the compiler's
//! static address arithmetic) emits `(src, pre, copy, post)` byte counts
//! and the device executes them with word copies — see
//! [`crate::emit::im2col`].

use crate::config::ConvKernelConfig;
use crate::layout::LayerLayout;

/// One contiguous im2col run: zero `pre` bytes, copy `copy` bytes from
/// `src`, zero `post` bytes. All counts are in *packed input* bytes and
/// are word multiples (guaranteed by
/// [`ConvKernelConfig::validate`]'s channel-alignment rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDesc {
    /// Source byte address in the packed input (0 for all-zero runs).
    pub src: u32,
    /// Leading zero bytes (left padding).
    pub pre: u16,
    /// Copied bytes.
    pub copy: u16,
    /// Trailing zero bytes (right padding).
    pub post: u16,
}

/// Encoded descriptor size in bytes.
pub const DESC_BYTES: u32 = 12;

impl RunDesc {
    /// Serializes to the 12-byte on-device format
    /// `{src: u32, pre: u16, copy: u16, post: u16, pad: u16}`.
    pub fn encode(&self) -> [u8; 12] {
        let mut out = [0u8; 12];
        out[0..4].copy_from_slice(&self.src.to_le_bytes());
        out[4..6].copy_from_slice(&self.pre.to_le_bytes());
        out[6..8].copy_from_slice(&self.copy.to_le_bytes());
        out[8..10].copy_from_slice(&self.post.to_le_bytes());
        out
    }
}

/// Generates the descriptor stream for the whole layer: for each output
/// pixel in row-major order, `k_h` descriptors.
pub fn im2col_descriptors(cfg: &ConvKernelConfig, input_addr: u32) -> Vec<RunDesc> {
    let s = &cfg.shape;
    let bits = cfg.bits.bits() as usize;
    let in_c_bytes = s.in_c * bits / 8;
    let run_bytes = LayerLayout::run_bytes(cfg) as usize;
    let mut out = Vec::with_capacity(s.pixels() * s.k_h);
    for oy in 0..s.out_h() {
        for ox in 0..s.out_w() {
            for ky in 0..s.k_h {
                let y = (oy * s.stride + ky) as isize - s.pad as isize;
                if y < 0 || y >= s.in_h as isize {
                    out.push(RunDesc {
                        src: 0,
                        pre: run_bytes as u16,
                        copy: 0,
                        post: 0,
                    });
                    continue;
                }
                let x0 = (ox * s.stride) as isize - s.pad as isize;
                let lead = (-x0).max(0) as usize;
                let trail = (x0 + s.k_w as isize - s.in_w as isize).max(0) as usize;
                let copy_px = s.k_w - lead - trail;
                let src_px = (y as usize) * s.in_w + (x0 + lead as isize) as usize;
                out.push(RunDesc {
                    src: input_addr + (src_px * in_c_bytes) as u32,
                    pre: (lead * in_c_bytes) as u16,
                    copy: (copy_px * in_c_bytes) as u16,
                    post: (trail * in_c_bytes) as u16,
                });
            }
        }
    }
    out
}

/// Serializes a descriptor stream.
pub fn encode_descriptors(descs: &[RunDesc]) -> Vec<u8> {
    descs.iter().flat_map(RunDesc::encode).collect()
}

/// Executes a descriptor stream on the host against the packed input
/// image — the reference the device interpreter and the tests compare
/// against. Returns the packed im2col bytes for every pixel,
/// concatenated.
pub fn apply_descriptors(descs: &[RunDesc], input_addr: u32, packed_input: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for d in descs {
        out.extend(std::iter::repeat_n(0u8, d.pre as usize));
        if d.copy > 0 {
            let off = (d.src - input_addr) as usize;
            out.extend_from_slice(&packed_input[off..off + d.copy as usize]);
        }
        out.extend(std::iter::repeat_n(0u8, d.post as usize));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelIsa, QuantMode};
    use qnn::conv::{im2col_all, ConvShape};
    use qnn::rng::TensorRng;
    use qnn::tensor;
    use qnn::BitWidth;

    fn cfg(shape: ConvShape, bits: BitWidth) -> ConvKernelConfig {
        ConvKernelConfig {
            shape,
            bits,
            out_bits: bits,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::SoftwareTree,
        }
    }

    #[test]
    fn descriptor_counts_and_invariants() {
        let c = cfg(ConvShape::paper_benchmark(), BitWidth::W4);
        let descs = im2col_descriptors(&c, 0x1000);
        assert_eq!(descs.len(), 256 * 3);
        let run = LayerLayout::run_bytes(&c);
        for d in &descs {
            assert_eq!(d.pre as u32 + d.copy as u32 + d.post as u32, run);
            assert_eq!(d.pre % 4, 0);
            assert_eq!(d.copy % 4, 0);
        }
    }

    /// Applying the descriptors reproduces the golden im2col transform
    /// for every width and for shapes with every kind of border case.
    #[test]
    fn descriptors_reproduce_golden_im2col() {
        let mut rng = TensorRng::new(13);
        for bits in qnn::bits::ALL_WIDTHS {
            let in_c = 32 / bits.bits() as usize * 2; // word-aligned runs
            for shape in [
                ConvShape {
                    in_h: 5,
                    in_w: 6,
                    in_c,
                    out_c: 2,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                ConvShape {
                    in_h: 4,
                    in_w: 4,
                    in_c,
                    out_c: 2,
                    k_h: 1,
                    k_w: 1,
                    stride: 1,
                    pad: 0,
                },
                ConvShape {
                    in_h: 7,
                    in_w: 5,
                    in_c,
                    out_c: 2,
                    k_h: 3,
                    k_w: 3,
                    stride: 2,
                    pad: 1,
                },
            ] {
                let c = cfg(shape, bits);
                let input = rng.activations(bits, shape.input_len());
                let packed = input.pack();
                let descs = im2col_descriptors(&c, 0x40);
                let device_bytes = apply_descriptors(&descs, 0x40, &packed);
                let golden = im2col_all(&shape, input.values());
                let golden_bytes = tensor::pack(bits, &golden);
                assert_eq!(device_bytes, golden_bytes, "{bits} {shape:?}");
            }
        }
    }

    #[test]
    fn encode_layout_is_little_endian() {
        let d = RunDesc {
            src: 0x1c02_0010,
            pre: 4,
            copy: 8,
            post: 12,
        };
        let e = d.encode();
        assert_eq!(&e[0..4], &[0x10, 0x00, 0x02, 0x1c]);
        assert_eq!(&e[4..6], &[4, 0]);
        assert_eq!(&e[6..8], &[8, 0]);
        assert_eq!(&e[8..10], &[12, 0]);
        assert_eq!(&e[10..12], &[0, 0]);
        assert_eq!(encode_descriptors(&[d]).len(), DESC_BYTES as usize);
    }

    #[test]
    fn interior_pixels_have_no_padding() {
        let c = cfg(ConvShape::paper_benchmark(), BitWidth::W8);
        let descs = im2col_descriptors(&c, 0);
        // pixel (8, 8) is interior: all three runs are pure copies.
        let p = (8 * 16 + 8) * 3;
        for d in &descs[p..p + 3] {
            assert_eq!(d.pre, 0);
            assert_eq!(d.post, 0);
            assert_eq!(d.copy as u32, LayerLayout::run_bytes(&c));
        }
        // pixel (0, 0): first row fully zero, other rows have left pad.
        assert_eq!(descs[0].copy, 0);
        assert!(descs[1].pre > 0);
    }
}
