//! The full convolution program builder.

use crate::config::{ConvKernelConfig, KernelIsa, QuantMode};
use crate::emit::im2col::{
    emit_im2col_pair, emit_unpack2_constants, emit_unpack4_constants, Im2colKind,
};
use crate::emit::matmul::emit_mm_block;
use crate::emit::quant::{
    emit_quant_store_w4, emit_quant_store_w8, emit_quant_w2_first, emit_quant_w2_second,
};
use crate::layout::LayerLayout;
use crate::runner::BuildError;
use pulp_asm::{Asm, Program};
use pulp_isa::Reg::*;
use qnn::BitWidth;

/// Builds the complete kernel program for a validated configuration.
///
/// The program ends in `ecall` with exit code 0; the caller is expected
/// to have placed input/weights/thresholds/descriptors at the `layout`
/// addresses before running.
///
/// # Errors
///
/// [`BuildError::Config`] if `cfg` fails
/// [`ConvKernelConfig::validate`]; [`BuildError::Asm`] for assembler
/// errors (which would indicate an emitter bug — the generator's own
/// tests exercise every variant).
pub fn build_conv_program(
    cfg: &ConvKernelConfig,
    layout: &LayerLayout,
) -> Result<Program, BuildError> {
    cfg.validate().map_err(BuildError::Config)?;
    let mut a = Asm::new(pulp_soc::CODE_BASE);

    let out_pixel_bytes = LayerLayout::out_pixel_bytes(cfg) as i32;
    let pixel_pairs = (cfg.shape.pixels() / 2) as i32;

    // --- prologue: loop state and variant constants ---
    a.li(A5, layout.descriptors as i32);
    a.li(A3, layout.output as i32);
    a.addi(A4, A3, out_pixel_bytes);
    a.li(A7, pixel_pairs);
    emit_variant_constants(&mut a, cfg);

    // --- pixel-pair loop ---
    emit_pixel_loop(
        &mut a,
        cfg,
        layout.weights,
        layout.thresholds,
        "pixel_loop",
        "ch_loop",
    );

    a.li(A0, 0);
    a.ecall();

    // --- subroutines ---
    emit_im2col_pair(&mut a, cfg, layout);
    emit_mm_block(&mut a, cfg, layout);

    a.assemble().map_err(BuildError::Asm)
}

/// Emits the per-variant unpack constants the XpulpV2 baselines need
/// (a no-op for native kernels).
pub(crate) fn emit_variant_constants(a: &mut Asm, cfg: &ConvKernelConfig) {
    match (cfg.isa, cfg.bits) {
        (KernelIsa::XpulpV2, BitWidth::W4) => emit_unpack4_constants(a),
        (KernelIsa::XpulpV2, BitWidth::W2) => emit_unpack2_constants(a),
        _ => {}
    }
}

/// Emits the pixel-pair loop shared by the single-core and cluster
/// builders. Entry: `a5` = descriptor cursor, `a3`/`a4` = output
/// pointers, `a7` = pair count (> 0). `weights`/`thresholds` are the
/// absolute tensor bases (L2 for the single-core kernel, TCDM for the
/// cluster kernels). The emitted instruction sequence is exactly the
/// pre-cluster single-core loop — the golden listing snapshots pin it.
pub(crate) fn emit_pixel_loop(
    a: &mut Asm,
    cfg: &ConvKernelConfig,
    weights: u32,
    thresholds: u32,
    loop_label: &str,
    ch_label: &str,
) {
    let out_pixel_bytes = LayerLayout::out_pixel_bytes(cfg) as i32;
    let ch_blocks = (cfg.shape.out_c / cfg.channel_block()) as i32;

    a.label(loop_label);
    a.jal("im2col_pair");
    a.li(A0, weights as i32);
    if cfg.out_bits.is_sub_byte() {
        a.li(A1, thresholds as i32);
    }
    a.li(A2, ch_blocks);

    a.label(ch_label);
    a.jal("mm_block");
    match cfg.out_bits {
        BitWidth::W8 => {
            let QuantMode::Shift8 { shift } = cfg.quant else {
                unreachable!("validated: 8-bit uses shift8")
            };
            emit_quant_store_w8(a, shift);
        }
        BitWidth::W4 => emit_quant_store_w4(a, cfg),
        BitWidth::W2 => {
            emit_quant_w2_first(a, cfg);
            a.jal("mm_block");
            emit_quant_w2_second(a, cfg);
        }
    }
    a.addi(A2, A2, -1);
    a.bne(A2, Zero, ch_label);

    // Skip the other pixel's output region.
    a.addi(A3, A3, out_pixel_bytes);
    a.addi(A4, A4, out_pixel_bytes);
    a.addi(A7, A7, -1);
    a.bne(A7, Zero, loop_label);
}

/// Returns the im2col variant a configuration uses (re-exported for
/// reports).
pub fn im2col_kind(cfg: &ConvKernelConfig) -> Im2colKind {
    Im2colKind::for_config(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::conv::ConvShape;

    #[test]
    fn every_paper_variant_assembles() {
        for bits in qnn::bits::ALL_WIDTHS {
            for isa in [
                KernelIsa::XpulpV2,
                KernelIsa::XpulpNN,
                KernelIsa::vector(128),
                KernelIsa::vector(256),
            ] {
                for hw in [false, true] {
                    let cfg = ConvKernelConfig::paper(bits, isa, hw);
                    let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2())
                        .unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
                    assert!(prog.words.len() > 30, "{} suspiciously small", cfg.name());
                    assert!(
                        prog.code_size() < 0x8000,
                        "{} exceeds the code region",
                        cfg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn listing_mentions_expected_instructions() {
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
        let text = prog.listing();
        assert!(text.contains("pv.sdotusp.n"), "native nibble dot product");
        assert!(text.contains("pv.qnt.n"), "hardware quantization");
        assert!(text.contains("lp.setup"), "hardware loop");

        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpV2, false);
        let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
        let text = prog.listing();
        assert!(text.contains("pv.sdotusp.b"), "baseline computes on bytes");
        assert!(
            !text.contains("pv.sdotusp.n"),
            "baseline must not use nibble SIMD"
        );
        assert!(
            !text.contains("pv.qnt"),
            "baseline must not use the quant unit"
        );
        assert!(
            text.contains("pv.shuffle2.b"),
            "baseline unpacks with shuffles"
        );
    }

    #[test]
    fn vector_listing_uses_xrvv_and_no_packed_simd() {
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::vector(128), true);
        let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
        let text = prog.listing();
        assert!(text.contains("vsetvli"), "strip-mined loop config");
        assert!(text.contains("vdotusp.vv"), "vector dot product");
        assert!(text.contains("vqnt.n.v"), "vector quantizer");
        assert!(text.contains("vslide1down.vx"), "accumulator-pair assembly");
        assert!(!text.contains("pv."), "no packed-SIMD on the vector core");
        assert!(!text.contains("lp.setup"), "the strip loop uses bne");
        for i in &prog.instrs {
            assert!(!i.requires_xpulpnn(), "vector kernel must avoid pv.*: {i}");
        }
        // Software-tree vector kernels need no vqnt at all.
        let cfg = ConvKernelConfig::paper(BitWidth::W2, KernelIsa::vector(256), false);
        let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
        let text = prog.listing();
        assert!(text.contains("vdotusp.vv"));
        assert!(!text.contains("vqnt"), "sw-tree quantizes in scalar code");
    }

    #[test]
    fn xpulpnn_programs_contain_no_sub_byte_ops_for_w8() {
        let cfg = ConvKernelConfig::paper(BitWidth::W8, KernelIsa::XpulpNN, true);
        let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
        for i in &prog.instrs {
            assert!(
                !i.requires_xpulpnn(),
                "8-bit kernel should be XpulpV2-only: {i}"
            );
        }
    }

    #[test]
    fn baseline_programs_never_require_xpulpnn() {
        for bits in qnn::bits::ALL_WIDTHS {
            let cfg = ConvKernelConfig::paper(bits, KernelIsa::XpulpV2, false);
            let prog = build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
            for i in &prog.instrs {
                assert!(!i.requires_xpulpnn(), "{}: {i}", cfg.name());
            }
        }
    }

    #[test]
    fn small_shape_assembles() {
        let cfg = ConvKernelConfig {
            shape: ConvShape {
                in_h: 4,
                in_w: 4,
                in_c: 8,
                out_c: 4,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::HardwareQnt,
        };
        build_conv_program(&cfg, &LayerLayout::default_for_l2()).unwrap();
    }
}
