//! The 2×2 MatMul block (`mm_block` subroutine).
//!
//! Each call computes four accumulators — two consecutive output
//! channels × the two im2col pixel buffers — over the whole column
//! (`col_len` MACs each), using a zero-overhead hardware loop. Entry:
//! `a0` = base of weight row `ch`. Exit: `a0` advanced past row `ch+1`,
//! accumulators in `s4`–`s7`.
//!
//! Inner-loop shapes (cycles per iteration / MACs per iteration):
//!
//! | variant | loop body | MACs |
//! |---|---|---|
//! | native (any width, packed) | 4 loads + 4 `pv.sdotusp` = 8 | 4·lanes |
//! | XpulpV2 4-bit | + ordered unpack of both operands (shuffle-based) ≈ 36 | 32 |
//! | XpulpV2 2-bit | + ordered weight unpack, activations pre-expanded ≈ 80 | 64 |
//!
//! The XpulpV2 sub-byte bodies are the paper's baseline: "additional
//! instructions to unpack and pack the low-bitwidth operands must be
//! included in the code" (§IV-B).

use crate::config::{ConvKernelConfig, KernelIsa};
use crate::emit::im2col::{emit_unpack4_signed, emit_unpack4_unsigned};
use crate::emit::{simd_fmt, vec_sew};
use crate::layout::LayerLayout;
use pulp_asm::Asm;
use pulp_isa::instr::{Instr, LoopIdx, SimdAluOp, SimdOperand};
use pulp_isa::simd::{DotSign, SimdFmt};
use pulp_isa::vec::VReg;
use pulp_isa::Reg::{self, *};
use qnn::BitWidth;

fn sdotusp(a: &mut Asm, fmt: SimdFmt, acc: Reg, act: Reg, w: Reg) {
    a.i(Instr::PvSdot {
        fmt,
        sign: DotSign::UnsignedSigned,
        rd: acc,
        rs1: act,
        op2: SimdOperand::Vector(w),
    });
}

fn shuffle2b(a: &mut Asm, rd: Reg, rs1: Reg, sel: Reg) {
    a.i(Instr::PvShuffle2 {
        fmt: SimdFmt::Byte,
        rd,
        rs1,
        rs2: sel,
    });
}

fn sra_sci_b(a: &mut Asm, rd: Reg, rs1: Reg, imm: i8) {
    a.i(Instr::PvAlu {
        op: SimdAluOp::Sra,
        fmt: SimdFmt::Byte,
        rd,
        rs1,
        op2: SimdOperand::Imm(imm),
    });
}

fn sll_sci_b(a: &mut Asm, rd: Reg, rs1: Reg, imm: i8) {
    a.i(Instr::PvAlu {
        op: SimdAluOp::Sll,
        fmt: SimdFmt::Byte,
        rd,
        rs1,
        op2: SimdOperand::Imm(imm),
    });
}

/// Number of inner-loop iterations: one packed weight word per iteration.
pub fn inner_iterations(cfg: &ConvKernelConfig) -> u32 {
    (cfg.shape.col_len() as u32 * cfg.bits.bits()) / 32
}

/// Emits the native inner-loop body (packed operands both sides).
fn emit_body_native(a: &mut Asm, fmt: SimdFmt) {
    a.p_lw_postinc(T0, 4, S0); // w row ch
    a.p_lw_postinc(T1, 4, S1); // w row ch+1
    a.p_lw_postinc(T2, 4, S2); // im2col px0
    a.p_lw_postinc(T3, 4, S3); // im2col px1
    sdotusp(a, fmt, S4, T2, T0);
    sdotusp(a, fmt, S5, T3, T0);
    sdotusp(a, fmt, S6, T2, T1);
    sdotusp(a, fmt, S7, T3, T1);
}

/// Emits the XpulpV2 4-bit body: both operands unpacked to ordered bytes
/// in-loop (activations unsigned, weights signed).
fn emit_body_v2_w4(a: &mut Asm) {
    let b = SimdFmt::Byte;
    // Weights row ch -> t2 (elements 0..3), t0 (elements 4..7).
    a.p_lw_postinc(T0, 4, S0);
    emit_unpack4_signed(a, T0, T2, T0, T4);
    // Weights row ch+1 -> t3 / t1.
    a.p_lw_postinc(T1, 4, S1);
    emit_unpack4_signed(a, T1, T3, T1, T4);
    // Activations px0 -> t6 / t4, consumed immediately.
    a.p_lw_postinc(T4, 4, S2);
    emit_unpack4_unsigned(a, T4, T6, T4, T5);
    sdotusp(a, b, S4, T6, T2);
    sdotusp(a, b, S4, T4, T0);
    sdotusp(a, b, S6, T6, T3);
    sdotusp(a, b, S6, T4, T1);
    // Activations px1.
    a.p_lw_postinc(T4, 4, S3);
    emit_unpack4_unsigned(a, T4, T6, T4, T5);
    sdotusp(a, b, S5, T6, T2);
    sdotusp(a, b, S5, T4, T0);
    sdotusp(a, b, S7, T6, T3);
    sdotusp(a, b, S7, T4, T1);
}

/// Unpacks one packed 2-bit weight word (in `t0`) into four ordered
/// signed byte words `t3, t1, t6, t2` (elements 0–3, 4–7, 8–11, 12–15),
/// then folds each against freshly loaded activation words into the two
/// accumulators `(acc_px0, acc_px1)`.
fn emit_v2_w2_row(a: &mut Asm, acc_px0: Reg, acc_px1: Reg) {
    let b = SimdFmt::Byte;
    // Crumb groups: gj = crumbs (j, j+4, j+8, j+12) sign-extended.
    sll_sci_b(a, T1, T0, 6);
    sra_sci_b(a, T1, T1, 6); // g0
    sll_sci_b(a, T2, T0, 4);
    sra_sci_b(a, T2, T2, 6); // g1
    sll_sci_b(a, T3, T0, 2);
    sra_sci_b(a, T3, T3, 6); // g2
    sra_sci_b(a, T0, T0, 6); // g3
                             // Pairwise interleaves.
    a.mv(T4, T2);
    shuffle2b(a, T4, T1, S9); // u01 = (g0[0], g1[0], g0[1], g1[1])
    a.mv(T5, T2);
    shuffle2b(a, T5, T1, S10); // u01b = upper half of g0/g1
    a.mv(T1, T0);
    shuffle2b(a, T1, T3, S9); // u23
    a.mv(T2, T0);
    shuffle2b(a, T2, T3, S10); // u23b
                               // Final ordered words.
    a.mv(T3, T1);
    shuffle2b(a, T3, T4, S11); // elements 0..3
    shuffle2b(a, T1, T4, A6); // elements 4..7 (in place: old rd = u23)
    a.mv(T6, T2);
    shuffle2b(a, T6, T5, S11); // elements 8..11
    shuffle2b(a, T2, T5, A6); // elements 12..15
                              // Multiply against the four byte-words of each pixel buffer.
    for w in [T3, T1, T6, T2] {
        a.p_lw_postinc(T0, 4, S2);
        sdotusp(a, b, acc_px0, T0, w);
        a.p_lw_postinc(T0, 4, S3);
        sdotusp(a, b, acc_px1, T0, w);
    }
}

/// Emits the XpulpV2 2-bit body: weights unpacked ordered in-loop,
/// activations already expanded to bytes by the fused im2col.
fn emit_body_v2_w2(a: &mut Asm) {
    // Row ch.
    a.p_lw_postinc(T0, 4, S0);
    emit_v2_w2_row(a, S4, S5);
    // Rewind the activation pointers for row ch+1.
    a.addi(S2, S2, -16);
    a.addi(S3, S3, -16);
    // Row ch+1.
    a.p_lw_postinc(T0, 4, S1);
    emit_v2_w2_row(a, S6, S7);
}

/// Emits the vector (Xrvv) `mm_block` body: a strip-mined loop over the
/// whole column. Each strip loads both packed weight rows and both
/// im2col pixel buffers into vector registers and folds all four
/// accumulator combinations with `vdotusp.vv` — no unpacking at any
/// width, because the vector unit addresses sub-byte elements natively.
/// `vsetvli` grants `t5` elements per strip; pointers advance by the
/// packed byte count (`t5 >> log2(8/bits)`).
fn emit_body_vector(a: &mut Asm, cfg: &ConvKernelConfig) {
    let sew = vec_sew(cfg.bits);
    let shift = (8 / cfg.bits.bits()).trailing_zeros() as i32;
    let (v0, v1, v2, v3) = (
        VReg::new(0).unwrap(),
        VReg::new(1).unwrap(),
        VReg::new(2).unwrap(),
        VReg::new(3).unwrap(),
    );
    a.li(T6, cfg.shape.col_len() as i32);
    a.label("mm_vloop");
    a.vsetvli(T5, T6, sew);
    a.vle(v0, S0); // w row ch
    a.vle(v1, S1); // w row ch+1
    a.vle(v2, S2); // im2col px0
    a.vle(v3, S3); // im2col px1
    a.vdot(DotSign::UnsignedSigned, S4, v2, v0);
    a.vdot(DotSign::UnsignedSigned, S5, v3, v0);
    a.vdot(DotSign::UnsignedSigned, S6, v2, v1);
    a.vdot(DotSign::UnsignedSigned, S7, v3, v1);
    a.srli(T4, T5, shift);
    a.add(S0, S0, T4);
    a.add(S1, S1, T4);
    a.add(S2, S2, T4);
    a.add(S3, S3, T4);
    a.sub(T6, T6, T5);
    a.bne(T6, Zero, "mm_vloop");
}

/// Emits the `mm_block` subroutine.
pub fn emit_mm_block(a: &mut Asm, cfg: &ConvKernelConfig, layout: &LayerLayout) {
    emit_mm_block_at(a, cfg, super::Im2colBase::Absolute(layout.im2col));
}

/// Emits the `mm_block` subroutine with an explicit im2col base (see
/// [`crate::emit::Im2colBase`]); the layout wrapper above is
/// byte-identical to the pre-cluster builder.
pub fn emit_mm_block_at(a: &mut Asm, cfg: &ConvKernelConfig, base: super::Im2colBase) {
    let row_bytes = LayerLayout::weight_row_bytes(cfg) as i32;
    let buf_bytes = LayerLayout::im2col_buffer_bytes(cfg) as i32;
    let iters = inner_iterations(cfg) as i32;
    assert!(row_bytes < 2048, "weight row exceeds addi range");

    a.label("mm_block");
    a.mv(S0, A0);
    a.addi(S1, A0, row_bytes);
    base.emit(a, S2, 0);
    base.emit(a, S3, buf_bytes);
    a.li(S4, 0);
    a.li(S5, 0);
    a.li(S6, 0);
    a.li(S7, 0);
    if cfg.isa.is_vector() {
        emit_body_vector(a, cfg);
    } else {
        a.li(T6, iters);
        a.lp_setup(LoopIdx::L0, T6, "mm_end");
        match (cfg.isa, cfg.bits) {
            (KernelIsa::XpulpV2, BitWidth::W4) => emit_body_v2_w4(a),
            (KernelIsa::XpulpV2, BitWidth::W2) => emit_body_v2_w2(a),
            _ => emit_body_native(a, simd_fmt(cfg.bits)),
        }
        a.label("mm_end");
    }
    // s1 ended just past row ch+1 (the vector strips advance it by the
    // whole row): the next block's row base.
    a.mv(A0, S1);
    a.ret();
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::conv::ConvShape;

    #[test]
    fn iteration_counts_for_paper_layer() {
        use crate::config::QuantMode;
        let mk = |bits, isa| ConvKernelConfig {
            shape: ConvShape::paper_benchmark(),
            bits,
            out_bits: bits,
            isa,
            quant: QuantMode::SoftwareTree,
        };
        assert_eq!(inner_iterations(&mk(BitWidth::W8, KernelIsa::XpulpNN)), 72);
        assert_eq!(inner_iterations(&mk(BitWidth::W4, KernelIsa::XpulpNN)), 36);
        assert_eq!(inner_iterations(&mk(BitWidth::W2, KernelIsa::XpulpNN)), 18);
        // The iteration count depends on the packed width, not the ISA.
        assert_eq!(inner_iterations(&mk(BitWidth::W4, KernelIsa::XpulpV2)), 36);
    }
}
