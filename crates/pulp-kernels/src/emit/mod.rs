//! Assembly emitters for the convolution kernels.
//!
//! The generated program follows a fixed register convention (no stack;
//! every routine is a leaf or calls only leaves):
//!
//! | register | role |
//! |---|---|
//! | `ra` | subroutine linkage (`im2col_pair`, `mm_block`) |
//! | `sp`, `gp` | scratch for the crumb variants (no stack/globals exist) |
//! | `a0` | current weight-row base |
//! | `a1` | current threshold-tree base (sub-byte) |
//! | `a2` | channel-block counter |
//! | `a3`/`a4` | output write pointers, pixel 0 / pixel 1 |
//! | `a5` | im2col descriptor pointer |
//! | `a6` | variant constant (2-bit selector) or scratch |
//! | `a7` | pixel-pair counter |
//! | `s0`/`s1` | weight read pointers, channels `ch` / `ch+1` |
//! | `s2`/`s3` | im2col read pointers, pixel 0 / pixel 1 |
//! | `s4`–`s7` | the four MatMul accumulators |
//! | `s8`–`s11` | unpack constants (mask, shuffle selectors) |
//! | `t0`–`t6` | temporaries |
//!
//! The accumulator meaning matches the paper's 2×2 MatMul: `s4 = (ch,
//! px0)`, `s5 = (ch, px1)`, `s6 = (ch+1, px0)`, `s7 = (ch+1, px1)`, so
//! the two values packed for `pv.qnt` are consecutive channels of the
//! same pixel.

pub mod cluster;
pub mod conv;
pub mod im2col;
pub mod matmul;
pub mod quant;

pub use cluster::build_cluster_conv_program;
pub use conv::build_conv_program;

use pulp_asm::Asm;
use pulp_isa::simd::SimdFmt;
use pulp_isa::Reg;
use qnn::BitWidth;

/// Where the im2col double buffer lives: at a link-time constant (the
/// single-core layout) or held in a register written by the cluster
/// dispatch prologue (per-hart L1 buffers, bases only known at
/// dispatch time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Im2colBase {
    /// `li rd, addr` — the single-core path, byte-identical to the
    /// pre-cluster emitters.
    Absolute(u32),
    /// `mv rd, reg` — the register the dispatcher loaded the per-hart
    /// buffer base into (`tp` in the cluster convention).
    InReg(Reg),
}

impl Im2colBase {
    /// Emits `rd = base + offset` (`offset` must stay in `addi` range
    /// for the register-relative form).
    fn emit(&self, a: &mut Asm, rd: Reg, offset: i32) {
        match *self {
            Im2colBase::Absolute(addr) => {
                a.li(rd, addr as i32 + offset);
            }
            Im2colBase::InReg(r) => {
                assert!((-2048..2048).contains(&offset), "im2col offset range");
                if offset == 0 {
                    a.mv(rd, r);
                } else {
                    a.addi(rd, r, offset);
                }
            }
        }
    }
}

/// The SIMD lane format of a bit width.
pub fn simd_fmt(bits: BitWidth) -> SimdFmt {
    match bits {
        BitWidth::W8 => SimdFmt::Byte,
        BitWidth::W4 => SimdFmt::Nibble,
        BitWidth::W2 => SimdFmt::Crumb,
    }
}

/// The vector element width of a bit width (the vector backend computes
/// directly on packed sub-byte elements).
pub fn vec_sew(bits: BitWidth) -> pulp_isa::vec::VecSew {
    use pulp_isa::vec::VecSew;
    match bits {
        BitWidth::W8 => VecSew::E8,
        BitWidth::W4 => VecSew::E4,
        BitWidth::W2 => VecSew::E2,
    }
}

/// Packs four byte-lane selector values into the constant loaded into a
/// shuffle-selector register.
pub fn sel_bytes(l0: u8, l1: u8, l2: u8, l3: u8) -> i32 {
    i32::from_le_bytes([l0, l1, l2, l3])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_mapping() {
        assert_eq!(simd_fmt(BitWidth::W8), SimdFmt::Byte);
        assert_eq!(simd_fmt(BitWidth::W4), SimdFmt::Nibble);
        assert_eq!(simd_fmt(BitWidth::W2), SimdFmt::Crumb);
    }

    #[test]
    fn sew_mapping() {
        use pulp_isa::vec::VecSew;
        assert_eq!(vec_sew(BitWidth::W8), VecSew::E8);
        assert_eq!(vec_sew(BitWidth::W4), VecSew::E4);
        assert_eq!(vec_sew(BitWidth::W2), VecSew::E2);
    }

    #[test]
    fn selector_packing_is_little_endian() {
        assert_eq!(sel_bytes(0, 4, 1, 5), 0x0501_0400);
        assert_eq!(sel_bytes(2, 6, 3, 7), 0x0703_0602);
    }
}
