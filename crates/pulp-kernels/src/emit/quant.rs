//! Re-quantization and output-packing emitters.
//!
//! Three paths, matching the evaluation matrix:
//!
//! * **shift8** — 8-bit outputs: `srai` + `p.clipu` + byte store;
//! * **hardware** — `pv.qnt.{n,c}`: clip both channel accumulators to
//!   16 bits, pack them into one register with `pv.insert.h`, and let the
//!   quantization unit walk both trees (9/5 cycles, §III-B2);
//! * **software tree** — the Fig. 6 baseline: a branchless balanced-tree
//!   walk (`2 + 5·Q` cycles per activation) over the same Eytzinger
//!   threshold image the hardware reads, so both paths are bit-identical.

use crate::config::{ConvKernelConfig, QuantMode};
use crate::emit::simd_fmt;
use pulp_asm::Asm;
use pulp_isa::instr::{AluOp, Instr, LoadKind};
use pulp_isa::simd::SimdFmt;
use pulp_isa::vec::{VReg, VecSew};
use pulp_isa::Reg::{self, *};
use riscv_core::quant::tree_stride;

/// Emits the branchless software tree walk: quantizes the accumulator in
/// `acc` against the tree at `tree_base_minus2`, leaving the `Q`-bit
/// result in `t1`. Clobbers `t0`, `t2`–`t4`.
///
/// Per level: `slli` + `p.lh` (register-offset) + `slt` + two `add`s —
/// 5 cycles, ~`2 + 5·Q` per activation, matching the ≈18-cycle software
/// cost the paper cites for the 4-bit case.
pub fn emit_sw_tree_walk(a: &mut Asm, acc: Reg, tree_base_minus2: Reg, q_bits: u32) {
    a.i(Instr::PClip {
        rd: T0,
        rs1: acc,
        bits: 16,
    });
    a.li(T1, 1);
    for _ in 0..q_bits {
        a.slli(T2, T1, 1);
        a.i(Instr::LoadRegOff {
            kind: LoadKind::Half,
            rd: T3,
            rs1: tree_base_minus2,
            rs2: T2,
        });
        a.i(Instr::Alu {
            op: AluOp::Slt,
            rd: T4,
            rs1: T3,
            rs2: T0,
        });
        a.add(T1, T1, T1);
        a.add(T1, T1, T4);
    }
    a.addi(T1, T1, -(1i32 << q_bits));
}

/// Emits the hardware pair quantization for one pixel: clips the two
/// channel accumulators, packs them, executes `pv.qnt`, result in `dst`.
fn emit_hw_qnt_pixel(a: &mut Asm, fmt: SimdFmt, acc_ch: Reg, acc_ch1: Reg, dst: Reg) {
    a.i(Instr::PClip {
        rd: acc_ch,
        rs1: acc_ch,
        bits: 16,
    });
    a.i(Instr::PClip {
        rd: acc_ch1,
        rs1: acc_ch1,
        bits: 16,
    });
    a.i(Instr::PvInsert {
        fmt: SimdFmt::Half,
        rd: acc_ch,
        rs1: acc_ch1,
        idx: 1,
    });
    a.pv_qnt(fmt, dst, acc_ch, A1);
}

/// Emits the vector-backend pair quantization for one pixel: clips the
/// two channel accumulators, assembles them into elements 0/1 of `v0`
/// with two `vslide1down.vx` (at `vl = 2` each slide drops one element
/// and appends the scalar, so the pair lands in order), and lets `vqnt`
/// walk both channels' threshold trees — the Eytzinger image and the
/// packed result are identical to the `pv.qnt` path. Clobbers `t2` and
/// the unit's `vl`/`sew` (the MatMul strip loop re-runs `vsetvli`).
fn emit_vec_qnt_pixel(a: &mut Asm, fmt: SimdFmt, acc_ch: Reg, acc_ch1: Reg, dst: Reg) {
    let (v0, v1) = (VReg::new(0).unwrap(), VReg::new(1).unwrap());
    a.i(Instr::PClip {
        rd: acc_ch,
        rs1: acc_ch,
        bits: 16,
    });
    a.i(Instr::PClip {
        rd: acc_ch1,
        rs1: acc_ch1,
        bits: 16,
    });
    a.li(T2, 2);
    a.vsetvli(Zero, T2, VecSew::E16);
    a.vslide1down(v0, v0, acc_ch);
    a.vslide1down(v0, v0, acc_ch1);
    a.vqnt(fmt, v1, A1, v0);
    a.vmv_x_s(dst, v1);
}

/// Hardware pair quantization on whichever backend the config selects.
fn emit_hw_or_vec_qnt_pixel(
    a: &mut Asm,
    cfg: &ConvKernelConfig,
    fmt: SimdFmt,
    acc_ch: Reg,
    acc_ch1: Reg,
    dst: Reg,
) {
    if cfg.isa.is_vector() {
        emit_vec_qnt_pixel(a, fmt, acc_ch, acc_ch1, dst);
    } else {
        emit_hw_qnt_pixel(a, fmt, acc_ch, acc_ch1, dst);
    }
}

/// Emits the software pair quantization for one pixel: walks both
/// channel trees, packs the two `Q`-bit results into the low bits of
/// `dst`. Clobbers `t0`–`t6`.
fn emit_sw_qnt_pixel(a: &mut Asm, q_bits: u32, acc_ch: Reg, acc_ch1: Reg, dst: Reg, stride: i32) {
    a.addi(T5, A1, -2);
    emit_sw_tree_walk(a, acc_ch, T5, q_bits);
    a.mv(T6, T1);
    a.addi(T5, A1, stride - 2);
    emit_sw_tree_walk(a, acc_ch1, T5, q_bits);
    a.slli(T1, T1, q_bits as i32);
    a.or(dst, T1, T6);
}

/// Emits the post-block sequence for one MatMul block of a **4-bit**
/// kernel: quantize both pixels (two channels each), store one output
/// byte per pixel, and advance the threshold pointer.
pub fn emit_quant_store_w4(a: &mut Asm, cfg: &ConvKernelConfig) {
    let fmt = simd_fmt(cfg.out_bits);
    let stride = tree_stride(fmt) as i32;
    match cfg.quant {
        QuantMode::HardwareQnt => {
            emit_hw_or_vec_qnt_pixel(a, cfg, fmt, S4, S6, T0);
            a.p_sb_postinc(T0, 1, A3);
            emit_hw_or_vec_qnt_pixel(a, cfg, fmt, S5, S7, T1);
            a.p_sb_postinc(T1, 1, A4);
        }
        QuantMode::SoftwareTree => {
            emit_sw_qnt_pixel(a, 4, S4, S6, T1, stride);
            a.p_sb_postinc(T1, 1, A3);
            emit_sw_qnt_pixel(a, 4, S5, S7, T1, stride);
            a.p_sb_postinc(T1, 1, A4);
        }
        QuantMode::Shift8 { .. } => unreachable!("validated: shift8 is 8-bit only"),
    }
    a.addi(A1, A1, 2 * stride);
}

/// Emits the first half of a **2-bit** channel-block iteration (channels
/// `ch`, `ch+1`): quantize both pixels into 4-bit partials held in `sp`
/// (pixel 0) and `gp` (pixel 1) across the second MatMul block.
pub fn emit_quant_w2_first(a: &mut Asm, cfg: &ConvKernelConfig) {
    let fmt = simd_fmt(cfg.out_bits);
    let stride = tree_stride(fmt) as i32;
    match cfg.quant {
        QuantMode::HardwareQnt => {
            emit_hw_or_vec_qnt_pixel(a, cfg, fmt, S4, S6, Sp);
            emit_hw_or_vec_qnt_pixel(a, cfg, fmt, S5, S7, Gp);
        }
        QuantMode::SoftwareTree => {
            emit_sw_qnt_pixel(a, 2, S4, S6, Sp, stride);
            emit_sw_qnt_pixel(a, 2, S5, S7, Gp, stride);
        }
        QuantMode::Shift8 { .. } => unreachable!("validated: shift8 is 8-bit only"),
    }
    a.addi(A1, A1, 2 * stride);
}

/// Emits the second half of a **2-bit** channel-block iteration
/// (channels `ch+2`, `ch+3`): quantize, combine with the partials from
/// [`emit_quant_w2_first`], store one byte per pixel, advance
/// thresholds.
pub fn emit_quant_w2_second(a: &mut Asm, cfg: &ConvKernelConfig) {
    let fmt = simd_fmt(cfg.out_bits);
    let stride = tree_stride(fmt) as i32;
    match cfg.quant {
        QuantMode::HardwareQnt => {
            emit_hw_or_vec_qnt_pixel(a, cfg, fmt, S4, S6, T0);
            a.slli(T0, T0, 4);
            a.or(T0, T0, Sp);
            a.p_sb_postinc(T0, 1, A3);
            emit_hw_or_vec_qnt_pixel(a, cfg, fmt, S5, S7, T1);
            a.slli(T1, T1, 4);
            a.or(T1, T1, Gp);
            a.p_sb_postinc(T1, 1, A4);
        }
        QuantMode::SoftwareTree => {
            emit_sw_qnt_pixel(a, 2, S4, S6, T1, stride);
            a.slli(T1, T1, 4);
            a.or(T1, T1, Sp);
            a.p_sb_postinc(T1, 1, A3);
            emit_sw_qnt_pixel(a, 2, S5, S7, T1, stride);
            a.slli(T1, T1, 4);
            a.or(T1, T1, Gp);
            a.p_sb_postinc(T1, 1, A4);
        }
        QuantMode::Shift8 { .. } => unreachable!("validated: shift8 is 8-bit only"),
    }
    a.addi(A1, A1, 2 * stride);
}

/// Emits the 8-bit shift-and-clamp quantization and byte stores for both
/// pixels of one block.
pub fn emit_quant_store_w8(a: &mut Asm, shift: u32) {
    for (acc_ch, acc_ch1, out) in [(S4, S6, A3), (S5, S7, A4)] {
        for acc in [acc_ch, acc_ch1] {
            a.srai(T0, acc, shift as i32);
            a.i(Instr::PClipU {
                rd: T0,
                rs1: T0,
                bits: 9,
            });
            a.p_sb_postinc(T0, 1, out);
        }
    }
}
