//! The device-side im2col interpreter.
//!
//! Walks the descriptor stream (`a5`) for one pixel pair, filling both
//! im2col buffers (contiguous in memory, so the destination pointer
//! simply advances through `2 · k_h` runs). Two variants:
//!
//! * [`Im2colKind::Native`] — copies packed words unchanged (used by all
//!   XpulpNN kernels, the 8-bit kernels, and the 4-bit XpulpV2 baseline,
//!   which unpacks in the MatMul loop instead);
//! * [`Im2colKind::Unpack2`] — the 2-bit XpulpV2 baseline: expands each
//!   packed word to four ordered 8-bit words while copying, mirroring
//!   PULP-NN's fused `im2col_u2_to_u8` (in-loop ordered unpack of 2-bit
//!   operands would exceed the register file).

use crate::config::ConvKernelConfig;
use crate::layout::LayerLayout;
use pulp_asm::Asm;
use pulp_isa::instr::SimdOperand;
use pulp_isa::instr::{Instr, LoadKind};
use pulp_isa::simd::SimdFmt;
use pulp_isa::Reg::{self, *};

/// im2col copy behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Im2colKind {
    /// Copy packed words.
    Native,
    /// Expand 2-bit words to ordered unsigned bytes while copying.
    Unpack2,
}

impl Im2colKind {
    /// Selects the variant for a configuration.
    pub fn for_config(cfg: &ConvKernelConfig) -> Im2colKind {
        use crate::config::KernelIsa;
        use qnn::BitWidth;
        if cfg.isa == KernelIsa::XpulpV2 && cfg.bits == BitWidth::W2 {
            Im2colKind::Unpack2
        } else {
            Im2colKind::Native
        }
    }

    /// log2 of the byte-expansion factor (0 = none, 2 = ×4 for 2-bit→8-bit).
    fn log2_expansion(self) -> i32 {
        match self {
            Im2colKind::Native => 0,
            Im2colKind::Unpack2 => 2,
        }
    }
}

fn shuffle2b(a: &mut Asm, rd: Reg, rs1: Reg, sel: Reg) {
    a.i(Instr::PvShuffle2 {
        fmt: SimdFmt::Byte,
        rd,
        rs1,
        rs2: sel,
    });
}

/// Emits a zero-fill loop: `words` count (in a register) stores of x0.
/// `count_reg` holds the *byte* count on entry; it is converted to output
/// words using the expansion factor.
fn emit_zero_run(a: &mut Asm, count_reg: Reg, kind: Im2colKind, uniq: &str) {
    // output words = bytes * expansion / 4
    let shift = 2 - kind.log2_expansion();
    if shift > 0 {
        a.srli(count_reg, count_reg, shift);
    }
    let done = format!("ic_z_done_{uniq}");
    let top = format!("ic_z_{uniq}");
    a.beq(count_reg, Zero, &done);
    a.label(&top);
    a.p_sw_postinc(Zero, 4, T0);
    a.addi(count_reg, count_reg, -1);
    a.bne(count_reg, Zero, &top);
    a.label(&done);
}

/// Emits the `im2col_pair` subroutine (label `im2col_pair`).
///
/// Register use: `t0` destination, `t1` source, `t2`/`t4` run byte
/// counts, `t3` copy word counter, `t5` descriptor counter, `t6` data;
/// the 2-bit unpack variant additionally uses `a0`–`a2` and `sp` (free at
/// im2col time) and the constants `s8`–`s11`/`a6`.
pub fn emit_im2col_pair(a: &mut Asm, cfg: &ConvKernelConfig, layout: &LayerLayout) {
    emit_im2col_pair_at(a, cfg, super::Im2colBase::Absolute(layout.im2col));
}

/// Emits the `im2col_pair` subroutine with an explicit buffer base —
/// the cluster emitter passes the per-hart base register; the
/// single-core wrapper above passes the absolute layout address
/// (emitting byte-identical code to the pre-cluster builder).
pub fn emit_im2col_pair_at(a: &mut Asm, cfg: &ConvKernelConfig, base: super::Im2colBase) {
    let kind = Im2colKind::for_config(cfg);
    let descs_per_pair = (2 * cfg.shape.k_h) as i32;

    a.label("im2col_pair");
    base.emit(a, T0, 0);
    a.li(T5, descs_per_pair);

    a.label("ic_desc");
    // Load the descriptor: {src, pre, copy, post(@8)}.
    a.i(Instr::Load {
        kind: LoadKind::Word,
        rd: T1,
        rs1: A5,
        offset: 0,
    });
    a.i(Instr::Load {
        kind: LoadKind::HalfU,
        rd: T2,
        rs1: A5,
        offset: 4,
    });
    a.i(Instr::Load {
        kind: LoadKind::HalfU,
        rd: T3,
        rs1: A5,
        offset: 6,
    });
    a.addi(A5, A5, crate::descriptors::DESC_BYTES as i32);

    // Leading zeros.
    emit_zero_run(a, T2, kind, "pre");

    // Copy loop: T3 = copy bytes -> packed input words.
    a.srli(T3, T3, 2);
    a.beq(T3, Zero, "ic_copy_done");
    a.label("ic_copy");
    match kind {
        Im2colKind::Native => {
            a.p_lw_postinc(T6, 4, T1);
            a.p_sw_postinc(T6, 4, T0);
        }
        Im2colKind::Unpack2 => {
            // Ordered unsigned u2 -> 4 × u8 words. Crumb group j of each
            // byte lands in gj; interleaves rebuild natural order.
            a.p_lw_postinc(T6, 4, T1);
            a.and(T2, T6, S8); // g0
            a.srli(A0, T6, 2);
            a.and(A0, A0, S8); // g1
            a.srli(A1, T6, 4);
            a.and(A1, A1, S8); // g2
            a.srli(T6, T6, 6);
            a.and(T6, T6, S8); // g3
                               // u01 = (g0[0], g1[0], g0[1], g1[1]); u23 likewise from g2/g3.
            a.mv(A2, A0);
            shuffle2b(a, A2, T2, S9);
            a.mv(Sp, T6);
            shuffle2b(a, Sp, A1, S9);
            a.mv(T4, Sp);
            shuffle2b(a, T4, A2, S11); // out0 = elements 0..3
            a.p_sw_postinc(T4, 4, T0);
            shuffle2b(a, Sp, A2, A6); // out1 = elements 4..7
            a.p_sw_postinc(Sp, 4, T0);
            // Upper halves of the groups.
            a.mv(A2, A0);
            shuffle2b(a, A2, T2, S10);
            a.mv(Sp, T6);
            shuffle2b(a, Sp, A1, S10);
            a.mv(T4, Sp);
            shuffle2b(a, T4, A2, S11); // out2 = elements 8..11
            a.p_sw_postinc(T4, 4, T0);
            shuffle2b(a, Sp, A2, A6); // out3 = elements 12..15
            a.p_sw_postinc(Sp, 4, T0);
        }
    }
    a.addi(T3, T3, -1);
    a.bne(T3, Zero, "ic_copy");
    a.label("ic_copy_done");

    // Trailing zeros (re-read the count: t4 was clobbered by the unpack).
    a.i(Instr::Load {
        kind: LoadKind::HalfU,
        rd: T4,
        rs1: A5,
        offset: 8 - crate::descriptors::DESC_BYTES as i32,
    });
    emit_zero_run(a, T4, kind, "post");

    a.addi(T5, T5, -1);
    a.bne(T5, Zero, "ic_desc");
    a.ret();
}

/// Loads the unpack constants the 2-bit baseline im2col/MatMul need.
pub fn emit_unpack2_constants(a: &mut Asm) {
    a.li(S8, 0x0303_0303);
    a.li(S9, super::sel_bytes(0, 4, 1, 5));
    a.li(S10, super::sel_bytes(2, 6, 3, 7));
    a.li(S11, super::sel_bytes(0, 1, 4, 5));
    a.li(A6, super::sel_bytes(2, 3, 6, 7));
}

/// Loads the unpack constants the 4-bit baseline MatMul needs.
pub fn emit_unpack4_constants(a: &mut Asm) {
    a.li(S8, 0x0f0f_0f0f);
    a.li(S9, super::sel_bytes(0, 4, 1, 5));
    a.li(S10, super::sel_bytes(2, 6, 3, 7));
}

/// Emits the 4-bit ordered unsigned unpack of `src` (packed nibbles) into
/// `(lo, hi)` byte words, clobbering `scratch`. Uses `s8`–`s10`.
pub fn emit_unpack4_unsigned(a: &mut Asm, src: Reg, lo: Reg, hi: Reg, scratch: Reg) {
    debug_assert!(src == hi, "in-place variant expected: hi reuses src");
    a.and(scratch, src, S8); // even nibbles
    a.srli(src, src, 4);
    a.and(src, src, S8); // odd nibbles
    a.mv(lo, src);
    shuffle2b(a, lo, scratch, S9);
    shuffle2b(a, hi, scratch, S10);
}

/// Emits the 4-bit ordered signed unpack of `src` into `(lo, hi)` byte
/// words, clobbering `scratch`. `hi` must alias `src`.
pub fn emit_unpack4_signed(a: &mut Asm, src: Reg, lo: Reg, hi: Reg, scratch: Reg) {
    debug_assert!(src == hi, "in-place variant expected: hi reuses src");
    a.i(Instr::PvAlu {
        op: pulp_isa::instr::SimdAluOp::Sll,
        fmt: SimdFmt::Byte,
        rd: scratch,
        rs1: src,
        op2: SimdOperand::Imm(4),
    });
    a.i(Instr::PvAlu {
        op: pulp_isa::instr::SimdAluOp::Sra,
        fmt: SimdFmt::Byte,
        rd: scratch,
        rs1: scratch,
        op2: SimdOperand::Imm(4),
    }); // even, sign-extended
    a.i(Instr::PvAlu {
        op: pulp_isa::instr::SimdAluOp::Sra,
        fmt: SimdFmt::Byte,
        rd: src,
        rs1: src,
        op2: SimdOperand::Imm(4),
    }); // odd, sign-extended
    a.mv(lo, src);
    shuffle2b(a, lo, scratch, S9);
    shuffle2b(a, hi, scratch, S10);
}
