//! The SPMD cluster kernel builder.
//!
//! Every hart runs the same program; work assignment is data-driven
//! through the TCDM dispatch tables built by
//! [`crate::cluster::ClusterPlan`]. The per-tile loop:
//!
//! 1. `csrr mhartid` selects this hart's cursor word; the cursor is
//!    popped (post-incremented by one record) and the 16-byte
//!    [`crate::cluster::ParamRecord`] it pointed at is loaded:
//!    descriptor pointer → `a5`, output pointer → `a3`, pair count →
//!    `a7`, private im2col base → `tp`.
//! 2. A zero descriptor pointer is the exit sentinel (`ecall`); a zero
//!    pair count means idle-this-tile (straight to the barrier).
//! 3. Otherwise the hart runs the *identical* pixel-pair loop the
//!    single-core kernel uses ([`crate::emit::conv::emit_pixel_loop`]),
//!    with weights/thresholds at their (4 KiB-aligned, so `lui`-only)
//!    TCDM bases and the im2col subroutines addressing the buffer
//!    through `tp` ([`Im2colBase::InReg`]).
//! 4. The tile ends with a store to the event unit's barrier trigger —
//!    the cluster model parks the hart until all arrive.
//!
//! `tp` is free for the dispatcher: the kernel register convention
//! (see [`crate::emit`]) never touches it, which is also why the
//! single-core lint profile can reserve it while the cluster profile
//! declares it dispatch-owned.

use crate::cluster::{TcdmLayout, PARAM_BYTES};
use crate::config::ConvKernelConfig;
use crate::emit::conv::{emit_pixel_loop, emit_variant_constants};
use crate::emit::im2col::emit_im2col_pair_at;
use crate::emit::matmul::emit_mm_block_at;
use crate::emit::Im2colBase;
use crate::layout::LayerLayout;
use crate::runner::BuildError;
use pulp_asm::{Asm, Program};
use pulp_isa::instr::Instr;
use pulp_isa::Reg::*;
use pulp_soc::cluster::EU_BARRIER;

/// Builds the cluster kernel program for a validated configuration and
/// TCDM allocation. The program is loaded once and executed by every
/// hart; it ends in `ecall` with exit code 0 on each.
///
/// # Errors
///
/// [`BuildError::Config`] for invalid configurations,
/// [`BuildError::Tensor`] when the im2col buffer exceeds the
/// register-relative addressing range, [`BuildError::Asm`] for
/// assembler errors (a generator bug).
pub fn build_cluster_conv_program(
    cfg: &ConvKernelConfig,
    tl: &TcdmLayout,
) -> Result<Program, BuildError> {
    cfg.validate().map_err(BuildError::Config)?;
    let buf_bytes = LayerLayout::im2col_buffer_bytes(cfg);
    if buf_bytes >= 2048 {
        return Err(BuildError::Tensor {
            what: "im2col buffer exceeds tp-relative addi range",
        });
    }
    let out_pixel_bytes = LayerLayout::out_pixel_bytes(cfg) as i32;
    let mut a = Asm::new(pulp_soc::CODE_BASE);

    // --- dispatch: pop this hart's next parameter record ---
    a.label("cl_tile");
    a.i(Instr::Csr {
        op: 1, // csrrs rd, csr, x0 = csrr
        rd: T0,
        rs1: Zero,
        csr: pulp_isa::csr::MHARTID,
    });
    a.slli(T0, T0, 2);
    a.li(T1, tl.cursors as i32); // lui-only: cursors sit at TCDM_BASE
    a.add(T0, T0, T1);
    a.lw(T1, 0, T0);
    a.addi(T2, T1, PARAM_BYTES as i32);
    a.sw(T2, 0, T0);
    a.lw(A5, 0, T1); // descriptor pointer (0 = exit sentinel)
    a.beq(A5, Zero, "cl_exit");
    a.lw(A3, 4, T1); // output pointer
    a.lw(A7, 8, T1); // pair count (0 = idle this tile)
    a.lw(Tp, 12, T1); // private im2col buffer base
    a.beq(A7, Zero, "cl_barrier");

    // --- compute: the single-core pixel-pair loop, verbatim ---
    a.addi(A4, A3, out_pixel_bytes);
    emit_variant_constants(&mut a, cfg);
    emit_pixel_loop(&mut a, cfg, tl.weights, tl.thresholds, "cl_pixel", "cl_ch");

    // --- barrier: arrive and wait for the tile's stragglers ---
    a.label("cl_barrier");
    a.li(T0, EU_BARRIER as i32);
    a.sw(Zero, 0, T0);
    a.j("cl_tile");

    a.label("cl_exit");
    a.li(A0, 0);
    a.ecall();

    // --- subroutines, im2col buffers addressed through tp ---
    emit_im2col_pair_at(&mut a, cfg, Im2colBase::InReg(Tp));
    emit_mm_block_at(&mut a, cfg, Im2colBase::InReg(Tp));

    a.assemble().map_err(BuildError::Asm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterPlan;
    use crate::config::KernelIsa;
    use crate::emit::build_conv_program;
    use qnn::BitWidth;

    #[test]
    fn every_paper_variant_assembles_for_every_cluster_size() {
        for bits in qnn::bits::ALL_WIDTHS {
            for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
                for hw in [false, true] {
                    let cfg = ConvKernelConfig::paper(bits, isa, hw);
                    for n in [1, 2, 4, 8] {
                        let plan = ClusterPlan::new(&cfg, n).unwrap();
                        let prog = build_cluster_conv_program(&cfg, &plan.tcdm)
                            .unwrap_or_else(|e| panic!("{} x{n}: {e}", cfg.name()));
                        assert!(
                            prog.code_size() < 0x8000,
                            "{} exceeds the code region",
                            cfg.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn listing_contains_dispatch_and_barrier() {
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        let plan = ClusterPlan::new(&cfg, 8).unwrap();
        let text = build_cluster_conv_program(&cfg, &plan.tcdm)
            .unwrap()
            .listing();
        assert!(text.contains("csrrs"), "mhartid read:\n{text}");
        assert!(text.contains("pv.qnt.n"), "still the XpulpNN kernel");
        // The barrier address is materialised for the event-unit store.
        let hi = format!("{:#x}", EU_BARRIER >> 12);
        assert!(text.contains(&hi), "barrier lui {hi} missing:\n{text}");
    }

    #[test]
    fn cluster_program_reads_tensors_from_tcdm_not_l2() {
        let cfg = ConvKernelConfig::paper(BitWidth::W2, KernelIsa::XpulpNN, true);
        let plan = ClusterPlan::new(&cfg, 4).unwrap();
        let text = build_cluster_conv_program(&cfg, &plan.tcdm)
            .unwrap()
            .listing();
        let l2 = crate::layout::LayerLayout::default_for_l2();
        let l2_weights = format!("{:#x}", l2.weights >> 12);
        assert!(
            !text.contains(&l2_weights),
            "cluster kernel must not touch L2 weights:\n{text}"
        );
        let tcdm_weights = format!("{:#x}", plan.tcdm.weights >> 12);
        assert!(text.contains(&tcdm_weights));
    }

    /// The sharing refactor must not have changed the single-core
    /// builder: its pixel loop and subroutines still address the fixed
    /// L2 layout (golden listing snapshots pin the exact stream; this
    /// is the fast cross-check).
    #[test]
    fn single_core_builder_unaffected_by_sharing() {
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        let l2 = crate::layout::LayerLayout::default_for_l2();
        let prog = build_conv_program(&cfg, &l2).unwrap();
        let text = prog.listing();
        assert!(!text.contains("csrrs"), "no dispatch in single-core");
        assert!(!text.contains("tp"), "tp stays reserved:\n{text}");
    }
}
