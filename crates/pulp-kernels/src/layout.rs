//! L2 memory layout of a convolution layer run.

use crate::config::{ConvKernelConfig, KernelIsa};
use qnn::BitWidth;

/// Addresses of every buffer a generated kernel touches, all inside
/// PULPissimo's 512 kB L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerLayout {
    /// Packed input activations (HWC).
    pub input: u32,
    /// Packed weights (one row per output channel).
    pub weights: u32,
    /// Per-channel Eytzinger threshold trees
    /// ([`riscv_core::quant::tree_stride`] apart); unused for 8-bit.
    pub thresholds: u32,
    /// im2col run descriptors (12 bytes each).
    pub descriptors: u32,
    /// The two im2col buffers (buffer 1 contiguous after buffer 0).
    pub im2col: u32,
    /// Packed output activations (HWC).
    pub output: u32,
}

impl LayerLayout {
    /// The default allocation used by the benchmarks (code lives at
    /// [`pulp_soc::CODE_BASE`]).
    pub const fn default_for_l2() -> LayerLayout {
        LayerLayout {
            input: 0x1c02_0000,
            weights: 0x1c03_0000,
            thresholds: 0x1c05_0000,
            descriptors: 0x1c05_8000,
            im2col: 0x1c06_0000,
            output: 0x1c06_8000,
        }
    }

    /// Bytes of one im2col buffer for this configuration: packed for
    /// every kernel except the 2-bit XpulpV2 baseline, whose fused
    /// im2col expands activations to 8-bit (the 4-bit baseline keeps
    /// packed buffers and unpacks inside the MatMul loop).
    pub fn im2col_buffer_bytes(cfg: &ConvKernelConfig) -> u32 {
        let elems = cfg.shape.col_len() as u32;
        if cfg.isa == KernelIsa::XpulpV2 && cfg.bits == BitWidth::W2 {
            elems
        } else {
            elems * cfg.bits.bits() / 8
        }
    }

    /// Bytes of one packed weight row.
    pub fn weight_row_bytes(cfg: &ConvKernelConfig) -> u32 {
        cfg.shape.col_len() as u32 * cfg.bits.bits() / 8
    }

    /// Bytes of the packed output per pixel (output width, which may
    /// differ from the operand width in mixed-precision layers).
    pub fn out_pixel_bytes(cfg: &ConvKernelConfig) -> u32 {
        cfg.shape.out_c as u32 * cfg.out_bits.bits() / 8
    }

    /// Bytes of a full input kernel-row run (`k_w · in_c` elements,
    /// packed).
    pub fn run_bytes(cfg: &ConvKernelConfig) -> u32 {
        (cfg.shape.k_w * cfg.shape.in_c) as u32 * cfg.bits.bits() / 8
    }
}

impl Default for LayerLayout {
    fn default() -> Self {
        LayerLayout::default_for_l2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuantMode;
    use qnn::conv::ConvShape;

    fn cfg(bits: BitWidth, isa: KernelIsa) -> ConvKernelConfig {
        let quant = match bits {
            BitWidth::W8 => QuantMode::Shift8 { shift: 8 },
            _ => QuantMode::SoftwareTree,
        };
        ConvKernelConfig {
            shape: ConvShape::paper_benchmark(),
            bits,
            out_bits: bits,
            isa,
            quant,
        }
    }

    #[test]
    fn buffer_sizing() {
        let c4nn = cfg(BitWidth::W4, KernelIsa::XpulpNN);
        assert_eq!(LayerLayout::im2col_buffer_bytes(&c4nn), 144); // 288 nibbles
        let c4v2 = cfg(BitWidth::W4, KernelIsa::XpulpV2);
        assert_eq!(LayerLayout::im2col_buffer_bytes(&c4v2), 144); // packed: unpacks in-loop
        let c2v2 = cfg(BitWidth::W2, KernelIsa::XpulpV2);
        assert_eq!(LayerLayout::im2col_buffer_bytes(&c2v2), 288); // fused unpack to u8
        let c8 = cfg(BitWidth::W8, KernelIsa::XpulpV2);
        assert_eq!(LayerLayout::im2col_buffer_bytes(&c8), 288);
        assert_eq!(LayerLayout::weight_row_bytes(&c4nn), 144);
        assert_eq!(LayerLayout::out_pixel_bytes(&c4nn), 32);
        assert_eq!(LayerLayout::run_bytes(&c4nn), 48); // 3·32 nibbles
    }

    #[test]
    fn default_regions_fit_l2_and_do_not_overlap() {
        let l = LayerLayout::default_for_l2();
        let regions = [
            (l.input, 16 * 16 * 32u32),    // 8 KiB worst case (8-bit)
            (l.weights, 64 * 288),         // 18 KiB worst case
            (l.thresholds, 64 * 32),       // 2 KiB
            (l.descriptors, 256 * 3 * 12), // 9 KiB
            (l.im2col, 2 * 288),
            (l.output, 16 * 16 * 64), // 16 KiB worst case
        ];
        for (i, (a, alen)) in regions.iter().enumerate() {
            assert!(a + alen <= pulp_soc::L2_BASE + pulp_soc::L2_SIZE);
            assert!(*a >= pulp_soc::CODE_BASE + 0x8000, "leave room for code");
            for (b, blen) in regions.iter().skip(i + 1) {
                assert!(a + alen <= *b || b + blen <= *a, "overlap at {a:#x}/{b:#x}");
            }
        }
    }
}
