//! Kernel configuration and its validity rules.

use qnn::conv::ConvShape;
use qnn::BitWidth;
use std::fmt;

/// Which ISA the generated kernel may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelIsa {
    /// The baseline RI5CY: XpulpV2 only — sub-byte operands must be
    /// unpacked to 8-bit around every SIMD operation.
    XpulpV2,
    /// The extended core: native nibble/crumb SIMD and `pv.qnt`.
    XpulpNN,
    /// The RVV-style vector backend: XpulpV2 scalar code plus the Xrvv
    /// sub-byte vector unit (`rvv-vec`) at the given `VLEN` — no
    /// packed-SIMD (`pv.*`) instructions.
    Vector {
        /// Vector register length in bits (a power of two in 32..=256).
        vlen_bits: u32,
    },
}

impl KernelIsa {
    /// The vector backend at `vlen_bits` (shorthand for the struct
    /// variant).
    pub const fn vector(vlen_bits: u32) -> KernelIsa {
        KernelIsa::Vector { vlen_bits }
    }

    /// True for the vector backend.
    pub const fn is_vector(self) -> bool {
        matches!(self, KernelIsa::Vector { .. })
    }

    /// The backend's VLEN in bits; `None` for the scalar/SIMD ISAs.
    pub const fn vlen_bits(self) -> Option<u32> {
        match self {
            KernelIsa::Vector { vlen_bits } => Some(vlen_bits),
            _ => None,
        }
    }
}

impl fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelIsa::XpulpV2 => f.write_str("xpulpv2"),
            KernelIsa::XpulpNN => f.write_str("xpulpnn"),
            KernelIsa::Vector { vlen_bits } => write!(f, "vector{vlen_bits}"),
        }
    }
}

/// How accumulators are re-quantized to the output width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuantMode {
    /// 8-bit path: `clamp(acc >> shift, 0, 255)`.
    Shift8 {
        /// Right-shift amount.
        shift: u32,
    },
    /// Sub-byte path in software: branchless balanced-tree walk (the
    /// baseline of Fig. 6).
    SoftwareTree,
    /// Sub-byte path in hardware: `pv.qnt.{n,c}` (XpulpNN only).
    HardwareQnt,
}

impl fmt::Display for QuantMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantMode::Shift8 { shift } => write!(f, "shift8({shift})"),
            QuantMode::SoftwareTree => f.write_str("sw-tree"),
            QuantMode::HardwareQnt => f.write_str("pv.qnt"),
        }
    }
}

/// An invalid kernel configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A shape dimension is zero (degenerate layer).
    ZeroDimension {
        /// Which dimension was zero.
        what: &'static str,
    },
    /// A dimension exceeds what the generator can address.
    TooLarge {
        /// Which dimension was too large.
        what: &'static str,
    },
    /// Unsupported pooling window geometry.
    Window {
        /// Window size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// `in_c · bits` must be a multiple of 32 so channel runs are whole
    /// words.
    ChannelAlignment {
        /// Input channels.
        in_c: usize,
        /// Operand width.
        bits: BitWidth,
    },
    /// Output channels must divide into the kernel's channel blocking
    /// (2 for 8/4-bit, 4 for 2-bit).
    OutChannelBlocking {
        /// Output channels.
        out_c: usize,
        /// Required divisor.
        need: usize,
    },
    /// Output pixel count must be even (pixel-pair blocking).
    OddPixels {
        /// Output pixels.
        pixels: usize,
    },
    /// The vector backend's VLEN is not a power of two in 32..=256
    /// (the range the `rvv-vec` unit supports).
    VectorLength {
        /// Requested VLEN in bits.
        vlen_bits: u32,
    },
    /// The quantization mode does not match the operand width / ISA.
    QuantMismatch {
        /// Operand width.
        bits: BitWidth,
        /// ISA.
        isa: KernelIsa,
        /// Requested mode.
        quant: QuantMode,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroDimension { what } => {
                write!(f, "shape dimension {what} must be non-zero")
            }
            ConfigError::TooLarge { what } => {
                write!(f, "shape dimension {what} exceeds the generator limit")
            }
            ConfigError::Window { k, stride } => {
                write!(f, "unsupported pooling window {k}x{k}/s{stride}")
            }
            ConfigError::ChannelAlignment { in_c, bits } => write!(
                f,
                "in_c ({in_c}) × {bits} must pack into whole 32-bit words"
            ),
            ConfigError::OutChannelBlocking { out_c, need } => {
                write!(f, "out_c ({out_c}) must be a multiple of {need}")
            }
            ConfigError::OddPixels { pixels } => {
                write!(f, "output pixel count ({pixels}) must be even")
            }
            ConfigError::VectorLength { vlen_bits } => {
                write!(f, "VLEN {vlen_bits} must be a power of two in 32..=256")
            }
            ConfigError::QuantMismatch { bits, isa, quant } => {
                write!(f, "quantization {quant} is invalid for {bits} on {isa}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A fully specified convolution kernel to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvKernelConfig {
    /// Layer geometry.
    pub shape: ConvShape,
    /// Operand width of both activations and weights.
    pub bits: BitWidth,
    /// Output activation width. The paper benchmarks homogeneous layers
    /// (`out_bits == bits`); decoupling them supports the per-layer
    /// mixed-precision networks the paper's introduction motivates
    /// (Rusci et al.), e.g. 8-bit operands quantized to 4-bit outputs.
    pub out_bits: BitWidth,
    /// Available ISA.
    pub isa: KernelIsa,
    /// Re-quantization path (must produce `out_bits`).
    pub quant: QuantMode,
}

impl ConvKernelConfig {
    /// The paper's benchmark layer at the given width/ISA, using the
    /// hardware quantizer when available (`hw_quant` selects the Fig. 6
    /// software/hardware variants for sub-byte XpulpNN kernels).
    pub fn paper(bits: BitWidth, isa: KernelIsa, hw_quant: bool) -> ConvKernelConfig {
        let quant = match (bits, isa, hw_quant) {
            (BitWidth::W8, _, _) => QuantMode::Shift8 { shift: 8 },
            (_, KernelIsa::XpulpNN | KernelIsa::Vector { .. }, true) => QuantMode::HardwareQnt,
            _ => QuantMode::SoftwareTree,
        };
        ConvKernelConfig {
            shape: ConvShape::paper_benchmark(),
            bits,
            out_bits: bits,
            isa,
            quant,
        }
    }

    /// A mixed-precision layer: `bits`-wide operands re-quantized to
    /// `out_bits`-wide outputs (hardware quantizer / shift+clip on the
    /// XpulpNN core).
    pub fn mixed(shape: ConvShape, bits: BitWidth, out_bits: BitWidth) -> ConvKernelConfig {
        let quant = match out_bits {
            BitWidth::W8 => QuantMode::Shift8 { shift: 8 },
            _ => QuantMode::HardwareQnt,
        };
        ConvKernelConfig {
            shape,
            bits,
            out_bits,
            isa: KernelIsa::XpulpNN,
            quant,
        }
    }

    /// Output channels handled per channel-loop iteration (2, except 4
    /// for 2-bit outputs so results pack into whole bytes).
    pub fn channel_block(&self) -> usize {
        if self.out_bits == BitWidth::W2 {
            4
        } else {
            2
        }
    }

    /// Checks every generator precondition.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the violated rule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let s = &self.shape;
        for (what, dim) in [
            ("in_h", s.in_h),
            ("in_w", s.in_w),
            ("in_c", s.in_c),
            ("out_c", s.out_c),
            ("k_h", s.k_h),
            ("k_w", s.k_w),
            ("stride", s.stride),
        ] {
            if dim == 0 {
                return Err(ConfigError::ZeroDimension { what });
            }
        }
        if !(s.in_c * self.bits.bits() as usize).is_multiple_of(32) {
            return Err(ConfigError::ChannelAlignment {
                in_c: s.in_c,
                bits: self.bits,
            });
        }
        let need = self.channel_block();
        if !s.out_c.is_multiple_of(need) {
            return Err(ConfigError::OutChannelBlocking {
                out_c: s.out_c,
                need,
            });
        }
        if !s.pixels().is_multiple_of(2) {
            return Err(ConfigError::OddPixels { pixels: s.pixels() });
        }
        if let KernelIsa::Vector { vlen_bits } = self.isa {
            if !vlen_bits.is_power_of_two() || !(32..=256).contains(&vlen_bits) {
                return Err(ConfigError::VectorLength { vlen_bits });
            }
        }
        let ok = matches!(
            (self.out_bits, self.isa, self.quant),
            (BitWidth::W8, _, QuantMode::Shift8 { .. })
                | (BitWidth::W4 | BitWidth::W2, _, QuantMode::SoftwareTree)
                | (
                    BitWidth::W4 | BitWidth::W2,
                    KernelIsa::XpulpNN | KernelIsa::Vector { .. },
                    QuantMode::HardwareQnt
                )
        );
        if !ok {
            return Err(ConfigError::QuantMismatch {
                bits: self.out_bits,
                isa: self.isa,
                quant: self.quant,
            });
        }
        Ok(())
    }

    /// A short name for reports, e.g. `"4-bit/xpulpnn/pv.qnt"` (mixed
    /// precision shows the output width too: `"8-bit->4-bit/…"`).
    pub fn name(&self) -> String {
        if self.out_bits == self.bits {
            format!("{}/{}/{}", self.bits, self.isa, self.quant)
        } else {
            format!(
                "{}->{}/{}/{}",
                self.bits, self.out_bits, self.isa, self.quant
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        for bits in qnn::bits::ALL_WIDTHS {
            for isa in [
                KernelIsa::XpulpV2,
                KernelIsa::XpulpNN,
                KernelIsa::vector(128),
                KernelIsa::vector(256),
            ] {
                for hw in [false, true] {
                    let cfg = ConvKernelConfig::paper(bits, isa, hw);
                    cfg.validate()
                        .unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
                }
            }
        }
    }

    #[test]
    fn bad_vlen_rejected() {
        for vlen in [0, 24, 96, 512] {
            let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::vector(vlen), true);
            assert!(
                matches!(cfg.validate(), Err(ConfigError::VectorLength { vlen_bits }) if vlen_bits == vlen),
                "VLEN {vlen} must be rejected"
            );
        }
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::vector(64), true);
        cfg.validate().unwrap();
    }

    #[test]
    fn zero_dimensions_rejected() {
        for field in 0..7usize {
            let mut cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
            let s = &mut cfg.shape;
            *[
                &mut s.in_h,
                &mut s.in_w,
                &mut s.in_c,
                &mut s.out_c,
                &mut s.k_h,
                &mut s.k_w,
                &mut s.stride,
            ][field] = 0;
            assert!(
                matches!(cfg.validate(), Err(ConfigError::ZeroDimension { .. })),
                "field {field} = 0 must be rejected"
            );
        }
    }

    #[test]
    fn hw_quant_rejected_on_baseline() {
        let cfg = ConvKernelConfig {
            shape: ConvShape::paper_benchmark(),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpV2,
            quant: QuantMode::HardwareQnt,
        };
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::QuantMismatch { .. })
        ));
    }

    #[test]
    fn alignment_rules() {
        let mut cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        cfg.shape.in_c = 6; // 6 × 4 bits = 24: not word aligned
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::ChannelAlignment { .. })
        ));
        let mut cfg = ConvKernelConfig::paper(BitWidth::W2, KernelIsa::XpulpNN, true);
        cfg.shape.out_c = 6; // 2-bit needs multiples of 4
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutChannelBlocking { need: 4, .. })
        ));
        let mut cfg = ConvKernelConfig::paper(BitWidth::W8, KernelIsa::XpulpV2, false);
        cfg.shape.in_w = 15; // 15×16 = 240 pixels: still even; force odd:
        cfg.shape.in_h = 1;
        cfg.shape.k_h = 1;
        cfg.shape.k_w = 1;
        cfg.shape.pad = 0;
        // 1×15 output = 15 pixels (odd)
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OddPixels { pixels: 15 })
        ));
    }

    #[test]
    fn shift8_only_for_w8() {
        let cfg = ConvKernelConfig {
            shape: ConvShape::paper_benchmark(),
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::Shift8 { shift: 4 },
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn names_are_informative() {
        let cfg = ConvKernelConfig::paper(BitWidth::W2, KernelIsa::XpulpNN, true);
        assert_eq!(cfg.name(), "2-bit/xpulpnn/pv.qnt");
        let cfg = ConvKernelConfig::paper(BitWidth::W8, KernelIsa::XpulpV2, false);
        assert_eq!(cfg.name(), "8-bit/xpulpv2/shift8(8)");
        let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::vector(256), true);
        assert_eq!(cfg.name(), "4-bit/vector256/pv.qnt");
    }
}
