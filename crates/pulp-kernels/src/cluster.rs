//! Host-side cluster execution plan: TCDM allocation, work splitting,
//! and the DMA double-buffering schedule.
//!
//! The cluster runs the layer PULP-NN style: the output pixel pairs are
//! split into `tiles` bands processed in order, each band's pairs
//! divided contiguously across the harts. All operand tensors live in
//! L1 TCDM; the input image is streamed in band-sized increments so the
//! DMA transfer of band `t+1` overlaps the compute of band `t`
//! (double-buffering in the *address* dimension: descriptors of band
//! `t` only ever read input bytes below `input_prefix[t]`, so the next
//! band's suffix can land while the current band computes).
//!
//! Per-tile dispatch is data-driven: each hart owns a cursor word in
//! TCDM pointing at its next 16-byte [`ParamRecord`]; the kernel's
//! dispatch prologue (see [`crate::emit::cluster`]) pops one record per
//! tile and a sentinel record (`desc_ptr == 0`) terminates the run.

use crate::config::ConvKernelConfig;
use crate::descriptors::{im2col_descriptors, RunDesc, DESC_BYTES};
use crate::layout::LayerLayout;
use crate::runner::BuildError;
use pulp_soc::cluster::{DmaTransfer, TCDM_BASE, TCDM_SIZE};

/// Encoded size of one dispatch parameter record.
pub const PARAM_BYTES: u32 = 16;

/// Largest cluster the plan supports (the paper's cluster size).
pub const MAX_HARTS: usize = 8;

/// Maximum number of tiles (input bands) a layer is split into.
pub const MAX_TILES: usize = 4;

fn align(x: u32, a: u32) -> u32 {
    debug_assert!(a.is_power_of_two());
    (x + a - 1) & !(a - 1)
}

/// One per-hart, per-tile work assignment, read by the kernel's
/// dispatch prologue. The all-zero record is the exit sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamRecord {
    /// First im2col descriptor of the chunk (TCDM address); `0`
    /// terminates the hart.
    pub desc_ptr: u32,
    /// Output write pointer for the chunk's first pixel (TCDM address).
    pub out_ptr: u32,
    /// Pixel pairs in the chunk (`0` = idle this tile: straight to the
    /// barrier).
    pub pair_count: u32,
    /// This hart's private im2col double buffer (TCDM address).
    pub im2col_base: u32,
}

impl ParamRecord {
    /// The exit sentinel.
    pub const SENTINEL: ParamRecord = ParamRecord {
        desc_ptr: 0,
        out_ptr: 0,
        pair_count: 0,
        im2col_base: 0,
    };

    /// Serializes to the 16-byte on-device format (four LE words).
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0..4].copy_from_slice(&self.desc_ptr.to_le_bytes());
        out[4..8].copy_from_slice(&self.out_ptr.to_le_bytes());
        out[8..12].copy_from_slice(&self.pair_count.to_le_bytes());
        out[12..16].copy_from_slice(&self.im2col_base.to_le_bytes());
        out
    }
}

/// TCDM addresses of every buffer a cluster layer run touches.
///
/// The weight and threshold bases are 4 KiB-aligned so the kernel loads
/// them with a single `lui` — the same cost as the single-core kernel's
/// `li` of the (also 4 KiB-aligned) L2 addresses, keeping the per-pair
/// instruction streams cycle-identical between the two builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcdmLayout {
    /// Harts the layout was sized for.
    pub n_harts: usize,
    /// Input bands (see [`ClusterPlan`]).
    pub tiles: usize,
    /// Per-hart dispatch cursor words (`n_harts · 4` bytes, at
    /// [`TCDM_BASE`] so the kernel materialises the base with one
    /// `lui`). Consecutive cursors land in consecutive banks.
    pub cursors: u32,
    /// Parameter records, hart-major: record `(h, t)` at
    /// `params + (h · (tiles + 1) + t) · PARAM_BYTES`. Contiguous with
    /// `cursors` so one DMA transfer stages both.
    pub params: u32,
    /// im2col run descriptors (whole layer, encoded against
    /// [`TcdmLayout::input`]).
    pub descriptors: u32,
    /// Packed input image (filled in band prefixes by the DMA).
    pub input: u32,
    /// Per-hart im2col double buffers,
    /// [`TcdmLayout::im2col_stride`] apart.
    pub im2col: u32,
    /// Packed output image (written back to L2 after the last tile).
    pub output: u32,
    /// Per-channel threshold trees (sub-byte only; equals `weights`
    /// when absent).
    pub thresholds: u32,
    /// Packed weights.
    pub weights: u32,
    /// First free byte after the allocation.
    pub end: u32,
}

impl TcdmLayout {
    /// Allocates the TCDM for `cfg` on `n_harts` harts with `tiles`
    /// input bands.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] when the layer does not fit in the
    /// 128 KiB TCDM.
    pub fn new(cfg: &ConvKernelConfig, n_harts: usize, tiles: usize) -> Result<Self, BuildError> {
        assert!((1..=MAX_HARTS).contains(&n_harts), "1..=8 harts");
        assert!((1..=MAX_TILES).contains(&tiles), "1..=4 tiles");
        let s = &cfg.shape;
        let n = n_harts as u32;

        let cursors = TCDM_BASE;
        let params = cursors + n * 4;
        let params_bytes = n * (tiles as u32 + 1) * PARAM_BYTES;
        let descriptors = align(params + params_bytes, 16);
        let desc_bytes = (s.pixels() * s.k_h) as u32 * DESC_BYTES;
        let input = align(descriptors + desc_bytes, 16);
        let input_bytes = s.input_len() as u32 * cfg.bits.bits() / 8;
        let im2col = align(input + input_bytes, 16);
        let im2col_bytes = n * Self::im2col_stride(cfg);
        let output = align(im2col + im2col_bytes, 16);
        let output_bytes = s.pixels() as u32 * LayerLayout::out_pixel_bytes(cfg);
        let thresholds = align(output + output_bytes, 4096);
        let threshold_bytes = if cfg.out_bits.is_sub_byte() {
            s.out_c as u32 * riscv_core::quant::tree_stride(crate::emit::simd_fmt(cfg.out_bits))
        } else {
            0
        };
        let weights = align(thresholds + threshold_bytes, 4096);
        let weight_bytes = s.out_c as u32 * LayerLayout::weight_row_bytes(cfg);
        let end = weights + weight_bytes;

        if end > TCDM_BASE + TCDM_SIZE {
            return Err(BuildError::Tensor {
                what: "layer does not fit in cluster TCDM",
            });
        }
        Ok(TcdmLayout {
            n_harts,
            tiles,
            cursors,
            params,
            descriptors,
            input,
            im2col,
            output,
            thresholds,
            weights,
            end,
        })
    }

    /// Byte stride between consecutive harts' im2col double buffers:
    /// the two buffers plus one word of padding, so equally-offset
    /// accesses from different harts hit different TCDM banks.
    pub fn im2col_stride(cfg: &ConvKernelConfig) -> u32 {
        2 * LayerLayout::im2col_buffer_bytes(cfg) + 4
    }

    /// Hart `h`'s private im2col buffer base.
    pub fn hart_im2col(&self, cfg: &ConvKernelConfig, h: usize) -> u32 {
        debug_assert!(h < self.n_harts);
        self.im2col + h as u32 * Self::im2col_stride(cfg)
    }
}

/// Splits `total` items into `parts` contiguous chunks, sizes
/// differing by at most one (larger chunks first).
fn split(total: usize, parts: usize) -> Vec<(usize, usize)> {
    let base = total / parts;
    let extra = total % parts;
    let mut start = 0;
    (0..parts)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let r = (start, len);
            start += len;
            r
        })
        .collect()
}

/// The complete host-side plan for one cluster layer run.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    /// The kernel configuration.
    pub cfg: ConvKernelConfig,
    /// The TCDM allocation.
    pub tcdm: TcdmLayout,
    /// Dispatch records, hart-major (`(tiles + 1)` per hart, the last
    /// being the sentinel).
    pub records: Vec<ParamRecord>,
    /// The layer's im2col descriptors, encoded against
    /// [`TcdmLayout::input`].
    pub descriptors: Vec<RunDesc>,
    /// `input_prefix[t]` = packed input bytes that must be resident
    /// before band `t` runs (monotone; the DMA ships the deltas).
    pub input_prefix: Vec<u32>,
}

impl ClusterPlan {
    /// Number of input bands for a layer on `n_harts` harts: enough
    /// that DMA double-buffering has something to overlap, few enough
    /// that each hart still gets multi-pair chunks.
    pub fn tiles_for(cfg: &ConvKernelConfig, n_harts: usize) -> usize {
        let pairs = cfg.shape.pixels() / 2;
        (pairs / (n_harts * 4)).clamp(1, MAX_TILES)
    }

    /// Builds the plan for `cfg` on `n_harts` harts.
    ///
    /// # Errors
    ///
    /// [`BuildError::Config`] for invalid configurations,
    /// [`BuildError::Tensor`] when the layer does not fit in TCDM.
    pub fn new(cfg: &ConvKernelConfig, n_harts: usize) -> Result<ClusterPlan, BuildError> {
        cfg.validate().map_err(BuildError::Config)?;
        let tiles = Self::tiles_for(cfg, n_harts);
        let tcdm = TcdmLayout::new(cfg, n_harts, tiles)?;
        let s = &cfg.shape;
        let pairs = s.pixels() / 2;
        let descriptors = im2col_descriptors(cfg, tcdm.input);
        let out_pair_bytes = 2 * LayerLayout::out_pixel_bytes(cfg);
        let descs_per_pair = 2 * s.k_h as u32;

        // Hart-major record table; hart h's records are contiguous so a
        // single cursor walks them.
        let mut records = vec![ParamRecord::SENTINEL; n_harts * (tiles + 1)];
        let bands = split(pairs, tiles);
        for (t, &(band_start, band_len)) in bands.iter().enumerate() {
            for (h, &(off, len)) in split(band_len, n_harts).iter().enumerate() {
                let first_pair = (band_start + off) as u32;
                records[h * (tiles + 1) + t] = ParamRecord {
                    // Idle harts still need a non-zero pointer (zero is
                    // the exit sentinel); they skip straight to the
                    // barrier on pair_count == 0.
                    desc_ptr: tcdm.descriptors + first_pair * descs_per_pair * DESC_BYTES,
                    out_ptr: tcdm.output + first_pair * out_pair_bytes,
                    pair_count: len as u32,
                    im2col_base: tcdm.hart_im2col(cfg, h),
                };
            }
        }

        // Input residency per band: the largest byte the band's
        // descriptors read, accumulated monotonically.
        let mut input_prefix = Vec::with_capacity(tiles);
        let mut high = 0u32;
        for &(band_start, band_len) in &bands {
            let d0 = band_start * 2 * s.k_h;
            let d1 = (band_start + band_len) * 2 * s.k_h;
            for d in &descriptors[d0..d1] {
                if d.copy > 0 {
                    high = high.max(d.src + d.copy as u32 - tcdm.input);
                }
            }
            input_prefix.push(high);
        }

        Ok(ClusterPlan {
            cfg: *cfg,
            tcdm,
            records,
            descriptors,
            input_prefix,
        })
    }

    /// Number of barrier-delimited execution regions: one per tile,
    /// plus the final region that drains the sentinel and halts.
    pub fn regions(&self) -> usize {
        self.tcdm.tiles + 1
    }

    /// The cursor-table + record-table memory image, staged contiguous
    /// in L2 and DMA'd to [`TcdmLayout::cursors`] in one transfer.
    pub fn param_image(&self) -> Vec<u8> {
        let tiles = self.tcdm.tiles;
        let mut image = Vec::with_capacity(self.records.len() * 16 + self.tcdm.n_harts * 4);
        for h in 0..self.tcdm.n_harts {
            let cursor = self.tcdm.params + (h * (tiles + 1)) as u32 * PARAM_BYTES;
            image.extend_from_slice(&cursor.to_le_bytes());
        }
        for r in &self.records {
            image.extend_from_slice(&r.encode());
        }
        image
    }

    /// L2 staging address of the [`ClusterPlan::param_image`]: right
    /// after the encoded descriptor stream in the descriptor region.
    pub fn l2_param_addr(&self, l2: &LayerLayout) -> u32 {
        let desc_bytes = self.descriptors.len() as u32 * DESC_BYTES;
        align(l2.descriptors + desc_bytes, 16)
    }

    /// The DMA transfers issued before any hart starts: dispatch
    /// tables, descriptors, weights, thresholds, and input band 0.
    pub fn prologue_transfers(&self, l2: &LayerLayout) -> Vec<DmaTransfer> {
        let s = &self.cfg.shape;
        let mut v = vec![
            DmaTransfer {
                src: self.l2_param_addr(l2),
                dst: self.tcdm.cursors,
                bytes: self.param_image().len() as u32,
            },
            DmaTransfer {
                src: l2.descriptors,
                dst: self.tcdm.descriptors,
                bytes: self.descriptors.len() as u32 * DESC_BYTES,
            },
            DmaTransfer {
                src: l2.weights,
                dst: self.tcdm.weights,
                bytes: s.out_c as u32 * LayerLayout::weight_row_bytes(&self.cfg),
            },
        ];
        if self.cfg.out_bits.is_sub_byte() {
            v.push(DmaTransfer {
                src: l2.thresholds,
                dst: self.tcdm.thresholds,
                bytes: s.out_c as u32
                    * riscv_core::quant::tree_stride(crate::emit::simd_fmt(self.cfg.out_bits)),
            });
        }
        v.push(DmaTransfer {
            src: l2.input,
            dst: self.tcdm.input,
            bytes: self.input_prefix[0],
        });
        v
    }

    /// The input delta shipped *during* region `t` (0-based): the bytes
    /// band `t + 1` needs beyond band `t`'s prefix. `None` when there
    /// is no next band (or the delta is empty).
    pub fn band_transfer(&self, l2: &LayerLayout, t: usize) -> Option<DmaTransfer> {
        let next = *self.input_prefix.get(t + 1)?;
        let have = self.input_prefix[t];
        (next > have).then(|| DmaTransfer {
            src: l2.input + have,
            dst: self.tcdm.input + have,
            bytes: next - have,
        })
    }

    /// The final output write-back to L2.
    pub fn writeback(&self, l2: &LayerLayout) -> DmaTransfer {
        DmaTransfer {
            src: self.tcdm.output,
            dst: l2.output,
            bytes: self.cfg.shape.pixels() as u32 * LayerLayout::out_pixel_bytes(&self.cfg),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{KernelIsa, QuantMode};
    use qnn::conv::ConvShape;
    use qnn::BitWidth;

    fn paper(bits: BitWidth) -> ConvKernelConfig {
        ConvKernelConfig::paper(bits, KernelIsa::XpulpNN, bits != BitWidth::W8)
    }

    #[test]
    fn split_is_contiguous_and_balanced() {
        for total in [0, 1, 7, 8, 128] {
            for parts in [1, 2, 4, 8] {
                let chunks = split(total, parts);
                assert_eq!(chunks.len(), parts);
                let mut next = 0;
                for &(start, len) in &chunks {
                    assert_eq!(start, next);
                    next += len;
                }
                assert_eq!(next, total);
                let lens: Vec<_> = chunks.iter().map(|c| c.1).collect();
                let (lo, hi) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
                assert!(hi - lo <= 1);
            }
        }
    }

    #[test]
    fn paper_layers_fit_tcdm_at_every_width_and_size() {
        for bits in qnn::bits::ALL_WIDTHS {
            for n in [1, 2, 4, 8] {
                let cfg = paper(bits);
                let plan = ClusterPlan::new(&cfg, n).unwrap();
                assert!(plan.tcdm.end <= TCDM_BASE + TCDM_SIZE);
                assert_eq!(plan.tcdm.weights % 4096, 0, "weights must be lui-only");
                assert_eq!(plan.tcdm.thresholds % 4096, 0);
            }
        }
        // The 2-bit baseline has the largest im2col buffers.
        let cfg = ConvKernelConfig::paper(BitWidth::W2, KernelIsa::XpulpV2, false);
        ClusterPlan::new(&cfg, 8).unwrap();
    }

    #[test]
    fn records_cover_all_pairs_exactly_once() {
        let cfg = paper(BitWidth::W4);
        let plan = ClusterPlan::new(&cfg, 8).unwrap();
        let tiles = plan.tcdm.tiles;
        assert_eq!(tiles, 4);
        let out_pair = 2 * LayerLayout::out_pixel_bytes(&cfg);
        let mut covered = vec![false; cfg.shape.pixels() / 2];
        for h in 0..8 {
            // Every hart's table ends in the sentinel.
            assert_eq!(plan.records[h * (tiles + 1) + tiles], ParamRecord::SENTINEL);
            for t in 0..tiles {
                let r = plan.records[h * (tiles + 1) + t];
                assert_ne!(r.desc_ptr, 0, "live records never alias the sentinel");
                assert_eq!(r.im2col_base, plan.tcdm.hart_im2col(&cfg, h));
                let first = (r.out_ptr - plan.tcdm.output) / out_pair;
                for p in first..first + r.pair_count {
                    assert!(!covered[p as usize], "pair {p} assigned twice");
                    covered[p as usize] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "all pairs assigned");
    }

    #[test]
    fn input_prefixes_are_monotone_and_sufficient() {
        for bits in qnn::bits::ALL_WIDTHS {
            let cfg = paper(bits);
            let plan = ClusterPlan::new(&cfg, 8).unwrap();
            let mut prev = 0;
            for &p in &plan.input_prefix {
                assert!(p >= prev);
                assert_eq!(p % 4, 0, "word-aligned DMA increments");
                prev = p;
            }
            let input_bytes = cfg.shape.input_len() as u32 * cfg.bits.bits() / 8;
            assert_eq!(
                *plan.input_prefix.last().unwrap(),
                input_bytes,
                "last band reaches the end of the input"
            );
            // Band deltas reassemble the prologue + band transfers.
            let l2 = LayerLayout::default_for_l2();
            let mut shipped = plan.prologue_transfers(&l2).last().unwrap().bytes;
            for t in 0..plan.tcdm.tiles {
                if let Some(x) = plan.band_transfer(&l2, t) {
                    assert_eq!(x.dst - plan.tcdm.input, shipped);
                    shipped += x.bytes;
                }
            }
            assert_eq!(shipped, input_bytes);
        }
    }

    #[test]
    fn small_layer_collapses_to_one_tile() {
        let cfg = ConvKernelConfig {
            shape: ConvShape {
                in_h: 4,
                in_w: 4,
                in_c: 16,
                out_c: 8,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            bits: BitWidth::W4,
            out_bits: BitWidth::W4,
            isa: KernelIsa::XpulpNN,
            quant: QuantMode::HardwareQnt,
        };
        let plan = ClusterPlan::new(&cfg, 8).unwrap();
        assert_eq!(plan.tcdm.tiles, 1);
        assert_eq!(plan.regions(), 2);
        // 8 pairs over 8 harts: one pair each.
        for h in 0..8 {
            assert_eq!(plan.records[h * 2].pair_count, 1);
        }
        assert!(plan
            .band_transfer(&LayerLayout::default_for_l2(), 0)
            .is_none());
    }

    #[test]
    fn param_image_round_trips_cursors() {
        let cfg = paper(BitWidth::W2);
        let plan = ClusterPlan::new(&cfg, 4).unwrap();
        let image = plan.param_image();
        assert_eq!(
            image.len(),
            4 * 4 + plan.records.len() * PARAM_BYTES as usize
        );
        // Cursor 0 points at hart 0's first record.
        let c0 = u32::from_le_bytes(image[0..4].try_into().unwrap());
        assert_eq!(c0, plan.tcdm.params);
        // The param image stays inside the L2 descriptor region.
        let l2 = LayerLayout::default_for_l2();
        assert!(plan.l2_param_addr(&l2) + image.len() as u32 <= l2.im2col);
    }
}
