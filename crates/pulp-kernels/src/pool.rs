//! Pooling and ReLU kernels.
//!
//! The paper motivates the SIMD `pv.max`/`pv.min`/`pv.avg` instructions
//! with "average/maximum pooling QNN layers, as well as the ReLU
//! activation function" (§III-A). This module generates those kernels in
//! two flavours per operand width:
//!
//! * **SIMD** — lane-parallel over packed HWC tensors: one `pv.maxu`
//!   (or `pv.avgu` cascade) per 32-bit word covers 4/8/16 channels;
//! * **scalar baseline** — what a core without packed-SIMD support for
//!   the width does: byte-wise `lbu` + `p.maxu` over an 8-bit-unpacked
//!   tensor.
//!
//! Both are verified against the golden [`qnn::pool`] models; the cycle
//! ratio is the pooling counterpart of the paper's MatMul speedups.

use crate::config::ConfigError;
use crate::layout::LayerLayout;
use crate::runner::BuildError;
use pulp_asm::{Asm, Program};
use pulp_isa::instr::{Instr, LoopIdx, SimdAluOp, SimdOperand};
use pulp_isa::Reg::{self, *};
use pulp_soc::{RunReport, Soc};
use qnn::pool::PoolShape;
use qnn::rng::TensorRng;
use qnn::tensor::QuantTensor;
use qnn::BitWidth;
use riscv_core::{IsaConfig, Trap};
use std::fmt;

/// Which pooling operation to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolOp {
    /// Max pooling (window 2 or 3, any stride).
    Max,
    /// 2×2/stride-2 average pooling via the `pv.avgu` cascade.
    Avg2x2,
}

impl fmt::Display for PoolOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolOp::Max => f.write_str("maxpool"),
            PoolOp::Avg2x2 => f.write_str("avgpool2x2"),
        }
    }
}

/// A pooling kernel to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolKernelConfig {
    /// Layer geometry.
    pub shape: PoolShape,
    /// Logical operand width of the activations.
    pub bits: BitWidth,
    /// Operation.
    pub op: PoolOp,
    /// SIMD (packed) or scalar-baseline (8-bit unpacked) kernel.
    pub simd: bool,
}

impl PoolKernelConfig {
    /// Checks generator preconditions.
    ///
    /// # Errors
    ///
    /// [`ConfigError::ZeroDimension`] for degenerate shapes,
    /// [`ConfigError::Window`] for unsupported window geometry (only
    /// 2×2 and 3×3 windows; the average kernel is 2×2/s2 only), and
    /// [`ConfigError::ChannelAlignment`] when packed channel groups are
    /// not whole words (SIMD kernels only).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let s = &self.shape;
        for (what, dim) in [
            ("in_h", s.in_h),
            ("in_w", s.in_w),
            ("c", s.c),
            ("stride", s.stride),
        ] {
            if dim == 0 {
                return Err(ConfigError::ZeroDimension { what });
            }
        }
        if !matches!(s.k, 2 | 3) {
            return Err(ConfigError::Window {
                k: s.k,
                stride: s.stride,
            });
        }
        if self.op == PoolOp::Avg2x2 && !(s.k == 2 && s.stride == 2) {
            return Err(ConfigError::Window {
                k: s.k,
                stride: s.stride,
            });
        }
        if self.simd && !(self.shape.c * self.bits.bits() as usize).is_multiple_of(32) {
            return Err(ConfigError::ChannelAlignment {
                in_c: self.shape.c,
                bits: self.bits,
            });
        }
        Ok(())
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        let kind = if self.simd { "simd" } else { "scalar" };
        format!("{}/{}/{}", self.op, self.bits, kind)
    }
}

fn maxu(a: &mut Asm, fmt: pulp_isa::SimdFmt, rd: Reg, rs1: Reg, rs2: Reg) {
    a.i(Instr::PvAlu {
        op: SimdAluOp::Maxu,
        fmt,
        rd,
        rs1,
        op2: SimdOperand::Vector(rs2),
    });
}

fn avgu(a: &mut Asm, fmt: pulp_isa::SimdFmt, rd: Reg, rs1: Reg, rs2: Reg) {
    a.i(Instr::PvAlu {
        op: SimdAluOp::Avgu,
        fmt,
        rd,
        rs1,
        op2: SimdOperand::Vector(rs2),
    });
}

/// Emits the SIMD pooling kernel over the packed tensor.
///
/// Register plan: `a3` current-output-row input base, `a7` input row
/// stride constant, `a1`/`a2` oy/ox counters, `a5` output pointer,
/// `s2`–`s4` window row pointers, `t0`/`t1` data.
fn build_simd_pool(
    cfg: &PoolKernelConfig,
    layout: &LayerLayout,
) -> Result<Program, pulp_asm::AsmError> {
    let s = cfg.shape;
    let fmt = crate::emit::simd_fmt(cfg.bits);
    let c_bytes = (s.c * cfg.bits.bits() as usize / 8) as i32;
    let c_words = c_bytes / 4;
    let row_bytes = (s.in_w as i32) * c_bytes;
    let rows: &[Reg] = if s.k == 2 { &[S2, S3] } else { &[S2, S3, S4] };

    let mut a = Asm::new(pulp_soc::CODE_BASE);
    a.li(A5, layout.output as i32);
    a.li(A7, row_bytes);
    a.li(A6, layout.input as i32); // current output-row base
    a.li(A1, s.out_h() as i32);
    a.label("oy_loop");
    a.mv(A3, A6);
    a.li(A2, s.out_w() as i32);
    a.label("ox_loop");
    // Window row pointers.
    a.mv(S2, A3);
    a.add(S3, A3, A7);
    if s.k == 3 {
        a.add(S4, S3, A7);
    }
    a.li(T6, c_words);
    a.lp_setup(LoopIdx::L0, T6, "cw_end");
    {
        // First element: row 0, col 0 (post-increment walks the channel
        // words); remaining window elements via immediate offsets.
        a.p_lw_postinc(T0, 4, rows[0]);
        for dx in 1..s.k {
            a.lw(T1, (dx as i32) * c_bytes - 4, rows[0]);
            if cfg.op == PoolOp::Max {
                maxu(&mut a, fmt, T0, T0, T1);
            } else {
                avgu(&mut a, fmt, T0, T0, T1);
            }
        }
        for (r, row) in rows.iter().enumerate().skip(1) {
            a.p_lw_postinc(T1, 4, *row);
            if cfg.op == PoolOp::Max {
                maxu(&mut a, fmt, T0, T0, T1);
                for dx in 1..s.k {
                    a.lw(T2, (dx as i32) * c_bytes - 4, *row);
                    maxu(&mut a, fmt, T0, T0, T2);
                }
            } else {
                // Cascade: t1 = avg(row1 col0, row1 col1); t0 already
                // avg(row0 col0, row0 col1); final avg(t0, t1).
                a.lw(T2, c_bytes - 4, *row);
                avgu(&mut a, fmt, T1, T1, T2);
                avgu(&mut a, fmt, T0, T0, T1);
            }
            let _ = r;
        }
        a.p_sw_postinc(T0, 4, A5);
    }
    a.label("cw_end");
    a.addi(A3, A3, (s.stride as i32) * c_bytes);
    a.addi(A2, A2, -1);
    a.bne(A2, Zero, "ox_loop");
    for _ in 0..s.stride {
        a.add(A6, A6, A7);
    }
    a.addi(A1, A1, -1);
    a.bne(A1, Zero, "oy_loop");
    a.li(A0, 0);
    a.ecall();
    a.assemble()
}

/// Emits the scalar-baseline pooling kernel over the 8-bit-unpacked
/// tensor: `lbu` + `p.maxu` per element (average baseline: add + shift).
fn build_scalar_pool(
    cfg: &PoolKernelConfig,
    layout: &LayerLayout,
) -> Result<Program, pulp_asm::AsmError> {
    let s = cfg.shape;
    let c_bytes = s.c as i32; // one byte per channel, unpacked
    let row_bytes = (s.in_w as i32) * c_bytes;
    let rows: &[Reg] = if s.k == 2 { &[S2, S3] } else { &[S2, S3, S4] };

    let mut a = Asm::new(pulp_soc::CODE_BASE);
    a.li(A5, layout.output as i32);
    a.li(A7, row_bytes);
    a.li(A6, layout.input as i32);
    a.li(A1, s.out_h() as i32);
    a.label("oy_loop");
    a.mv(A3, A6);
    a.li(A2, s.out_w() as i32);
    a.label("ox_loop");
    a.mv(S2, A3);
    a.add(S3, A3, A7);
    if s.k == 3 {
        a.add(S4, S3, A7);
    }
    a.li(T6, c_bytes);
    a.lp_setup(LoopIdx::L0, T6, "ch_end");
    {
        a.i(Instr::LoadPostInc {
            kind: pulp_isa::LoadKind::ByteU,
            rd: T0,
            rs1: S2,
            offset: 1,
        });
        let combine = |a: &mut Asm, dst: Reg, src: Reg| {
            if cfg.op == PoolOp::Max {
                a.i(Instr::PulpAlu {
                    op: pulp_isa::instr::PulpAluOp::Maxu,
                    rd: dst,
                    rs1: dst,
                    rs2: src,
                });
            } else {
                a.add(dst, dst, src);
            }
        };
        for dx in 1..s.k {
            a.lbu(T1, (dx as i32) * c_bytes - 1, S2);
            combine(&mut a, T0, T1);
        }
        for row in rows.iter().skip(1) {
            a.i(Instr::LoadPostInc {
                kind: pulp_isa::LoadKind::ByteU,
                rd: T1,
                rs1: *row,
                offset: 1,
            });
            combine(&mut a, T0, T1);
            for dx in 1..s.k {
                a.lbu(T2, (dx as i32) * c_bytes - 1, *row);
                combine(&mut a, T0, T2);
            }
        }
        if cfg.op == PoolOp::Avg2x2 {
            a.srli(T0, T0, 2);
        }
        a.p_sb_postinc(T0, 1, A5);
    }
    a.label("ch_end");
    a.addi(A3, A3, (s.stride as i32) * c_bytes);
    a.addi(A2, A2, -1);
    a.bne(A2, Zero, "ox_loop");
    for _ in 0..s.stride {
        a.add(A6, A6, A7);
    }
    a.addi(A1, A1, -1);
    a.bne(A1, Zero, "oy_loop");
    a.li(A0, 0);
    a.ecall();
    a.assemble()
}

/// Builds a SIMD ReLU kernel over a signed 8-bit tensor of `len`
/// elements: one `pv.max.sci.b rd, rs1, 0` per four elements, in a
/// zero-overhead hardware loop.
///
/// # Errors
///
/// Propagates assembler errors (emitter bugs).
///
/// # Panics
///
/// Panics unless `len` is a multiple of 4 (whole words).
pub fn build_relu_program(len: usize, layout: &LayerLayout) -> Result<Program, pulp_asm::AsmError> {
    assert_eq!(len % 4, 0, "ReLU kernel processes whole words");
    let mut a = Asm::new(pulp_soc::CODE_BASE);
    a.li(A1, layout.input as i32);
    a.li(A2, layout.output as i32);
    a.li(T6, (len / 4) as i32);
    a.lp_setup(LoopIdx::L0, T6, "relu_end");
    a.p_lw_postinc(T0, 4, A1);
    a.i(Instr::PvAlu {
        op: SimdAluOp::Max,
        fmt: pulp_isa::SimdFmt::Byte,
        rd: T0,
        rs1: T0,
        op2: SimdOperand::Imm(0),
    });
    a.p_sw_postinc(T0, 4, A2);
    a.label("relu_end");
    a.li(A0, 0);
    a.ecall();
    a.assemble()
}

/// Runs the ReLU kernel on synthetic signed 8-bit data and verifies it
/// against [`qnn::pool::relu`].
///
/// # Errors
///
/// Build errors or simulator traps.
pub fn run_relu(len: usize, seed: u64) -> Result<PoolRunResult, BuildError> {
    let layout = LayerLayout::default_for_l2();
    let program = build_relu_program(len, &layout).map_err(BuildError::Asm)?;
    let mut rng = TensorRng::new(seed);
    let input = rng.weights(BitWidth::W8, len); // signed bytes
    let mut soc = Soc::new(IsaConfig::xpulpnn());
    soc.load(&program);
    soc.mem.write_bytes(layout.input, &input.pack());
    let report = soc.run(10_000_000).map_err(BuildError::Trap)?;
    let packed = soc.mem.read_bytes(layout.output, len);
    let output: Vec<i16> = packed.iter().map(|&b| b as i8 as i16).collect();
    let golden = qnn::pool::relu(input.values());
    Ok(PoolRunResult {
        report,
        output,
        golden,
    })
}

/// Result of a verified pooling run.
#[derive(Debug, Clone)]
pub struct PoolRunResult {
    /// Exit status + counters.
    pub report: RunReport,
    /// Device output (logical values).
    pub output: Vec<i16>,
    /// Golden output.
    pub golden: Vec<i16>,
}

impl PoolRunResult {
    /// Device output equals the golden model.
    pub fn matches(&self) -> bool {
        self.output == self.golden
    }

    /// Kernel cycles.
    pub fn cycles(&self) -> u64 {
        self.report.perf.cycles
    }
}

/// A ready-to-run pooling layer.
#[derive(Debug, Clone)]
pub struct PoolTestbench {
    /// Configuration.
    pub cfg: PoolKernelConfig,
    /// The generated program.
    pub program: Program,
    layout: LayerLayout,
    input: QuantTensor,
}

impl PoolTestbench {
    /// Builds the kernel and a deterministic synthetic input.
    ///
    /// # Errors
    ///
    /// [`BuildError`] on invalid configuration or emitter bugs.
    pub fn new(cfg: PoolKernelConfig, seed: u64) -> Result<PoolTestbench, BuildError> {
        cfg.validate().map_err(BuildError::Config)?;
        let layout = LayerLayout::default_for_l2();
        let program = if cfg.simd {
            build_simd_pool(&cfg, &layout)
        } else {
            build_scalar_pool(&cfg, &layout)
        }
        .map_err(BuildError::Asm)?;
        let mut rng = TensorRng::new(seed);
        let input = rng.activations(cfg.bits, cfg.shape.input_len());
        Ok(PoolTestbench {
            cfg,
            program,
            layout,
            input,
        })
    }

    /// The watchdog budget [`PoolTestbench::run`] applies.
    pub fn cycle_budget(&self) -> u64 {
        50_000_000
    }

    /// Runs the kernel and verifies against the golden model.
    ///
    /// # Errors
    ///
    /// Propagates simulator traps.
    pub fn run(&self) -> Result<PoolRunResult, Trap> {
        match self.run_with_input(self.input.values()) {
            Ok(r) => Ok(r),
            Err(BuildError::Trap(t)) => Err(t),
            // The testbench's own tensors always fit the configuration.
            Err(e) => unreachable!("self-generated tensors rejected: {e}"),
        }
    }

    /// Loads the program and caller-supplied activations into a fresh
    /// SoC, ready to run.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] if `input` has the wrong length or
    /// out-of-range values.
    pub fn stage_with_input(&self, input: &[i16]) -> Result<Soc, BuildError> {
        if input.len() != self.cfg.shape.input_len() {
            return Err(BuildError::Tensor {
                what: "input length mismatch",
            });
        }
        let tensor = QuantTensor::activations(self.cfg.bits, input.to_vec()).map_err(|_| {
            BuildError::Tensor {
                what: "input outside the activation range",
            }
        })?;
        let mut soc = Soc::new(IsaConfig::xpulpnn());
        soc.load(&self.program);
        // SIMD kernels read the packed tensor; the scalar baseline reads
        // it unpacked to one byte per element.
        let bytes = if self.cfg.simd {
            tensor.pack()
        } else {
            tensor.values().iter().map(|&v| v as u8).collect()
        };
        soc.mem.write_bytes(self.layout.input, &bytes);
        Ok(soc)
    }

    /// Unpacks the device output of a staged run and pairs it with the
    /// golden model for `input`.
    pub fn collect(&self, soc: &Soc, report: RunReport, input: &[i16]) -> PoolRunResult {
        let out_len = self.cfg.shape.output_len();
        let output = if self.cfg.simd {
            let packed = soc.mem.read_bytes(
                self.layout.output,
                qnn::tensor::packed_len(self.cfg.bits, out_len),
            );
            qnn::tensor::unpack(self.cfg.bits, false, packed, out_len)
        } else {
            soc.mem
                .read_bytes(self.layout.output, out_len)
                .iter()
                .map(|&b| b as i16)
                .collect()
        };
        PoolRunResult {
            report,
            output,
            golden: self.golden(input),
        }
    }

    /// The golden software-model output for `input`.
    pub fn golden(&self, input: &[i16]) -> Vec<i16> {
        match (self.cfg.op, self.cfg.simd) {
            (PoolOp::Max, _) => qnn::pool::maxpool(&self.cfg.shape, input),
            // The SIMD kernel averages pairwise (pv.avgu cascade); the
            // scalar baseline accumulates and shifts (exact sum/4).
            (PoolOp::Avg2x2, true) => qnn::pool::avgpool_2x2_cascaded(&self.cfg.shape, input),
            (PoolOp::Avg2x2, false) => qnn::pool::avgpool(&self.cfg.shape, input),
        }
    }

    /// Runs with caller-supplied activations, e.g. to chain layers.
    ///
    /// # Errors
    ///
    /// [`BuildError::Tensor`] for unusable inputs; [`BuildError::Trap`]
    /// for simulator traps.
    pub fn run_with_input(&self, input: &[i16]) -> Result<PoolRunResult, BuildError> {
        let mut soc = self.stage_with_input(input)?;
        let report = soc.run(self.cycle_budget()).map_err(BuildError::Trap)?;
        Ok(self.collect(&soc, report, input))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(c: usize) -> PoolShape {
        PoolShape {
            in_h: 8,
            in_w: 8,
            c,
            k: 2,
            stride: 2,
        }
    }

    fn check(cfg: PoolKernelConfig, seed: u64) -> PoolRunResult {
        let tb = PoolTestbench::new(cfg, seed).unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        let r = tb.run().unwrap_or_else(|e| panic!("{}: {e}", cfg.name()));
        assert!(r.report.exit.halted, "{}", cfg.name());
        if !r.matches() {
            let diffs: Vec<_> = r
                .output
                .iter()
                .zip(&r.golden)
                .enumerate()
                .filter(|(_, (a, b))| a != b)
                .take(6)
                .collect();
            panic!("{}: mismatch {diffs:?}", cfg.name());
        }
        r
    }

    #[test]
    fn simd_maxpool_all_widths() {
        for bits in qnn::bits::ALL_WIDTHS {
            let c = (32 / bits.bits() as usize) * 2;
            check(
                PoolKernelConfig {
                    shape: shape(c),
                    bits,
                    op: PoolOp::Max,
                    simd: true,
                },
                21,
            );
        }
    }

    #[test]
    fn simd_maxpool_3x3_window() {
        let s = PoolShape {
            in_h: 9,
            in_w: 9,
            c: 8,
            k: 3,
            stride: 3,
        };
        check(
            PoolKernelConfig {
                shape: s,
                bits: BitWidth::W4,
                op: PoolOp::Max,
                simd: true,
            },
            22,
        );
        let s = PoolShape {
            in_h: 7,
            in_w: 7,
            c: 4,
            k: 3,
            stride: 1,
        };
        check(
            PoolKernelConfig {
                shape: s,
                bits: BitWidth::W8,
                op: PoolOp::Max,
                simd: true,
            },
            23,
        );
    }

    #[test]
    fn simd_avgpool_all_widths() {
        for bits in qnn::bits::ALL_WIDTHS {
            let c = (32 / bits.bits() as usize) * 2;
            check(
                PoolKernelConfig {
                    shape: shape(c),
                    bits,
                    op: PoolOp::Avg2x2,
                    simd: true,
                },
                24,
            );
        }
    }

    #[test]
    fn scalar_baseline_matches_golden() {
        for op in [PoolOp::Max, PoolOp::Avg2x2] {
            check(
                PoolKernelConfig {
                    shape: shape(16),
                    bits: BitWidth::W8,
                    op,
                    simd: false,
                },
                25,
            );
        }
    }

    #[test]
    fn scalar_avg_equals_cascade_for_byte_inputs() {
        // The scalar baseline computes sum>>2; for the golden comparison
        // to hold we verify against the cascade — confirm the two agree
        // on this seed's data or the test above would already fail.
        // Here we only check it runs for sub-byte logical widths too
        // (data range 0..=3 keeps sum>>2 == cascade).
        check(
            PoolKernelConfig {
                shape: shape(16),
                bits: BitWidth::W2,
                op: PoolOp::Max,
                simd: false,
            },
            26,
        );
    }

    #[test]
    fn simd_beats_scalar_by_lane_factor() {
        let c = 32;
        let mk = |simd| PoolKernelConfig {
            shape: shape(c),
            bits: BitWidth::W8,
            op: PoolOp::Max,
            simd,
        };
        let fast = check(mk(true), 27).cycles();
        let slow = check(mk(false), 27).cycles();
        let ratio = slow as f64 / fast as f64;
        // 4 lanes per word at 8-bit: expect roughly 3–5×.
        assert!((2.5..6.0).contains(&ratio), "simd/scalar ratio {ratio:.2}");
    }

    #[test]
    fn relu_kernel_matches_golden() {
        let r = run_relu(256, 31).unwrap();
        assert!(r.matches());
        // One word per 4 elements, 3 instructions per word, zero loop
        // overhead: ~3 cycles per word plus prologue.
        assert!(r.cycles() < (256 / 4 * 3 + 20) as u64);
    }

    #[test]
    fn misaligned_channels_rejected_for_simd() {
        let cfg = PoolKernelConfig {
            shape: shape(3),
            bits: BitWidth::W8,
            op: PoolOp::Max,
            simd: true,
        };
        assert!(matches!(
            PoolTestbench::new(cfg, 0),
            Err(BuildError::Config(ConfigError::ChannelAlignment { .. }))
        ));
    }
}
