//! Golden disassembly snapshots of every emitted kernel variant.
//!
//! Each paper configuration's full program listing (labels, addresses,
//! encodings, mnemonics) is pinned under `tests/golden/*.s`. Any change
//! to the emitters (`emit/conv.rs`, `emit/im2col.rs`, `emit/matmul.rs`,
//! `emit/quant.rs`) that alters generated code shows up as a readable
//! diff against the snapshot instead of a silent cycle-count shift.
//!
//! To re-bless after an intentional emitter change:
//!
//! ```text
//! XPULPNN_BLESS=1 cargo test -p pulp-kernels --test golden_listings
//! ```

use std::collections::BTreeMap;
use std::path::PathBuf;

use pulp_kernels::emit::build_conv_program;
use pulp_kernels::{ConvKernelConfig, KernelIsa, LayerLayout, QuantMode};
use qnn::BitWidth;

const BLESS_ENV: &str = "XPULPNN_BLESS";

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Filesystem-safe snapshot name for a configuration.
fn slug(cfg: &ConvKernelConfig) -> String {
    let quant = match cfg.quant {
        QuantMode::Shift8 { .. } => "shift8",
        QuantMode::SoftwareTree => "swtree",
        QuantMode::HardwareQnt => "pvqnt",
    };
    format!("conv_{}b_{}_{}", cfg.bits.bits(), cfg.isa, quant)
}

/// The paper's width × ISA × quantizer matrix, deduplicated (the
/// constructor collapses `hw_quant` where `pv.qnt` does not exist).
fn paper_variants() -> BTreeMap<String, ConvKernelConfig> {
    let mut variants = BTreeMap::new();
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        for isa in [
            KernelIsa::XpulpV2,
            KernelIsa::XpulpNN,
            KernelIsa::vector(128),
        ] {
            for hw in [false, true] {
                let cfg = ConvKernelConfig::paper(bits, isa, hw);
                variants.entry(slug(&cfg)).or_insert(cfg);
            }
        }
    }
    variants
}

#[test]
fn emitted_kernels_match_golden_listings() {
    let bless = std::env::var(BLESS_ENV).is_ok();
    let dir = golden_dir();
    let layout = LayerLayout::default_for_l2();
    let mut mismatches = Vec::new();
    for (name, cfg) in paper_variants() {
        let prog = build_conv_program(&cfg, &layout).expect("emit");
        let listing = format!(
            "# {} ({} instructions)\n{}",
            cfg.name(),
            prog.instrs.len(),
            prog.listing()
        );
        let path = dir.join(format!("{name}.s"));
        if bless {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &listing).expect("write snapshot");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {}: {e}\nre-bless with {BLESS_ENV}=1 cargo test -p pulp-kernels --test golden_listings",
                path.display()
            )
        });
        if want != listing {
            let diverges = want
                .lines()
                .zip(listing.lines())
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| want.lines().count().min(listing.lines().count()));
            mismatches.push(format!(
                "{name}: first differing line {}\n  golden : {}\n  emitted: {}",
                diverges + 1,
                want.lines().nth(diverges).unwrap_or("<eof>"),
                listing.lines().nth(diverges).unwrap_or("<eof>"),
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "emitted kernels differ from golden snapshots \
         (re-bless with {BLESS_ENV}=1 if intentional):\n{}",
        mismatches.join("\n")
    );
}

/// The snapshot set covers every distinct paper variant and nothing
/// else is lying around stale in the golden directory.
#[test]
fn golden_directory_is_exactly_the_variant_set() {
    if std::env::var(BLESS_ENV).is_ok() {
        return; // directory may be mid-rewrite while blessing
    }
    let expected: Vec<String> = paper_variants().keys().map(|n| format!("{n}.s")).collect();
    let mut found: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir")
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .collect();
    found.sort();
    assert_eq!(found, expected, "stale or missing golden snapshots");
}
