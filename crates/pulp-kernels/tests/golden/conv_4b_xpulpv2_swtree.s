# 4-bit/xpulpv2/sw-tree (203 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  02068713  addi a4, a3, 32
  1c00800c:  08000893  addi a7, zero, 128
  1c008010:  0f0f1c37  lui s8, 0xf0f1
  1c008014:  f0fc0c13  addi s8, s8, -241
  1c008018:  05010cb7  lui s9, 0x5010
  1c00801c:  400c8c93  addi s9, s9, 1024
  1c008020:  07030d37  lui s10, 0x7030
  1c008024:  602d0d13  addi s10, s10, 1538
pixel_loop:
  1c008028:  1d8000ef  jal ra, 472
  1c00802c:  1c030537  lui a0, 0x1c030
  1c008030:  1c0505b7  lui a1, 0x1c050
  1c008034:  02000613  addi a2, zero, 32
ch_loop:
  1c008038:  230000ef  jal ra, 560
  1c00803c:  ffe58f13  addi t5, a1, -2
  1c008040:  110a52b3  p.clip t0, s4, 16
  1c008044:  00100313  addi t1, zero, 1
  1c008048:  00131393  slli t2, t1, 1
  1c00804c:  127f7e0b  p.lh t3, t2(t5)
  1c008050:  005e2eb3  slt t4, t3, t0
  1c008054:  00630333  add t1, t1, t1
  1c008058:  01d30333  add t1, t1, t4
  1c00805c:  00131393  slli t2, t1, 1
  1c008060:  127f7e0b  p.lh t3, t2(t5)
  1c008064:  005e2eb3  slt t4, t3, t0
  1c008068:  00630333  add t1, t1, t1
  1c00806c:  01d30333  add t1, t1, t4
  1c008070:  00131393  slli t2, t1, 1
  1c008074:  127f7e0b  p.lh t3, t2(t5)
  1c008078:  005e2eb3  slt t4, t3, t0
  1c00807c:  00630333  add t1, t1, t1
  1c008080:  01d30333  add t1, t1, t4
  1c008084:  00131393  slli t2, t1, 1
  1c008088:  127f7e0b  p.lh t3, t2(t5)
  1c00808c:  005e2eb3  slt t4, t3, t0
  1c008090:  00630333  add t1, t1, t1
  1c008094:  01d30333  add t1, t1, t4
  1c008098:  ff030313  addi t1, t1, -16
  1c00809c:  00030f93  addi t6, t1, 0
  1c0080a0:  01e58f13  addi t5, a1, 30
  1c0080a4:  110b52b3  p.clip t0, s6, 16
  1c0080a8:  00100313  addi t1, zero, 1
  1c0080ac:  00131393  slli t2, t1, 1
  1c0080b0:  127f7e0b  p.lh t3, t2(t5)
  1c0080b4:  005e2eb3  slt t4, t3, t0
  1c0080b8:  00630333  add t1, t1, t1
  1c0080bc:  01d30333  add t1, t1, t4
  1c0080c0:  00131393  slli t2, t1, 1
  1c0080c4:  127f7e0b  p.lh t3, t2(t5)
  1c0080c8:  005e2eb3  slt t4, t3, t0
  1c0080cc:  00630333  add t1, t1, t1
  1c0080d0:  01d30333  add t1, t1, t4
  1c0080d4:  00131393  slli t2, t1, 1
  1c0080d8:  127f7e0b  p.lh t3, t2(t5)
  1c0080dc:  005e2eb3  slt t4, t3, t0
  1c0080e0:  00630333  add t1, t1, t1
  1c0080e4:  01d30333  add t1, t1, t4
  1c0080e8:  00131393  slli t2, t1, 1
  1c0080ec:  127f7e0b  p.lh t3, t2(t5)
  1c0080f0:  005e2eb3  slt t4, t3, t0
  1c0080f4:  00630333  add t1, t1, t1
  1c0080f8:  01d30333  add t1, t1, t4
  1c0080fc:  ff030313  addi t1, t1, -16
  1c008100:  00431313  slli t1, t1, 4
  1c008104:  01f36333  or t1, t1, t6
  1c008108:  006680ab  p.sb t1, 1(a3!)
  1c00810c:  ffe58f13  addi t5, a1, -2
  1c008110:  110ad2b3  p.clip t0, s5, 16
  1c008114:  00100313  addi t1, zero, 1
  1c008118:  00131393  slli t2, t1, 1
  1c00811c:  127f7e0b  p.lh t3, t2(t5)
  1c008120:  005e2eb3  slt t4, t3, t0
  1c008124:  00630333  add t1, t1, t1
  1c008128:  01d30333  add t1, t1, t4
  1c00812c:  00131393  slli t2, t1, 1
  1c008130:  127f7e0b  p.lh t3, t2(t5)
  1c008134:  005e2eb3  slt t4, t3, t0
  1c008138:  00630333  add t1, t1, t1
  1c00813c:  01d30333  add t1, t1, t4
  1c008140:  00131393  slli t2, t1, 1
  1c008144:  127f7e0b  p.lh t3, t2(t5)
  1c008148:  005e2eb3  slt t4, t3, t0
  1c00814c:  00630333  add t1, t1, t1
  1c008150:  01d30333  add t1, t1, t4
  1c008154:  00131393  slli t2, t1, 1
  1c008158:  127f7e0b  p.lh t3, t2(t5)
  1c00815c:  005e2eb3  slt t4, t3, t0
  1c008160:  00630333  add t1, t1, t1
  1c008164:  01d30333  add t1, t1, t4
  1c008168:  ff030313  addi t1, t1, -16
  1c00816c:  00030f93  addi t6, t1, 0
  1c008170:  01e58f13  addi t5, a1, 30
  1c008174:  110bd2b3  p.clip t0, s7, 16
  1c008178:  00100313  addi t1, zero, 1
  1c00817c:  00131393  slli t2, t1, 1
  1c008180:  127f7e0b  p.lh t3, t2(t5)
  1c008184:  005e2eb3  slt t4, t3, t0
  1c008188:  00630333  add t1, t1, t1
  1c00818c:  01d30333  add t1, t1, t4
  1c008190:  00131393  slli t2, t1, 1
  1c008194:  127f7e0b  p.lh t3, t2(t5)
  1c008198:  005e2eb3  slt t4, t3, t0
  1c00819c:  00630333  add t1, t1, t1
  1c0081a0:  01d30333  add t1, t1, t4
  1c0081a4:  00131393  slli t2, t1, 1
  1c0081a8:  127f7e0b  p.lh t3, t2(t5)
  1c0081ac:  005e2eb3  slt t4, t3, t0
  1c0081b0:  00630333  add t1, t1, t1
  1c0081b4:  01d30333  add t1, t1, t4
  1c0081b8:  00131393  slli t2, t1, 1
  1c0081bc:  127f7e0b  p.lh t3, t2(t5)
  1c0081c0:  005e2eb3  slt t4, t3, t0
  1c0081c4:  00630333  add t1, t1, t1
  1c0081c8:  01d30333  add t1, t1, t4
  1c0081cc:  ff030313  addi t1, t1, -16
  1c0081d0:  00431313  slli t1, t1, 4
  1c0081d4:  01f36333  or t1, t1, t6
  1c0081d8:  006700ab  p.sb t1, 1(a4!)
  1c0081dc:  04058593  addi a1, a1, 64
  1c0081e0:  fff60613  addi a2, a2, -1
  1c0081e4:  e4061ae3  bne a2, zero, -428
  1c0081e8:  02068693  addi a3, a3, 32
  1c0081ec:  02070713  addi a4, a4, 32
  1c0081f0:  fff88893  addi a7, a7, -1
  1c0081f4:  e2089ae3  bne a7, zero, -460
  1c0081f8:  00000513  addi a0, zero, 0
  1c0081fc:  00000073  ecall
im2col_pair:
  1c008200:  1c0602b7  lui t0, 0x1c060
  1c008204:  00600f13  addi t5, zero, 6
ic_desc:
  1c008208:  0007a303  lw t1, 0(a5)
  1c00820c:  0047d383  lhu t2, 4(a5)
  1c008210:  0067de03  lhu t3, 6(a5)
  1c008214:  00c78793  addi a5, a5, 12
  1c008218:  0023d393  srli t2, t2, 2
  1c00821c:  00038863  beq t2, zero, 16
ic_z_pre:
  1c008220:  0002a22b  p.sw zero, 4(t0!)
  1c008224:  fff38393  addi t2, t2, -1
  1c008228:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c00822c:  002e5e13  srli t3, t3, 2
  1c008230:  000e0a63  beq t3, zero, 20
ic_copy:
  1c008234:  00432f8b  p.lw t6, 4(t1!)
  1c008238:  01f2a22b  p.sw t6, 4(t0!)
  1c00823c:  fffe0e13  addi t3, t3, -1
  1c008240:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c008244:  ffc7de83  lhu t4, -4(a5)
  1c008248:  002ede93  srli t4, t4, 2
  1c00824c:  000e8863  beq t4, zero, 16
ic_z_post:
  1c008250:  0002a22b  p.sw zero, 4(t0!)
  1c008254:  fffe8e93  addi t4, t4, -1
  1c008258:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c00825c:  ffff0f13  addi t5, t5, -1
  1c008260:  fa0f14e3  bne t5, zero, -88
  1c008264:  00008067  jalr zero, 0(ra)
mm_block:
  1c008268:  00050413  addi s0, a0, 0
  1c00826c:  09050493  addi s1, a0, 144
  1c008270:  1c060937  lui s2, 0x1c060
  1c008274:  1c0609b7  lui s3, 0x1c060
  1c008278:  09098993  addi s3, s3, 144
  1c00827c:  00000a13  addi s4, zero, 0
  1c008280:  00000a93  addi s5, zero, 0
  1c008284:  00000b13  addi s6, zero, 0
  1c008288:  00000b93  addi s7, zero, 0
  1c00828c:  02400f93  addi t6, zero, 36
  1c008290:  04afc07b  lp.setup x0, t6, 148
  1c008294:  0044228b  p.lw t0, 4(s0!)
  1c008298:  5242eed7  pv.sll.sci.b t4, t0, 4
  1c00829c:  4a4eeed7  pv.sra.sci.b t4, t4, 4
  1c0082a0:  4a42e2d7  pv.sra.sci.b t0, t0, 4
  1c0082a4:  00028393  addi t2, t0, 0
  1c0082a8:  cb9e83d7  pv.shuffle2.b t2, t4, s9
  1c0082ac:  cbae82d7  pv.shuffle2.b t0, t4, s10
  1c0082b0:  0044a30b  p.lw t1, 4(s1!)
  1c0082b4:  52436ed7  pv.sll.sci.b t4, t1, 4
  1c0082b8:  4a4eeed7  pv.sra.sci.b t4, t4, 4
  1c0082bc:  4a436357  pv.sra.sci.b t1, t1, 4
  1c0082c0:  00030e13  addi t3, t1, 0
  1c0082c4:  cb9e8e57  pv.shuffle2.b t3, t4, s9
  1c0082c8:  cbae8357  pv.shuffle2.b t1, t4, s10
  1c0082cc:  00492e8b  p.lw t4, 4(s2!)
  1c0082d0:  018eff33  and t5, t4, s8
  1c0082d4:  004ede93  srli t4, t4, 4
  1c0082d8:  018efeb3  and t4, t4, s8
  1c0082dc:  000e8f93  addi t6, t4, 0
  1c0082e0:  cb9f0fd7  pv.shuffle2.b t6, t5, s9
  1c0082e4:  cbaf0ed7  pv.shuffle2.b t4, t5, s10
  1c0082e8:  b27f8a57  pv.sdotusp.b s4, t6, t2
  1c0082ec:  b25e8a57  pv.sdotusp.b s4, t4, t0
  1c0082f0:  b3cf8b57  pv.sdotusp.b s6, t6, t3
  1c0082f4:  b26e8b57  pv.sdotusp.b s6, t4, t1
  1c0082f8:  0049ae8b  p.lw t4, 4(s3!)
  1c0082fc:  018eff33  and t5, t4, s8
  1c008300:  004ede93  srli t4, t4, 4
  1c008304:  018efeb3  and t4, t4, s8
  1c008308:  000e8f93  addi t6, t4, 0
  1c00830c:  cb9f0fd7  pv.shuffle2.b t6, t5, s9
  1c008310:  cbaf0ed7  pv.shuffle2.b t4, t5, s10
  1c008314:  b27f8ad7  pv.sdotusp.b s5, t6, t2
  1c008318:  b25e8ad7  pv.sdotusp.b s5, t4, t0
  1c00831c:  b3cf8bd7  pv.sdotusp.b s7, t6, t3
  1c008320:  b26e8bd7  pv.sdotusp.b s7, t4, t1
mm_end:
  1c008324:  00048513  addi a0, s1, 0
  1c008328:  00008067  jalr zero, 0(ra)
