# 4-bit/xpulpnn/pv.qnt (75 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  02068713  addi a4, a3, 32
  1c00800c:  08000893  addi a7, zero, 128
pixel_loop:
  1c008010:  060000ef  jal ra, 96
  1c008014:  1c030537  lui a0, 0x1c030
  1c008018:  1c0505b7  lui a1, 0x1c050
  1c00801c:  02000613  addi a2, zero, 32
ch_loop:
  1c008020:  0b8000ef  jal ra, 184
  1c008024:  110a5a33  p.clip s4, s4, 16
  1c008028:  110b5b33  p.clip s6, s6, 16
  1c00802c:  881b0a57  pv.insert.h s4, s6, 1
  1c008030:  c4ba02d7  pv.qnt.n t0, s4, a1
  1c008034:  005680ab  p.sb t0, 1(a3!)
  1c008038:  110adab3  p.clip s5, s5, 16
  1c00803c:  110bdbb3  p.clip s7, s7, 16
  1c008040:  881b8ad7  pv.insert.h s5, s7, 1
  1c008044:  c4ba8357  pv.qnt.n t1, s5, a1
  1c008048:  006700ab  p.sb t1, 1(a4!)
  1c00804c:  04058593  addi a1, a1, 64
  1c008050:  fff60613  addi a2, a2, -1
  1c008054:  fc0616e3  bne a2, zero, -52
  1c008058:  02068693  addi a3, a3, 32
  1c00805c:  02070713  addi a4, a4, 32
  1c008060:  fff88893  addi a7, a7, -1
  1c008064:  fa0896e3  bne a7, zero, -84
  1c008068:  00000513  addi a0, zero, 0
  1c00806c:  00000073  ecall
im2col_pair:
  1c008070:  1c0602b7  lui t0, 0x1c060
  1c008074:  00600f13  addi t5, zero, 6
ic_desc:
  1c008078:  0007a303  lw t1, 0(a5)
  1c00807c:  0047d383  lhu t2, 4(a5)
  1c008080:  0067de03  lhu t3, 6(a5)
  1c008084:  00c78793  addi a5, a5, 12
  1c008088:  0023d393  srli t2, t2, 2
  1c00808c:  00038863  beq t2, zero, 16
ic_z_pre:
  1c008090:  0002a22b  p.sw zero, 4(t0!)
  1c008094:  fff38393  addi t2, t2, -1
  1c008098:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c00809c:  002e5e13  srli t3, t3, 2
  1c0080a0:  000e0a63  beq t3, zero, 20
ic_copy:
  1c0080a4:  00432f8b  p.lw t6, 4(t1!)
  1c0080a8:  01f2a22b  p.sw t6, 4(t0!)
  1c0080ac:  fffe0e13  addi t3, t3, -1
  1c0080b0:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c0080b4:  ffc7de83  lhu t4, -4(a5)
  1c0080b8:  002ede93  srli t4, t4, 2
  1c0080bc:  000e8863  beq t4, zero, 16
ic_z_post:
  1c0080c0:  0002a22b  p.sw zero, 4(t0!)
  1c0080c4:  fffe8e93  addi t4, t4, -1
  1c0080c8:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c0080cc:  ffff0f13  addi t5, t5, -1
  1c0080d0:  fa0f14e3  bne t5, zero, -88
  1c0080d4:  00008067  jalr zero, 0(ra)
mm_block:
  1c0080d8:  00050413  addi s0, a0, 0
  1c0080dc:  09050493  addi s1, a0, 144
  1c0080e0:  1c060937  lui s2, 0x1c060
  1c0080e4:  1c0609b7  lui s3, 0x1c060
  1c0080e8:  09098993  addi s3, s3, 144
  1c0080ec:  00000a13  addi s4, zero, 0
  1c0080f0:  00000a93  addi s5, zero, 0
  1c0080f4:  00000b13  addi s6, zero, 0
  1c0080f8:  00000b93  addi s7, zero, 0
  1c0080fc:  02400f93  addi t6, zero, 36
  1c008100:  012fc07b  lp.setup x0, t6, 36
  1c008104:  0044228b  p.lw t0, 4(s0!)
  1c008108:  0044a30b  p.lw t1, 4(s1!)
  1c00810c:  0049238b  p.lw t2, 4(s2!)
  1c008110:  0049ae0b  p.lw t3, 4(s3!)
  1c008114:  b4538a57  pv.sdotusp.n s4, t2, t0
  1c008118:  b45e0ad7  pv.sdotusp.n s5, t3, t0
  1c00811c:  b4638b57  pv.sdotusp.n s6, t2, t1
  1c008120:  b46e0bd7  pv.sdotusp.n s7, t3, t1
mm_end:
  1c008124:  00048513  addi a0, s1, 0
  1c008128:  00008067  jalr zero, 0(ra)
