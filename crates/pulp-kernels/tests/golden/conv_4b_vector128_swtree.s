# 4-bit/vector128/sw-tree (176 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  02068713  addi a4, a3, 32
  1c00800c:  08000893  addi a7, zero, 128
pixel_loop:
  1c008010:  1d8000ef  jal ra, 472
  1c008014:  1c030537  lui a0, 0x1c030
  1c008018:  1c0505b7  lui a1, 0x1c050
  1c00801c:  02000613  addi a2, zero, 32
ch_loop:
  1c008020:  230000ef  jal ra, 560
  1c008024:  ffe58f13  addi t5, a1, -2
  1c008028:  110a52b3  p.clip t0, s4, 16
  1c00802c:  00100313  addi t1, zero, 1
  1c008030:  00131393  slli t2, t1, 1
  1c008034:  127f7e0b  p.lh t3, t2(t5)
  1c008038:  005e2eb3  slt t4, t3, t0
  1c00803c:  00630333  add t1, t1, t1
  1c008040:  01d30333  add t1, t1, t4
  1c008044:  00131393  slli t2, t1, 1
  1c008048:  127f7e0b  p.lh t3, t2(t5)
  1c00804c:  005e2eb3  slt t4, t3, t0
  1c008050:  00630333  add t1, t1, t1
  1c008054:  01d30333  add t1, t1, t4
  1c008058:  00131393  slli t2, t1, 1
  1c00805c:  127f7e0b  p.lh t3, t2(t5)
  1c008060:  005e2eb3  slt t4, t3, t0
  1c008064:  00630333  add t1, t1, t1
  1c008068:  01d30333  add t1, t1, t4
  1c00806c:  00131393  slli t2, t1, 1
  1c008070:  127f7e0b  p.lh t3, t2(t5)
  1c008074:  005e2eb3  slt t4, t3, t0
  1c008078:  00630333  add t1, t1, t1
  1c00807c:  01d30333  add t1, t1, t4
  1c008080:  ff030313  addi t1, t1, -16
  1c008084:  00030f93  addi t6, t1, 0
  1c008088:  01e58f13  addi t5, a1, 30
  1c00808c:  110b52b3  p.clip t0, s6, 16
  1c008090:  00100313  addi t1, zero, 1
  1c008094:  00131393  slli t2, t1, 1
  1c008098:  127f7e0b  p.lh t3, t2(t5)
  1c00809c:  005e2eb3  slt t4, t3, t0
  1c0080a0:  00630333  add t1, t1, t1
  1c0080a4:  01d30333  add t1, t1, t4
  1c0080a8:  00131393  slli t2, t1, 1
  1c0080ac:  127f7e0b  p.lh t3, t2(t5)
  1c0080b0:  005e2eb3  slt t4, t3, t0
  1c0080b4:  00630333  add t1, t1, t1
  1c0080b8:  01d30333  add t1, t1, t4
  1c0080bc:  00131393  slli t2, t1, 1
  1c0080c0:  127f7e0b  p.lh t3, t2(t5)
  1c0080c4:  005e2eb3  slt t4, t3, t0
  1c0080c8:  00630333  add t1, t1, t1
  1c0080cc:  01d30333  add t1, t1, t4
  1c0080d0:  00131393  slli t2, t1, 1
  1c0080d4:  127f7e0b  p.lh t3, t2(t5)
  1c0080d8:  005e2eb3  slt t4, t3, t0
  1c0080dc:  00630333  add t1, t1, t1
  1c0080e0:  01d30333  add t1, t1, t4
  1c0080e4:  ff030313  addi t1, t1, -16
  1c0080e8:  00431313  slli t1, t1, 4
  1c0080ec:  01f36333  or t1, t1, t6
  1c0080f0:  006680ab  p.sb t1, 1(a3!)
  1c0080f4:  ffe58f13  addi t5, a1, -2
  1c0080f8:  110ad2b3  p.clip t0, s5, 16
  1c0080fc:  00100313  addi t1, zero, 1
  1c008100:  00131393  slli t2, t1, 1
  1c008104:  127f7e0b  p.lh t3, t2(t5)
  1c008108:  005e2eb3  slt t4, t3, t0
  1c00810c:  00630333  add t1, t1, t1
  1c008110:  01d30333  add t1, t1, t4
  1c008114:  00131393  slli t2, t1, 1
  1c008118:  127f7e0b  p.lh t3, t2(t5)
  1c00811c:  005e2eb3  slt t4, t3, t0
  1c008120:  00630333  add t1, t1, t1
  1c008124:  01d30333  add t1, t1, t4
  1c008128:  00131393  slli t2, t1, 1
  1c00812c:  127f7e0b  p.lh t3, t2(t5)
  1c008130:  005e2eb3  slt t4, t3, t0
  1c008134:  00630333  add t1, t1, t1
  1c008138:  01d30333  add t1, t1, t4
  1c00813c:  00131393  slli t2, t1, 1
  1c008140:  127f7e0b  p.lh t3, t2(t5)
  1c008144:  005e2eb3  slt t4, t3, t0
  1c008148:  00630333  add t1, t1, t1
  1c00814c:  01d30333  add t1, t1, t4
  1c008150:  ff030313  addi t1, t1, -16
  1c008154:  00030f93  addi t6, t1, 0
  1c008158:  01e58f13  addi t5, a1, 30
  1c00815c:  110bd2b3  p.clip t0, s7, 16
  1c008160:  00100313  addi t1, zero, 1
  1c008164:  00131393  slli t2, t1, 1
  1c008168:  127f7e0b  p.lh t3, t2(t5)
  1c00816c:  005e2eb3  slt t4, t3, t0
  1c008170:  00630333  add t1, t1, t1
  1c008174:  01d30333  add t1, t1, t4
  1c008178:  00131393  slli t2, t1, 1
  1c00817c:  127f7e0b  p.lh t3, t2(t5)
  1c008180:  005e2eb3  slt t4, t3, t0
  1c008184:  00630333  add t1, t1, t1
  1c008188:  01d30333  add t1, t1, t4
  1c00818c:  00131393  slli t2, t1, 1
  1c008190:  127f7e0b  p.lh t3, t2(t5)
  1c008194:  005e2eb3  slt t4, t3, t0
  1c008198:  00630333  add t1, t1, t1
  1c00819c:  01d30333  add t1, t1, t4
  1c0081a0:  00131393  slli t2, t1, 1
  1c0081a4:  127f7e0b  p.lh t3, t2(t5)
  1c0081a8:  005e2eb3  slt t4, t3, t0
  1c0081ac:  00630333  add t1, t1, t1
  1c0081b0:  01d30333  add t1, t1, t4
  1c0081b4:  ff030313  addi t1, t1, -16
  1c0081b8:  00431313  slli t1, t1, 4
  1c0081bc:  01f36333  or t1, t1, t6
  1c0081c0:  006700ab  p.sb t1, 1(a4!)
  1c0081c4:  04058593  addi a1, a1, 64
  1c0081c8:  fff60613  addi a2, a2, -1
  1c0081cc:  e4061ae3  bne a2, zero, -428
  1c0081d0:  02068693  addi a3, a3, 32
  1c0081d4:  02070713  addi a4, a4, 32
  1c0081d8:  fff88893  addi a7, a7, -1
  1c0081dc:  e2089ae3  bne a7, zero, -460
  1c0081e0:  00000513  addi a0, zero, 0
  1c0081e4:  00000073  ecall
im2col_pair:
  1c0081e8:  1c0602b7  lui t0, 0x1c060
  1c0081ec:  00600f13  addi t5, zero, 6
ic_desc:
  1c0081f0:  0007a303  lw t1, 0(a5)
  1c0081f4:  0047d383  lhu t2, 4(a5)
  1c0081f8:  0067de03  lhu t3, 6(a5)
  1c0081fc:  00c78793  addi a5, a5, 12
  1c008200:  0023d393  srli t2, t2, 2
  1c008204:  00038863  beq t2, zero, 16
ic_z_pre:
  1c008208:  0002a22b  p.sw zero, 4(t0!)
  1c00820c:  fff38393  addi t2, t2, -1
  1c008210:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c008214:  002e5e13  srli t3, t3, 2
  1c008218:  000e0a63  beq t3, zero, 20
ic_copy:
  1c00821c:  00432f8b  p.lw t6, 4(t1!)
  1c008220:  01f2a22b  p.sw t6, 4(t0!)
  1c008224:  fffe0e13  addi t3, t3, -1
  1c008228:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c00822c:  ffc7de83  lhu t4, -4(a5)
  1c008230:  002ede93  srli t4, t4, 2
  1c008234:  000e8863  beq t4, zero, 16
ic_z_post:
  1c008238:  0002a22b  p.sw zero, 4(t0!)
  1c00823c:  fffe8e93  addi t4, t4, -1
  1c008240:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c008244:  ffff0f13  addi t5, t5, -1
  1c008248:  fa0f14e3  bne t5, zero, -88
  1c00824c:  00008067  jalr zero, 0(ra)
mm_block:
  1c008250:  00050413  addi s0, a0, 0
  1c008254:  09050493  addi s1, a0, 144
  1c008258:  1c060937  lui s2, 0x1c060
  1c00825c:  1c0609b7  lui s3, 0x1c060
  1c008260:  09098993  addi s3, s3, 144
  1c008264:  00000a13  addi s4, zero, 0
  1c008268:  00000a93  addi s5, zero, 0
  1c00826c:  00000b13  addi s6, zero, 0
  1c008270:  00000b93  addi s7, zero, 0
  1c008274:  12000f93  addi t6, zero, 288
mm_vloop:
  1c008278:  d20f8f57  vsetvli t5, t6, e4
  1c00827c:  00040007  vle.v v0, (s0)
  1c008280:  00048087  vle.v v1, (s1)
  1c008284:  00090107  vle.v v2, (s2)
  1c008288:  00098187  vle.v v3, (s3)
  1c00828c:  d8011a57  vdotusp.vv s4, v2, v0
  1c008290:  d8019ad7  vdotusp.vv s5, v3, v0
  1c008294:  d8111b57  vdotusp.vv s6, v2, v1
  1c008298:  d8119bd7  vdotusp.vv s7, v3, v1
  1c00829c:  001f5e93  srli t4, t5, 1
  1c0082a0:  01d40433  add s0, s0, t4
  1c0082a4:  01d484b3  add s1, s1, t4
  1c0082a8:  01d90933  add s2, s2, t4
  1c0082ac:  01d989b3  add s3, s3, t4
  1c0082b0:  41ef8fb3  sub t6, t6, t5
  1c0082b4:  fc0f92e3  bne t6, zero, -60
  1c0082b8:  00048513  addi a0, s1, 0
  1c0082bc:  00008067  jalr zero, 0(ra)
