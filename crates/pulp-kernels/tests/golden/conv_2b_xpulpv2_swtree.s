# 2-bit/xpulpv2/sw-tree (299 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  01068713  addi a4, a3, 16
  1c00800c:  08000893  addi a7, zero, 128
  1c008010:  03030c37  lui s8, 0x3030
  1c008014:  303c0c13  addi s8, s8, 771
  1c008018:  05010cb7  lui s9, 0x5010
  1c00801c:  400c8c93  addi s9, s9, 1024
  1c008020:  07030d37  lui s10, 0x7030
  1c008024:  602d0d13  addi s10, s10, 1538
  1c008028:  05040db7  lui s11, 0x5040
  1c00802c:  100d8d93  addi s11, s11, 256
  1c008030:  07060837  lui a6, 0x7060
  1c008034:  30280813  addi a6, a6, 770
pixel_loop:
  1c008038:  248000ef  jal ra, 584
  1c00803c:  1c030537  lui a0, 0x1c030
  1c008040:  1c0505b7  lui a1, 0x1c050
  1c008044:  01000613  addi a2, zero, 16
ch_loop:
  1c008048:  2f8000ef  jal ra, 760
  1c00804c:  ffe58f13  addi t5, a1, -2
  1c008050:  110a52b3  p.clip t0, s4, 16
  1c008054:  00100313  addi t1, zero, 1
  1c008058:  00131393  slli t2, t1, 1
  1c00805c:  127f7e0b  p.lh t3, t2(t5)
  1c008060:  005e2eb3  slt t4, t3, t0
  1c008064:  00630333  add t1, t1, t1
  1c008068:  01d30333  add t1, t1, t4
  1c00806c:  00131393  slli t2, t1, 1
  1c008070:  127f7e0b  p.lh t3, t2(t5)
  1c008074:  005e2eb3  slt t4, t3, t0
  1c008078:  00630333  add t1, t1, t1
  1c00807c:  01d30333  add t1, t1, t4
  1c008080:  ffc30313  addi t1, t1, -4
  1c008084:  00030f93  addi t6, t1, 0
  1c008088:  00658f13  addi t5, a1, 6
  1c00808c:  110b52b3  p.clip t0, s6, 16
  1c008090:  00100313  addi t1, zero, 1
  1c008094:  00131393  slli t2, t1, 1
  1c008098:  127f7e0b  p.lh t3, t2(t5)
  1c00809c:  005e2eb3  slt t4, t3, t0
  1c0080a0:  00630333  add t1, t1, t1
  1c0080a4:  01d30333  add t1, t1, t4
  1c0080a8:  00131393  slli t2, t1, 1
  1c0080ac:  127f7e0b  p.lh t3, t2(t5)
  1c0080b0:  005e2eb3  slt t4, t3, t0
  1c0080b4:  00630333  add t1, t1, t1
  1c0080b8:  01d30333  add t1, t1, t4
  1c0080bc:  ffc30313  addi t1, t1, -4
  1c0080c0:  00231313  slli t1, t1, 2
  1c0080c4:  01f36133  or sp, t1, t6
  1c0080c8:  ffe58f13  addi t5, a1, -2
  1c0080cc:  110ad2b3  p.clip t0, s5, 16
  1c0080d0:  00100313  addi t1, zero, 1
  1c0080d4:  00131393  slli t2, t1, 1
  1c0080d8:  127f7e0b  p.lh t3, t2(t5)
  1c0080dc:  005e2eb3  slt t4, t3, t0
  1c0080e0:  00630333  add t1, t1, t1
  1c0080e4:  01d30333  add t1, t1, t4
  1c0080e8:  00131393  slli t2, t1, 1
  1c0080ec:  127f7e0b  p.lh t3, t2(t5)
  1c0080f0:  005e2eb3  slt t4, t3, t0
  1c0080f4:  00630333  add t1, t1, t1
  1c0080f8:  01d30333  add t1, t1, t4
  1c0080fc:  ffc30313  addi t1, t1, -4
  1c008100:  00030f93  addi t6, t1, 0
  1c008104:  00658f13  addi t5, a1, 6
  1c008108:  110bd2b3  p.clip t0, s7, 16
  1c00810c:  00100313  addi t1, zero, 1
  1c008110:  00131393  slli t2, t1, 1
  1c008114:  127f7e0b  p.lh t3, t2(t5)
  1c008118:  005e2eb3  slt t4, t3, t0
  1c00811c:  00630333  add t1, t1, t1
  1c008120:  01d30333  add t1, t1, t4
  1c008124:  00131393  slli t2, t1, 1
  1c008128:  127f7e0b  p.lh t3, t2(t5)
  1c00812c:  005e2eb3  slt t4, t3, t0
  1c008130:  00630333  add t1, t1, t1
  1c008134:  01d30333  add t1, t1, t4
  1c008138:  ffc30313  addi t1, t1, -4
  1c00813c:  00231313  slli t1, t1, 2
  1c008140:  01f361b3  or gp, t1, t6
  1c008144:  01058593  addi a1, a1, 16
  1c008148:  1f8000ef  jal ra, 504
  1c00814c:  ffe58f13  addi t5, a1, -2
  1c008150:  110a52b3  p.clip t0, s4, 16
  1c008154:  00100313  addi t1, zero, 1
  1c008158:  00131393  slli t2, t1, 1
  1c00815c:  127f7e0b  p.lh t3, t2(t5)
  1c008160:  005e2eb3  slt t4, t3, t0
  1c008164:  00630333  add t1, t1, t1
  1c008168:  01d30333  add t1, t1, t4
  1c00816c:  00131393  slli t2, t1, 1
  1c008170:  127f7e0b  p.lh t3, t2(t5)
  1c008174:  005e2eb3  slt t4, t3, t0
  1c008178:  00630333  add t1, t1, t1
  1c00817c:  01d30333  add t1, t1, t4
  1c008180:  ffc30313  addi t1, t1, -4
  1c008184:  00030f93  addi t6, t1, 0
  1c008188:  00658f13  addi t5, a1, 6
  1c00818c:  110b52b3  p.clip t0, s6, 16
  1c008190:  00100313  addi t1, zero, 1
  1c008194:  00131393  slli t2, t1, 1
  1c008198:  127f7e0b  p.lh t3, t2(t5)
  1c00819c:  005e2eb3  slt t4, t3, t0
  1c0081a0:  00630333  add t1, t1, t1
  1c0081a4:  01d30333  add t1, t1, t4
  1c0081a8:  00131393  slli t2, t1, 1
  1c0081ac:  127f7e0b  p.lh t3, t2(t5)
  1c0081b0:  005e2eb3  slt t4, t3, t0
  1c0081b4:  00630333  add t1, t1, t1
  1c0081b8:  01d30333  add t1, t1, t4
  1c0081bc:  ffc30313  addi t1, t1, -4
  1c0081c0:  00231313  slli t1, t1, 2
  1c0081c4:  01f36333  or t1, t1, t6
  1c0081c8:  00431313  slli t1, t1, 4
  1c0081cc:  00236333  or t1, t1, sp
  1c0081d0:  006680ab  p.sb t1, 1(a3!)
  1c0081d4:  ffe58f13  addi t5, a1, -2
  1c0081d8:  110ad2b3  p.clip t0, s5, 16
  1c0081dc:  00100313  addi t1, zero, 1
  1c0081e0:  00131393  slli t2, t1, 1
  1c0081e4:  127f7e0b  p.lh t3, t2(t5)
  1c0081e8:  005e2eb3  slt t4, t3, t0
  1c0081ec:  00630333  add t1, t1, t1
  1c0081f0:  01d30333  add t1, t1, t4
  1c0081f4:  00131393  slli t2, t1, 1
  1c0081f8:  127f7e0b  p.lh t3, t2(t5)
  1c0081fc:  005e2eb3  slt t4, t3, t0
  1c008200:  00630333  add t1, t1, t1
  1c008204:  01d30333  add t1, t1, t4
  1c008208:  ffc30313  addi t1, t1, -4
  1c00820c:  00030f93  addi t6, t1, 0
  1c008210:  00658f13  addi t5, a1, 6
  1c008214:  110bd2b3  p.clip t0, s7, 16
  1c008218:  00100313  addi t1, zero, 1
  1c00821c:  00131393  slli t2, t1, 1
  1c008220:  127f7e0b  p.lh t3, t2(t5)
  1c008224:  005e2eb3  slt t4, t3, t0
  1c008228:  00630333  add t1, t1, t1
  1c00822c:  01d30333  add t1, t1, t4
  1c008230:  00131393  slli t2, t1, 1
  1c008234:  127f7e0b  p.lh t3, t2(t5)
  1c008238:  005e2eb3  slt t4, t3, t0
  1c00823c:  00630333  add t1, t1, t1
  1c008240:  01d30333  add t1, t1, t4
  1c008244:  ffc30313  addi t1, t1, -4
  1c008248:  00231313  slli t1, t1, 2
  1c00824c:  01f36333  or t1, t1, t6
  1c008250:  00431313  slli t1, t1, 4
  1c008254:  00336333  or t1, t1, gp
  1c008258:  006700ab  p.sb t1, 1(a4!)
  1c00825c:  01058593  addi a1, a1, 16
  1c008260:  fff60613  addi a2, a2, -1
  1c008264:  de0612e3  bne a2, zero, -540
  1c008268:  01068693  addi a3, a3, 16
  1c00826c:  01070713  addi a4, a4, 16
  1c008270:  fff88893  addi a7, a7, -1
  1c008274:  dc0892e3  bne a7, zero, -572
  1c008278:  00000513  addi a0, zero, 0
  1c00827c:  00000073  ecall
im2col_pair:
  1c008280:  1c0602b7  lui t0, 0x1c060
  1c008284:  00600f13  addi t5, zero, 6
ic_desc:
  1c008288:  0007a303  lw t1, 0(a5)
  1c00828c:  0047d383  lhu t2, 4(a5)
  1c008290:  0067de03  lhu t3, 6(a5)
  1c008294:  00c78793  addi a5, a5, 12
  1c008298:  00038863  beq t2, zero, 16
ic_z_pre:
  1c00829c:  0002a22b  p.sw zero, 4(t0!)
  1c0082a0:  fff38393  addi t2, t2, -1
  1c0082a4:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c0082a8:  002e5e13  srli t3, t3, 2
  1c0082ac:  060e0a63  beq t3, zero, 116
ic_copy:
  1c0082b0:  00432f8b  p.lw t6, 4(t1!)
  1c0082b4:  018ff3b3  and t2, t6, s8
  1c0082b8:  002fd513  srli a0, t6, 2
  1c0082bc:  01857533  and a0, a0, s8
  1c0082c0:  004fd593  srli a1, t6, 4
  1c0082c4:  0185f5b3  and a1, a1, s8
  1c0082c8:  006fdf93  srli t6, t6, 6
  1c0082cc:  018fffb3  and t6, t6, s8
  1c0082d0:  00050613  addi a2, a0, 0
  1c0082d4:  cb938657  pv.shuffle2.b a2, t2, s9
  1c0082d8:  000f8113  addi sp, t6, 0
  1c0082dc:  cb958157  pv.shuffle2.b sp, a1, s9
  1c0082e0:  00010e93  addi t4, sp, 0
  1c0082e4:  cbb60ed7  pv.shuffle2.b t4, a2, s11
  1c0082e8:  01d2a22b  p.sw t4, 4(t0!)
  1c0082ec:  cb060157  pv.shuffle2.b sp, a2, a6
  1c0082f0:  0022a22b  p.sw sp, 4(t0!)
  1c0082f4:  00050613  addi a2, a0, 0
  1c0082f8:  cba38657  pv.shuffle2.b a2, t2, s10
  1c0082fc:  000f8113  addi sp, t6, 0
  1c008300:  cba58157  pv.shuffle2.b sp, a1, s10
  1c008304:  00010e93  addi t4, sp, 0
  1c008308:  cbb60ed7  pv.shuffle2.b t4, a2, s11
  1c00830c:  01d2a22b  p.sw t4, 4(t0!)
  1c008310:  cb060157  pv.shuffle2.b sp, a2, a6
  1c008314:  0022a22b  p.sw sp, 4(t0!)
  1c008318:  fffe0e13  addi t3, t3, -1
  1c00831c:  f80e1ae3  bne t3, zero, -108
ic_copy_done:
  1c008320:  ffc7de83  lhu t4, -4(a5)
  1c008324:  000e8863  beq t4, zero, 16
ic_z_post:
  1c008328:  0002a22b  p.sw zero, 4(t0!)
  1c00832c:  fffe8e93  addi t4, t4, -1
  1c008330:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c008334:  ffff0f13  addi t5, t5, -1
  1c008338:  f40f18e3  bne t5, zero, -176
  1c00833c:  00008067  jalr zero, 0(ra)
mm_block:
  1c008340:  00050413  addi s0, a0, 0
  1c008344:  04850493  addi s1, a0, 72
  1c008348:  1c060937  lui s2, 0x1c060
  1c00834c:  1c0609b7  lui s3, 0x1c060
  1c008350:  12098993  addi s3, s3, 288
  1c008354:  00000a13  addi s4, zero, 0
  1c008358:  00000a93  addi s5, zero, 0
  1c00835c:  00000b13  addi s6, zero, 0
  1c008360:  00000b93  addi s7, zero, 0
  1c008364:  01200f93  addi t6, zero, 18
  1c008368:  09efc07b  lp.setup x0, t6, 316
  1c00836c:  0044228b  p.lw t0, 4(s0!)
  1c008370:  5262e357  pv.sll.sci.b t1, t0, 6
  1c008374:  4a636357  pv.sra.sci.b t1, t1, 6
  1c008378:  5242e3d7  pv.sll.sci.b t2, t0, 4
  1c00837c:  4a63e3d7  pv.sra.sci.b t2, t2, 6
  1c008380:  5222ee57  pv.sll.sci.b t3, t0, 2
  1c008384:  4a6e6e57  pv.sra.sci.b t3, t3, 6
  1c008388:  4a62e2d7  pv.sra.sci.b t0, t0, 6
  1c00838c:  00038e93  addi t4, t2, 0
  1c008390:  cb930ed7  pv.shuffle2.b t4, t1, s9
  1c008394:  00038f13  addi t5, t2, 0
  1c008398:  cba30f57  pv.shuffle2.b t5, t1, s10
  1c00839c:  00028313  addi t1, t0, 0
  1c0083a0:  cb9e0357  pv.shuffle2.b t1, t3, s9
  1c0083a4:  00028393  addi t2, t0, 0
  1c0083a8:  cbae03d7  pv.shuffle2.b t2, t3, s10
  1c0083ac:  00030e13  addi t3, t1, 0
  1c0083b0:  cbbe8e57  pv.shuffle2.b t3, t4, s11
  1c0083b4:  cb0e8357  pv.shuffle2.b t1, t4, a6
  1c0083b8:  00038f93  addi t6, t2, 0
  1c0083bc:  cbbf0fd7  pv.shuffle2.b t6, t5, s11
  1c0083c0:  cb0f03d7  pv.shuffle2.b t2, t5, a6
  1c0083c4:  0049228b  p.lw t0, 4(s2!)
  1c0083c8:  b3c28a57  pv.sdotusp.b s4, t0, t3
  1c0083cc:  0049a28b  p.lw t0, 4(s3!)
  1c0083d0:  b3c28ad7  pv.sdotusp.b s5, t0, t3
  1c0083d4:  0049228b  p.lw t0, 4(s2!)
  1c0083d8:  b2628a57  pv.sdotusp.b s4, t0, t1
  1c0083dc:  0049a28b  p.lw t0, 4(s3!)
  1c0083e0:  b2628ad7  pv.sdotusp.b s5, t0, t1
  1c0083e4:  0049228b  p.lw t0, 4(s2!)
  1c0083e8:  b3f28a57  pv.sdotusp.b s4, t0, t6
  1c0083ec:  0049a28b  p.lw t0, 4(s3!)
  1c0083f0:  b3f28ad7  pv.sdotusp.b s5, t0, t6
  1c0083f4:  0049228b  p.lw t0, 4(s2!)
  1c0083f8:  b2728a57  pv.sdotusp.b s4, t0, t2
  1c0083fc:  0049a28b  p.lw t0, 4(s3!)
  1c008400:  b2728ad7  pv.sdotusp.b s5, t0, t2
  1c008404:  ff090913  addi s2, s2, -16
  1c008408:  ff098993  addi s3, s3, -16
  1c00840c:  0044a28b  p.lw t0, 4(s1!)
  1c008410:  5262e357  pv.sll.sci.b t1, t0, 6
  1c008414:  4a636357  pv.sra.sci.b t1, t1, 6
  1c008418:  5242e3d7  pv.sll.sci.b t2, t0, 4
  1c00841c:  4a63e3d7  pv.sra.sci.b t2, t2, 6
  1c008420:  5222ee57  pv.sll.sci.b t3, t0, 2
  1c008424:  4a6e6e57  pv.sra.sci.b t3, t3, 6
  1c008428:  4a62e2d7  pv.sra.sci.b t0, t0, 6
  1c00842c:  00038e93  addi t4, t2, 0
  1c008430:  cb930ed7  pv.shuffle2.b t4, t1, s9
  1c008434:  00038f13  addi t5, t2, 0
  1c008438:  cba30f57  pv.shuffle2.b t5, t1, s10
  1c00843c:  00028313  addi t1, t0, 0
  1c008440:  cb9e0357  pv.shuffle2.b t1, t3, s9
  1c008444:  00028393  addi t2, t0, 0
  1c008448:  cbae03d7  pv.shuffle2.b t2, t3, s10
  1c00844c:  00030e13  addi t3, t1, 0
  1c008450:  cbbe8e57  pv.shuffle2.b t3, t4, s11
  1c008454:  cb0e8357  pv.shuffle2.b t1, t4, a6
  1c008458:  00038f93  addi t6, t2, 0
  1c00845c:  cbbf0fd7  pv.shuffle2.b t6, t5, s11
  1c008460:  cb0f03d7  pv.shuffle2.b t2, t5, a6
  1c008464:  0049228b  p.lw t0, 4(s2!)
  1c008468:  b3c28b57  pv.sdotusp.b s6, t0, t3
  1c00846c:  0049a28b  p.lw t0, 4(s3!)
  1c008470:  b3c28bd7  pv.sdotusp.b s7, t0, t3
  1c008474:  0049228b  p.lw t0, 4(s2!)
  1c008478:  b2628b57  pv.sdotusp.b s6, t0, t1
  1c00847c:  0049a28b  p.lw t0, 4(s3!)
  1c008480:  b2628bd7  pv.sdotusp.b s7, t0, t1
  1c008484:  0049228b  p.lw t0, 4(s2!)
  1c008488:  b3f28b57  pv.sdotusp.b s6, t0, t6
  1c00848c:  0049a28b  p.lw t0, 4(s3!)
  1c008490:  b3f28bd7  pv.sdotusp.b s7, t0, t6
  1c008494:  0049228b  p.lw t0, 4(s2!)
  1c008498:  b2728b57  pv.sdotusp.b s6, t0, t2
  1c00849c:  0049a28b  p.lw t0, 4(s3!)
  1c0084a0:  b2728bd7  pv.sdotusp.b s7, t0, t2
mm_end:
  1c0084a4:  00048513  addi a0, s1, 0
  1c0084a8:  00008067  jalr zero, 0(ra)
