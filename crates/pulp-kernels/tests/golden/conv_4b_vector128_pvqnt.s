# 4-bit/vector128/pv.qnt (90 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  02068713  addi a4, a3, 32
  1c00800c:  08000893  addi a7, zero, 128
pixel_loop:
  1c008010:  080000ef  jal ra, 128
  1c008014:  1c030537  lui a0, 0x1c030
  1c008018:  1c0505b7  lui a1, 0x1c050
  1c00801c:  02000613  addi a2, zero, 32
ch_loop:
  1c008020:  0d8000ef  jal ra, 216
  1c008024:  110a5a33  p.clip s4, s4, 16
  1c008028:  110b5b33  p.clip s6, s6, 16
  1c00802c:  00200393  addi t2, zero, 2
  1c008030:  d6038057  vsetvli zero, t2, e16
  1c008034:  e80a0057  vslide1down.vx v0, v0, s4
  1c008038:  e80b0057  vslide1down.vx v0, v0, s6
  1c00803c:  e40580d7  vqnt.n.v v1, a1, v0
  1c008040:  f01002d7  vmv.x.s t0, v1
  1c008044:  005680ab  p.sb t0, 1(a3!)
  1c008048:  110adab3  p.clip s5, s5, 16
  1c00804c:  110bdbb3  p.clip s7, s7, 16
  1c008050:  00200393  addi t2, zero, 2
  1c008054:  d6038057  vsetvli zero, t2, e16
  1c008058:  e80a8057  vslide1down.vx v0, v0, s5
  1c00805c:  e80b8057  vslide1down.vx v0, v0, s7
  1c008060:  e40580d7  vqnt.n.v v1, a1, v0
  1c008064:  f0100357  vmv.x.s t1, v1
  1c008068:  006700ab  p.sb t1, 1(a4!)
  1c00806c:  04058593  addi a1, a1, 64
  1c008070:  fff60613  addi a2, a2, -1
  1c008074:  fa0616e3  bne a2, zero, -84
  1c008078:  02068693  addi a3, a3, 32
  1c00807c:  02070713  addi a4, a4, 32
  1c008080:  fff88893  addi a7, a7, -1
  1c008084:  f80896e3  bne a7, zero, -116
  1c008088:  00000513  addi a0, zero, 0
  1c00808c:  00000073  ecall
im2col_pair:
  1c008090:  1c0602b7  lui t0, 0x1c060
  1c008094:  00600f13  addi t5, zero, 6
ic_desc:
  1c008098:  0007a303  lw t1, 0(a5)
  1c00809c:  0047d383  lhu t2, 4(a5)
  1c0080a0:  0067de03  lhu t3, 6(a5)
  1c0080a4:  00c78793  addi a5, a5, 12
  1c0080a8:  0023d393  srli t2, t2, 2
  1c0080ac:  00038863  beq t2, zero, 16
ic_z_pre:
  1c0080b0:  0002a22b  p.sw zero, 4(t0!)
  1c0080b4:  fff38393  addi t2, t2, -1
  1c0080b8:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c0080bc:  002e5e13  srli t3, t3, 2
  1c0080c0:  000e0a63  beq t3, zero, 20
ic_copy:
  1c0080c4:  00432f8b  p.lw t6, 4(t1!)
  1c0080c8:  01f2a22b  p.sw t6, 4(t0!)
  1c0080cc:  fffe0e13  addi t3, t3, -1
  1c0080d0:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c0080d4:  ffc7de83  lhu t4, -4(a5)
  1c0080d8:  002ede93  srli t4, t4, 2
  1c0080dc:  000e8863  beq t4, zero, 16
ic_z_post:
  1c0080e0:  0002a22b  p.sw zero, 4(t0!)
  1c0080e4:  fffe8e93  addi t4, t4, -1
  1c0080e8:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c0080ec:  ffff0f13  addi t5, t5, -1
  1c0080f0:  fa0f14e3  bne t5, zero, -88
  1c0080f4:  00008067  jalr zero, 0(ra)
mm_block:
  1c0080f8:  00050413  addi s0, a0, 0
  1c0080fc:  09050493  addi s1, a0, 144
  1c008100:  1c060937  lui s2, 0x1c060
  1c008104:  1c0609b7  lui s3, 0x1c060
  1c008108:  09098993  addi s3, s3, 144
  1c00810c:  00000a13  addi s4, zero, 0
  1c008110:  00000a93  addi s5, zero, 0
  1c008114:  00000b13  addi s6, zero, 0
  1c008118:  00000b93  addi s7, zero, 0
  1c00811c:  12000f93  addi t6, zero, 288
mm_vloop:
  1c008120:  d20f8f57  vsetvli t5, t6, e4
  1c008124:  00040007  vle.v v0, (s0)
  1c008128:  00048087  vle.v v1, (s1)
  1c00812c:  00090107  vle.v v2, (s2)
  1c008130:  00098187  vle.v v3, (s3)
  1c008134:  d8011a57  vdotusp.vv s4, v2, v0
  1c008138:  d8019ad7  vdotusp.vv s5, v3, v0
  1c00813c:  d8111b57  vdotusp.vv s6, v2, v1
  1c008140:  d8119bd7  vdotusp.vv s7, v3, v1
  1c008144:  001f5e93  srli t4, t5, 1
  1c008148:  01d40433  add s0, s0, t4
  1c00814c:  01d484b3  add s1, s1, t4
  1c008150:  01d90933  add s2, s2, t4
  1c008154:  01d989b3  add s3, s3, t4
  1c008158:  41ef8fb3  sub t6, t6, t5
  1c00815c:  fc0f92e3  bne t6, zero, -60
  1c008160:  00048513  addi a0, s1, 0
  1c008164:  00008067  jalr zero, 0(ra)
