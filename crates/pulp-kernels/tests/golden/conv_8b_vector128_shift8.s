# 8-bit/vector128/shift8(8) (82 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  04068713  addi a4, a3, 64
  1c00800c:  08000893  addi a7, zero, 128
pixel_loop:
  1c008010:  060000ef  jal ra, 96
  1c008014:  1c030537  lui a0, 0x1c030
  1c008018:  02000613  addi a2, zero, 32
ch_loop:
  1c00801c:  0bc000ef  jal ra, 188
  1c008020:  408a5293  srai t0, s4, 8
  1c008024:  1092e2b3  p.clipu t0, t0, 9
  1c008028:  005680ab  p.sb t0, 1(a3!)
  1c00802c:  408b5293  srai t0, s6, 8
  1c008030:  1092e2b3  p.clipu t0, t0, 9
  1c008034:  005680ab  p.sb t0, 1(a3!)
  1c008038:  408ad293  srai t0, s5, 8
  1c00803c:  1092e2b3  p.clipu t0, t0, 9
  1c008040:  005700ab  p.sb t0, 1(a4!)
  1c008044:  408bd293  srai t0, s7, 8
  1c008048:  1092e2b3  p.clipu t0, t0, 9
  1c00804c:  005700ab  p.sb t0, 1(a4!)
  1c008050:  fff60613  addi a2, a2, -1
  1c008054:  fc0614e3  bne a2, zero, -56
  1c008058:  04068693  addi a3, a3, 64
  1c00805c:  04070713  addi a4, a4, 64
  1c008060:  fff88893  addi a7, a7, -1
  1c008064:  fa0896e3  bne a7, zero, -84
  1c008068:  00000513  addi a0, zero, 0
  1c00806c:  00000073  ecall
im2col_pair:
  1c008070:  1c0602b7  lui t0, 0x1c060
  1c008074:  00600f13  addi t5, zero, 6
ic_desc:
  1c008078:  0007a303  lw t1, 0(a5)
  1c00807c:  0047d383  lhu t2, 4(a5)
  1c008080:  0067de03  lhu t3, 6(a5)
  1c008084:  00c78793  addi a5, a5, 12
  1c008088:  0023d393  srli t2, t2, 2
  1c00808c:  00038863  beq t2, zero, 16
ic_z_pre:
  1c008090:  0002a22b  p.sw zero, 4(t0!)
  1c008094:  fff38393  addi t2, t2, -1
  1c008098:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c00809c:  002e5e13  srli t3, t3, 2
  1c0080a0:  000e0a63  beq t3, zero, 20
ic_copy:
  1c0080a4:  00432f8b  p.lw t6, 4(t1!)
  1c0080a8:  01f2a22b  p.sw t6, 4(t0!)
  1c0080ac:  fffe0e13  addi t3, t3, -1
  1c0080b0:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c0080b4:  ffc7de83  lhu t4, -4(a5)
  1c0080b8:  002ede93  srli t4, t4, 2
  1c0080bc:  000e8863  beq t4, zero, 16
ic_z_post:
  1c0080c0:  0002a22b  p.sw zero, 4(t0!)
  1c0080c4:  fffe8e93  addi t4, t4, -1
  1c0080c8:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c0080cc:  ffff0f13  addi t5, t5, -1
  1c0080d0:  fa0f14e3  bne t5, zero, -88
  1c0080d4:  00008067  jalr zero, 0(ra)
mm_block:
  1c0080d8:  00050413  addi s0, a0, 0
  1c0080dc:  12050493  addi s1, a0, 288
  1c0080e0:  1c060937  lui s2, 0x1c060
  1c0080e4:  1c0609b7  lui s3, 0x1c060
  1c0080e8:  12098993  addi s3, s3, 288
  1c0080ec:  00000a13  addi s4, zero, 0
  1c0080f0:  00000a93  addi s5, zero, 0
  1c0080f4:  00000b13  addi s6, zero, 0
  1c0080f8:  00000b93  addi s7, zero, 0
  1c0080fc:  12000f93  addi t6, zero, 288
mm_vloop:
  1c008100:  d40f8f57  vsetvli t5, t6, e8
  1c008104:  00040007  vle.v v0, (s0)
  1c008108:  00048087  vle.v v1, (s1)
  1c00810c:  00090107  vle.v v2, (s2)
  1c008110:  00098187  vle.v v3, (s3)
  1c008114:  d8011a57  vdotusp.vv s4, v2, v0
  1c008118:  d8019ad7  vdotusp.vv s5, v3, v0
  1c00811c:  d8111b57  vdotusp.vv s6, v2, v1
  1c008120:  d8119bd7  vdotusp.vv s7, v3, v1
  1c008124:  000f5e93  srli t4, t5, 0
  1c008128:  01d40433  add s0, s0, t4
  1c00812c:  01d484b3  add s1, s1, t4
  1c008130:  01d90933  add s2, s2, t4
  1c008134:  01d989b3  add s3, s3, t4
  1c008138:  41ef8fb3  sub t6, t6, t5
  1c00813c:  fc0f92e3  bne t6, zero, -60
  1c008140:  00048513  addi a0, s1, 0
  1c008144:  00008067  jalr zero, 0(ra)
