# 2-bit/vector128/sw-tree (204 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  01068713  addi a4, a3, 16
  1c00800c:  08000893  addi a7, zero, 128
pixel_loop:
  1c008010:  248000ef  jal ra, 584
  1c008014:  1c030537  lui a0, 0x1c030
  1c008018:  1c0505b7  lui a1, 0x1c050
  1c00801c:  01000613  addi a2, zero, 16
ch_loop:
  1c008020:  2a0000ef  jal ra, 672
  1c008024:  ffe58f13  addi t5, a1, -2
  1c008028:  110a52b3  p.clip t0, s4, 16
  1c00802c:  00100313  addi t1, zero, 1
  1c008030:  00131393  slli t2, t1, 1
  1c008034:  127f7e0b  p.lh t3, t2(t5)
  1c008038:  005e2eb3  slt t4, t3, t0
  1c00803c:  00630333  add t1, t1, t1
  1c008040:  01d30333  add t1, t1, t4
  1c008044:  00131393  slli t2, t1, 1
  1c008048:  127f7e0b  p.lh t3, t2(t5)
  1c00804c:  005e2eb3  slt t4, t3, t0
  1c008050:  00630333  add t1, t1, t1
  1c008054:  01d30333  add t1, t1, t4
  1c008058:  ffc30313  addi t1, t1, -4
  1c00805c:  00030f93  addi t6, t1, 0
  1c008060:  00658f13  addi t5, a1, 6
  1c008064:  110b52b3  p.clip t0, s6, 16
  1c008068:  00100313  addi t1, zero, 1
  1c00806c:  00131393  slli t2, t1, 1
  1c008070:  127f7e0b  p.lh t3, t2(t5)
  1c008074:  005e2eb3  slt t4, t3, t0
  1c008078:  00630333  add t1, t1, t1
  1c00807c:  01d30333  add t1, t1, t4
  1c008080:  00131393  slli t2, t1, 1
  1c008084:  127f7e0b  p.lh t3, t2(t5)
  1c008088:  005e2eb3  slt t4, t3, t0
  1c00808c:  00630333  add t1, t1, t1
  1c008090:  01d30333  add t1, t1, t4
  1c008094:  ffc30313  addi t1, t1, -4
  1c008098:  00231313  slli t1, t1, 2
  1c00809c:  01f36133  or sp, t1, t6
  1c0080a0:  ffe58f13  addi t5, a1, -2
  1c0080a4:  110ad2b3  p.clip t0, s5, 16
  1c0080a8:  00100313  addi t1, zero, 1
  1c0080ac:  00131393  slli t2, t1, 1
  1c0080b0:  127f7e0b  p.lh t3, t2(t5)
  1c0080b4:  005e2eb3  slt t4, t3, t0
  1c0080b8:  00630333  add t1, t1, t1
  1c0080bc:  01d30333  add t1, t1, t4
  1c0080c0:  00131393  slli t2, t1, 1
  1c0080c4:  127f7e0b  p.lh t3, t2(t5)
  1c0080c8:  005e2eb3  slt t4, t3, t0
  1c0080cc:  00630333  add t1, t1, t1
  1c0080d0:  01d30333  add t1, t1, t4
  1c0080d4:  ffc30313  addi t1, t1, -4
  1c0080d8:  00030f93  addi t6, t1, 0
  1c0080dc:  00658f13  addi t5, a1, 6
  1c0080e0:  110bd2b3  p.clip t0, s7, 16
  1c0080e4:  00100313  addi t1, zero, 1
  1c0080e8:  00131393  slli t2, t1, 1
  1c0080ec:  127f7e0b  p.lh t3, t2(t5)
  1c0080f0:  005e2eb3  slt t4, t3, t0
  1c0080f4:  00630333  add t1, t1, t1
  1c0080f8:  01d30333  add t1, t1, t4
  1c0080fc:  00131393  slli t2, t1, 1
  1c008100:  127f7e0b  p.lh t3, t2(t5)
  1c008104:  005e2eb3  slt t4, t3, t0
  1c008108:  00630333  add t1, t1, t1
  1c00810c:  01d30333  add t1, t1, t4
  1c008110:  ffc30313  addi t1, t1, -4
  1c008114:  00231313  slli t1, t1, 2
  1c008118:  01f361b3  or gp, t1, t6
  1c00811c:  01058593  addi a1, a1, 16
  1c008120:  1a0000ef  jal ra, 416
  1c008124:  ffe58f13  addi t5, a1, -2
  1c008128:  110a52b3  p.clip t0, s4, 16
  1c00812c:  00100313  addi t1, zero, 1
  1c008130:  00131393  slli t2, t1, 1
  1c008134:  127f7e0b  p.lh t3, t2(t5)
  1c008138:  005e2eb3  slt t4, t3, t0
  1c00813c:  00630333  add t1, t1, t1
  1c008140:  01d30333  add t1, t1, t4
  1c008144:  00131393  slli t2, t1, 1
  1c008148:  127f7e0b  p.lh t3, t2(t5)
  1c00814c:  005e2eb3  slt t4, t3, t0
  1c008150:  00630333  add t1, t1, t1
  1c008154:  01d30333  add t1, t1, t4
  1c008158:  ffc30313  addi t1, t1, -4
  1c00815c:  00030f93  addi t6, t1, 0
  1c008160:  00658f13  addi t5, a1, 6
  1c008164:  110b52b3  p.clip t0, s6, 16
  1c008168:  00100313  addi t1, zero, 1
  1c00816c:  00131393  slli t2, t1, 1
  1c008170:  127f7e0b  p.lh t3, t2(t5)
  1c008174:  005e2eb3  slt t4, t3, t0
  1c008178:  00630333  add t1, t1, t1
  1c00817c:  01d30333  add t1, t1, t4
  1c008180:  00131393  slli t2, t1, 1
  1c008184:  127f7e0b  p.lh t3, t2(t5)
  1c008188:  005e2eb3  slt t4, t3, t0
  1c00818c:  00630333  add t1, t1, t1
  1c008190:  01d30333  add t1, t1, t4
  1c008194:  ffc30313  addi t1, t1, -4
  1c008198:  00231313  slli t1, t1, 2
  1c00819c:  01f36333  or t1, t1, t6
  1c0081a0:  00431313  slli t1, t1, 4
  1c0081a4:  00236333  or t1, t1, sp
  1c0081a8:  006680ab  p.sb t1, 1(a3!)
  1c0081ac:  ffe58f13  addi t5, a1, -2
  1c0081b0:  110ad2b3  p.clip t0, s5, 16
  1c0081b4:  00100313  addi t1, zero, 1
  1c0081b8:  00131393  slli t2, t1, 1
  1c0081bc:  127f7e0b  p.lh t3, t2(t5)
  1c0081c0:  005e2eb3  slt t4, t3, t0
  1c0081c4:  00630333  add t1, t1, t1
  1c0081c8:  01d30333  add t1, t1, t4
  1c0081cc:  00131393  slli t2, t1, 1
  1c0081d0:  127f7e0b  p.lh t3, t2(t5)
  1c0081d4:  005e2eb3  slt t4, t3, t0
  1c0081d8:  00630333  add t1, t1, t1
  1c0081dc:  01d30333  add t1, t1, t4
  1c0081e0:  ffc30313  addi t1, t1, -4
  1c0081e4:  00030f93  addi t6, t1, 0
  1c0081e8:  00658f13  addi t5, a1, 6
  1c0081ec:  110bd2b3  p.clip t0, s7, 16
  1c0081f0:  00100313  addi t1, zero, 1
  1c0081f4:  00131393  slli t2, t1, 1
  1c0081f8:  127f7e0b  p.lh t3, t2(t5)
  1c0081fc:  005e2eb3  slt t4, t3, t0
  1c008200:  00630333  add t1, t1, t1
  1c008204:  01d30333  add t1, t1, t4
  1c008208:  00131393  slli t2, t1, 1
  1c00820c:  127f7e0b  p.lh t3, t2(t5)
  1c008210:  005e2eb3  slt t4, t3, t0
  1c008214:  00630333  add t1, t1, t1
  1c008218:  01d30333  add t1, t1, t4
  1c00821c:  ffc30313  addi t1, t1, -4
  1c008220:  00231313  slli t1, t1, 2
  1c008224:  01f36333  or t1, t1, t6
  1c008228:  00431313  slli t1, t1, 4
  1c00822c:  00336333  or t1, t1, gp
  1c008230:  006700ab  p.sb t1, 1(a4!)
  1c008234:  01058593  addi a1, a1, 16
  1c008238:  fff60613  addi a2, a2, -1
  1c00823c:  de0612e3  bne a2, zero, -540
  1c008240:  01068693  addi a3, a3, 16
  1c008244:  01070713  addi a4, a4, 16
  1c008248:  fff88893  addi a7, a7, -1
  1c00824c:  dc0892e3  bne a7, zero, -572
  1c008250:  00000513  addi a0, zero, 0
  1c008254:  00000073  ecall
im2col_pair:
  1c008258:  1c0602b7  lui t0, 0x1c060
  1c00825c:  00600f13  addi t5, zero, 6
ic_desc:
  1c008260:  0007a303  lw t1, 0(a5)
  1c008264:  0047d383  lhu t2, 4(a5)
  1c008268:  0067de03  lhu t3, 6(a5)
  1c00826c:  00c78793  addi a5, a5, 12
  1c008270:  0023d393  srli t2, t2, 2
  1c008274:  00038863  beq t2, zero, 16
ic_z_pre:
  1c008278:  0002a22b  p.sw zero, 4(t0!)
  1c00827c:  fff38393  addi t2, t2, -1
  1c008280:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c008284:  002e5e13  srli t3, t3, 2
  1c008288:  000e0a63  beq t3, zero, 20
ic_copy:
  1c00828c:  00432f8b  p.lw t6, 4(t1!)
  1c008290:  01f2a22b  p.sw t6, 4(t0!)
  1c008294:  fffe0e13  addi t3, t3, -1
  1c008298:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c00829c:  ffc7de83  lhu t4, -4(a5)
  1c0082a0:  002ede93  srli t4, t4, 2
  1c0082a4:  000e8863  beq t4, zero, 16
ic_z_post:
  1c0082a8:  0002a22b  p.sw zero, 4(t0!)
  1c0082ac:  fffe8e93  addi t4, t4, -1
  1c0082b0:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c0082b4:  ffff0f13  addi t5, t5, -1
  1c0082b8:  fa0f14e3  bne t5, zero, -88
  1c0082bc:  00008067  jalr zero, 0(ra)
mm_block:
  1c0082c0:  00050413  addi s0, a0, 0
  1c0082c4:  04850493  addi s1, a0, 72
  1c0082c8:  1c060937  lui s2, 0x1c060
  1c0082cc:  1c0609b7  lui s3, 0x1c060
  1c0082d0:  04898993  addi s3, s3, 72
  1c0082d4:  00000a13  addi s4, zero, 0
  1c0082d8:  00000a93  addi s5, zero, 0
  1c0082dc:  00000b13  addi s6, zero, 0
  1c0082e0:  00000b93  addi s7, zero, 0
  1c0082e4:  12000f93  addi t6, zero, 288
mm_vloop:
  1c0082e8:  d00f8f57  vsetvli t5, t6, e2
  1c0082ec:  00040007  vle.v v0, (s0)
  1c0082f0:  00048087  vle.v v1, (s1)
  1c0082f4:  00090107  vle.v v2, (s2)
  1c0082f8:  00098187  vle.v v3, (s3)
  1c0082fc:  d8011a57  vdotusp.vv s4, v2, v0
  1c008300:  d8019ad7  vdotusp.vv s5, v3, v0
  1c008304:  d8111b57  vdotusp.vv s6, v2, v1
  1c008308:  d8119bd7  vdotusp.vv s7, v3, v1
  1c00830c:  002f5e93  srli t4, t5, 2
  1c008310:  01d40433  add s0, s0, t4
  1c008314:  01d484b3  add s1, s1, t4
  1c008318:  01d90933  add s2, s2, t4
  1c00831c:  01d989b3  add s3, s3, t4
  1c008320:  41ef8fb3  sub t6, t6, t5
  1c008324:  fc0f92e3  bne t6, zero, -60
  1c008328:  00048513  addi a0, s1, 0
  1c00832c:  00008067  jalr zero, 0(ra)
