# 2-bit/vector128/pv.qnt (112 instructions)
  1c008000:  1c0587b7  lui a5, 0x1c058
  1c008004:  1c0686b7  lui a3, 0x1c068
  1c008008:  01068713  addi a4, a3, 16
  1c00800c:  08000893  addi a7, zero, 128
pixel_loop:
  1c008010:  0d8000ef  jal ra, 216
  1c008014:  1c030537  lui a0, 0x1c030
  1c008018:  1c0505b7  lui a1, 0x1c050
  1c00801c:  01000613  addi a2, zero, 16
ch_loop:
  1c008020:  130000ef  jal ra, 304
  1c008024:  110a5a33  p.clip s4, s4, 16
  1c008028:  110b5b33  p.clip s6, s6, 16
  1c00802c:  00200393  addi t2, zero, 2
  1c008030:  d6038057  vsetvli zero, t2, e16
  1c008034:  e80a0057  vslide1down.vx v0, v0, s4
  1c008038:  e80b0057  vslide1down.vx v0, v0, s6
  1c00803c:  e60580d7  vqnt.c.v v1, a1, v0
  1c008040:  f0100157  vmv.x.s sp, v1
  1c008044:  110adab3  p.clip s5, s5, 16
  1c008048:  110bdbb3  p.clip s7, s7, 16
  1c00804c:  00200393  addi t2, zero, 2
  1c008050:  d6038057  vsetvli zero, t2, e16
  1c008054:  e80a8057  vslide1down.vx v0, v0, s5
  1c008058:  e80b8057  vslide1down.vx v0, v0, s7
  1c00805c:  e60580d7  vqnt.c.v v1, a1, v0
  1c008060:  f01001d7  vmv.x.s gp, v1
  1c008064:  01058593  addi a1, a1, 16
  1c008068:  0e8000ef  jal ra, 232
  1c00806c:  110a5a33  p.clip s4, s4, 16
  1c008070:  110b5b33  p.clip s6, s6, 16
  1c008074:  00200393  addi t2, zero, 2
  1c008078:  d6038057  vsetvli zero, t2, e16
  1c00807c:  e80a0057  vslide1down.vx v0, v0, s4
  1c008080:  e80b0057  vslide1down.vx v0, v0, s6
  1c008084:  e60580d7  vqnt.c.v v1, a1, v0
  1c008088:  f01002d7  vmv.x.s t0, v1
  1c00808c:  00429293  slli t0, t0, 4
  1c008090:  0022e2b3  or t0, t0, sp
  1c008094:  005680ab  p.sb t0, 1(a3!)
  1c008098:  110adab3  p.clip s5, s5, 16
  1c00809c:  110bdbb3  p.clip s7, s7, 16
  1c0080a0:  00200393  addi t2, zero, 2
  1c0080a4:  d6038057  vsetvli zero, t2, e16
  1c0080a8:  e80a8057  vslide1down.vx v0, v0, s5
  1c0080ac:  e80b8057  vslide1down.vx v0, v0, s7
  1c0080b0:  e60580d7  vqnt.c.v v1, a1, v0
  1c0080b4:  f0100357  vmv.x.s t1, v1
  1c0080b8:  00431313  slli t1, t1, 4
  1c0080bc:  00336333  or t1, t1, gp
  1c0080c0:  006700ab  p.sb t1, 1(a4!)
  1c0080c4:  01058593  addi a1, a1, 16
  1c0080c8:  fff60613  addi a2, a2, -1
  1c0080cc:  f4061ae3  bne a2, zero, -172
  1c0080d0:  01068693  addi a3, a3, 16
  1c0080d4:  01070713  addi a4, a4, 16
  1c0080d8:  fff88893  addi a7, a7, -1
  1c0080dc:  f2089ae3  bne a7, zero, -204
  1c0080e0:  00000513  addi a0, zero, 0
  1c0080e4:  00000073  ecall
im2col_pair:
  1c0080e8:  1c0602b7  lui t0, 0x1c060
  1c0080ec:  00600f13  addi t5, zero, 6
ic_desc:
  1c0080f0:  0007a303  lw t1, 0(a5)
  1c0080f4:  0047d383  lhu t2, 4(a5)
  1c0080f8:  0067de03  lhu t3, 6(a5)
  1c0080fc:  00c78793  addi a5, a5, 12
  1c008100:  0023d393  srli t2, t2, 2
  1c008104:  00038863  beq t2, zero, 16
ic_z_pre:
  1c008108:  0002a22b  p.sw zero, 4(t0!)
  1c00810c:  fff38393  addi t2, t2, -1
  1c008110:  fe039ce3  bne t2, zero, -8
ic_z_done_pre:
  1c008114:  002e5e13  srli t3, t3, 2
  1c008118:  000e0a63  beq t3, zero, 20
ic_copy:
  1c00811c:  00432f8b  p.lw t6, 4(t1!)
  1c008120:  01f2a22b  p.sw t6, 4(t0!)
  1c008124:  fffe0e13  addi t3, t3, -1
  1c008128:  fe0e1ae3  bne t3, zero, -12
ic_copy_done:
  1c00812c:  ffc7de83  lhu t4, -4(a5)
  1c008130:  002ede93  srli t4, t4, 2
  1c008134:  000e8863  beq t4, zero, 16
ic_z_post:
  1c008138:  0002a22b  p.sw zero, 4(t0!)
  1c00813c:  fffe8e93  addi t4, t4, -1
  1c008140:  fe0e9ce3  bne t4, zero, -8
ic_z_done_post:
  1c008144:  ffff0f13  addi t5, t5, -1
  1c008148:  fa0f14e3  bne t5, zero, -88
  1c00814c:  00008067  jalr zero, 0(ra)
mm_block:
  1c008150:  00050413  addi s0, a0, 0
  1c008154:  04850493  addi s1, a0, 72
  1c008158:  1c060937  lui s2, 0x1c060
  1c00815c:  1c0609b7  lui s3, 0x1c060
  1c008160:  04898993  addi s3, s3, 72
  1c008164:  00000a13  addi s4, zero, 0
  1c008168:  00000a93  addi s5, zero, 0
  1c00816c:  00000b13  addi s6, zero, 0
  1c008170:  00000b93  addi s7, zero, 0
  1c008174:  12000f93  addi t6, zero, 288
mm_vloop:
  1c008178:  d00f8f57  vsetvli t5, t6, e2
  1c00817c:  00040007  vle.v v0, (s0)
  1c008180:  00048087  vle.v v1, (s1)
  1c008184:  00090107  vle.v v2, (s2)
  1c008188:  00098187  vle.v v3, (s3)
  1c00818c:  d8011a57  vdotusp.vv s4, v2, v0
  1c008190:  d8019ad7  vdotusp.vv s5, v3, v0
  1c008194:  d8111b57  vdotusp.vv s6, v2, v1
  1c008198:  d8119bd7  vdotusp.vv s7, v3, v1
  1c00819c:  002f5e93  srli t4, t5, 2
  1c0081a0:  01d40433  add s0, s0, t4
  1c0081a4:  01d484b3  add s1, s1, t4
  1c0081a8:  01d90933  add s2, s2, t4
  1c0081ac:  01d989b3  add s3, s3, t4
  1c0081b0:  41ef8fb3  sub t6, t6, t5
  1c0081b4:  fc0f92e3  bne t6, zero, -60
  1c0081b8:  00048513  addi a0, s1, 0
  1c0081bc:  00008067  jalr zero, 0(ra)
