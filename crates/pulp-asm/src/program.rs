//! The assembled program container.

use pulp_isa::Instr;
use std::collections::BTreeMap;
use std::fmt;

/// An assembled program: encoded instruction words plus the data image and
/// resolved symbol table.
///
/// The SoC loader (`pulp-soc`) copies `words` to [`Program::base`] and each
/// data segment to its address, then starts the core at the entry point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Address the first instruction is loaded at.
    pub base: u32,
    /// Encoded instruction words, contiguous from [`Program::base`].
    pub words: Vec<u32>,
    /// Decoded form of `words` (kept for fast simulation and listings).
    pub instrs: Vec<Instr>,
    /// Data segments as `(address, bytes)` pairs, non-overlapping.
    pub data: Vec<(u32, Vec<u8>)>,
    /// Resolved label addresses (code and data labels).
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// Total code size in bytes.
    pub fn code_size(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Address of the resolved label, if defined.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Produces an address-annotated disassembly listing of the code.
    pub fn listing(&self) -> String {
        use fmt::Write;
        // Invert the symbol table for label annotations.
        let mut by_addr: BTreeMap<u32, Vec<&str>> = BTreeMap::new();
        for (name, addr) in &self.symbols {
            by_addr.entry(*addr).or_default().push(name);
        }
        let mut out = String::new();
        for (i, instr) in self.instrs.iter().enumerate() {
            let addr = self.base + (i as u32) * 4;
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {addr:08x}:  {:08x}  {instr}", self.words[i]);
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_isa::encode::encode;
    use pulp_isa::Reg;

    fn sample() -> Program {
        let instrs = vec![
            Instr::AluImm {
                op: pulp_isa::instr::AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 1,
            },
            Instr::Ecall,
        ];
        let words = instrs.iter().map(encode).collect();
        let mut symbols = BTreeMap::new();
        symbols.insert("start".to_string(), 0x100);
        Program {
            base: 0x100,
            words,
            instrs,
            data: vec![],
            symbols,
        }
    }

    #[test]
    fn listing_contains_labels_addresses_and_mnemonics() {
        let p = sample();
        let text = p.listing();
        assert!(text.contains("start:"));
        assert!(text.contains("00000100:"));
        assert!(text.contains("addi a0, zero, 1"));
        assert!(text.contains("ecall"));
        assert_eq!(p.to_string(), text);
    }

    #[test]
    fn code_size_and_symbols() {
        let p = sample();
        assert_eq!(p.code_size(), 8);
        assert_eq!(p.symbol("start"), Some(0x100));
        assert_eq!(p.symbol("missing"), None);
    }
}
