//! The [`Asm`] program builder: label resolution, pseudo-instructions and
//! data segments.

use crate::program::Program;
use pulp_isa::encode::encode;
use pulp_isa::instr::{
    AluOp, BranchCond, Instr, LoadKind, LoopIdx, SimdOperand, StoreKind, ValidateError,
};
use pulp_isa::simd::{DotSign, SimdFmt};
use pulp_isa::vec::{VReg, VecSew};
use pulp_isa::Reg;
use std::collections::BTreeMap;
use std::fmt;

/// An error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings are given by the variant docs
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
    /// A branch target is outside the ±4 KiB B-type range.
    BranchRange { label: String, offset: i64 },
    /// A jump target is outside the ±1 MiB J-type range.
    JumpRange { label: String, offset: i64 },
    /// A hardware-loop bound does not fit its encoding (negative,
    /// misaligned, or too far).
    LoopRange { label: String, offset: i64 },
    /// An instruction failed [`Instr::validate`].
    Validate(ValidateError),
    /// Two data segments overlap.
    DataOverlap { label: String, addr: u32 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchRange { label, offset } => {
                write!(f, "branch to `{label}` out of range ({offset} bytes)")
            }
            AsmError::JumpRange { label, offset } => {
                write!(f, "jump to `{label}` out of range ({offset} bytes)")
            }
            AsmError::LoopRange { label, offset } => {
                write!(
                    f,
                    "hardware-loop bound `{label}` not encodable ({offset} bytes)"
                )
            }
            AsmError::Validate(e) => write!(f, "invalid instruction: {e}"),
            AsmError::DataOverlap { label, addr } => {
                write!(f, "data segment `{label}` overlaps address {addr:#x}")
            }
        }
    }
}

impl std::error::Error for AsmError {}

impl From<ValidateError> for AsmError {
    fn from(e: ValidateError) -> Self {
        AsmError::Validate(e)
    }
}

#[derive(Debug, Clone)]
enum Item {
    Label(String),
    Fixed(Instr),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: String,
    },
    Jal {
        rd: Reg,
        target: String,
    },
    LpStarti {
        l: LoopIdx,
        target: String,
    },
    LpEndi {
        l: LoopIdx,
        target: String,
    },
    LpSetup {
        l: LoopIdx,
        rs1: Reg,
        target: String,
    },
    LpSetupi {
        l: LoopIdx,
        imm: u32,
        target: String,
    },
    /// Load the 32-bit address of a label: `lui` + `addi`.
    La {
        rd: Reg,
        target: String,
    },
}

impl Item {
    /// Size in instruction words (labels are zero-sized).
    fn size(&self) -> u32 {
        match self {
            Item::Label(_) => 0,
            Item::La { .. } => 2,
            _ => 1,
        }
    }
}

/// Returns the `(hi, lo)` parts of an absolute address for `lui`/`addi`,
/// compensating for `addi`'s sign extension.
fn hi_lo(value: u32) -> (u32, i32) {
    let lo = (value & 0xfff) as i32;
    let lo = if lo >= 0x800 { lo - 0x1000 } else { lo };
    let hi = value.wrapping_sub(lo as u32) & 0xffff_f000;
    (hi, lo)
}

/// A program builder with labels and pseudo-instructions.
///
/// Instructions are appended through either the raw [`Asm::i`] method or
/// the typed convenience helpers; [`Asm::assemble`] resolves labels and
/// produces a [`Program`]. See the crate docs for an example.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    items: Vec<Item>,
    data: Vec<(String, Option<u32>, Vec<u8>)>,
    equs: BTreeMap<String, u32>,
}

impl Asm {
    /// Creates a builder whose first instruction will live at `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            items: Vec::new(),
            data: Vec::new(),
            equs: BTreeMap::new(),
        }
    }

    /// Appends a raw instruction.
    pub fn i(&mut self, instr: Instr) -> &mut Self {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Defines a code label at the current position.
    pub fn label(&mut self, name: &str) -> &mut Self {
        self.items.push(Item::Label(name.to_string()));
        self
    }

    /// Defines an absolute symbol usable with [`Asm::la`].
    pub fn equ(&mut self, name: &str, value: u32) -> &mut Self {
        self.equs.insert(name.to_string(), value);
        self
    }

    /// Appends a data segment placed after the code (16-byte aligned),
    /// addressable through its label.
    pub fn data_bytes(&mut self, label: &str, bytes: impl Into<Vec<u8>>) -> &mut Self {
        self.data.push((label.to_string(), None, bytes.into()));
        self
    }

    /// Appends a data segment at a fixed address.
    pub fn data_bytes_at(
        &mut self,
        label: &str,
        addr: u32,
        bytes: impl Into<Vec<u8>>,
    ) -> &mut Self {
        self.data
            .push((label.to_string(), Some(addr), bytes.into()));
        self
    }

    /// Appends little-endian words as a data segment.
    pub fn data_words(&mut self, label: &str, words: &[u32]) -> &mut Self {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.data_bytes(label, bytes)
    }

    /// Appends little-endian 16-bit values as a data segment.
    pub fn data_halves(&mut self, label: &str, halves: &[i16]) -> &mut Self {
        let bytes: Vec<u8> = halves.iter().flat_map(|h| h.to_le_bytes()).collect();
        self.data_bytes(label, bytes)
    }

    // ----- pseudo-instructions -----

    /// `li rd, value`: loads a 32-bit constant (1 or 2 instructions).
    pub fn li(&mut self, rd: Reg, value: i32) -> &mut Self {
        if (-2048..2048).contains(&value) {
            self.i(Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: Reg::Zero,
                imm: value,
            })
        } else {
            let (hi, lo) = hi_lo(value as u32);
            self.i(Instr::Lui { rd, imm: hi });
            if lo != 0 {
                self.i(Instr::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1: rd,
                    imm: lo,
                });
            }
            self
        }
    }

    /// `la rd, label`: loads the address of a code/data label or `equ`
    /// symbol (always 2 instructions for deterministic layout).
    pub fn la(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.items.push(Item::La {
            rd,
            target: label.to_string(),
        });
        self
    }

    /// `mv rd, rs`: register copy.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1: rs,
            imm: 0,
        })
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.i(Instr::Nop)
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::Alu {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::Alu {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        })
    }

    /// `slli rd, rs1, sh`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, sh: i32) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: sh,
        })
    }

    /// `srli rd, rs1, sh`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, sh: i32) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: sh,
        })
    }

    /// `srai rd, rs1, sh`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, sh: i32) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: sh,
        })
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        })
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.i(Instr::AluImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        })
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::Alu {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        })
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::Alu {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        })
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::Load {
            kind: LoadKind::Word,
            rd,
            rs1,
            offset,
        })
    }

    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::Store {
            kind: StoreKind::Word,
            rs1,
            rs2,
            offset,
        })
    }

    /// `lbu rd, offset(rs1)`.
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::Load {
            kind: LoadKind::ByteU,
            rd,
            rs1,
            offset,
        })
    }

    /// `sb rs2, offset(rs1)`.
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::Store {
            kind: StoreKind::Byte,
            rs1,
            rs2,
            offset,
        })
    }

    /// `p.lw rd, offset(rs1!)`: post-increment word load (XpulpV2).
    pub fn p_lw_postinc(&mut self, rd: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::LoadPostInc {
            kind: LoadKind::Word,
            rd,
            rs1,
            offset,
        })
    }

    /// `p.sw rs2, offset(rs1!)`: post-increment word store (XpulpV2).
    pub fn p_sw_postinc(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::StorePostInc {
            kind: StoreKind::Word,
            rs1,
            rs2,
            offset,
        })
    }

    /// `p.sb rs2, offset(rs1!)`: post-increment byte store (XpulpV2).
    pub fn p_sb_postinc(&mut self, rs2: Reg, offset: i32, rs1: Reg) -> &mut Self {
        self.i(Instr::StorePostInc {
            kind: StoreKind::Byte,
            rs1,
            rs2,
            offset,
        })
    }

    /// `pv.sdot<sign>.<fmt> rd, rs1, rs2`: sum-of-dot-products.
    pub fn pv_sdot(
        &mut self,
        fmt: SimdFmt,
        sign: DotSign,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    ) -> &mut Self {
        self.i(Instr::PvSdot {
            fmt,
            sign,
            rd,
            rs1,
            op2: SimdOperand::Vector(rs2),
        })
    }

    /// `pv.qnt.<fmt> rd, rs1, rs2`: hardware quantization (XpulpNN).
    pub fn pv_qnt(&mut self, fmt: SimdFmt, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::PvQnt { fmt, rd, rs1, rs2 })
    }

    // ----- vector (Xrvv) -----

    /// `vsetvli rd, rs1, <sew>`: configure the vector unit.
    pub fn vsetvli(&mut self, rd: Reg, rs1: Reg, sew: VecSew) -> &mut Self {
        self.i(Instr::VSetvli { rd, rs1, sew })
    }

    /// `vle.v vd, (rs1)`: unit-stride vector load.
    pub fn vle(&mut self, vd: VReg, rs1: Reg) -> &mut Self {
        self.i(Instr::VLoad { vd, rs1 })
    }

    /// `vse.v vs, (rs1)`: unit-stride vector store.
    pub fn vse(&mut self, vs: VReg, rs1: Reg) -> &mut Self {
        self.i(Instr::VStore { vs, rs1 })
    }

    /// `vlse.v vd, (rs1), rs2`: strided vector load.
    pub fn vlse(&mut self, vd: VReg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::VLoadStrided { vd, rs1, rs2 })
    }

    /// `vsse.v vs, (rs1), rs2`: strided vector store.
    pub fn vsse(&mut self, vs: VReg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.i(Instr::VStoreStrided { vs, rs1, rs2 })
    }

    /// `vdot<sign>.vv rd, vs1, vs2`: dot-product reduction into a
    /// scalar accumulator.
    pub fn vdot(&mut self, sign: DotSign, rd: Reg, vs1: VReg, vs2: VReg) -> &mut Self {
        self.i(Instr::VDot { sign, rd, vs1, vs2 })
    }

    /// `vqnt.<fmt>.v vd, rs1, vs2`: vectorized staircase quantization.
    pub fn vqnt(&mut self, fmt: SimdFmt, vd: VReg, rs1: Reg, vs2: VReg) -> &mut Self {
        self.i(Instr::VQnt { fmt, vd, rs1, vs2 })
    }

    /// `vslide1down.vx vd, vs2, rs1`: slide elements down one slot,
    /// filling the top from a scalar register.
    pub fn vslide1down(&mut self, vd: VReg, vs2: VReg, rs1: Reg) -> &mut Self {
        self.i(Instr::VSlide1 { vd, vs2, rs1 })
    }

    /// `vmv.x.s rd, vs2`: move element 0 to a scalar register.
    pub fn vmv_x_s(&mut self, rd: Reg, vs2: VReg) -> &mut Self {
        self.i(Instr::VMvXS { rd, vs2 })
    }

    // ----- control flow -----

    /// Conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.items.push(Item::Branch {
            cond,
            rs1,
            rs2,
            target: target.to_string(),
        });
        self
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, target)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, target)
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, target)
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, target)
    }

    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, target: &str) -> &mut Self {
        self.branch(BranchCond::Ltu, rs1, rs2, target)
    }

    /// `j label`: unconditional jump.
    pub fn j(&mut self, target: &str) -> &mut Self {
        self.items.push(Item::Jal {
            rd: Reg::Zero,
            target: target.to_string(),
        });
        self
    }

    /// `jal label`: call, linking into `ra`.
    pub fn jal(&mut self, target: &str) -> &mut Self {
        self.items.push(Item::Jal {
            rd: Reg::Ra,
            target: target.to_string(),
        });
        self
    }

    /// `ret` (`jalr zero, 0(ra)`).
    pub fn ret(&mut self) -> &mut Self {
        self.i(Instr::Jalr {
            rd: Reg::Zero,
            rs1: Reg::Ra,
            offset: 0,
        })
    }

    /// `ecall` — the SoC halt convention.
    pub fn ecall(&mut self) -> &mut Self {
        self.i(Instr::Ecall)
    }

    // ----- hardware loops -----

    /// `lp.starti l, label`.
    pub fn lp_starti(&mut self, l: LoopIdx, target: &str) -> &mut Self {
        self.items.push(Item::LpStarti {
            l,
            target: target.to_string(),
        });
        self
    }

    /// `lp.endi l, label` (the label marks the first instruction *after*
    /// the loop body, matching RI5CY's end-exclusive semantics).
    pub fn lp_endi(&mut self, l: LoopIdx, target: &str) -> &mut Self {
        self.items.push(Item::LpEndi {
            l,
            target: target.to_string(),
        });
        self
    }

    /// `lp.count l, rs1`.
    pub fn lp_count(&mut self, l: LoopIdx, rs1: Reg) -> &mut Self {
        self.i(Instr::LpCount { l, rs1 })
    }

    /// `lp.counti l, imm`.
    pub fn lp_counti(&mut self, l: LoopIdx, imm: u32) -> &mut Self {
        self.i(Instr::LpCounti { l, imm })
    }

    /// `lp.setup l, rs1, label`: one-instruction loop setup with a
    /// register trip count.
    pub fn lp_setup(&mut self, l: LoopIdx, rs1: Reg, target: &str) -> &mut Self {
        self.items.push(Item::LpSetup {
            l,
            rs1,
            target: target.to_string(),
        });
        self
    }

    /// `lp.setupi l, imm, label`: one-instruction loop setup with an
    /// immediate trip count (body limited to 62 bytes by the encoding).
    pub fn lp_setupi(&mut self, l: LoopIdx, imm: u32, target: &str) -> &mut Self {
        self.items.push(Item::LpSetupi {
            l,
            imm,
            target: target.to_string(),
        });
        self
    }

    /// Number of instruction words emitted so far.
    pub fn len_words(&self) -> u32 {
        self.items.iter().map(Item::size).sum()
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for undefined or duplicate labels, branch
    /// or loop targets out of encodable range, invalid instructions, or
    /// overlapping fixed-address data segments.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        // Pass 1: lay out code and data, collecting label addresses.
        let mut symbols: BTreeMap<String, u32> = self.equs.clone();
        let mut addr = self.base;
        for item in &self.items {
            if let Item::Label(name) = item {
                if symbols.insert(name.clone(), addr).is_some() {
                    return Err(AsmError::DuplicateLabel(name.clone()));
                }
            }
            addr += item.size() * 4;
        }
        let code_end = addr;
        // Data segments: fixed-address first (checked for overlap with
        // code), then floating ones packed after the code, 16-byte
        // aligned.
        let mut data: Vec<(u32, Vec<u8>)> = Vec::new();
        let mut float_addr = (code_end + 15) & !15;
        for (label, fixed, bytes) in &self.data {
            let at = match fixed {
                Some(a) => {
                    if *a < code_end && a + bytes.len() as u32 > self.base {
                        return Err(AsmError::DataOverlap {
                            label: label.clone(),
                            addr: *a,
                        });
                    }
                    *a
                }
                None => {
                    let a = float_addr;
                    float_addr = (a + bytes.len() as u32 + 15) & !15;
                    a
                }
            };
            if symbols.insert(label.clone(), at).is_some() {
                return Err(AsmError::DuplicateLabel(label.clone()));
            }
            data.push((at, bytes.clone()));
        }

        let lookup = |name: &str| -> Result<u32, AsmError> {
            symbols
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(name.to_string()))
        };

        // Pass 2: emit instructions with resolved offsets.
        let mut instrs: Vec<Instr> = Vec::with_capacity(self.items.len());
        let mut addr = self.base;
        for item in &self.items {
            match item {
                Item::Label(_) => {}
                Item::Fixed(instr) => {
                    instr.validate()?;
                    instrs.push(*instr);
                }
                Item::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                } => {
                    let offset = lookup(target)? as i64 - addr as i64;
                    if !(-4096..4096).contains(&offset) || offset & 1 != 0 {
                        return Err(AsmError::BranchRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    instrs.push(Instr::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        offset: offset as i32,
                    });
                }
                Item::Jal { rd, target } => {
                    let offset = lookup(target)? as i64 - addr as i64;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) || offset & 1 != 0 {
                        return Err(AsmError::JumpRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    instrs.push(Instr::Jal {
                        rd: *rd,
                        offset: offset as i32,
                    });
                }
                Item::LpStarti { l, target } => {
                    let offset = lookup(target)? as i64 - addr as i64;
                    if !(0..8192).contains(&offset) || offset & 3 != 0 {
                        return Err(AsmError::LoopRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    instrs.push(Instr::LpStarti {
                        l: *l,
                        offset: offset as i32,
                    });
                }
                Item::LpEndi { l, target } => {
                    let offset = lookup(target)? as i64 - addr as i64;
                    if !(0..8192).contains(&offset) || offset & 3 != 0 {
                        return Err(AsmError::LoopRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    instrs.push(Instr::LpEndi {
                        l: *l,
                        offset: offset as i32,
                    });
                }
                Item::LpSetup { l, rs1, target } => {
                    let offset = lookup(target)? as i64 - addr as i64;
                    if !(0..8192).contains(&offset) || offset & 3 != 0 {
                        return Err(AsmError::LoopRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    instrs.push(Instr::LpSetup {
                        l: *l,
                        rs1: *rs1,
                        offset: offset as i32,
                    });
                }
                Item::LpSetupi { l, imm, target } => {
                    let offset = lookup(target)? as i64 - addr as i64;
                    if !(0..64).contains(&offset) || offset & 3 != 0 {
                        return Err(AsmError::LoopRange {
                            label: target.clone(),
                            offset,
                        });
                    }
                    instrs.push(Instr::LpSetupi {
                        l: *l,
                        imm: *imm,
                        offset: offset as i32,
                    });
                }
                Item::La { rd, target } => {
                    let value = lookup(target)?;
                    let (hi, lo) = hi_lo(value);
                    instrs.push(Instr::Lui { rd: *rd, imm: hi });
                    instrs.push(Instr::AluImm {
                        op: AluOp::Add,
                        rd: *rd,
                        rs1: *rd,
                        imm: lo,
                    });
                }
            }
            addr += item.size() * 4;
        }

        let words = instrs.iter().map(encode).collect();
        Ok(Program {
            base: self.base,
            words,
            instrs,
            data,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 5);
        a.li(Reg::A1, 0x1234_5678u32 as i32);
        a.li(Reg::A2, -1);
        a.li(Reg::A3, 0x8000_0000u32 as i32);
        a.li(Reg::A4, 0x1000); // lo == 0: single lui
        let p = a.assemble().unwrap();
        // 1 + 2 + 1 + 1 + 1 words (0x80000000 has lo 0 -> lui only).
        assert_eq!(p.instrs.len(), 6);
        assert_eq!(
            p.instrs[0],
            Instr::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::Zero,
                imm: 5
            }
        );
    }

    /// Runs `li` through a tiny interpreter to confirm the hi/lo split.
    #[test]
    fn li_reconstructs_value() {
        for v in [
            0i32,
            5,
            -5,
            0x7ff,
            0x800,
            -2048,
            -2049,
            0x1234_5678,
            0x7fff_ffff,
            -0x8000_0000,
            0xdead_beefu32 as i32,
        ] {
            let mut a = Asm::new(0);
            a.li(Reg::A0, v);
            let p = a.assemble().unwrap();
            let mut reg: u32 = 0xaaaa_5555;
            for i in &p.instrs {
                match *i {
                    Instr::Lui { imm, .. } => reg = imm,
                    Instr::AluImm { imm, rs1, .. } => {
                        let src = if rs1 == Reg::Zero { 0 } else { reg };
                        reg = src.wrapping_add(imm as u32);
                    }
                    _ => unreachable!(),
                }
            }
            assert_eq!(reg, v as u32, "li {v:#x}");
        }
    }

    #[test]
    fn backward_and_forward_branches() {
        let mut a = Asm::new(0x100);
        a.label("top");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::Zero, "top"); // backward
        a.beq(Reg::A0, Reg::Zero, "done"); // forward
        a.nop();
        a.label("done");
        a.ecall();
        let p = a.assemble().unwrap();
        match p.instrs[1] {
            Instr::Branch { offset, .. } => assert_eq!(offset, -4),
            ref other => panic!("expected branch, got {other}"),
        }
        match p.instrs[2] {
            Instr::Branch { offset, .. } => assert_eq!(offset, 8),
            ref other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn undefined_and_duplicate_labels_error() {
        let mut a = Asm::new(0);
        a.j("nowhere");
        assert_eq!(
            a.assemble(),
            Err(AsmError::UndefinedLabel("nowhere".into()))
        );

        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(a.assemble(), Err(AsmError::DuplicateLabel("x".into())));
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut a = Asm::new(0);
        a.beq(Reg::A0, Reg::A0, "far");
        for _ in 0..2000 {
            a.nop();
        }
        a.label("far");
        a.ecall();
        assert!(matches!(a.assemble(), Err(AsmError::BranchRange { .. })));
    }

    #[test]
    fn hardware_loop_label_resolution() {
        let mut a = Asm::new(0x1c00_0000);
        a.li(Reg::T0, 8);
        a.lp_setup(LoopIdx::L0, Reg::T0, "end");
        a.label("body");
        a.addi(Reg::A0, Reg::A0, 1);
        a.addi(Reg::A1, Reg::A1, 2);
        a.label("end");
        a.ecall();
        let p = a.assemble().unwrap();
        match p.instrs[1] {
            Instr::LpSetup { offset, .. } => assert_eq!(offset, 12),
            ref other => panic!("expected lp.setup, got {other}"),
        }
        // lp.setupi body too large -> error
        let mut a = Asm::new(0);
        a.lp_setupi(LoopIdx::L0, 4, "end");
        for _ in 0..17 {
            a.nop();
        }
        a.label("end");
        assert!(matches!(a.assemble(), Err(AsmError::LoopRange { .. })));
    }

    #[test]
    fn la_resolves_data_and_equ_symbols() {
        let mut a = Asm::new(0x1c00_8000);
        a.equ("buffer", 0x1c01_0000);
        a.la(Reg::A0, "buffer");
        a.la(Reg::A1, "table");
        a.ecall();
        a.data_words("table", &[1, 2, 3]);
        let p = a.assemble().unwrap();
        assert_eq!(p.symbol("buffer"), Some(0x1c01_0000));
        let table = p.symbol("table").unwrap();
        assert!(table >= p.base + p.code_size());
        assert_eq!(table % 16, 0);
        assert_eq!(p.data[0].0, table);
        assert_eq!(p.data[0].1, vec![1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0]);
    }

    #[test]
    fn fixed_data_overlapping_code_errors() {
        let mut a = Asm::new(0x100);
        a.nop();
        a.data_bytes_at("bad", 0x100, vec![0u8; 4]);
        assert!(matches!(a.assemble(), Err(AsmError::DataOverlap { .. })));
    }

    #[test]
    fn validate_errors_propagate() {
        let mut a = Asm::new(0);
        a.i(Instr::PvQnt {
            fmt: SimdFmt::Byte,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        assert!(matches!(a.assemble(), Err(AsmError::Validate(_))));
    }

    #[test]
    fn len_words_tracks_pseudo_instruction_expansion() {
        let mut a = Asm::new(0);
        assert_eq!(a.len_words(), 0);
        a.la(Reg::A0, "x");
        assert_eq!(a.len_words(), 2);
        a.label("x");
        assert_eq!(a.len_words(), 2);
        a.nop();
        assert_eq!(a.len_words(), 3);
    }
}
