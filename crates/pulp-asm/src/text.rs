//! A text assembler for the full RV32IM + XpulpV2 + XpulpNN mnemonic set.
//!
//! The accepted syntax is exactly the disassembly syntax produced by
//! [`pulp_isa::Instr`]'s `Display` implementation, plus:
//!
//! * `label:` definitions and label operands in branches/jumps/loops,
//! * pseudo-instructions `li`, `la`, `mv`, `j`, `ret`, `csrr`,
//! * directives `.org <addr>`, `.equ <name>, <value>`,
//!   `.word <label>, v…`, `.half <label>, v…`, `.byte <label>, v…`,
//! * `#` and `//` comments.
//!
//! Branch/jump/loop targets may be labels or numeric byte offsets
//! (relative to the instruction itself), so `parse` inverts `Display`
//! exactly — a property the test suite checks instruction by instruction.

use crate::builder::{Asm, AsmError};
use crate::program::Program;
use pulp_isa::instr::{
    AluOp, BitOp, BranchCond, Instr, LoadKind, LoopIdx, MulDivOp, PulpAluOp, SimdAluOp,
    SimdOperand, StoreKind,
};
use pulp_isa::simd::{DotSign, SimdFmt};
use pulp_isa::vec::{VReg, VecSew};
use pulp_isa::Reg;
use std::fmt;

/// An error produced while parsing assembly text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Explanation of what went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Either a parse-stage or assemble-stage failure from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextAsmError {
    /// Syntax error with source line.
    Parse(ParseError),
    /// Label resolution / encoding error.
    Asm(AsmError),
}

impl fmt::Display for TextAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextAsmError::Parse(e) => e.fmt(f),
            TextAsmError::Asm(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for TextAsmError {}

impl From<AsmError> for TextAsmError {
    fn from(e: AsmError) -> Self {
        TextAsmError::Asm(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> TextAsmError {
    TextAsmError::Parse(ParseError {
        line,
        message: message.into(),
    })
}

/// Parses a numeric literal (decimal or `0x…`, optionally negative).
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, TextAsmError> {
    Reg::parse(s.trim()).ok_or_else(|| err(line, format!("unknown register `{s}`")))
}

/// Splits `off(base)` / `reg(base!)` memory operand syntax.
fn parse_mem_operand(s: &str, line: usize) -> Result<(String, String, bool), TextAsmError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected `(base)` in `{s}`")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing `)` in `{s}`")))?;
    let outer = s[..open].trim().to_string();
    let mut inner = s[open + 1..close].trim().to_string();
    let post_inc = inner.ends_with('!');
    if post_inc {
        inner.pop();
    }
    Ok((outer, inner.trim().to_string(), post_inc))
}

fn load_kind_of(stem: &str) -> Option<LoadKind> {
    match stem {
        "lb" => Some(LoadKind::Byte),
        "lh" => Some(LoadKind::Half),
        "lw" => Some(LoadKind::Word),
        "lbu" => Some(LoadKind::ByteU),
        "lhu" => Some(LoadKind::HalfU),
        _ => None,
    }
}

fn store_kind_of(stem: &str) -> Option<StoreKind> {
    match stem {
        "sb" => Some(StoreKind::Byte),
        "sh" => Some(StoreKind::Half),
        "sw" => Some(StoreKind::Word),
        _ => None,
    }
}

fn branch_cond_of(m: &str) -> Option<BranchCond> {
    match m {
        "beq" => Some(BranchCond::Eq),
        "bne" => Some(BranchCond::Ne),
        "blt" => Some(BranchCond::Lt),
        "bge" => Some(BranchCond::Ge),
        "bltu" => Some(BranchCond::Ltu),
        "bgeu" => Some(BranchCond::Geu),
        _ => None,
    }
}

fn alu_op_of(m: &str) -> Option<AluOp> {
    match m {
        "add" => Some(AluOp::Add),
        "sub" => Some(AluOp::Sub),
        "sll" => Some(AluOp::Sll),
        "slt" => Some(AluOp::Slt),
        "sltu" => Some(AluOp::Sltu),
        "xor" => Some(AluOp::Xor),
        "srl" => Some(AluOp::Srl),
        "sra" => Some(AluOp::Sra),
        "or" => Some(AluOp::Or),
        "and" => Some(AluOp::And),
        _ => None,
    }
}

fn muldiv_op_of(m: &str) -> Option<MulDivOp> {
    match m {
        "mul" => Some(MulDivOp::Mul),
        "mulh" => Some(MulDivOp::Mulh),
        "mulhsu" => Some(MulDivOp::Mulhsu),
        "mulhu" => Some(MulDivOp::Mulhu),
        "div" => Some(MulDivOp::Div),
        "divu" => Some(MulDivOp::Divu),
        "rem" => Some(MulDivOp::Rem),
        "remu" => Some(MulDivOp::Remu),
        _ => None,
    }
}

fn simd_alu_op_of(stem: &str) -> Option<SimdAluOp> {
    match stem {
        "add" => Some(SimdAluOp::Add),
        "sub" => Some(SimdAluOp::Sub),
        "avg" => Some(SimdAluOp::Avg),
        "avgu" => Some(SimdAluOp::Avgu),
        "min" => Some(SimdAluOp::Min),
        "minu" => Some(SimdAluOp::Minu),
        "max" => Some(SimdAluOp::Max),
        "maxu" => Some(SimdAluOp::Maxu),
        "srl" => Some(SimdAluOp::Srl),
        "sra" => Some(SimdAluOp::Sra),
        "sll" => Some(SimdAluOp::Sll),
        "or" => Some(SimdAluOp::Or),
        "and" => Some(SimdAluOp::And),
        "xor" => Some(SimdAluOp::Xor),
        _ => None,
    }
}

fn dot_sign_of(stem: &str) -> Option<(DotSign, bool)> {
    match stem {
        "dotup" => Some((DotSign::UnsignedUnsigned, false)),
        "dotusp" => Some((DotSign::UnsignedSigned, false)),
        "dotsp" => Some((DotSign::SignedSigned, false)),
        "sdotup" => Some((DotSign::UnsignedUnsigned, true)),
        "sdotusp" => Some((DotSign::UnsignedSigned, true)),
        "sdotsp" => Some((DotSign::SignedSigned, true)),
        _ => None,
    }
}

fn loop_idx_of(s: &str, line: usize) -> Result<LoopIdx, TextAsmError> {
    match s.trim() {
        "x0" | "0" | "l0" => Ok(LoopIdx::L0),
        "x1" | "1" | "l1" => Ok(LoopIdx::L1),
        other => Err(err(line, format!("unknown hardware loop `{other}`"))),
    }
}

/// Operand list split on commas, trimmed.
fn operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(|s| s.trim().to_string()).collect()
    }
}

struct LineCtx<'a> {
    asm: &'a mut Asm,
    line: usize,
}

impl LineCtx<'_> {
    fn need(&self, ops: &[String], n: usize) -> Result<(), TextAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                self.line,
                format!("expected {n} operands, got {}", ops.len()),
            ))
        }
    }

    fn int(&self, s: &str) -> Result<i64, TextAsmError> {
        parse_int(s).ok_or_else(|| err(self.line, format!("expected number, got `{s}`")))
    }

    fn reg(&self, s: &str) -> Result<Reg, TextAsmError> {
        parse_reg(s, self.line)
    }

    /// Branch/jump target: numeric offset → direct instruction, label →
    /// builder item.
    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, target: &str) {
        if let Some(offset) = parse_int(target) {
            self.asm.i(Instr::Branch {
                cond,
                rs1,
                rs2,
                offset: offset as i32,
            });
        } else {
            self.asm.branch(cond, rs1, rs2, target);
        }
    }

    fn jal(&mut self, rd: Reg, target: &str) {
        if let Some(offset) = parse_int(target) {
            self.asm.i(Instr::Jal {
                rd,
                offset: offset as i32,
            });
        } else if rd == Reg::Zero {
            self.asm.j(target);
        } else {
            // Builder's jal links into ra; other link registers need the
            // numeric form.
            self.asm.jal(target);
        }
    }
}

/// Parses a `pv.` mnemonic of shape `pv.<stem>[.sc|.sci].<fmt>`.
fn parse_pv(mnemonic: &str, ops: &[String], ctx: &mut LineCtx<'_>) -> Result<(), TextAsmError> {
    let line = ctx.line;
    let parts: Vec<&str> = mnemonic.split('.').collect();
    // parts[0] == "pv"
    let (stem, mode, fmt_s) = match parts.len() {
        3 => (parts[1], "", parts[2]),
        4 => (parts[1], parts[2], parts[3]),
        _ => return Err(err(line, format!("malformed SIMD mnemonic `{mnemonic}`"))),
    };
    let fmt = SimdFmt::parse_suffix(fmt_s)
        .ok_or_else(|| err(line, format!("unknown SIMD format `.{fmt_s}`")))?;

    // Unary / special forms first.
    match stem {
        "abs" => {
            ctx.need(ops, 2)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            ctx.asm.i(Instr::PvAbs { fmt, rd, rs1 });
            return Ok(());
        }
        "extract" | "extractu" => {
            ctx.need(ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let idx = ctx.int(&ops[2])? as u8;
            ctx.asm.i(Instr::PvExtract {
                fmt,
                rd,
                rs1,
                idx,
                signed: stem == "extract",
            });
            return Ok(());
        }
        "insert" => {
            ctx.need(ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let idx = ctx.int(&ops[2])? as u8;
            ctx.asm.i(Instr::PvInsert { fmt, rd, rs1, idx });
            return Ok(());
        }
        "qnt" => {
            ctx.need(ops, 3)?;
            let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
            ctx.asm.i(Instr::PvQnt { fmt, rd, rs1, rs2 });
            return Ok(());
        }
        "shuffle2" => {
            ctx.need(ops, 3)?;
            let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
            ctx.asm.i(Instr::PvShuffle2 { fmt, rd, rs1, rs2 });
            return Ok(());
        }
        _ => {}
    }

    ctx.need(ops, 3)?;
    let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
    let op2 = match mode {
        "" => SimdOperand::Vector(ctx.reg(&ops[2])?),
        "sc" => SimdOperand::Scalar(ctx.reg(&ops[2])?),
        "sci" => SimdOperand::Imm(ctx.int(&ops[2])? as i8),
        other => return Err(err(line, format!("unknown SIMD mode `.{other}`"))),
    };
    if let Some(op) = simd_alu_op_of(stem) {
        ctx.asm.i(Instr::PvAlu {
            op,
            fmt,
            rd,
            rs1,
            op2,
        });
        return Ok(());
    }
    if let Some((sign, acc)) = dot_sign_of(stem) {
        let instr = if acc {
            Instr::PvSdot {
                fmt,
                sign,
                rd,
                rs1,
                op2,
            }
        } else {
            Instr::PvDot {
                fmt,
                sign,
                rd,
                rs1,
                op2,
            }
        };
        ctx.asm.i(instr);
        return Ok(());
    }
    Err(err(line, format!("unknown SIMD operation `{stem}`")))
}

/// Parses the `(base)` memory operand of a vector load/store: no
/// offset, no post-increment — addressing state lives in the stride
/// register and `vl`.
fn parse_vmem_base(s: &str, line: usize) -> Result<Reg, TextAsmError> {
    let (outer, base, post) = parse_mem_operand(s, line)?;
    if !outer.is_empty() || post {
        return Err(err(
            line,
            format!("vector memory operand must be plain `(base)`, got `{s}`"),
        ));
    }
    parse_reg(&base, line)
}

fn parse_vreg(s: &str, line: usize) -> Result<VReg, TextAsmError> {
    VReg::parse(s.trim()).ok_or_else(|| err(line, format!("unknown vector register `{s}`")))
}

/// Parses a vector (Xrvv) mnemonic.
fn parse_v(mnemonic: &str, ops: &[String], ctx: &mut LineCtx<'_>) -> Result<(), TextAsmError> {
    let line = ctx.line;
    match mnemonic {
        "vsetvli" => {
            ctx.need(ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let sew = VecSew::parse(ops[2].trim())
                .ok_or_else(|| err(line, format!("unknown element width `{}`", ops[2])))?;
            ctx.asm.i(Instr::VSetvli { rd, rs1, sew });
            return Ok(());
        }
        "vle.v" | "vse.v" => {
            ctx.need(ops, 2)?;
            let v = parse_vreg(&ops[0], line)?;
            let rs1 = parse_vmem_base(&ops[1], line)?;
            let instr = if mnemonic == "vle.v" {
                Instr::VLoad { vd: v, rs1 }
            } else {
                Instr::VStore { vs: v, rs1 }
            };
            ctx.asm.i(instr);
            return Ok(());
        }
        "vlse.v" | "vsse.v" => {
            ctx.need(ops, 3)?;
            let v = parse_vreg(&ops[0], line)?;
            let rs1 = parse_vmem_base(&ops[1], line)?;
            let rs2 = ctx.reg(&ops[2])?;
            let instr = if mnemonic == "vlse.v" {
                Instr::VLoadStrided { vd: v, rs1, rs2 }
            } else {
                Instr::VStoreStrided { vs: v, rs1, rs2 }
            };
            ctx.asm.i(instr);
            return Ok(());
        }
        "vslide1down.vx" => {
            ctx.need(ops, 3)?;
            let vd = parse_vreg(&ops[0], line)?;
            let vs2 = parse_vreg(&ops[1], line)?;
            let rs1 = ctx.reg(&ops[2])?;
            ctx.asm.i(Instr::VSlide1 { vd, vs2, rs1 });
            return Ok(());
        }
        "vmv.x.s" => {
            ctx.need(ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let vs2 = parse_vreg(&ops[1], line)?;
            ctx.asm.i(Instr::VMvXS { rd, vs2 });
            return Ok(());
        }
        _ => {}
    }
    // `vdot<sign>.vv rd, vs1, vs2`
    if let Some(infix) = mnemonic
        .strip_prefix("vdot")
        .and_then(|s| s.strip_suffix(".vv"))
    {
        let sign = match infix {
            "up" => DotSign::UnsignedUnsigned,
            "usp" => DotSign::UnsignedSigned,
            "sp" => DotSign::SignedSigned,
            other => return Err(err(line, format!("unknown dot signedness `{other}`"))),
        };
        ctx.need(ops, 3)?;
        let rd = ctx.reg(&ops[0])?;
        let vs1 = parse_vreg(&ops[1], line)?;
        let vs2 = parse_vreg(&ops[2], line)?;
        ctx.asm.i(Instr::VDot { sign, rd, vs1, vs2 });
        return Ok(());
    }
    // `vqnt.<fmt>.v vd, rs1, vs2`
    if let Some(fmt_s) = mnemonic
        .strip_prefix("vqnt.")
        .and_then(|s| s.strip_suffix(".v"))
    {
        let fmt = SimdFmt::parse_suffix(fmt_s)
            .ok_or_else(|| err(line, format!("unknown quantization format `.{fmt_s}`")))?;
        ctx.need(ops, 3)?;
        let vd = parse_vreg(&ops[0], line)?;
        let rs1 = ctx.reg(&ops[1])?;
        let vs2 = parse_vreg(&ops[2], line)?;
        ctx.asm.i(Instr::VQnt { fmt, vd, rs1, vs2 });
        return Ok(());
    }
    Err(err(line, format!("unknown vector mnemonic `{mnemonic}`")))
}

/// Parses a `p.` scalar / memory mnemonic.
fn parse_p(mnemonic: &str, ops: &[String], ctx: &mut LineCtx<'_>) -> Result<(), TextAsmError> {
    let line = ctx.line;
    let stem = &mnemonic[2..];
    // Memory forms: p.lw rd, imm(rs1!) | rs2(rs1!) | rs2(rs1)
    if let Some(kind) = load_kind_of(stem) {
        ctx.need(ops, 2)?;
        let rd = ctx.reg(&ops[0])?;
        let (outer, base, post) = parse_mem_operand(&ops[1], line)?;
        let rs1 = ctx.reg(&base)?;
        let instr = match (parse_int(&outer), post) {
            (Some(offset), true) => Instr::LoadPostInc {
                kind,
                rd,
                rs1,
                offset: offset as i32,
            },
            (Some(_), false) => {
                return Err(err(
                    line,
                    "p.l* with immediate offset requires `!` post-increment",
                ));
            }
            (None, true) => Instr::LoadPostIncReg {
                kind,
                rd,
                rs1,
                rs2: ctx.reg(&outer)?,
            },
            (None, false) => Instr::LoadRegOff {
                kind,
                rd,
                rs1,
                rs2: ctx.reg(&outer)?,
            },
        };
        ctx.asm.i(instr);
        return Ok(());
    }
    if let Some(kind) = store_kind_of(stem) {
        ctx.need(ops, 2)?;
        let rs2 = ctx.reg(&ops[0])?;
        let (outer, base, post) = parse_mem_operand(&ops[1], line)?;
        let rs1 = ctx.reg(&base)?;
        let instr = match (parse_int(&outer), post) {
            (Some(offset), true) => Instr::StorePostInc {
                kind,
                rs1,
                rs2,
                offset: offset as i32,
            },
            (None, true) => Instr::StorePostIncReg {
                kind,
                rs1,
                rs2,
                rs3: ctx.reg(&outer)?,
            },
            _ => return Err(err(line, "p.s* requires `!` post-increment")),
        };
        ctx.asm.i(instr);
        return Ok(());
    }

    let pulp_alu = |op: PulpAluOp| -> Option<PulpAluOp> { Some(op) };
    let two_src = match stem {
        "min" => pulp_alu(PulpAluOp::Min),
        "minu" => pulp_alu(PulpAluOp::Minu),
        "max" => pulp_alu(PulpAluOp::Max),
        "maxu" => pulp_alu(PulpAluOp::Maxu),
        _ => None,
    };
    if let Some(op) = two_src {
        ctx.need(ops, 3)?;
        let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
        ctx.asm.i(Instr::PulpAlu { op, rd, rs1, rs2 });
        return Ok(());
    }
    let one_src = match stem {
        "abs" => pulp_alu(PulpAluOp::Abs),
        "exths" => pulp_alu(PulpAluOp::Exths),
        "exthz" => pulp_alu(PulpAluOp::Exthz),
        "extbs" => pulp_alu(PulpAluOp::Extbs),
        "extbz" => pulp_alu(PulpAluOp::Extbz),
        _ => None,
    };
    if let Some(op) = one_src {
        ctx.need(ops, 2)?;
        let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
        ctx.asm.i(Instr::PulpAlu {
            op,
            rd,
            rs1,
            rs2: Reg::Zero,
        });
        return Ok(());
    }
    match stem {
        "clip" | "clipu" => {
            ctx.need(ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let bits = ctx.int(&ops[2])? as u8;
            let instr = if stem == "clip" {
                Instr::PClip { rd, rs1, bits }
            } else {
                Instr::PClipU { rd, rs1, bits }
            };
            ctx.asm.i(instr);
            Ok(())
        }
        "mac" | "msu" => {
            ctx.need(ops, 3)?;
            let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
            let instr = if stem == "mac" {
                Instr::PMac { rd, rs1, rs2 }
            } else {
                Instr::PMsu { rd, rs1, rs2 }
            };
            ctx.asm.i(instr);
            Ok(())
        }
        "ff1" | "fl1" | "cnt" | "clb" => {
            ctx.need(ops, 2)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let op = match stem {
                "ff1" => BitOp::Ff1,
                "fl1" => BitOp::Fl1,
                "cnt" => BitOp::Cnt,
                _ => BitOp::Clb,
            };
            ctx.asm.i(Instr::PBit { op, rd, rs1 });
            Ok(())
        }
        "extract" | "extractu" | "insert" => {
            ctx.need(ops, 4)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let len = ctx.int(&ops[2])? as u8;
            let off = ctx.int(&ops[3])? as u8;
            let instr = match stem {
                "extract" => Instr::PExtract { rd, rs1, len, off },
                "extractu" => Instr::PExtractU { rd, rs1, len, off },
                _ => Instr::PInsert { rd, rs1, len, off },
            };
            ctx.asm.i(instr);
            Ok(())
        }
        other => Err(err(line, format!("unknown pulp instruction `p.{other}`"))),
    }
}

/// Parses an `lp.` hardware-loop mnemonic.
fn parse_lp(mnemonic: &str, ops: &[String], ctx: &mut LineCtx<'_>) -> Result<(), TextAsmError> {
    let line = ctx.line;
    let stem = &mnemonic[3..];
    let l = loop_idx_of(&ops[0], line)?;
    match stem {
        "starti" | "endi" => {
            ctx.need(ops, 2)?;
            if let Some(offset) = parse_int(&ops[1]) {
                let instr = if stem == "starti" {
                    Instr::LpStarti {
                        l,
                        offset: offset as i32,
                    }
                } else {
                    Instr::LpEndi {
                        l,
                        offset: offset as i32,
                    }
                };
                ctx.asm.i(instr);
            } else if stem == "starti" {
                ctx.asm.lp_starti(l, &ops[1]);
            } else {
                ctx.asm.lp_endi(l, &ops[1]);
            }
            Ok(())
        }
        "count" => {
            ctx.need(ops, 2)?;
            let rs1 = ctx.reg(&ops[1])?;
            ctx.asm.lp_count(l, rs1);
            Ok(())
        }
        "counti" => {
            ctx.need(ops, 2)?;
            let imm = ctx.int(&ops[1])? as u32;
            ctx.asm.lp_counti(l, imm);
            Ok(())
        }
        "setup" => {
            ctx.need(ops, 3)?;
            let rs1 = ctx.reg(&ops[1])?;
            if let Some(offset) = parse_int(&ops[2]) {
                ctx.asm.i(Instr::LpSetup {
                    l,
                    rs1,
                    offset: offset as i32,
                });
            } else {
                ctx.asm.lp_setup(l, rs1, &ops[2]);
            }
            Ok(())
        }
        "setupi" => {
            ctx.need(ops, 3)?;
            let imm = ctx.int(&ops[1])? as u32;
            if let Some(offset) = parse_int(&ops[2]) {
                ctx.asm.i(Instr::LpSetupi {
                    l,
                    imm,
                    offset: offset as i32,
                });
            } else {
                ctx.asm.lp_setupi(l, imm, &ops[2]);
            }
            Ok(())
        }
        other => Err(err(line, format!("unknown hardware-loop op `lp.{other}`"))),
    }
}

fn parse_instruction(
    mnemonic: &str,
    rest: &str,
    ctx: &mut LineCtx<'_>,
) -> Result<(), TextAsmError> {
    let line = ctx.line;
    let ops = operands(rest);
    if mnemonic.starts_with("pv.") {
        return parse_pv(mnemonic, &ops, ctx);
    }
    if mnemonic.starts_with("p.") {
        return parse_p(mnemonic, &ops, ctx);
    }
    if mnemonic.starts_with("lp.") {
        return parse_lp(mnemonic, &ops, ctx);
    }
    // No scalar mnemonic starts with `v`; everything there is Xrvv.
    if mnemonic.starts_with('v') {
        return parse_v(mnemonic, &ops, ctx);
    }
    if let Some(cond) = branch_cond_of(mnemonic) {
        ctx.need(&ops, 3)?;
        let (rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
        ctx.branch(cond, rs1, rs2, &ops[2]);
        return Ok(());
    }
    if let Some(kind) = load_kind_of(mnemonic) {
        ctx.need(&ops, 2)?;
        let rd = ctx.reg(&ops[0])?;
        let (outer, base, post) = parse_mem_operand(&ops[1], line)?;
        if post {
            return Err(err(line, "post-increment requires the p.* form"));
        }
        let offset = ctx.int(&outer)? as i32;
        let rs1 = ctx.reg(&base)?;
        ctx.asm.i(Instr::Load {
            kind,
            rd,
            rs1,
            offset,
        });
        return Ok(());
    }
    if let Some(kind) = store_kind_of(mnemonic) {
        ctx.need(&ops, 2)?;
        let rs2 = ctx.reg(&ops[0])?;
        let (outer, base, _) = parse_mem_operand(&ops[1], line)?;
        let offset = ctx.int(&outer)? as i32;
        let rs1 = ctx.reg(&base)?;
        ctx.asm.i(Instr::Store {
            kind,
            rs1,
            rs2,
            offset,
        });
        return Ok(());
    }
    if let Some(op) = muldiv_op_of(mnemonic) {
        ctx.need(&ops, 3)?;
        let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
        ctx.asm.i(Instr::MulDiv { op, rd, rs1, rs2 });
        return Ok(());
    }
    if let Some(op) = alu_op_of(mnemonic) {
        ctx.need(&ops, 3)?;
        let (rd, rs1, rs2) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?, ctx.reg(&ops[2])?);
        ctx.asm.i(Instr::Alu { op, rd, rs1, rs2 });
        return Ok(());
    }
    // Immediate ALU forms: addi/slti/sltiu/xori/ori/andi/slli/srli/srai.
    if let Some(stem) = mnemonic.strip_suffix('i') {
        if let Some(op) = alu_op_of(stem) {
            ctx.need(&ops, 3)?;
            let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
            let imm = ctx.int(&ops[2])? as i32;
            ctx.asm.i(Instr::AluImm { op, rd, rs1, imm });
            return Ok(());
        }
    }
    if mnemonic == "sltiu" {
        ctx.need(&ops, 3)?;
        let (rd, rs1) = (ctx.reg(&ops[0])?, ctx.reg(&ops[1])?);
        let imm = ctx.int(&ops[2])? as i32;
        ctx.asm.i(Instr::AluImm {
            op: AluOp::Sltu,
            rd,
            rs1,
            imm,
        });
        return Ok(());
    }
    match mnemonic {
        "lui" | "auipc" => {
            ctx.need(&ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let imm = (ctx.int(&ops[1])? as u32) << 12;
            let instr = if mnemonic == "lui" {
                Instr::Lui { rd, imm }
            } else {
                Instr::Auipc { rd, imm }
            };
            ctx.asm.i(instr);
            Ok(())
        }
        "jal" => match ops.len() {
            1 => {
                ctx.jal(Reg::Ra, &ops[0]);
                Ok(())
            }
            2 => {
                let rd = ctx.reg(&ops[0])?;
                ctx.jal(rd, &ops[1]);
                Ok(())
            }
            n => Err(err(line, format!("jal takes 1 or 2 operands, got {n}"))),
        },
        "j" => {
            ctx.need(&ops, 1)?;
            ctx.jal(Reg::Zero, &ops[0]);
            Ok(())
        }
        "jalr" => {
            ctx.need(&ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let (outer, base, _) = parse_mem_operand(&ops[1], line)?;
            let offset = ctx.int(&outer)? as i32;
            let rs1 = ctx.reg(&base)?;
            ctx.asm.i(Instr::Jalr { rd, rs1, offset });
            Ok(())
        }
        "ret" => {
            ctx.asm.ret();
            Ok(())
        }
        "li" => {
            ctx.need(&ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let v = ctx.int(&ops[1])? as i32;
            ctx.asm.li(rd, v);
            Ok(())
        }
        "la" => {
            ctx.need(&ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            ctx.asm.la(rd, &ops[1]);
            Ok(())
        }
        "mv" => {
            ctx.need(&ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let rs = ctx.reg(&ops[1])?;
            ctx.asm.mv(rd, rs);
            Ok(())
        }
        "nop" => {
            ctx.asm.nop();
            Ok(())
        }
        "ecall" => {
            ctx.asm.ecall();
            Ok(())
        }
        "ebreak" => {
            ctx.asm.i(Instr::Ebreak);
            Ok(())
        }
        "fence" => {
            ctx.asm.i(Instr::Fence);
            Ok(())
        }
        "csrrw" | "csrrs" | "csrrc" => {
            ctx.need(&ops, 3)?;
            let rd = ctx.reg(&ops[0])?;
            let csr = ctx.int(&ops[1])? as u16;
            let rs1 = ctx.reg(&ops[2])?;
            let op = match mnemonic {
                "csrrw" => 0,
                "csrrs" => 1,
                _ => 2,
            };
            ctx.asm.i(Instr::Csr { op, rd, rs1, csr });
            Ok(())
        }
        "csrr" => {
            ctx.need(&ops, 2)?;
            let rd = ctx.reg(&ops[0])?;
            let csr = ctx.int(&ops[1])? as u16;
            ctx.asm.i(Instr::Csr {
                op: 1,
                rd,
                rs1: Reg::Zero,
                csr,
            });
            Ok(())
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

fn parse_directive(
    directive: &str,
    rest: &str,
    asm: &mut Asm,
    base: &mut Option<u32>,
    started: bool,
    line: usize,
) -> Result<(), TextAsmError> {
    let ops = operands(rest);
    match directive {
        ".org" => {
            if started {
                return Err(err(line, ".org must precede all instructions"));
            }
            if ops.len() != 1 {
                return Err(err(line, ".org takes one address"));
            }
            let addr = parse_int(&ops[0]).ok_or_else(|| err(line, "bad .org address"))? as u32;
            *base = Some(addr);
            Ok(())
        }
        ".equ" => {
            if ops.len() != 2 {
                return Err(err(line, ".equ takes `name, value`"));
            }
            let value = parse_int(&ops[1]).ok_or_else(|| err(line, "bad .equ value"))? as u32;
            asm.equ(&ops[0], value);
            Ok(())
        }
        ".word" | ".half" | ".byte" => {
            if ops.len() < 2 {
                return Err(err(line, format!("{directive} takes `label, v…`")));
            }
            let label = &ops[0];
            let mut bytes = Vec::new();
            for v in &ops[1..] {
                let v = parse_int(v).ok_or_else(|| err(line, format!("bad value `{v}`")))?;
                match directive {
                    ".word" => bytes.extend((v as u32).to_le_bytes()),
                    ".half" => bytes.extend((v as u16).to_le_bytes()),
                    _ => bytes.push(v as u8),
                }
            }
            asm.data_bytes(label, bytes);
            Ok(())
        }
        other => Err(err(line, format!("unknown directive `{other}`"))),
    }
}

/// Parses and assembles a full program from assembly text.
///
/// The default load address is `0x1c00_8000` (PULPissimo's L2 code region)
/// unless overridden by a leading `.org`.
///
/// # Errors
///
/// Returns [`TextAsmError::Parse`] for syntax errors (with the 1-based
/// line number) and [`TextAsmError::Asm`] for label-resolution or range
/// errors.
///
/// # Example
///
/// ```
/// let prog = pulp_asm::text::parse(r"
///     li   a0, 3
///     li   a1, 0
/// top:
///     addi a1, a1, 10
///     addi a0, a0, -1
///     bne  a0, zero, top
///     ecall
/// ")?;
/// assert_eq!(prog.instrs.len(), 6);
/// # Ok::<(), pulp_asm::text::TextAsmError>(())
/// ```
pub fn parse(source: &str) -> Result<Program, TextAsmError> {
    // First scan for .org (must precede instructions).
    let mut base: Option<u32> = None;
    let mut asm = Asm::new(0); // rebuilt below once base is known
    let mut items: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(pos) = text.find('#') {
            text = &text[..pos];
        }
        if let Some(pos) = text.find("//") {
            text = &text[..pos];
        }
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        items.push((line_no, text.to_string()));
    }

    // Process directives/instructions in order.
    let mut started = false;
    let mut pending: Vec<(usize, String)> = Vec::new();
    for (line_no, text) in items {
        if let Some(rest) = text.strip_prefix(".org") {
            parse_directive(".org", rest.trim(), &mut asm, &mut base, started, line_no)?;
        } else {
            if !text.starts_with('.') && !text.ends_with(':') {
                started = true;
            }
            pending.push((line_no, text));
        }
    }
    let base = base.unwrap_or(0x1c00_8000);
    let mut asm2 = Asm::new(base);
    // carry over any .equ already seen? (none: .equ handled below)
    drop(asm);

    for (line_no, text) in pending {
        let mut rest: &str = &text;
        // Labels (possibly several, possibly followed by an instruction).
        while let Some(colon) = rest.find(':') {
            let head = rest[..colon].trim();
            if head.is_empty()
                || !head
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            asm2.label(head);
            rest = rest[colon + 1..].trim_start();
        }
        let rest = rest.trim();
        if rest.is_empty() {
            continue;
        }
        if let Some(stripped) = rest.strip_prefix('.') {
            let dir_end = stripped
                .find(char::is_whitespace)
                .map_or(rest.len(), |i| i + 1);
            let (dir, args) = rest.split_at(dir_end);
            let mut dummy = None;
            parse_directive(
                dir.trim(),
                args.trim(),
                &mut asm2,
                &mut dummy,
                true,
                line_no,
            )?;
            continue;
        }
        let (mnemonic, args) = match rest.find(char::is_whitespace) {
            Some(i) => rest.split_at(i),
            None => (rest, ""),
        };
        let mut ctx = LineCtx {
            asm: &mut asm2,
            line: line_no,
        };
        parse_instruction(mnemonic.trim(), args.trim(), &mut ctx)?;
    }

    Ok(asm2.assemble()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_program() {
        let p = parse(
            r"
            .org 0x200
            li   a0, 3
        top:
            addi a0, a0, -1
            bne  a0, zero, top
            ecall
        ",
        )
        .unwrap();
        assert_eq!(p.base, 0x200);
        assert_eq!(p.instrs.len(), 4);
        assert_eq!(p.symbol("top"), Some(0x204));
    }

    #[test]
    fn parse_comments_and_blank_lines() {
        let p = parse("# full-line comment\n  nop // trailing\n\n  ecall # done\n").unwrap();
        assert_eq!(p.instrs, vec![Instr::Nop, Instr::Ecall]);
    }

    #[test]
    fn parse_memory_and_pulp_forms() {
        let p = parse(
            r"
            lw   a0, 8(sp)
            sw   a0, -4(sp)
            p.lw a1, 4(a2!)
            p.lw a1, a3(a2!)
            p.lw a1, a3(a2)
            p.sw a1, 4(a2!)
            pv.sdotsp.n s0, a1, a2
            pv.add.sci.h a0, a0, -3
            pv.qnt.c a0, a1, a2
            lp.setupi x0, 10, 8
            p.clip a0, a1, 8
        ",
        )
        .unwrap();
        assert_eq!(p.instrs.len(), 11);
        assert!(matches!(p.instrs[2], Instr::LoadPostInc { .. }));
        assert!(matches!(p.instrs[3], Instr::LoadPostIncReg { .. }));
        assert!(matches!(p.instrs[4], Instr::LoadRegOff { .. }));
        assert!(matches!(
            p.instrs[8],
            Instr::PvQnt {
                fmt: SimdFmt::Crumb,
                ..
            }
        ));
    }

    #[test]
    fn parse_vector_forms() {
        let p = parse(
            r"
            vsetvli t1, t2, e8
            vle.v v0, (a1)
            vlse.v v4, (a1), a3
            vdotusp.vv s4, v0, v4
            vsetvli zero, t0, e16
            vqnt.n.v v2, a1, v0
            vmv.x.s a0, v2
            vse.v v2, (a2)
        ",
        )
        .unwrap();
        assert_eq!(p.instrs.len(), 8);
        assert!(matches!(
            p.instrs[3],
            Instr::VDot {
                sign: DotSign::UnsignedSigned,
                ..
            }
        ));
        assert!(matches!(
            p.instrs[5],
            Instr::VQnt {
                fmt: SimdFmt::Nibble,
                ..
            }
        ));
        assert!(matches!(p.instrs[6], Instr::VMvXS { .. }));
    }

    #[test]
    fn parse_rejects_bad_vector_operands() {
        // Leading-zero vector register names are not canonical.
        assert!(parse("vle.v v04, (a1)").is_err());
        // Offsets and post-increment are scalar-only addressing.
        assert!(parse("vle.v v0, 4(a1)").is_err());
        assert!(parse("vse.v v0, (a1!)").is_err());
        // e3 is not a supported element width.
        assert!(parse("vsetvli t0, t1, e3").is_err());
    }

    #[test]
    fn parse_reports_line_numbers() {
        let e = parse("nop\nbogus a0, a1\n").unwrap_err();
        match e {
            TextAsmError::Parse(pe) => {
                assert_eq!(pe.line, 2);
                assert!(pe.message.contains("bogus"));
            }
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn parse_data_directives() {
        let p = parse(
            r"
            la a0, tbl
            ecall
            .word tbl, 1, 2
            .half h, -1
            .byte b, 0xff, 1
        ",
        )
        .unwrap();
        assert_eq!(p.data.len(), 3);
        assert_eq!(p.data[0].1, vec![1, 0, 0, 0, 2, 0, 0, 0]);
        assert_eq!(p.data[1].1, vec![0xff, 0xff]);
        assert_eq!(p.data[2].1, vec![0xff, 1]);
    }

    /// `parse` inverts `Display` for representative instructions of every
    /// class (the cross-crate property test covers the full space).
    #[test]
    fn parse_inverts_display_samples() {
        use pulp_isa::instr::LoopIdx;
        let samples = vec![
            Instr::Lui {
                rd: Reg::A0,
                imm: 0x12000,
            },
            Instr::Jal {
                rd: Reg::Ra,
                offset: 16,
            },
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            },
            Instr::Branch {
                cond: BranchCond::Ltu,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -8,
            },
            Instr::Load {
                kind: LoadKind::ByteU,
                rd: Reg::A0,
                rs1: Reg::Sp,
                offset: 3,
            },
            Instr::Store {
                kind: StoreKind::Half,
                rs1: Reg::Sp,
                rs2: Reg::A0,
                offset: -2,
            },
            Instr::Alu {
                op: AluOp::Xor,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::AluImm {
                op: AluOp::Sra,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 7,
            },
            Instr::MulDiv {
                op: MulDivOp::Mulhsu,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::PulpAlu {
                op: PulpAluOp::Maxu,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::PClip {
                rd: Reg::A0,
                rs1: Reg::A1,
                bits: 4,
            },
            Instr::PMac {
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::PBit {
                op: BitOp::Cnt,
                rd: Reg::A0,
                rs1: Reg::A1,
            },
            Instr::PExtract {
                rd: Reg::A0,
                rs1: Reg::A1,
                len: 8,
                off: 4,
            },
            Instr::PInsert {
                rd: Reg::A0,
                rs1: Reg::A1,
                len: 4,
                off: 28,
            },
            Instr::LoadPostInc {
                kind: LoadKind::Word,
                rd: Reg::A0,
                rs1: Reg::A1,
                offset: 4,
            },
            Instr::StorePostIncReg {
                kind: StoreKind::Word,
                rs1: Reg::A1,
                rs2: Reg::A0,
                rs3: Reg::A2,
            },
            Instr::LpStarti {
                l: LoopIdx::L0,
                offset: 16,
            },
            Instr::LpCounti {
                l: LoopIdx::L1,
                imm: 100,
            },
            Instr::LpSetup {
                l: LoopIdx::L0,
                rs1: Reg::T0,
                offset: 24,
            },
            Instr::PvAlu {
                op: SimdAluOp::Avgu,
                fmt: SimdFmt::Nibble,
                rd: Reg::A0,
                rs1: Reg::A1,
                op2: SimdOperand::Scalar(Reg::A2),
            },
            Instr::PvAbs {
                fmt: SimdFmt::Crumb,
                rd: Reg::A0,
                rs1: Reg::A1,
            },
            Instr::PvExtract {
                fmt: SimdFmt::Byte,
                rd: Reg::A0,
                rs1: Reg::A1,
                idx: 3,
                signed: false,
            },
            Instr::PvDot {
                fmt: SimdFmt::Half,
                sign: DotSign::UnsignedUnsigned,
                rd: Reg::A0,
                rs1: Reg::A1,
                op2: SimdOperand::Imm(-5),
            },
            Instr::PvSdot {
                fmt: SimdFmt::Crumb,
                sign: DotSign::SignedSigned,
                rd: Reg::S4,
                rs1: Reg::A1,
                op2: SimdOperand::Vector(Reg::A2),
            },
            Instr::PvQnt {
                fmt: SimdFmt::Nibble,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            },
            Instr::Csr {
                op: 0,
                rd: Reg::A0,
                rs1: Reg::A1,
                csr: 0xb00,
            },
            Instr::VSetvli {
                rd: Reg::T1,
                rs1: Reg::T2,
                sew: VecSew::E4,
            },
            Instr::VLoad {
                vd: VReg::V0,
                rs1: Reg::A1,
            },
            Instr::VStore {
                vs: VReg::new(2).unwrap(),
                rs1: Reg::A2,
            },
            Instr::VLoadStrided {
                vd: VReg::new(4).unwrap(),
                rs1: Reg::A1,
                rs2: Reg::A3,
            },
            Instr::VStoreStrided {
                vs: VReg::new(4).unwrap(),
                rs1: Reg::A1,
                rs2: Reg::A3,
            },
            Instr::VDot {
                sign: DotSign::UnsignedSigned,
                rd: Reg::S4,
                vs1: VReg::V0,
                vs2: VReg::new(4).unwrap(),
            },
            Instr::VQnt {
                fmt: SimdFmt::Nibble,
                vd: VReg::new(2).unwrap(),
                rs1: Reg::A1,
                vs2: VReg::V0,
            },
            Instr::VSlide1 {
                vd: VReg::V0,
                vs2: VReg::V0,
                rs1: Reg::S4,
            },
            Instr::VMvXS {
                rd: Reg::A0,
                vs2: VReg::new(2).unwrap(),
            },
            Instr::Fence,
            Instr::Ebreak,
            Instr::Nop,
        ];
        for instr in samples {
            let text = instr.to_string();
            let p = parse(&text).unwrap_or_else(|e| panic!("`{text}`: {e}"));
            assert_eq!(p.instrs, vec![instr], "`{text}`");
        }
    }
}
