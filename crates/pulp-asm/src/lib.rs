#![warn(missing_docs)]

//! Program construction for the XpulpNN core simulator.
//!
//! This crate plays the role of the GCC toolchain port described in the
//! paper (§IV): it turns kernel descriptions into binary programs for the
//! extended RI5CY core. Two front-ends are provided:
//!
//! * [`Asm`] — a typed builder API with labels, pseudo-instructions and
//!   data segments. The QNN kernel generators (`pulp-kernels`) use this to
//!   emit hand-scheduled inner loops, the same way the paper's kernels
//!   use compiler builtins over hand-optimized C.
//! * [`text::parse`] — a text assembler accepting the disassembly
//!   syntax produced by [`pulp_isa::Instr`]'s `Display`, used by the
//!   `isa_playground` example and round-trip tests.
//!
//! # Example
//!
//! ```
//! use pulp_asm::Asm;
//! use pulp_isa::Reg;
//!
//! let mut a = Asm::new(0x1c00_0000);
//! a.li(Reg::A0, 10);
//! a.li(Reg::A1, 0);
//! a.label("loop");
//! a.addi(Reg::A1, Reg::A1, 3);
//! a.addi(Reg::A0, Reg::A0, -1);
//! a.bne(Reg::A0, Reg::Zero, "loop");
//! a.ecall();
//! let prog = a.assemble()?;
//! assert!(prog.words.len() >= 6);
//! # Ok::<(), pulp_asm::AsmError>(())
//! ```

pub mod builder;
pub mod program;
pub mod text;

pub use builder::{Asm, AsmError};
pub use program::Program;
