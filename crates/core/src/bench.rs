//! Benchmark artifacts for `xpulpnn bench`: one machine-readable record
//! per configuration — simulated cycles, MACs/cycle, the stall/conflict
//! breakdown and per-core utilization — for the paper's Fig. 8 4-bit
//! layer on the seed single core and on the 8-core cluster.
//!
//! JSON is emitted by hand, same as [`crate::report`]: the offline
//! build carries no serde, and the records are small flat structures.

use crate::measure::{measure, Error};
use pulp_cluster::{ClusterConvTestbench, ClusterError};
use pulp_kernels::{ConvKernelConfig, ConvTestbench, KernelIsa};
use qnn::BitWidth;
use std::time::Instant;

/// One core's share of a benchmark run.
#[derive(Debug, Clone)]
pub struct CoreActivity {
    /// Hart index.
    pub hart: usize,
    /// Instructions the hart retired.
    pub instret: u64,
    /// Cycles the hart was executing or stalled on a bank conflict.
    pub busy: u64,
    /// Cycles the hart idled at barriers waiting for slower harts.
    pub barrier_wait: u64,
    /// `busy / total cycles`.
    pub utilization: f64,
}

/// A self-contained benchmark record, serializable with
/// [`BenchRecord::to_json`].
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Artifact label (`"single_core"`, `"cluster8"`, ...); the CLI
    /// writes the record to `BENCH_<label>.json`.
    pub label: String,
    /// Kernel configuration name.
    pub kernel: String,
    /// Cores the run used.
    pub cores: usize,
    /// Total simulated cycles (for the cluster: DMA prologue + compute
    /// regions + write-back).
    pub cycles: u64,
    /// Multiply-accumulates in the layer.
    pub macs: u64,
    /// Named cycle/stall breakdown. Single-core records carry the
    /// per-class cycle ledger; cluster records carry conflict and DMA
    /// accounting.
    pub breakdown: Vec<(String, u64)>,
    /// Per-core activity, one entry per hart.
    pub per_core: Vec<CoreActivity>,
}

impl BenchRecord {
    /// Multiply-accumulates per cycle; 0 when no cycles were recorded.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }

    /// Benchmarks `cfg` on the seed single-core SoC (verified against
    /// the golden model) and records its cycle-ledger breakdown.
    pub fn single_core(
        label: &str,
        cfg: ConvKernelConfig,
        seed: u64,
    ) -> Result<BenchRecord, Error> {
        let m = measure(cfg, seed)?;
        let breakdown = m
            .perf
            .ledger
            .entries()
            .map(|(class, cycles)| (class.name().to_string(), cycles))
            .collect();
        Ok(BenchRecord {
            label: label.to_string(),
            kernel: m.cfg.name(),
            cores: 1,
            cycles: m.cycles,
            macs: m.macs,
            breakdown,
            per_core: vec![CoreActivity {
                hart: 0,
                instret: m.perf.instret,
                busy: m.cycles,
                barrier_wait: 0,
                utilization: 1.0,
            }],
        })
    }

    /// Benchmarks `cfg` on an `cores`-hart cluster (verified bit-exact
    /// against the golden model) and records the conflict/DMA breakdown
    /// plus per-hart utilization.
    pub fn cluster(
        label: &str,
        cfg: ConvKernelConfig,
        cores: usize,
        seed: u64,
    ) -> Result<BenchRecord, Error> {
        let tb =
            ClusterConvTestbench::new(cfg, cores, seed).map_err(|e| Error::Build(e.to_string()))?;
        let r = tb.run(cores).map_err(|e| match e {
            ClusterError::Trap { trap, .. } => Error::Trap(trap),
        })?;
        if !r.matches() {
            return Err(Error::Mismatch { config: cfg.name() });
        }
        let breakdown = vec![
            ("bank_conflicts".to_string(), r.stats.conflicts),
            ("conflict_stall_cycles".to_string(), r.stats.conflict_stalls),
            (
                "barrier_wait_cycles".to_string(),
                r.stats.barrier_wait.iter().sum(),
            ),
            ("dma_prologue_cycles".to_string(), r.stats.dma_prologue),
            ("dma_hidden_cycles".to_string(), r.stats.dma_hidden),
            ("dma_exposed_cycles".to_string(), r.stats.dma_exposed),
            ("dma_writeback_cycles".to_string(), r.stats.dma_writeback),
        ];
        let cycles = r.cycles;
        let per_core = (0..cores)
            .map(|h| CoreActivity {
                hart: h,
                instret: r.per_hart[h].instret,
                busy: r.stats.busy[h],
                barrier_wait: r.stats.barrier_wait[h],
                utilization: r.utilization(h),
            })
            .collect();
        Ok(BenchRecord {
            label: label.to_string(),
            kernel: cfg.name(),
            cores,
            cycles,
            macs: cfg.shape.macs(),
            breakdown,
            per_core,
        })
    }

    /// Serializes the record as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        s.push_str(&format!("  \"kernel\": \"{}\",\n", escape(&self.kernel)));
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        s.push_str(&format!("  \"macs\": {},\n", self.macs));
        s.push_str(&format!(
            "  \"macs_per_cycle\": {:.4},\n",
            self.macs_per_cycle()
        ));
        s.push_str("  \"breakdown\": {\n");
        for (i, (name, cycles)) in self.breakdown.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {}{}\n",
                escape(name),
                cycles,
                if i + 1 < self.breakdown.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"per_core\": [\n");
        for (i, c) in self.per_core.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"hart\": {}, \"instret\": {}, \"busy\": {}, \"barrier_wait\": {}, \
                 \"utilization\": {:.4}}}{}\n",
                c.hart,
                c.instret,
                c.busy,
                c.barrier_wait,
                c.utilization,
                if i + 1 < self.per_core.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}");
        s
    }
}

/// Host-side throughput of the simulator itself: the Fig. 8 4-bit
/// layer, interpreted vs. the decoded-block fast path, on this machine.
///
/// Simulated results are bit-exact between the two runs (that identity
/// is asserted before the record is built); only host wall-clock
/// differs, so the record is about the *simulator*, not the kernel.
#[derive(Debug, Clone)]
pub struct HostThroughputRecord {
    /// Kernel configuration name.
    pub kernel: String,
    /// Simulated cycles of the layer (identical on both paths).
    pub cycles: u64,
    /// Instructions retired (identical on both paths).
    pub instret: u64,
    /// Wall-clock seconds of the interpreted run.
    pub interp_secs: f64,
    /// Wall-clock seconds of the fast-path run.
    pub fast_secs: f64,
    /// Block-cache hit rate of the fast-path run (hits / lookups).
    pub hit_rate: f64,
    /// Decoded-block cache lookups that missed and forced a translation
    /// or an interpreter step.
    pub misses: u64,
    /// Blocks translated during the run.
    pub translations: u64,
    /// Ops the fast path punted to the interpreter (untranslatable).
    pub interp_fallbacks: u64,
    /// Whole-cache invalidations (restore, host writes, SMC).
    pub invalidations: u64,
}

impl HostThroughputRecord {
    /// Simulated cycles per wall-clock second, interpreted.
    pub fn interp_cps(&self) -> f64 {
        self.cycles as f64 / self.interp_secs.max(1e-9)
    }

    /// Simulated cycles per wall-clock second, fast path.
    pub fn fast_cps(&self) -> f64 {
        self.cycles as f64 / self.fast_secs.max(1e-9)
    }

    /// Wall-clock speedup of the fast path over the interpreter.
    pub fn speedup(&self) -> f64 {
        self.interp_secs / self.fast_secs.max(1e-9)
    }

    /// Serializes the record as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"kernel\": \"{}\",\n  \"cycles\": {},\n  \"instret\": {},\n  \
             \"interp_secs\": {:.6},\n  \"fast_secs\": {:.6},\n  \
             \"interp_cycles_per_sec\": {:.0},\n  \"fast_cycles_per_sec\": {:.0},\n  \
             \"speedup\": {:.2},\n  \"block_cache_hit_rate\": {:.6},\n  \
             \"block_cache_misses\": {},\n  \"blocks_translated\": {},\n  \
             \"interp_fallbacks\": {},\n  \"invalidations\": {}\n}}",
            escape(&self.kernel),
            self.cycles,
            self.instret,
            self.interp_secs,
            self.fast_secs,
            self.interp_cps(),
            self.fast_cps(),
            self.speedup(),
            self.hit_rate,
            self.misses,
            self.translations,
            self.interp_fallbacks,
            self.invalidations,
        )
    }
}

/// Measures host throughput on `cfg`: one interpreted run, one
/// fast-path run, both verified against the golden model and against
/// each other (every counter bit-exact) before timing is reported.
pub fn host_throughput_for(
    cfg: ConvKernelConfig,
    seed: u64,
) -> Result<HostThroughputRecord, Error> {
    let tb = ConvTestbench::new(cfg, seed).map_err(|e| Error::Build(e.to_string()))?;

    let t0 = Instant::now();
    let interp = tb.run().map_err(Error::Trap)?;
    let interp_secs = t0.elapsed().as_secs_f64();
    if !interp.matches() {
        return Err(Error::Mismatch { config: cfg.name() });
    }

    // Run the fast path by hand (rather than through `run_fastpath`) so
    // the block-cache statistics survive into the record.
    let mut soc = tb.stage();
    soc.enable_fastpath();
    let t0 = Instant::now();
    let report = soc.run(tb.cycle_budget()).map_err(Error::Trap)?;
    let fast_secs = t0.elapsed().as_secs_f64();
    let stats = soc
        .core
        .fastpath_stats()
        .expect("fast path was enabled for the timed run");
    let fast = tb.collect(&soc, report);
    if !fast.matches() {
        return Err(Error::Mismatch { config: cfg.name() });
    }
    assert_eq!(
        interp.report, fast.report,
        "fast path must be bit-exact with the interpreter"
    );

    Ok(HostThroughputRecord {
        kernel: cfg.name(),
        cycles: interp.report.perf.cycles,
        instret: interp.report.perf.instret,
        interp_secs,
        fast_secs,
        hit_rate: stats.hit_rate(),
        misses: stats.misses,
        translations: stats.translations,
        interp_fallbacks: stats.interp_fallbacks,
        invalidations: stats.invalidations,
    })
}

/// The `xpulpnn bench --host` measurement: the paper's Fig. 8 4-bit
/// hardware-quantized layer.
pub fn host_throughput(seed: u64) -> Result<HostThroughputRecord, Error> {
    host_throughput_for(
        ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true),
        seed,
    )
}

/// The serving benchmark artifact (`BENCH_serving.json`): one seeded
/// loadgen run through the snapshot-forked worker pool, with p50/p99
/// latency in simulated cycles (deterministic) and host microseconds
/// (wall clock), sustained requests/sec, outcome counts and the
/// scheduling-independent response digest.
#[derive(Debug)]
pub struct ServingRecord {
    /// The loadgen report the record summarizes.
    pub report: serve::LoadReport,
}

impl ServingRecord {
    /// Runs one seeded loadgen campaign and wraps the report.
    ///
    /// # Errors
    ///
    /// [`serve::ServeError`] when the pool cannot start.
    pub fn run(cfg: serve::LoadgenConfig) -> Result<ServingRecord, serve::ServeError> {
        Ok(ServingRecord {
            report: serve::run_loadgen(cfg)?,
        })
    }

    /// Serializes the record as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let mut s = String::from("{\n");
        s.push_str("  \"label\": \"serving\",\n");
        s.push_str(&format!("  \"seed\": {},\n", r.cfg.seed));
        s.push_str(&format!("  \"workers\": {},\n", r.cfg.workers));
        s.push_str(&format!("  \"requests\": {},\n", r.responses.len()));
        s.push_str(&format!("  \"digest\": \"{:016x}\",\n", r.digest));
        for label in ["ok", "masked", "recovered", "degraded"] {
            s.push_str(&format!("  \"{label}\": {},\n", r.count(label)));
        }
        s.push_str(&format!(
            "  \"sim_cycles_p50\": {},\n  \"sim_cycles_p99\": {},\n  \"sim_cycles_max\": {},\n",
            r.sim_cycles.p50, r.sim_cycles.p99, r.sim_cycles.max
        ));
        s.push_str(&format!(
            "  \"host_us_p50\": {},\n  \"host_us_p99\": {},\n  \"host_us_max\": {},\n",
            r.host_us.p50, r.host_us.p99, r.host_us.max
        ));
        s.push_str(&format!(
            "  \"total_sim_cycles\": {},\n",
            r.total_sim_cycles
        ));
        s.push_str(&format!("  \"wall_secs\": {:.6},\n", r.wall_secs));
        s.push_str(&format!(
            "  \"sustained_req_per_sec\": {:.2},\n",
            r.req_per_sec
        ));
        s.push_str(&format!(
            "  \"cold_forks\": {},\n  \"warm_runs\": {}\n}}",
            r.stats.cold_forks, r.stats.warm_runs
        ));
        s
    }
}

/// The soak benchmark artifact (`BENCH_soak.json`): one seeded
/// multi-phase resilience campaign through the supervisor (overload →
/// fault storm → hang injection → template corruption → recovery),
/// with the resilience counters and the scheduling-independent digest.
#[derive(Debug)]
pub struct SoakRecord {
    /// The soak report the record summarizes.
    pub report: serve::SoakReport,
}

impl SoakRecord {
    /// Runs one seeded soak campaign and wraps the report.
    ///
    /// # Errors
    ///
    /// [`serve::ServeError`] when the pool cannot start.
    pub fn run(cfg: serve::SoakConfig) -> Result<SoakRecord, serve::ServeError> {
        Ok(SoakRecord {
            report: serve::run_soak(cfg)?,
        })
    }

    /// Serializes the record as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let r = &self.report;
        let c = &r.counters;
        let mut s = String::from("{\n");
        s.push_str("  \"label\": \"soak\",\n");
        s.push_str(&format!("  \"seed\": {},\n", r.cfg.seed));
        s.push_str(&format!("  \"workers\": {},\n", r.cfg.workers));
        s.push_str(&format!("  \"scale\": {},\n", r.cfg.scale));
        s.push_str(&format!("  \"requests\": {},\n", r.responses.len()));
        s.push_str(&format!("  \"digest\": \"{:016x}\",\n", r.digest));
        s.push_str(&format!("  \"shed_queue_full\": {},\n", c.shed_queue_full));
        s.push_str(&format!("  \"shed_pressure\": {},\n", c.shed_pressure));
        s.push_str(&format!("  \"retried\": {},\n", c.retried));
        s.push_str(&format!("  \"timed_out\": {},\n", c.timed_out));
        s.push_str(&format!("  \"breaker_trips\": {},\n", c.breaker_trips));
        s.push_str(&format!("  \"breaker_closes\": {},\n", c.breaker_closes));
        s.push_str(&format!("  \"fallback_served\": {},\n", c.fallback_served));
        s.push_str(&format!("  \"reaps\": {},\n", r.pool_stats.reaps));
        s.push_str(&format!(
            "  \"quarantines\": {},\n",
            r.pool_stats.quarantines
        ));
        s.push_str(&format!("  \"breakers_closed\": {},\n", r.breakers_closed));
        s.push_str("  \"phases\": [\n");
        for (i, p) in r.phases.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"phase\": \"{}\", \"requests\": {}, \"shed\": {}, \"retried\": {}, \
                 \"timed_out\": {}, \"breaker_trips\": {}, \"fallback_served\": {}}}{}\n",
                p.phase.name(),
                p.requests,
                p.shed,
                p.retried,
                p.timed_out,
                p.breaker_trips,
                p.fallback_served,
                if i + 1 < r.phases.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"wall_secs\": {:.6}\n}}", r.wall_secs));
        s
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The benchmark suite `xpulpnn bench` runs: the paper's Fig. 8 4-bit
/// hardware-quantized layer on the seed single core, on the 8-core
/// cluster, and on the single-core Xrvv vector backend (VLEN 128) —
/// the third point of the XpulpV2 / XpulpNN-SIMD / vector comparison.
pub fn paper_bench_suite(seed: u64) -> Result<Vec<BenchRecord>, Error> {
    let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
    let vec_cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::vector(128), true);
    Ok(vec![
        BenchRecord::single_core("single_core", cfg, seed)?,
        BenchRecord::cluster("cluster8", cfg, 8, seed)?,
        BenchRecord::single_core("vector", vec_cfg, seed)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::conv::ConvShape;

    fn small_cfg() -> ConvKernelConfig {
        let mut cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        cfg.shape = ConvShape {
            in_h: 4,
            in_w: 4,
            in_c: 16,
            out_c: 8,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        cfg
    }

    #[test]
    fn single_core_record_carries_the_cycle_ledger() {
        let r = BenchRecord::single_core("single_core", small_cfg(), 42).unwrap();
        assert_eq!(r.cores, 1);
        assert!(r.cycles > 0);
        assert!(r.macs_per_cycle() > 0.0);
        let ledger_total: u64 = r.breakdown.iter().map(|(_, c)| c).sum();
        assert_eq!(ledger_total, r.cycles, "ledger must account every cycle");
        assert_eq!(r.per_core.len(), 1);
        assert!((r.per_core[0].utilization - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cluster_record_accounts_conflicts_and_dma() {
        let r = BenchRecord::cluster("cluster4", small_cfg(), 4, 42).unwrap();
        assert_eq!(r.cores, 4);
        assert_eq!(r.per_core.len(), 4);
        let get = |name: &str| {
            r.breakdown
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert!(get("dma_prologue_cycles") > 0);
        assert!(get("dma_writeback_cycles") > 0);
        for c in &r.per_core {
            assert!(c.utilization > 0.0 && c.utilization <= 1.0);
        }
    }

    #[test]
    fn host_throughput_record_is_verified_and_balanced() {
        let r = host_throughput_for(small_cfg(), 42).unwrap();
        assert!(r.cycles > 0 && r.instret > 0);
        assert!(r.interp_secs > 0.0 && r.fast_secs > 0.0);
        // The small layer still caches well; the hot loops dominate.
        assert!(r.hit_rate > 0.9, "hit rate {:.3}", r.hit_rate);
        assert_eq!(r.interp_fallbacks, 0);
        let j = r.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        for key in [
            "\"speedup\"",
            "\"block_cache_hit_rate\"",
            "\"fast_cycles_per_sec\"",
            "\"interp_fallbacks\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }

    #[test]
    fn serving_record_json_is_balanced_and_sane() {
        let rec = ServingRecord::run(serve::LoadgenConfig {
            requests: 8,
            workers: 2,
            ..serve::LoadgenConfig::default()
        })
        .unwrap();
        let r = &rec.report;
        assert_eq!(r.responses.len(), 8);
        assert!(r.sim_cycles.p50 <= r.sim_cycles.p99);
        assert!(r.sim_cycles.p99 <= r.sim_cycles.max);
        let j = rec.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        for key in [
            "\"label\": \"serving\"",
            "\"requests\": 8",
            "\"digest\"",
            "\"sim_cycles_p50\"",
            "\"sim_cycles_p99\"",
            "\"host_us_p99\"",
            "\"sustained_req_per_sec\"",
            "\"degraded\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }

    #[test]
    fn soak_record_json_is_balanced_and_sane() {
        let rec = SoakRecord::run(serve::SoakConfig {
            seed: 1,
            workers: 2,
            scale: 4,
            ..serve::SoakConfig::default()
        })
        .unwrap();
        let r = &rec.report;
        assert_eq!(r.responses.len(), 32);
        assert!(r.lost_ids().is_empty());
        assert_eq!(r.phases.len(), 5);
        let j = rec.to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count(), "{j}");
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"label\": \"soak\"",
            "\"requests\": 32",
            "\"digest\"",
            "\"shed_queue_full\"",
            "\"shed_pressure\"",
            "\"retried\"",
            "\"timed_out\"",
            "\"breaker_trips\"",
            "\"reaps\"",
            "\"quarantines\"",
            "\"phase\": \"overload\"",
            "\"phase\": \"recovery\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }

    #[test]
    fn json_is_balanced_and_carries_the_fields() {
        let r = BenchRecord::cluster("cluster2", small_cfg(), 2, 42).unwrap();
        let j = r.to_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"label\": \"cluster2\"",
            "\"cores\": 2",
            "\"macs_per_cycle\"",
            "\"bank_conflicts\"",
            "\"per_core\"",
            "\"utilization\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }
}
