//! Benchmark artifacts for `xpulpnn bench`: one machine-readable record
//! per configuration — simulated cycles, MACs/cycle, the stall/conflict
//! breakdown and per-core utilization — for the paper's Fig. 8 4-bit
//! layer on the seed single core and on the 8-core cluster.
//!
//! JSON is emitted by hand, same as [`crate::report`]: the offline
//! build carries no serde, and the records are small flat structures.

use crate::measure::{measure, Error};
use pulp_cluster::{ClusterConvTestbench, ClusterError};
use pulp_kernels::{ConvKernelConfig, KernelIsa};
use qnn::BitWidth;

/// One core's share of a benchmark run.
#[derive(Debug, Clone)]
pub struct CoreActivity {
    /// Hart index.
    pub hart: usize,
    /// Instructions the hart retired.
    pub instret: u64,
    /// Cycles the hart was executing or stalled on a bank conflict.
    pub busy: u64,
    /// Cycles the hart idled at barriers waiting for slower harts.
    pub barrier_wait: u64,
    /// `busy / total cycles`.
    pub utilization: f64,
}

/// A self-contained benchmark record, serializable with
/// [`BenchRecord::to_json`].
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Artifact label (`"single_core"`, `"cluster8"`, ...); the CLI
    /// writes the record to `BENCH_<label>.json`.
    pub label: String,
    /// Kernel configuration name.
    pub kernel: String,
    /// Cores the run used.
    pub cores: usize,
    /// Total simulated cycles (for the cluster: DMA prologue + compute
    /// regions + write-back).
    pub cycles: u64,
    /// Multiply-accumulates in the layer.
    pub macs: u64,
    /// Named cycle/stall breakdown. Single-core records carry the
    /// per-class cycle ledger; cluster records carry conflict and DMA
    /// accounting.
    pub breakdown: Vec<(String, u64)>,
    /// Per-core activity, one entry per hart.
    pub per_core: Vec<CoreActivity>,
}

impl BenchRecord {
    /// Multiply-accumulates per cycle; 0 when no cycles were recorded.
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }

    /// Benchmarks `cfg` on the seed single-core SoC (verified against
    /// the golden model) and records its cycle-ledger breakdown.
    pub fn single_core(
        label: &str,
        cfg: ConvKernelConfig,
        seed: u64,
    ) -> Result<BenchRecord, Error> {
        let m = measure(cfg, seed)?;
        let breakdown = m
            .perf
            .ledger
            .entries()
            .map(|(class, cycles)| (class.name().to_string(), cycles))
            .collect();
        Ok(BenchRecord {
            label: label.to_string(),
            kernel: m.cfg.name(),
            cores: 1,
            cycles: m.cycles,
            macs: m.macs,
            breakdown,
            per_core: vec![CoreActivity {
                hart: 0,
                instret: m.perf.instret,
                busy: m.cycles,
                barrier_wait: 0,
                utilization: 1.0,
            }],
        })
    }

    /// Benchmarks `cfg` on an `cores`-hart cluster (verified bit-exact
    /// against the golden model) and records the conflict/DMA breakdown
    /// plus per-hart utilization.
    pub fn cluster(
        label: &str,
        cfg: ConvKernelConfig,
        cores: usize,
        seed: u64,
    ) -> Result<BenchRecord, Error> {
        let tb =
            ClusterConvTestbench::new(cfg, cores, seed).map_err(|e| Error::Build(e.to_string()))?;
        let r = tb.run(cores).map_err(|e| match e {
            ClusterError::Trap { trap, .. } => Error::Trap(trap),
        })?;
        if !r.matches() {
            return Err(Error::Mismatch { config: cfg.name() });
        }
        let breakdown = vec![
            ("bank_conflicts".to_string(), r.stats.conflicts),
            ("conflict_stall_cycles".to_string(), r.stats.conflict_stalls),
            (
                "barrier_wait_cycles".to_string(),
                r.stats.barrier_wait.iter().sum(),
            ),
            ("dma_prologue_cycles".to_string(), r.stats.dma_prologue),
            ("dma_hidden_cycles".to_string(), r.stats.dma_hidden),
            ("dma_exposed_cycles".to_string(), r.stats.dma_exposed),
            ("dma_writeback_cycles".to_string(), r.stats.dma_writeback),
        ];
        let cycles = r.cycles;
        let per_core = (0..cores)
            .map(|h| CoreActivity {
                hart: h,
                instret: r.per_hart[h].instret,
                busy: r.stats.busy[h],
                barrier_wait: r.stats.barrier_wait[h],
                utilization: r.utilization(h),
            })
            .collect();
        Ok(BenchRecord {
            label: label.to_string(),
            kernel: cfg.name(),
            cores,
            cycles,
            macs: cfg.shape.macs(),
            breakdown,
            per_core,
        })
    }

    /// Serializes the record as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"label\": \"{}\",\n", escape(&self.label)));
        s.push_str(&format!("  \"kernel\": \"{}\",\n", escape(&self.kernel)));
        s.push_str(&format!("  \"cores\": {},\n", self.cores));
        s.push_str(&format!("  \"cycles\": {},\n", self.cycles));
        s.push_str(&format!("  \"macs\": {},\n", self.macs));
        s.push_str(&format!(
            "  \"macs_per_cycle\": {:.4},\n",
            self.macs_per_cycle()
        ));
        s.push_str("  \"breakdown\": {\n");
        for (i, (name, cycles)) in self.breakdown.iter().enumerate() {
            s.push_str(&format!(
                "    \"{}\": {}{}\n",
                escape(name),
                cycles,
                if i + 1 < self.breakdown.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  },\n");
        s.push_str("  \"per_core\": [\n");
        for (i, c) in self.per_core.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"hart\": {}, \"instret\": {}, \"busy\": {}, \"barrier_wait\": {}, \
                 \"utilization\": {:.4}}}{}\n",
                c.hart,
                c.instret,
                c.busy,
                c.barrier_wait,
                c.utilization,
                if i + 1 < self.per_core.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}");
        s
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// The benchmark suite `xpulpnn bench` runs: the paper's Fig. 8 4-bit
/// hardware-quantized layer on the seed single core and on the 8-core
/// cluster.
pub fn paper_bench_suite(seed: u64) -> Result<Vec<BenchRecord>, Error> {
    let cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
    Ok(vec![
        BenchRecord::single_core("single_core", cfg, seed)?,
        BenchRecord::cluster("cluster8", cfg, 8, seed)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::conv::ConvShape;

    fn small_cfg() -> ConvKernelConfig {
        let mut cfg = ConvKernelConfig::paper(BitWidth::W4, KernelIsa::XpulpNN, true);
        cfg.shape = ConvShape {
            in_h: 4,
            in_w: 4,
            in_c: 16,
            out_c: 8,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        cfg
    }

    #[test]
    fn single_core_record_carries_the_cycle_ledger() {
        let r = BenchRecord::single_core("single_core", small_cfg(), 42).unwrap();
        assert_eq!(r.cores, 1);
        assert!(r.cycles > 0);
        assert!(r.macs_per_cycle() > 0.0);
        let ledger_total: u64 = r.breakdown.iter().map(|(_, c)| c).sum();
        assert_eq!(ledger_total, r.cycles, "ledger must account every cycle");
        assert_eq!(r.per_core.len(), 1);
        assert!((r.per_core[0].utilization - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn cluster_record_accounts_conflicts_and_dma() {
        let r = BenchRecord::cluster("cluster4", small_cfg(), 4, 42).unwrap();
        assert_eq!(r.cores, 4);
        assert_eq!(r.per_core.len(), 4);
        let get = |name: &str| {
            r.breakdown
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert!(get("dma_prologue_cycles") > 0);
        assert!(get("dma_writeback_cycles") > 0);
        for c in &r.per_core {
            assert!(c.utilization > 0.0 && c.utilization <= 1.0);
        }
    }

    #[test]
    fn json_is_balanced_and_carries_the_fields() {
        let r = BenchRecord::cluster("cluster2", small_cfg(), 2, 42).unwrap();
        let j = r.to_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces:\n{j}"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "\"label\": \"cluster2\"",
            "\"cores\": 2",
            "\"macs_per_cycle\"",
            "\"bank_conflicts\"",
            "\"per_core\"",
            "\"utilization\"",
        ] {
            assert!(j.contains(key), "missing {key} in:\n{j}");
        }
    }
}
