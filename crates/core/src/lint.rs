//! The shipped-kernel lint suite: every program the benchmarks emit,
//! paired with the tensor regions its layout declares.
//!
//! This is the static half of the kernel-correctness argument (the
//! dynamic half being the golden-model testbenches): each emitted
//! program is analyzed by [`xcheck`] under [`xcheck::LintConfig::kernel`]
//! with regions derived from the *same* [`LayerLayout`] and shape
//! arithmetic the emitters use, so an emitter whose address computation
//! escapes its tensors — or that reads a register it never set — fails
//! `xpulpnn lint` without any input vector having to hit the bug.

use pulp_asm::Program;
use pulp_kernels::cluster::{ClusterPlan, PARAM_BYTES};
use pulp_kernels::depthwise::{build_depthwise_program, DepthwiseKernelConfig};
use pulp_kernels::descriptors::{encode_descriptors, im2col_descriptors};
use pulp_kernels::emit::{build_cluster_conv_program, build_conv_program, simd_fmt};
use pulp_kernels::linear::{build_linear_program, LinearKernelConfig};
use pulp_kernels::pool::{build_relu_program, PoolKernelConfig, PoolOp, PoolTestbench};
use pulp_kernels::runner::BuildError;
use pulp_kernels::{ConvKernelConfig, KernelIsa, LayerLayout, QuantMode};
use pulp_soc::cluster::EU_BARRIER;
use qnn::conv::ConvShape;
use qnn::depthwise::DepthwiseShape;
use qnn::linear::LinearShape;
use qnn::pool::PoolShape;
use qnn::BitWidth;
use riscv_core::quant::tree_stride;
use xcheck::{
    analyze_spmd, DispatchSlab, DmaBand, LintConfig, LintReport, Region, SpmdConfig, SpmdReport,
};

/// One shipped kernel program plus the lint contract it must satisfy.
pub struct ShippedKernel {
    /// Report name (`conv/4-bit/xpulpnn/pv.qnt`, `maxpool/4-bit/simd`, ...).
    pub name: String,
    /// The emitted program.
    pub program: Program,
    /// The kernel-profile lint configuration with its declared regions.
    pub config: LintConfig,
}

impl ShippedKernel {
    /// Runs the analyzer on this kernel.
    pub fn lint(&self) -> LintReport {
        xcheck::analyze_program(&self.program, &self.config)
    }
}

/// The paper's convolution matrix, deduplicated exactly like the golden
/// listing snapshots (`hw_quant` collapses where `pv.qnt` cannot exist).
fn conv_variants() -> Vec<ConvKernelConfig> {
    let mut variants: Vec<ConvKernelConfig> = Vec::new();
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        for isa in [KernelIsa::XpulpV2, KernelIsa::XpulpNN] {
            for hw in [false, true] {
                let cfg = ConvKernelConfig::paper(bits, isa, hw);
                if !variants.contains(&cfg) {
                    variants.push(cfg);
                }
            }
        }
    }
    variants
}

/// The vector-backend convolution matrix (the same width × quantizer
/// grid on the Xrvv core), deduplicated like [`conv_variants`]. The
/// emitted program is VLEN-independent — the strip loop sizes itself
/// with `vsetvli` — so one VLEN's worth of programs covers the backend;
/// the lint profile still pins the modeled VLEN for the VEC-03 spans.
fn vector_conv_variants() -> Vec<ConvKernelConfig> {
    let mut variants: Vec<ConvKernelConfig> = Vec::new();
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        for hw in [false, true] {
            let cfg = ConvKernelConfig::paper(bits, KernelIsa::vector(128), hw);
            if !variants.contains(&cfg) {
                variants.push(cfg);
            }
        }
    }
    variants
}

/// The tensor regions a convolution kernel may touch, sized with the
/// same arithmetic the emitter and testbench use.
pub fn conv_regions(cfg: &ConvKernelConfig, layout: &LayerLayout) -> Vec<Region> {
    let s: &ConvShape = &cfg.shape;
    let in_bytes = (s.input_len() * cfg.bits.bits() as usize / 8) as u32;
    let descs = im2col_descriptors(cfg, layout.input).len() as u32;
    let mut regions = vec![
        Region::new("input", layout.input, in_bytes),
        Region::new(
            "weights",
            layout.weights,
            s.out_c as u32 * LayerLayout::weight_row_bytes(cfg),
        ),
        Region::new("descriptors", layout.descriptors, descs * 12),
        Region::new(
            "im2col",
            layout.im2col,
            2 * LayerLayout::im2col_buffer_bytes(cfg),
        ),
        Region::new(
            "output",
            layout.output,
            s.pixels() as u32 * LayerLayout::out_pixel_bytes(cfg),
        ),
    ];
    if cfg.out_bits.is_sub_byte() {
        regions.push(Region::new(
            "thresholds",
            layout.thresholds,
            s.out_c as u32 * tree_stride(simd_fmt(cfg.out_bits)),
        ));
    }
    regions
}

fn depthwise_kernel(layout: &LayerLayout) -> Result<ShippedKernel, BuildError> {
    let cfg = DepthwiseKernelConfig {
        shape: DepthwiseShape {
            in_h: 8,
            in_w: 8,
            c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        },
        shift: 7,
    };
    let s = cfg.shape;
    let padded = ((s.in_h + 2 * s.pad) * (s.in_w + 2 * s.pad) * s.c) as u32;
    let program = build_depthwise_program(&cfg, layout)?;
    Ok(ShippedKernel {
        name: cfg.name(),
        program,
        config: LintConfig::kernel(vec![
            Region::new("input", layout.input, padded),
            Region::new("weights", layout.weights, (s.c * s.k * s.k) as u32),
            Region::new(
                "output",
                layout.output,
                (s.out_h() * s.out_w() * s.c) as u32,
            ),
        ]),
    })
}

fn pool_kernel(
    layout: &LayerLayout,
    bits: BitWidth,
    op: PoolOp,
) -> Result<ShippedKernel, BuildError> {
    let cfg = PoolKernelConfig {
        shape: PoolShape {
            in_h: 8,
            in_w: 8,
            c: 8,
            k: 2,
            stride: 2,
        },
        bits,
        op,
        simd: true,
    };
    let s = cfg.shape;
    let c_bytes = (s.c * bits.bits() as usize / 8) as u32;
    let program = PoolTestbench::new(cfg, 0)?.program;
    Ok(ShippedKernel {
        name: cfg.name(),
        program,
        config: LintConfig::kernel(vec![
            Region::new("input", layout.input, (s.in_h * s.in_w) as u32 * c_bytes),
            Region::new(
                "output",
                layout.output,
                (s.out_h() * s.out_w()) as u32 * c_bytes,
            ),
        ]),
    })
}

fn relu_kernel(layout: &LayerLayout) -> Result<ShippedKernel, BuildError> {
    let len = 64usize;
    let program = build_relu_program(len, layout).map_err(BuildError::Asm)?;
    Ok(ShippedKernel {
        name: format!("relu/{len}"),
        program,
        config: LintConfig::kernel(vec![
            Region::new("input", layout.input, len as u32),
            Region::new("output", layout.output, len as u32),
        ]),
    })
}

fn linear_kernel(
    layout: &LayerLayout,
    bits: BitWidth,
    quant: QuantMode,
) -> Result<ShippedKernel, BuildError> {
    let cfg = LinearKernelConfig {
        shape: LinearShape {
            in_features: 64,
            out_features: 20,
        },
        bits,
        quant,
    };
    let s = cfg.shape;
    let row_bytes = (s.in_features * bits.bits() as usize / 8) as u32;
    let program = build_linear_program(&cfg, layout)?;
    let mut regions = vec![
        Region::new("input", layout.input, row_bytes),
        Region::new("weights", layout.weights, s.out_features as u32 * row_bytes),
        Region::new(
            "output",
            layout.output,
            (s.out_features * bits.bits() as usize / 8) as u32,
        ),
    ];
    if bits.is_sub_byte() {
        regions.push(Region::new(
            "thresholds",
            layout.thresholds,
            s.out_features as u32 * tree_stride(simd_fmt(bits)),
        ));
    }
    Ok(ShippedKernel {
        name: cfg.name(),
        program,
        config: LintConfig::kernel(regions),
    })
}

/// Builds every shipped kernel program with its lint contract: the
/// eight paper convolution variants, the five vector-backend variants
/// (linted under [`LintConfig::vector`] so the VEC rules run with the
/// modeled VLEN), plus the depthwise, pooling, ReLU and linear
/// testbench kernels.
///
/// # Errors
///
/// [`BuildError`] only for emitter bugs (the configurations are fixed).
pub fn shipped_kernels() -> Result<Vec<ShippedKernel>, BuildError> {
    let layout = LayerLayout::default_for_l2();
    let mut kernels = Vec::new();
    for cfg in conv_variants() {
        let program = build_conv_program(&cfg, &layout)?;
        kernels.push(ShippedKernel {
            name: format!("conv/{}", cfg.name()),
            program,
            config: LintConfig::kernel(conv_regions(&cfg, &layout)),
        });
    }
    for cfg in vector_conv_variants() {
        let vlen = cfg.isa.vlen_bits().expect("vector variant");
        let program = build_conv_program(&cfg, &layout)?;
        kernels.push(ShippedKernel {
            name: format!("conv/{}", cfg.name()),
            program,
            config: LintConfig::vector(conv_regions(&cfg, &layout), vlen),
        });
    }
    kernels.push(depthwise_kernel(&layout)?);
    kernels.push(pool_kernel(&layout, BitWidth::W4, PoolOp::Max)?);
    kernels.push(pool_kernel(&layout, BitWidth::W8, PoolOp::Avg2x2)?);
    kernels.push(relu_kernel(&layout)?);
    kernels.push(linear_kernel(
        &layout,
        BitWidth::W8,
        QuantMode::Shift8 { shift: 8 },
    )?);
    kernels.push(linear_kernel(
        &layout,
        BitWidth::W4,
        QuantMode::HardwareQnt,
    )?);
    kernels.push(linear_kernel(
        &layout,
        BitWidth::W2,
        QuantMode::HardwareQnt,
    )?);
    Ok(kernels)
}

/// The TCDM regions a cluster convolution kernel may touch, derived
/// from the same [`ClusterPlan`] allocation the DMA schedule stages —
/// plus the event unit's barrier register.
pub fn cluster_regions(plan: &ClusterPlan) -> Vec<Region> {
    let cfg = &plan.cfg;
    let t = &plan.tcdm;
    let s = &cfg.shape;
    let in_bytes = (s.input_len() * cfg.bits.bits() as usize / 8) as u32;
    let mut regions = vec![
        // Cursor words + parameter records: one contiguous dispatch
        // table, read (and cursor-advanced) by every hart's prologue.
        Region::new("dispatch", t.cursors, t.descriptors - t.cursors),
        Region::new(
            "descriptors",
            t.descriptors,
            plan.descriptors.len() as u32 * 12,
        ),
        Region::new("input", t.input, in_bytes),
        Region::new(
            "im2col",
            t.im2col,
            t.n_harts as u32 * pulp_kernels::cluster::TcdmLayout::im2col_stride(cfg),
        ),
        Region::new(
            "output",
            t.output,
            s.pixels() as u32 * LayerLayout::out_pixel_bytes(cfg),
        ),
        Region::new(
            "weights",
            t.weights,
            s.out_c as u32 * LayerLayout::weight_row_bytes(cfg),
        ),
        Region::new("event-unit", EU_BARRIER, 4),
    ];
    if cfg.out_bits.is_sub_byte() {
        regions.push(Region::new(
            "thresholds",
            t.thresholds,
            s.out_c as u32 * tree_stride(simd_fmt(cfg.out_bits)),
        ));
    }
    regions
}

/// Builds the cluster kernel suite: the same eight convolution variants
/// as [`shipped_kernels`], emitted by the parallel builder against an
/// `n_harts` TCDM plan and linted under [`LintConfig::cluster`].
///
/// Kept separate from [`shipped_kernels`] so the single-core suite's
/// precision-floor pin is unaffected: the cluster kernels address their
/// im2col buffers through a runtime-loaded `tp`, which the abstract
/// domains correctly count as unproven rather than proved-aligned.
///
/// # Errors
///
/// [`BuildError`] only for emitter bugs (the configurations are fixed).
pub fn cluster_kernels(n_harts: usize) -> Result<Vec<ShippedKernel>, BuildError> {
    let mut kernels = Vec::new();
    for cfg in conv_variants() {
        let plan = ClusterPlan::new(&cfg, n_harts)?;
        let program = build_cluster_conv_program(&cfg, &plan.tcdm)?;
        kernels.push(ShippedKernel {
            name: format!("cluster-conv/{}", cfg.name()),
            program,
            config: LintConfig::cluster(cluster_regions(&plan)),
        });
    }
    Ok(kernels)
}

/// The SPMD race-verification contract for one cluster plan, built from
/// the *same* plan the DMA schedule stages:
///
/// - known memory = exactly what the prologue DMA ships and kernel
///   control flow depends on — the cursor/record image and the encoded
///   im2col descriptors. Tensor data (input, weights, thresholds) stays
///   ⊤: the verifier proves control flow never depends on it;
/// - DRF-05 ownership: hart `h` owns its cursor word and its own
///   hart-major parameter-record row inside the dispatch slab;
/// - DRF-03 schedule: the input-band delta for band `t + 1` lands while
///   barrier region `t` computes ([`ClusterPlan::band_transfer`]).
pub fn spmd_config(plan: &ClusterPlan) -> SpmdConfig {
    let t = &plan.tcdm;
    let tiles = t.tiles;
    let mut c = SpmdConfig::new(t.n_harts, EU_BARRIER);
    c.regions = cluster_regions(plan);
    c.memory.push((t.cursors, plan.param_image()));
    c.memory
        .push((t.descriptors, encode_descriptors(&plan.descriptors)));
    c.slabs.push(DispatchSlab {
        name: "dispatch".to_string(),
        base: t.cursors,
        len: t.descriptors - t.cursors,
        allowed: (0..t.n_harts)
            .map(|h| {
                vec![
                    (t.cursors + 4 * h as u32, 4),
                    (
                        t.params + (h * (tiles + 1)) as u32 * PARAM_BYTES,
                        (tiles as u32 + 1) * PARAM_BYTES,
                    ),
                ]
            })
            .collect(),
    });
    let l2 = LayerLayout::default_for_l2();
    for r in 0..tiles {
        if let Some(x) = plan.band_transfer(&l2, r) {
            c.dma.push(DmaBand {
                name: format!("band {}", r + 1),
                region: r,
                base: x.dst,
                len: x.bytes,
            });
        }
    }
    c
}

/// One shipped kernel with its SPMD race-verification contract.
pub struct RaceKernel {
    /// Report name, matching the lint suite's naming.
    pub name: String,
    /// The emitted program.
    pub program: Program,
    /// The verification contract.
    pub config: SpmdConfig,
}

impl RaceKernel {
    /// Runs the SPMD race verifier on this kernel.
    pub fn verify(&self) -> SpmdReport {
        analyze_spmd(&self.program, &self.config)
    }
}

/// The full race-verification suite: the 20 single-core kernels (one
/// hart cannot race — the verifier short-circuits them clean, keeping
/// the suite's count honest about what was checked) plus the 8 cluster
/// convolution variants on `n_harts` harts with their full contracts.
///
/// # Errors
///
/// [`BuildError`] only for emitter bugs (the configurations are fixed).
pub fn race_kernels(n_harts: usize) -> Result<Vec<RaceKernel>, BuildError> {
    let mut kernels: Vec<RaceKernel> = shipped_kernels()?
        .into_iter()
        .map(|k| RaceKernel {
            name: k.name,
            program: k.program,
            config: SpmdConfig::new(1, EU_BARRIER),
        })
        .collect();
    for cfg in conv_variants() {
        let plan = ClusterPlan::new(&cfg, n_harts)?;
        let program = build_cluster_conv_program(&cfg, &plan.tcdm)?;
        kernels.push(RaceKernel {
            name: format!("cluster-conv/{}", cfg.name()),
            program,
            config: spmd_config(&plan),
        });
    }
    Ok(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_all_twenty_kernels() {
        let kernels = shipped_kernels().expect("emitters");
        assert_eq!(
            kernels.len(),
            20,
            "8 conv + 5 vector conv + dw + 2 pool + relu + 3 linear"
        );
        let conv = kernels.iter().filter(|k| k.name.contains("conv")).count();
        assert_eq!(conv, 13);
        let vector = kernels.iter().filter(|k| k.name.contains("vector")).count();
        assert_eq!(vector, 5);
    }

    #[test]
    fn every_shipped_kernel_lints_clean() {
        for k in shipped_kernels().expect("emitters") {
            let r = k.lint();
            assert!(r.clean(), "{} is not lint-clean:\n{}", k.name, r.render());
        }
    }

    #[test]
    fn cluster_suite_covers_all_eight_variants_and_lints_clean() {
        let kernels = cluster_kernels(8).expect("cluster emitters");
        assert_eq!(kernels.len(), 8, "the eight conv variants");
        for k in kernels {
            assert!(k.name.starts_with("cluster-conv/"));
            let r = k.lint();
            assert!(r.clean(), "{} is not lint-clean:\n{}", k.name, r.render());
        }
    }

    #[test]
    fn race_suite_covers_all_twenty_eight_kernels() {
        let kernels = race_kernels(8).expect("emitters");
        assert_eq!(kernels.len(), 28, "20 single-core + 8 cluster");
        let cluster = kernels
            .iter()
            .filter(|k| k.name.starts_with("cluster-conv/"))
            .count();
        assert_eq!(cluster, 8);
    }

    #[test]
    fn every_kernel_is_race_clean() {
        for k in race_kernels(8).expect("emitters") {
            let r = k.verify();
            assert!(
                r.race_clean(),
                "{} is not race-clean:\n{}",
                k.name,
                r.render()
            );
        }
    }

    #[test]
    fn tampered_plan_with_overlapping_outputs_is_caught() {
        // Overlap two harts' output chunks in the *plan* (the program
        // is untouched): the verifier reads the staged parameter image
        // and must fire DRF-01 on the overlapping output range.
        let cfg = ConvKernelConfig::paper(qnn::BitWidth::W4, KernelIsa::XpulpNN, true);
        let mut plan = ClusterPlan::new(&cfg, 8).expect("plan");
        let tiles = plan.tcdm.tiles;
        plan.records[tiles + 1].out_ptr = plan.records[0].out_ptr; // hart 1 tile 0 → hart 0's chunk
        let program = build_cluster_conv_program(&cfg, &plan.tcdm).expect("emit");
        let r = analyze_spmd(&program, &spmd_config(&plan));
        assert!(!r.race_clean());
        assert!(r.findings.iter().any(
            |f| f.rule == xcheck::Rule::DrfWriteOverlap && f.contains(plan.records[0].out_ptr)
        ));
    }

    #[test]
    fn analyzer_precision_floor_holds() {
        // Pins the analyzer's precision on the shipped kernels: a
        // regression in the interval/congruence domain or the
        // hardware-loop summarization would silently shrink the
        // "proved" counters without producing any diagnostic.
        let mut accesses = 0;
        let mut align_proved = 0;
        for k in shipped_kernels().expect("emitters") {
            let m = k.lint().mem;
            accesses += m.accesses;
            align_proved += m.align_proved;
            if k.name.starts_with("relu") {
                // The straight-line hardware loop must be fully proved.
                assert_eq!(m.proved_in, m.accesses, "relu: {m:?}");
            }
        }
        assert!(
            align_proved * 10 >= accesses * 9,
            "alignment proofs regressed: {align_proved}/{accesses}"
        );
    }
}
