//! Regeneration of every table and figure in the paper's evaluation.
//!
//! Each `figure*`/`table*` function returns a typed result with a
//! `Display` implementation that prints the same rows/series the paper
//! reports, side by side with the paper's own numbers where the paper
//! states them. [`run_all`] produces the complete report (the content of
//! EXPERIMENTS.md).

use crate::measure::{measure, Error, LayerMeasurement};
use crate::report::Table;
use cortexm_model::{STM32H743, STM32L476};
use pulp_kernels::{ConvKernelConfig, KernelIsa};
use pulp_power::{
    efficiency_gmac_s_w, matmul_workload, soc_power_mw, AreaBreakdown, CoreVariant, Workload,
};
use qnn::conv::ConvShape;
use qnn::BitWidth;
use riscv_core::perf::ALL_CYCLE_CLASSES;
use std::fmt;

/// Paper-stated speedup of the 4-bit kernel, extended vs baseline core.
pub const PAPER_SPEEDUP_W4: f64 = 5.3;
/// Paper-stated speedup of the 2-bit kernel.
pub const PAPER_SPEEDUP_W2: f64 = 8.9;
/// Paper-stated kernel-cycle reduction from `pv.qnt`, 4-bit.
pub const PAPER_QNT_GAIN_W4: f64 = 1.21;
/// Paper-stated kernel-cycle reduction from `pv.qnt`, 2-bit.
pub const PAPER_QNT_GAIN_W2: f64 = 1.16;
/// Paper-stated maximum energy-efficiency gain over the baseline.
pub const PAPER_EFF_GAIN_MAX: f64 = 9.0;
/// Paper-stated 2-bit efficiency ratio vs the STM32L4.
pub const PAPER_EFF_VS_L4_W2: f64 = 103.0;
/// Paper-stated 2-bit efficiency ratio vs the STM32H7.
pub const PAPER_EFF_VS_H7_W2: f64 = 354.0;

/// All paper-layer measurements the figures draw from, verified against
/// the golden model.
#[derive(Debug, Clone)]
pub struct Measurements {
    /// 8-bit kernel (identical on both cores; measured on the baseline).
    pub w8: LayerMeasurement,
    /// 4-bit on the baseline (software unpack + software quantization).
    pub w4_v2: LayerMeasurement,
    /// 4-bit on the extended core with software quantization.
    pub w4_nn_sw: LayerMeasurement,
    /// 4-bit on the extended core with `pv.qnt`.
    pub w4_nn_hw: LayerMeasurement,
    /// 2-bit on the baseline.
    pub w2_v2: LayerMeasurement,
    /// 2-bit on the extended core with software quantization.
    pub w2_nn_sw: LayerMeasurement,
    /// 2-bit on the extended core with `pv.qnt`.
    pub w2_nn_hw: LayerMeasurement,
}

impl Measurements {
    /// The benchmark layer geometry.
    pub fn shape(&self) -> ConvShape {
        self.w8.cfg.shape
    }
}

/// Runs the full measurement matrix on the paper layer.
///
/// # Errors
///
/// Propagates the first kernel failure (build, trap or golden
/// mismatch).
pub fn collect(seed: u64) -> Result<Measurements, Error> {
    let m = |bits, isa, hw| measure(ConvKernelConfig::paper(bits, isa, hw), seed);
    Ok(Measurements {
        w8: m(BitWidth::W8, KernelIsa::XpulpV2, false)?,
        w4_v2: m(BitWidth::W4, KernelIsa::XpulpV2, false)?,
        w4_nn_sw: m(BitWidth::W4, KernelIsa::XpulpNN, false)?,
        w4_nn_hw: m(BitWidth::W4, KernelIsa::XpulpNN, true)?,
        w2_v2: m(BitWidth::W2, KernelIsa::XpulpV2, false)?,
        w2_nn_sw: m(BitWidth::W2, KernelIsa::XpulpNN, false)?,
        w2_nn_hw: m(BitWidth::W2, KernelIsa::XpulpNN, true)?,
    })
}

// ---------------------------------------------------------------- Fig. 6

/// One row of Fig. 6: software vs hardware quantization on the extended
/// core, plus the sub-byte-vs-8-bit scaling.
#[derive(Debug, Clone, Copy)]
pub struct Fig6Row {
    /// Operand width.
    pub bits: BitWidth,
    /// Kernel cycles with the software tree.
    pub cycles_sw: u64,
    /// Kernel cycles with `pv.qnt`.
    pub cycles_hw: u64,
    /// Measured reduction (`sw / hw`).
    pub qnt_gain: f64,
    /// The paper's reduction.
    pub paper_qnt_gain: f64,
    /// Measured speedup vs the 8-bit kernel (with `pv.qnt`).
    pub scaling_vs_w8: f64,
    /// Ideal linear scaling (8 / bits).
    pub ideal_scaling: f64,
}

/// Fig. 6: impact of `pv.qnt` and linear scaling of sub-byte kernels.
#[derive(Debug, Clone)]
pub struct Figure6 {
    /// 8-bit reference cycles.
    pub w8_cycles: u64,
    /// The 4- and 2-bit rows.
    pub rows: [Fig6Row; 2],
}

/// Computes Fig. 6 from the measurement matrix.
pub fn figure6(m: &Measurements) -> Figure6 {
    let row = |bits, sw: &LayerMeasurement, hw: &LayerMeasurement, paper| Fig6Row {
        bits,
        cycles_sw: sw.cycles,
        cycles_hw: hw.cycles,
        qnt_gain: sw.cycles as f64 / hw.cycles as f64,
        paper_qnt_gain: paper,
        scaling_vs_w8: m.w8.cycles as f64 / hw.cycles as f64,
        ideal_scaling: 8.0 / bits_of(bits),
    };
    Figure6 {
        w8_cycles: m.w8.cycles,
        rows: [
            row(BitWidth::W4, &m.w4_nn_sw, &m.w4_nn_hw, PAPER_QNT_GAIN_W4),
            row(BitWidth::W2, &m.w2_nn_sw, &m.w2_nn_hw, PAPER_QNT_GAIN_W2),
        ],
    }
}

fn bits_of(b: BitWidth) -> f64 {
    b.bits() as f64
}

impl fmt::Display for Figure6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — pv.qnt impact and sub-byte scaling (8-bit reference: {} cycles)",
            self.w8_cycles
        )?;
        let mut t = Table::new(&[
            "kernel",
            "cycles (sw quant)",
            "cycles (pv.qnt)",
            "gain",
            "paper gain",
            "scaling vs 8-bit",
            "ideal",
        ]);
        for r in &self.rows {
            t.row(&[
                r.bits.to_string(),
                r.cycles_sw.to_string(),
                r.cycles_hw.to_string(),
                format!("{:.2}x", r.qnt_gain),
                format!("{:.2}x", r.paper_qnt_gain),
                format!("{:.2}x", r.scaling_vs_w8),
                format!("{:.2}x", r.ideal_scaling),
            ]);
        }
        t.fmt(f)
    }
}

// ---------------------------------------------------------------- Fig. 7

/// One row of Fig. 7: energy-efficiency gain over the baseline core.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Operand width.
    pub bits: BitWidth,
    /// Extended-core efficiency in GMAC/s/W (power-managed design).
    pub eff_ext: f64,
    /// Baseline-core efficiency on the same workload.
    pub eff_base: f64,
    /// Measured gain.
    pub gain: f64,
}

/// Fig. 7: energy efficiency of the extended core vs the baseline.
#[derive(Debug, Clone)]
pub struct Figure7 {
    /// One row per operand width.
    pub rows: [Fig7Row; 3],
    /// The paper's stated maximum gain (9×, on the 2-bit kernel).
    pub paper_max_gain: f64,
}

/// Computes Fig. 7.
pub fn figure7(m: &Measurements) -> Figure7 {
    let row = |bits: BitWidth, ext: &LayerMeasurement, base: &LayerMeasurement| {
        let wl = matmul_workload(bits.bits());
        let eff_ext =
            efficiency_gmac_s_w(ext.macs, ext.cycles, soc_power_mw(CoreVariant::ExtPm, wl));
        let eff_base =
            efficiency_gmac_s_w(base.macs, base.cycles, soc_power_mw(CoreVariant::Ri5cy, wl));
        Fig7Row {
            bits,
            eff_ext,
            eff_base,
            gain: eff_ext / eff_base,
        }
    };
    Figure7 {
        rows: [
            row(BitWidth::W8, &m.w8, &m.w8),
            row(BitWidth::W4, &m.w4_nn_hw, &m.w4_v2),
            row(BitWidth::W2, &m.w2_nn_hw, &m.w2_v2),
        ],
        paper_max_gain: PAPER_EFF_GAIN_MAX,
    }
}

impl fmt::Display for Figure7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7 — energy efficiency vs baseline RI5CY (paper: up to {:.0}x)",
            self.paper_max_gain
        )?;
        let mut t = Table::new(&["kernel", "ext [GMAC/s/W]", "baseline [GMAC/s/W]", "gain"]);
        for r in &self.rows {
            t.row(&[
                r.bits.to_string(),
                format!("{:.1}", r.eff_ext),
                format!("{:.1}", r.eff_base),
                format!("{:.2}x", r.gain),
            ]);
        }
        t.fmt(f)
    }
}

// ---------------------------------------------------------------- Fig. 8

/// One row of Fig. 8: layer cycles on the four platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Operand width.
    pub bits: BitWidth,
    /// Extended core (best kernel).
    pub xpulpnn: u64,
    /// Baseline RI5CY.
    pub ri5cy: u64,
    /// STM32L476 model.
    pub stm32l4: u64,
    /// STM32H743 model.
    pub stm32h7: u64,
    /// Measured speedup of the extended core over the baseline.
    pub speedup_vs_ri5cy: f64,
    /// Paper's speedup (1.0 at 8-bit, 5.3/8.9 sub-byte).
    pub paper_speedup: f64,
}

/// Fig. 8: execution cycles across architectures.
#[derive(Debug, Clone)]
pub struct Figure8 {
    /// One row per width.
    pub rows: [Fig8Row; 3],
}

/// Computes Fig. 8 (the Cortex-M numbers come from the CMSIS-NN cost
/// model).
pub fn figure8(m: &Measurements) -> Figure8 {
    let shape = m.shape();
    let row = |bits: BitWidth, ext: &LayerMeasurement, base: &LayerMeasurement, paper| Fig8Row {
        bits,
        xpulpnn: ext.cycles,
        ri5cy: base.cycles,
        stm32l4: STM32L476.conv_cycles(&shape, bits),
        stm32h7: STM32H743.conv_cycles(&shape, bits),
        speedup_vs_ri5cy: base.cycles as f64 / ext.cycles as f64,
        paper_speedup: paper,
    };
    Figure8 {
        rows: [
            row(BitWidth::W8, &m.w8, &m.w8, 1.0),
            row(BitWidth::W4, &m.w4_nn_hw, &m.w4_v2, PAPER_SPEEDUP_W4),
            row(BitWidth::W2, &m.w2_nn_hw, &m.w2_v2, PAPER_SPEEDUP_W2),
        ],
    }
}

impl fmt::Display for Figure8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 8 — execution cycles per convolution layer")?;
        let mut t = Table::new(&[
            "kernel",
            "XpulpNN core",
            "RI5CY",
            "STM32L4",
            "STM32H7",
            "speedup vs RI5CY",
            "paper",
        ]);
        for r in &self.rows {
            t.row(&[
                r.bits.to_string(),
                r.xpulpnn.to_string(),
                r.ri5cy.to_string(),
                r.stm32l4.to_string(),
                r.stm32h7.to_string(),
                format!("{:.2}x", r.speedup_vs_ri5cy),
                format!("{:.1}x", r.paper_speedup),
            ]);
        }
        t.fmt(f)
    }
}

// ---------------------------------------------------------------- Fig. 9

/// One row of Fig. 9: energy efficiency across the platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Operand width.
    pub bits: BitWidth,
    /// Extended core, GMAC/s/W.
    pub xpulpnn: f64,
    /// Baseline RI5CY.
    pub ri5cy: f64,
    /// STM32L476.
    pub stm32l4: f64,
    /// STM32H743.
    pub stm32h7: f64,
}

/// Fig. 9: efficiency comparison, with the 2-bit ratios the paper
/// headlines.
#[derive(Debug, Clone)]
pub struct Figure9 {
    /// One row per width.
    pub rows: [Fig9Row; 3],
    /// Measured 2-bit ratio vs the L4 (paper: 103×).
    pub ratio_vs_l4_w2: f64,
    /// Measured 2-bit ratio vs the H7 (paper: 354×).
    pub ratio_vs_h7_w2: f64,
}

/// Computes Fig. 9.
pub fn figure9(m: &Measurements) -> Figure9 {
    let shape = m.shape();
    let row = |bits: BitWidth, ext: &LayerMeasurement, base: &LayerMeasurement| {
        let wl = matmul_workload(bits.bits());
        Fig9Row {
            bits,
            xpulpnn: efficiency_gmac_s_w(
                ext.macs,
                ext.cycles,
                soc_power_mw(CoreVariant::ExtPm, wl),
            ),
            ri5cy: efficiency_gmac_s_w(
                base.macs,
                base.cycles,
                soc_power_mw(CoreVariant::Ri5cy, wl),
            ),
            stm32l4: STM32L476.conv_gmac_per_s_per_w(&shape, bits),
            stm32h7: STM32H743.conv_gmac_per_s_per_w(&shape, bits),
        }
    };
    let rows = [
        row(BitWidth::W8, &m.w8, &m.w8),
        row(BitWidth::W4, &m.w4_nn_hw, &m.w4_v2),
        row(BitWidth::W2, &m.w2_nn_hw, &m.w2_v2),
    ];
    Figure9 {
        ratio_vs_l4_w2: rows[2].xpulpnn / rows[2].stm32l4,
        ratio_vs_h7_w2: rows[2].xpulpnn / rows[2].stm32h7,
        rows,
    }
}

impl fmt::Display for Figure9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 9 — energy efficiency [GMAC/s/W]")?;
        let mut t = Table::new(&["kernel", "XpulpNN core", "RI5CY", "STM32L4", "STM32H7"]);
        for r in &self.rows {
            t.row(&[
                r.bits.to_string(),
                format!("{:.1}", r.xpulpnn),
                format!("{:.1}", r.ri5cy),
                format!("{:.2}", r.stm32l4),
                format!("{:.2}", r.stm32h7),
            ]);
        }
        t.fmt(f)?;
        writeln!(
            f,
            "2-bit ratio vs STM32L4: {:.0}x (paper {:.0}x); vs STM32H7: {:.0}x (paper {:.0}x)",
            self.ratio_vs_l4_w2, PAPER_EFF_VS_L4_W2, self.ratio_vs_h7_w2, PAPER_EFF_VS_H7_W2
        )
    }
}

// ---------------------------------------------------------------- Table I

/// Table I with the "This Work" row computed from measurements.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Literature rows plus the computed row.
    pub rows: Vec<pulp_power::PlatformRow>,
}

/// Computes Table I: the literature rows plus a "This Work" row whose
/// throughput/efficiency extremes come from the measured 8-bit and
/// 2-bit kernels.
pub fn table1(m: &Measurements) -> Table1 {
    let f9 = figure9(m);
    let min_gmacs = m.w8.gmacs();
    let max_gmacs = m.w2_nn_hw.gmacs();
    let min_eff = f9.rows[0].xpulpnn.min(f9.rows[0].ri5cy);
    let max_eff = f9.rows[2].xpulpnn;
    let mut rows = pulp_power::TABLE1_LITERATURE.to_vec();
    rows.push(pulp_power::this_work_row(
        min_gmacs, max_gmacs, min_eff, max_eff,
    ));
    Table1 { rows }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I — QNN embedded computing platforms")?;
        let mut t = Table::new(&[
            "platform",
            "perf [Gop/s]",
            "eff [Gop/s/W]",
            "budget [mW]",
            "flexibility",
        ]);
        for r in &self.rows {
            t.row(&[
                r.name.to_string(),
                format!("{:.1} - {:.0}", r.gops.0, r.gops.1),
                format!("{:.1} - {:.0}", r.gops_w.0, r.gops_w.1),
                format!("{:.0} - {:.0}", r.budget_mw.0, r.budget_mw.1),
                r.flexibility.to_string(),
            ]);
        }
        t.fmt(f)
    }
}

// --------------------------------------------------------------- Table III

/// Table III reproduction: the calibrated area/power model echoed with
/// its self-consistency figures.
#[derive(Debug, Clone, Copy)]
pub struct Table3;

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table III — area and power (22 nm FDX model, calibrated)"
        )?;
        let mut t = Table::new(&[
            "unit",
            "RI5CY [um2]",
            "ext no-PM [um2]",
            "ext PM [um2]",
            "PM overhead",
        ]);
        let b = AreaBreakdown::of(CoreVariant::Ri5cy);
        let n = AreaBreakdown::of(CoreVariant::ExtNoPm);
        let p = AreaBreakdown::of(CoreVariant::ExtPm);
        let rows: [(&str, f64, f64, f64); 5] = [
            ("total", b.total, n.total, p.total),
            ("dotp unit", b.dotp_unit, n.dotp_unit, p.dotp_unit),
            ("ID stage", b.id_stage, n.id_stage, p.id_stage),
            ("EX stage", b.ex_stage, n.ex_stage, p.ex_stage),
            ("LSU", b.lsu, n.lsu, p.lsu),
        ];
        for (name, base, no_pm, pm) in rows {
            t.row(&[
                name.to_string(),
                format!("{base:.1}"),
                format!("{no_pm:.1}"),
                format!("{pm:.1}"),
                format!("{:.1}%", (pm - base) / base * 100.0),
            ]);
        }
        t.fmt(f)?;
        writeln!(f)?;
        let mut t = Table::new(&[
            "SoC power @0.75V/250MHz",
            "RI5CY [mW]",
            "ext no-PM [mW]",
            "ext PM [mW]",
        ]);
        for (name, wl) in [
            ("8-bit MatMul", Workload::MatMul8),
            ("4-bit MatMul", Workload::MatMul4),
            ("2-bit MatMul", Workload::MatMul2),
            ("GP application", Workload::GeneralPurpose),
        ] {
            t.row(&[
                name.to_string(),
                format!("{:.2}", soc_power_mw(CoreVariant::Ri5cy, wl)),
                format!("{:.2}", soc_power_mw(CoreVariant::ExtNoPm, wl)),
                format!("{:.2}", soc_power_mw(CoreVariant::ExtPm, wl)),
            ]);
        }
        t.fmt(f)
    }
}

// ------------------------------------------------------ quant microbench

/// The §III-A claim in isolation: `pv.qnt` latency vs the software tree.
#[derive(Debug, Clone, Copy)]
pub struct QuantMicrobench {
    /// Measured `pv.qnt.n` cycles (two activations).
    pub hw_nibble_pair: u64,
    /// Measured `pv.qnt.c` cycles (two activations).
    pub hw_crumb_pair: u64,
    /// Measured software-tree cycles for one 4-bit activation.
    pub sw_nibble_single: u64,
    /// Measured software-tree cycles for one 2-bit activation.
    pub sw_crumb_single: u64,
}

impl QuantMicrobench {
    /// Per-activation advantage of the hardware unit, 4-bit.
    pub fn nibble_gain(&self) -> f64 {
        self.sw_nibble_single as f64 / (self.hw_nibble_pair as f64 / 2.0)
    }
}

/// Measures quantization latencies with tiny dedicated programs.
///
/// # Errors
///
/// Propagates simulator traps (which would indicate a model bug).
pub fn quant_microbench() -> Result<QuantMicrobench, Error> {
    use pulp_asm::Asm;
    use pulp_isa::Reg;
    use pulp_isa::SimdFmt;
    use riscv_core::quant::{eytzinger, tree_stride};
    use riscv_core::{Core, IsaConfig, SliceMem};

    let measure_block = |emit: &dyn Fn(&mut Asm), fmt: SimdFmt| -> Result<u64, Error> {
        let mut a = Asm::new(0);
        a.equ("thr", 0x4000);
        a.la(Reg::A2, "thr");
        a.li(Reg::A1, 1234);
        emit(&mut a);
        a.ecall();
        let prog = a.assemble().map_err(|e| Error::Build(e.to_string()))?;
        let mut mem = SliceMem::new(0, 1 << 16);
        mem.load_program(&prog);
        let n = (1usize << fmt.bits()) - 1;
        let sorted: Vec<i16> = (0..n).map(|i| (i as i16 - n as i16 / 2) * 100).collect();
        let heap = eytzinger(&sorted);
        for tree in 0..2u32 {
            for (i, t) in heap.iter().enumerate() {
                mem.as_bytes_mut()[(0x4000 + tree * tree_stride(fmt) + i as u32 * 2) as usize
                    ..(0x4000 + tree * tree_stride(fmt) + i as u32 * 2 + 2) as usize]
                    .copy_from_slice(&t.to_le_bytes());
            }
        }
        let mut core = Core::new(IsaConfig::xpulpnn());
        core.pc = prog.base;
        // Baseline program: everything but the payload.
        core.run(&mut mem, 1_000_000).map_err(Error::Trap)?;
        Ok(core.perf.cycles)
    };

    let nop_cycles = measure_block(&|_a| {}, SimdFmt::Nibble)?;
    let hw_n = measure_block(
        &|a| {
            a.pv_qnt(SimdFmt::Nibble, Reg::A0, Reg::A1, Reg::A2);
        },
        SimdFmt::Nibble,
    )? - nop_cycles;
    let hw_c = measure_block(
        &|a| {
            a.pv_qnt(SimdFmt::Crumb, Reg::A0, Reg::A1, Reg::A2);
        },
        SimdFmt::Crumb,
    )? - nop_cycles;
    let sw_n = measure_block(
        &|a| {
            a.addi(Reg::T5, Reg::A2, -2);
            pulp_kernels::emit::quant::emit_sw_tree_walk(a, Reg::A1, Reg::T5, 4);
        },
        SimdFmt::Nibble,
    )? - nop_cycles
        - 1; // discount the tree-base addi
    let sw_c = measure_block(
        &|a| {
            a.addi(Reg::T5, Reg::A2, -2);
            pulp_kernels::emit::quant::emit_sw_tree_walk(a, Reg::A1, Reg::T5, 2);
        },
        SimdFmt::Crumb,
    )? - nop_cycles
        - 1;

    Ok(QuantMicrobench {
        hw_nibble_pair: hw_n,
        hw_crumb_pair: hw_c,
        sw_nibble_single: sw_n,
        sw_crumb_single: sw_c,
    })
}

impl fmt::Display for QuantMicrobench {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Quantization microbenchmark (paper §III-A/§III-B2)")?;
        writeln!(
            f,
            "  pv.qnt.n: {} cycles / 2 activations (paper: 9)",
            self.hw_nibble_pair
        )?;
        writeln!(
            f,
            "  pv.qnt.c: {} cycles / 2 activations (paper: 5)",
            self.hw_crumb_pair
        )?;
        writeln!(
            f,
            "  software tree, 4-bit: {} cycles / activation (paper: ~18)",
            self.sw_nibble_single
        )?;
        write!(
            f,
            "  software tree, 2-bit: {} cycles / activation",
            self.sw_crumb_single
        )
    }
}

// -------------------------------------------------------- pooling speedup

/// One row of the pooling experiment: packed SIMD (`pv.maxu`) vs the
/// scalar byte-wise baseline on a 16×16 max-pooling layer.
#[derive(Debug, Clone, Copy)]
pub struct PoolRow {
    /// Operand width.
    pub bits: BitWidth,
    /// Cycles with packed-SIMD `pv.maxu`.
    pub simd_cycles: u64,
    /// Cycles of the scalar baseline over the 8-bit-unpacked tensor.
    pub scalar_cycles: u64,
    /// Speedup.
    pub speedup: f64,
}

/// §III-A's pooling claim quantified: `pv.max` per packed word vs
/// byte-wise scalar pooling.
#[derive(Debug, Clone)]
pub struct PoolingSpeedup {
    /// One row per width.
    pub rows: [PoolRow; 3],
}

/// Measures 2×2/stride-2 max pooling on a 16×16 tensor (32 channels for
/// 8-bit, more for sub-byte so words stay full), SIMD vs scalar.
///
/// # Errors
///
/// Propagates kernel build failures and traps.
pub fn pooling_speedup() -> Result<PoolingSpeedup, Error> {
    use pulp_kernels::pool::{PoolKernelConfig, PoolOp, PoolTestbench};
    use qnn::pool::PoolShape;
    let run = |bits: BitWidth, simd: bool| -> Result<u64, Error> {
        let c = (32 / bits.bits() as usize) * 4;
        let cfg = PoolKernelConfig {
            shape: PoolShape {
                in_h: 16,
                in_w: 16,
                c,
                k: 2,
                stride: 2,
            },
            bits,
            op: PoolOp::Max,
            simd,
        };
        let tb = PoolTestbench::new(cfg, 9).map_err(|e| Error::Build(e.to_string()))?;
        let r = tb.run().map_err(Error::Trap)?;
        if !r.matches() {
            return Err(Error::Mismatch { config: cfg.name() });
        }
        Ok(r.cycles())
    };
    let mut rows = Vec::new();
    for bits in [BitWidth::W8, BitWidth::W4, BitWidth::W2] {
        let simd_cycles = run(bits, true)?;
        let scalar_cycles = run(bits, false)?;
        rows.push(PoolRow {
            bits,
            simd_cycles,
            scalar_cycles,
            speedup: scalar_cycles as f64 / simd_cycles as f64,
        });
    }
    Ok(PoolingSpeedup {
        rows: [rows[0], rows[1], rows[2]],
    })
}

impl fmt::Display for PoolingSpeedup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Pooling — pv.maxu vs scalar baseline (§III-A), 16x16 2x2/s2 max pooling"
        )?;
        let mut t = Table::new(&["operands", "SIMD cycles", "scalar cycles", "speedup"]);
        for r in &self.rows {
            t.row(&[
                r.bits.to_string(),
                r.simd_cycles.to_string(),
                r.scalar_cycles.to_string(),
                format!("{:.2}x", r.speedup),
            ]);
        }
        t.fmt(f)
    }
}

// ------------------------------------------------------- cycle attribution

/// Per-class cycle comparison of a baseline/extended kernel pair, from
/// the core's cycle ledger. This is the instrument behind deviation D1:
/// it shows *where* the baseline spends the cycles the extended core
/// eliminates, and which costs remain to cap the speedup.
#[derive(Debug, Clone)]
pub struct CycleAttribution {
    /// Operand width of the pair.
    pub bits: BitWidth,
    /// The baseline (XpulpV2, software everything) measurement.
    pub baseline: LayerMeasurement,
    /// The extended (XpulpNN + `pv.qnt`) measurement.
    pub extended: LayerMeasurement,
}

impl CycleAttribution {
    /// Measured speedup of the extended kernel over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline.cycles as f64 / self.extended.cycles as f64
    }

    /// Cycles the extended kernel spends outside the dot-product unit —
    /// the serial remainder that limits the speedup (Amdahl's bound).
    pub fn ext_non_dotp_cycles(&self) -> u64 {
        let dotp: u64 = ALL_CYCLE_CLASSES
            .iter()
            .filter(|c| matches!(c, riscv_core::CycleClass::Dotp(_)))
            .map(|c| self.extended.perf.ledger.get(*c))
            .sum();
        self.extended.cycles - dotp
    }
}

/// Builds the 4- and 2-bit attribution pairs from the measurement
/// matrix.
pub fn cycle_attribution(m: &Measurements) -> [CycleAttribution; 2] {
    [
        CycleAttribution {
            bits: BitWidth::W4,
            baseline: m.w4_v2.clone(),
            extended: m.w4_nn_hw.clone(),
        },
        CycleAttribution {
            bits: BitWidth::W2,
            baseline: m.w2_v2.clone(),
            extended: m.w2_nn_hw.clone(),
        },
    ]
}

impl fmt::Display for CycleAttribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Cycle attribution, {} kernels (speedup {:.2}x):",
            self.bits,
            self.speedup()
        )?;
        let mut t = Table::new(&["class", "baseline", "extended", "base share", "ext share"]);
        for class in ALL_CYCLE_CLASSES {
            let b = self.baseline.perf.ledger.get(class);
            let e = self.extended.perf.ledger.get(class);
            if b == 0 && e == 0 {
                continue;
            }
            t.row(&[
                class.name().to_string(),
                b.to_string(),
                e.to_string(),
                format!("{:.1}%", b as f64 / self.baseline.cycles as f64 * 100.0),
                format!("{:.1}%", e as f64 / self.extended.cycles as f64 * 100.0),
            ]);
        }
        t.row(&[
            "total".to_string(),
            self.baseline.cycles.to_string(),
            self.extended.cycles.to_string(),
            "100.0%".to_string(),
            "100.0%".to_string(),
        ]);
        t.fmt(f)
    }
}

// ------------------------------------------------------------- full report

/// Everything [`run_all`] produces.
#[derive(Debug, Clone)]
pub struct FullReport {
    /// The raw measurement matrix.
    pub measurements: Measurements,
    /// Fig. 6 reproduction.
    pub figure6: Figure6,
    /// Fig. 7 reproduction.
    pub figure7: Figure7,
    /// Fig. 8 reproduction.
    pub figure8: Figure8,
    /// Fig. 9 reproduction.
    pub figure9: Figure9,
    /// Table I reproduction.
    pub table1: Table1,
    /// Quantization microbenchmark.
    pub quant: QuantMicrobench,
    /// Pooling SIMD-vs-scalar comparison.
    pub pooling: PoolingSpeedup,
    /// Attributed cycle breakdown of the sub-byte baseline/extended
    /// pairs (the deviation-D1 instrument).
    pub attribution: [CycleAttribution; 2],
}

/// Runs every experiment.
///
/// # Errors
///
/// Propagates the first measurement failure.
pub fn run_all(seed: u64) -> Result<FullReport, Error> {
    let measurements = collect(seed)?;
    Ok(FullReport {
        figure6: figure6(&measurements),
        figure7: figure7(&measurements),
        figure8: figure8(&measurements),
        figure9: figure9(&measurements),
        table1: table1(&measurements),
        quant: quant_microbench()?,
        pooling: pooling_speedup()?,
        attribution: cycle_attribution(&measurements),
        measurements,
    })
}

impl fmt::Display for FullReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.table1)?;
        writeln!(f, "{}", Table3)?;
        writeln!(f, "{}", self.figure6)?;
        writeln!(f, "{}", self.figure7)?;
        writeln!(f, "{}", self.figure8)?;
        writeln!(f, "{}", self.figure9)?;
        writeln!(f, "{}", self.quant)?;
        writeln!(f)?;
        writeln!(f, "{}", self.pooling)?;
        writeln!(f)?;
        writeln!(f, "{}", self.attribution[0])?;
        write!(f, "{}", self.attribution[1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_display_echoes_calibration() {
        let s = Table3.to_string();
        assert!(s.contains("19729.9"));
        assert!(s.contains("11.1%"));
        assert!(s.contains("5.87"));
    }

    #[test]
    fn quant_microbench_matches_paper_latencies() {
        let q = quant_microbench().unwrap();
        assert_eq!(
            q.hw_nibble_pair, 9,
            "paper: 9 cycles for two 4-bit activations"
        );
        assert_eq!(
            q.hw_crumb_pair, 5,
            "paper: 5 cycles for two 2-bit activations"
        );
        // "favorably comparing to the 18 clock cycles needed on average
        // to compress only one activation ... in software"
        assert!(
            (15..=25).contains(&q.sw_nibble_single),
            "sw 4-bit quant at {} cycles",
            q.sw_nibble_single
        );
        assert!(q.nibble_gain() > 3.0);
    }
}
