//! Verified cycle measurements of the paper's benchmark layer.

use crate::report::HotspotProfile;
use pulp_kernels::runner::BuildError;
use pulp_kernels::{ConvKernelConfig, ConvTestbench, KernelIsa};
use qnn::BitWidth;
use riscv_core::{PerfCounters, Trap};
use std::fmt;

/// Any failure while measuring a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The kernel could not be built.
    Build(String),
    /// The simulator trapped.
    Trap(Trap),
    /// The device output did not match the golden model — measurements
    /// of incorrect kernels are worthless, so this is an error, not a
    /// flag.
    Mismatch {
        /// The offending configuration.
        config: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Build(e) => write!(f, "kernel build failed: {e}"),
            Error::Trap(t) => write!(f, "simulator trap: {t}"),
            Error::Mismatch { config } => {
                write!(f, "kernel {config} output does not match the golden model")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<BuildError> for Error {
    fn from(e: BuildError) -> Self {
        Error::Build(e.to_string())
    }
}

impl From<Trap> for Error {
    fn from(t: Trap) -> Self {
        Error::Trap(t)
    }
}

/// One verified kernel measurement.
#[derive(Debug, Clone)]
pub struct LayerMeasurement {
    /// The configuration measured.
    pub cfg: ConvKernelConfig,
    /// Total kernel cycles.
    pub cycles: u64,
    /// MACs in the layer.
    pub macs: u64,
    /// Full performance counters of the run.
    pub perf: PerfCounters,
}

impl LayerMeasurement {
    /// Multiply-accumulates per cycle; 0 when no cycles were recorded
    /// (guards the inf/NaN a bare division would produce).
    pub fn macs_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }

    /// GMAC/s at the PULPissimo operating point (250 MHz).
    pub fn gmacs(&self) -> f64 {
        self.macs_per_cycle() * pulp_power::FREQ_MHZ * 1e6 / 1e9
    }
}

/// Measures any configuration, insisting the output matches the golden
/// model.
///
/// # Errors
///
/// [`Error`] on build failure, trap, or output mismatch.
pub fn measure(cfg: ConvKernelConfig, seed: u64) -> Result<LayerMeasurement, Error> {
    let tb = ConvTestbench::new(cfg, seed)?;
    let r = tb.run()?;
    if !r.matches() {
        return Err(Error::Mismatch { config: cfg.name() });
    }
    Ok(LayerMeasurement {
        cfg,
        cycles: r.report.perf.cycles,
        macs: cfg.shape.macs(),
        perf: r.report.perf,
    })
}

/// Measures the paper's benchmark layer (16×16×32 input, 64×3×3×32
/// filters) for a width/ISA point.
///
/// # Errors
///
/// See [`measure`].
pub fn measure_paper_layer(
    bits: BitWidth,
    isa: KernelIsa,
    hw_quant: bool,
    seed: u64,
) -> Result<LayerMeasurement, Error> {
    measure(ConvKernelConfig::paper(bits, isa, hw_quant), seed)
}

/// Runs a kernel with the execution tracer attached and returns its
/// attributed cycle profile: the per-class cycle ledger plus the `top`
/// hottest static instructions. The output is verified against the
/// golden model first — profiles of broken kernels are worthless.
///
/// # Errors
///
/// [`Error`] on build failure, trap, or output mismatch.
pub fn profile(cfg: ConvKernelConfig, seed: u64, top: usize) -> Result<HotspotProfile, Error> {
    const RING: usize = 64;
    let tb = ConvTestbench::new(cfg, seed)?;
    let (r, tracer) = tb.run_profiled(RING)?;
    if !r.matches() {
        return Err(Error::Mismatch { config: cfg.name() });
    }
    Ok(HotspotProfile {
        kernel: cfg.name(),
        perf: r.report.perf,
        hotspots: tracer.hotspots(top),
    })
}

/// [`profile`] for the paper's benchmark layer at a width/ISA point.
///
/// # Errors
///
/// See [`profile`].
pub fn profile_paper_layer(
    bits: BitWidth,
    isa: KernelIsa,
    hw_quant: bool,
    seed: u64,
    top: usize,
) -> Result<HotspotProfile, Error> {
    profile(ConvKernelConfig::paper(bits, isa, hw_quant), seed, top)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_derives_rates() {
        let m = LayerMeasurement {
            cfg: ConvKernelConfig::paper(BitWidth::W8, KernelIsa::XpulpNN, false),
            cycles: 1_000_000,
            macs: 2_000_000,
            perf: PerfCounters::new(),
        };
        assert!((m.macs_per_cycle() - 2.0).abs() < 1e-12);
        assert!((m.gmacs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_measurement_has_finite_rates() {
        let m = LayerMeasurement {
            cfg: ConvKernelConfig::paper(BitWidth::W8, KernelIsa::XpulpNN, false),
            cycles: 0,
            macs: 2_000_000,
            perf: PerfCounters::new(),
        };
        assert_eq!(m.macs_per_cycle(), 0.0);
        assert_eq!(m.gmacs(), 0.0);
    }
}
