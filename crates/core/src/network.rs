//! Whole-network deployment: describe a quantized network as a sequence
//! of layers, compile every layer to a simulator kernel, and run
//! inference end to end on the simulated SoC — each layer verified
//! against its golden model on the way.
//!
//! This is the downstream-user API the kernel library exists for: the
//! `cnn_inference` and `mobilenet_block` examples are hand-rolled
//! versions of what [`Network::run`] automates.
//!
//! # Example
//!
//! ```no_run
//! use xpulpnn::network::{Layer, Network};
//! use xpulpnn::qnn::conv::ConvShape;
//! use xpulpnn::qnn::pool::PoolShape;
//! use xpulpnn::BitWidth;
//!
//! # fn main() -> Result<(), xpulpnn::network::NetworkError> {
//! let net = Network::new(vec![
//!     Layer::conv(
//!         ConvShape { in_h: 8, in_w: 8, in_c: 8, out_c: 16, k_h: 3, k_w: 3, stride: 1, pad: 1 },
//!         BitWidth::W8,
//!         BitWidth::W4,
//!     ),
//!     Layer::maxpool(PoolShape { in_h: 8, in_w: 8, c: 16, k: 2, stride: 2 }, BitWidth::W4),
//! ])?;
//! let result = net.run(42)?;
//! println!("{} cycles total", result.total_cycles());
//! # Ok(())
//! # }
//! ```

use pulp_kernels::depthwise::{DepthwiseKernelConfig, DepthwiseTestbench};
use pulp_kernels::linear::{LinearKernelConfig, LinearTestbench};
use pulp_kernels::pool::{PoolKernelConfig, PoolOp, PoolTestbench};
use pulp_kernels::runner::BuildError;
use pulp_kernels::{ConvKernelConfig, ConvTestbench, QuantMode};
use qnn::conv::ConvShape;
use qnn::depthwise::DepthwiseShape;
use qnn::linear::LinearShape;
use qnn::pool::PoolShape;
use qnn::rng::TensorRng;
use qnn::tensor::QuantTensor;
use qnn::BitWidth;
use riscv_core::Trap;
use std::fmt;

/// One layer of a network description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Standard convolution (`bits`-wide operands, `out_bits`-wide
    /// outputs; `pv.qnt` / shift+clip on the extended core).
    Conv {
        /// Geometry.
        shape: ConvShape,
        /// Operand width.
        bits: BitWidth,
        /// Output width.
        out_bits: BitWidth,
    },
    /// Depthwise convolution (8-bit only; see
    /// [`pulp_kernels::depthwise`]).
    Depthwise {
        /// Geometry.
        shape: DepthwiseShape,
        /// Re-quantization shift.
        shift: u32,
    },
    /// Max pooling (packed SIMD).
    MaxPool {
        /// Geometry.
        shape: PoolShape,
        /// Activation width.
        bits: BitWidth,
    },
    /// Fully connected layer.
    Linear {
        /// Geometry.
        shape: LinearShape,
        /// Operand (and output) width.
        bits: BitWidth,
    },
}

impl Layer {
    /// Convolution layer shorthand.
    pub fn conv(shape: ConvShape, bits: BitWidth, out_bits: BitWidth) -> Layer {
        Layer::Conv {
            shape,
            bits,
            out_bits,
        }
    }

    /// Depthwise layer shorthand (8-bit, shift 7).
    pub fn depthwise(shape: DepthwiseShape) -> Layer {
        Layer::Depthwise { shape, shift: 7 }
    }

    /// Max-pooling layer shorthand.
    pub fn maxpool(shape: PoolShape, bits: BitWidth) -> Layer {
        Layer::MaxPool { shape, bits }
    }

    /// Linear layer shorthand.
    pub fn linear(shape: LinearShape, bits: BitWidth) -> Layer {
        Layer::Linear { shape, bits }
    }

    /// `(input elements, input width)` this layer consumes.
    pub fn input_spec(&self) -> (usize, BitWidth) {
        match *self {
            Layer::Conv { shape, bits, .. } => (shape.input_len(), bits),
            Layer::Depthwise { shape, .. } => (shape.input_len(), BitWidth::W8),
            Layer::MaxPool { shape, bits } => (shape.input_len(), bits),
            Layer::Linear { shape, bits } => (shape.in_features, bits),
        }
    }

    /// `(output elements, output width)` this layer produces.
    pub fn output_spec(&self) -> (usize, BitWidth) {
        match *self {
            Layer::Conv {
                shape, out_bits, ..
            } => (shape.output_len(), out_bits),
            Layer::Depthwise { shape, .. } => (shape.output_len(), BitWidth::W8),
            Layer::MaxPool { shape, bits } => (shape.output_len(), bits),
            Layer::Linear { shape, bits } => (shape.out_features, bits),
        }
    }

    /// MACs (pooling counts zero).
    pub fn macs(&self) -> u64 {
        match *self {
            Layer::Conv { shape, .. } => shape.macs(),
            Layer::Depthwise { shape, .. } => shape.macs(),
            Layer::MaxPool { .. } => 0,
            Layer::Linear { shape, .. } => shape.macs(),
        }
    }

    /// Short description.
    pub fn describe(&self) -> String {
        match *self {
            Layer::Conv {
                shape,
                bits,
                out_bits,
            } => format!(
                "conv {}x{} {}ch->{}ch {}->{}",
                shape.k_h, shape.k_w, shape.in_c, shape.out_c, bits, out_bits
            ),
            Layer::Depthwise { shape, .. } => {
                format!("depthwise {}x{} {}ch 8-bit", shape.k, shape.k, shape.c)
            }
            Layer::MaxPool { shape, bits } => {
                format!("maxpool {}x{}/s{} {}", shape.k, shape.k, shape.stride, bits)
            }
            Layer::Linear { shape, bits } => {
                format!(
                    "linear {}->{} {}",
                    shape.in_features, shape.out_features, bits
                )
            }
        }
    }
}

/// A network whose layer interfaces have been checked for consistency.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Layer>,
}

/// A broken network description or a failed layer run.
#[derive(Debug)]
pub enum NetworkError {
    /// The network has no layers.
    Empty,
    /// Layer `index`'s input does not match the previous layer's output.
    InterfaceMismatch {
        /// 0-based layer index.
        index: usize,
        /// What the previous layer produces.
        produced: (usize, BitWidth),
        /// What this layer expects.
        expected: (usize, BitWidth),
    },
    /// A layer kernel failed to build.
    Build {
        /// 0-based layer index.
        index: usize,
        /// Underlying error.
        source: BuildError,
    },
    /// The simulator trapped inside a layer.
    Trap {
        /// 0-based layer index.
        index: usize,
        /// The trap.
        source: Trap,
    },
    /// A layer's device output diverged from its golden model.
    Diverged {
        /// 0-based layer index.
        index: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => f.write_str("network has no layers"),
            NetworkError::InterfaceMismatch {
                index,
                produced,
                expected,
            } => write!(
                f,
                "layer {index}: expects {} × {}, previous layer produces {} × {}",
                expected.0, expected.1, produced.0, produced.1
            ),
            NetworkError::Build { index, source } => write!(f, "layer {index}: {source}"),
            NetworkError::Trap { index, source } => write!(f, "layer {index}: {source}"),
            NetworkError::Diverged { index } => {
                write!(
                    f,
                    "layer {index}: device output diverged from the golden model"
                )
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Per-layer outcome of a network run.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// The layer.
    pub layer: Layer,
    /// Kernel cycles.
    pub cycles: u64,
    /// MACs.
    pub macs: u64,
}

/// Outcome of a full network inference.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// One entry per layer, in order.
    pub layers: Vec<LayerRun>,
    /// The final activation tensor.
    pub output: QuantTensor,
}

impl NetworkRun {
    /// Total cycles over all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Inference latency in milliseconds at the 250 MHz operating point.
    pub fn latency_ms(&self) -> f64 {
        self.total_cycles() as f64 / 250e3
    }
}

impl fmt::Display for NetworkRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.layers.iter().enumerate() {
            let rate = if l.macs > 0 {
                format!("{:5.2} MAC/cycle", l.macs as f64 / l.cycles as f64)
            } else {
                "     —       ".to_string()
            };
            writeln!(
                f,
                "layer {:>2}: {:<36} {:>9} cycles  {rate}",
                i + 1,
                l.layer.describe(),
                l.cycles
            )?;
        }
        write!(
            f,
            "total: {} cycles, {} MACs, {:.2} ms @ 250 MHz",
            self.total_cycles(),
            self.total_macs(),
            self.latency_ms()
        )
    }
}

impl Network {
    /// Builds a network, checking that every layer's input interface
    /// matches the previous layer's output.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] or [`NetworkError::InterfaceMismatch`].
    pub fn new(layers: Vec<Layer>) -> Result<Network, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        for i in 1..layers.len() {
            let produced = layers[i - 1].output_spec();
            let expected = layers[i].input_spec();
            if produced != expected {
                return Err(NetworkError::InterfaceMismatch {
                    index: i,
                    produced,
                    expected,
                });
            }
        }
        Ok(Network { layers })
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Runs inference over deterministic synthetic weights and input
    /// (derived from `seed`), verifying every layer against its golden
    /// model.
    ///
    /// # Errors
    ///
    /// Any [`NetworkError`]; divergence from a golden model is an error,
    /// never a silent result.
    pub fn run(&self, seed: u64) -> Result<NetworkRun, NetworkError> {
        let mut rng = TensorRng::new(seed);
        let (in_len, in_bits) = self.layers[0].input_spec();
        let mut activations = rng.activations(in_bits, in_len);
        let mut runs = Vec::with_capacity(self.layers.len());

        for (index, layer) in self.layers.iter().enumerate() {
            let build = |e| NetworkError::Build { index, source: e };
            let trap = |e| NetworkError::Trap { index, source: e };
            let (cycles, output, matches): (u64, Vec<i16>, bool) = match *layer {
                Layer::Conv {
                    shape,
                    bits,
                    out_bits,
                } => {
                    let cfg = ConvKernelConfig::mixed(shape, bits, out_bits);
                    let weights = rng.weights(bits, shape.weight_len());
                    let thresholds = if out_bits.is_sub_byte() {
                        Some(rng.thresholds(out_bits, shape.out_c, -1800, 1800))
                    } else {
                        None
                    };
                    let tb = ConvTestbench::from_parts(cfg, activations, weights, thresholds)
                        .map_err(build)?;
                    let r = tb.run().map_err(trap)?;
                    (r.cycles(), r.output.clone(), r.matches())
                }
                Layer::Depthwise { shape, shift } => {
                    let cfg = DepthwiseKernelConfig { shape, shift };
                    // Depthwise testbenches own their tensors; rebuild a
                    // bench around the incoming activations by seeding a
                    // dedicated generator is not possible, so use the
                    // lower-level pieces directly.
                    let r = run_depthwise_with_input(&cfg, &activations, &mut rng).map_err(
                        |e| match e {
                            DwError::Build(b) => build(b),
                            DwError::Trap(t) => trap(t),
                        },
                    )?;
                    (r.0, r.1, r.2)
                }
                Layer::MaxPool { shape, bits } => {
                    let cfg = PoolKernelConfig {
                        shape,
                        bits,
                        op: PoolOp::Max,
                        simd: true,
                    };
                    let r = run_pool_with_input(&cfg, &activations).map_err(|e| match e {
                        DwError::Build(b) => build(b),
                        DwError::Trap(t) => trap(t),
                    })?;
                    (r.0, r.1, r.2)
                }
                Layer::Linear { shape, bits } => {
                    let quant = match bits {
                        BitWidth::W8 => QuantMode::Shift8 { shift: 8 },
                        _ => QuantMode::HardwareQnt,
                    };
                    let cfg = LinearKernelConfig { shape, bits, quant };
                    let r = run_linear_with_input(&cfg, &activations, &mut rng).map_err(
                        |e| match e {
                            DwError::Build(b) => build(b),
                            DwError::Trap(t) => trap(t),
                        },
                    )?;
                    (r.0, r.1, r.2)
                }
            };
            if !matches {
                return Err(NetworkError::Diverged { index });
            }
            runs.push(LayerRun {
                layer: *layer,
                cycles,
                macs: layer.macs(),
            });
            let (_, out_bits) = layer.output_spec();
            activations = QuantTensor::activations(out_bits, output)
                .expect("verified layer outputs are in range");
        }
        Ok(NetworkRun {
            layers: runs,
            output: activations,
        })
    }
}

enum DwError {
    Build(BuildError),
    Trap(Trap),
}

type LayerOutcome = (u64, Vec<i16>, bool);

fn run_depthwise_with_input(
    cfg: &DepthwiseKernelConfig,
    input: &QuantTensor,
    _rng: &mut TensorRng,
) -> Result<LayerOutcome, DwError> {
    // The testbench generates its own weights from a seed; feed the
    // activations through its staging by rebuilding with identical
    // config but replacing the input via the public run-on-soc path.
    let tb = DepthwiseTestbench::new(*cfg, 1234).map_err(DwError::Build)?;
    let r = tb.run_with_input(input.values()).map_err(DwError::Trap)?;
    Ok((r.cycles(), r.output.clone(), r.matches()))
}

fn run_pool_with_input(
    cfg: &PoolKernelConfig,
    input: &QuantTensor,
) -> Result<LayerOutcome, DwError> {
    let tb = PoolTestbench::new(*cfg, 1234).map_err(DwError::Build)?;
    let r = tb.run_with_input(input.values()).map_err(DwError::Trap)?;
    Ok((r.cycles(), r.output.clone(), r.matches()))
}

fn run_linear_with_input(
    cfg: &LinearKernelConfig,
    input: &QuantTensor,
    _rng: &mut TensorRng,
) -> Result<LayerOutcome, DwError> {
    let tb = LinearTestbench::new(*cfg, 1234).map_err(DwError::Build)?;
    let r = tb.run_with_input(input.values()).map_err(DwError::Trap)?;
    Ok((r.cycles(), r.output.clone(), r.matches()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_checking() {
        assert!(matches!(Network::new(vec![]), Err(NetworkError::Empty)));
        let bad = Network::new(vec![
            Layer::conv(
                ConvShape {
                    in_h: 4,
                    in_w: 4,
                    in_c: 8,
                    out_c: 8,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                BitWidth::W4,
                BitWidth::W4,
            ),
            // expects 16 channels, gets 8
            Layer::maxpool(
                PoolShape {
                    in_h: 4,
                    in_w: 4,
                    c: 16,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W4,
            ),
        ]);
        assert!(matches!(
            bad,
            Err(NetworkError::InterfaceMismatch { index: 1, .. })
        ));
        // Width mismatch is also caught.
        let bad = Network::new(vec![
            Layer::conv(
                ConvShape {
                    in_h: 4,
                    in_w: 4,
                    in_c: 8,
                    out_c: 8,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                BitWidth::W4,
                BitWidth::W4,
            ),
            Layer::maxpool(
                PoolShape {
                    in_h: 4,
                    in_w: 4,
                    c: 8,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W8,
            ),
        ]);
        assert!(matches!(bad, Err(NetworkError::InterfaceMismatch { .. })));
    }

    #[test]
    fn small_network_runs_verified() {
        let net = Network::new(vec![
            Layer::conv(
                ConvShape {
                    in_h: 8,
                    in_w: 8,
                    in_c: 8,
                    out_c: 16,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                BitWidth::W8,
                BitWidth::W4,
            ),
            Layer::maxpool(
                PoolShape {
                    in_h: 8,
                    in_w: 8,
                    c: 16,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W4,
            ),
            Layer::conv(
                ConvShape {
                    in_h: 4,
                    in_w: 4,
                    in_c: 16,
                    out_c: 16,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                BitWidth::W4,
                BitWidth::W4,
            ),
            Layer::linear(
                LinearShape {
                    in_features: 4 * 4 * 16,
                    out_features: 10 * 2,
                },
                BitWidth::W4,
            ),
        ])
        .expect("consistent network");
        let run = net.run(42).expect("verified inference");
        assert_eq!(run.layers.len(), 4);
        assert!(run.total_cycles() > 0);
        assert_eq!(run.output.len(), 20);
        let text = run.to_string();
        assert!(text.contains("maxpool"));
        assert!(text.contains("linear"));
    }

    #[test]
    fn depthwise_separable_network() {
        let net = Network::new(vec![
            Layer::depthwise(DepthwiseShape {
                in_h: 8,
                in_w: 8,
                c: 16,
                k: 3,
                stride: 1,
                pad: 1,
            }),
            Layer::conv(
                ConvShape {
                    in_h: 8,
                    in_w: 8,
                    in_c: 16,
                    out_c: 16,
                    k_h: 1,
                    k_w: 1,
                    stride: 1,
                    pad: 0,
                },
                BitWidth::W8,
                BitWidth::W8,
            ),
        ])
        .expect("consistent network");
        let run = net.run(9).expect("verified inference");
        assert_eq!(run.layers.len(), 2);
        // Depthwise contributes far fewer MACs per cycle.
        let dw_rate = run.layers[0].macs as f64 / run.layers[0].cycles as f64;
        let pw_rate = run.layers[1].macs as f64 / run.layers[1].cycles as f64;
        assert!(pw_rate > dw_rate);
    }

    #[test]
    fn deterministic_across_runs() {
        let net = Network::new(vec![Layer::conv(
            ConvShape {
                in_h: 4,
                in_w: 4,
                in_c: 8,
                out_c: 8,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W4,
            BitWidth::W4,
        )])
        .unwrap();
        let a = net.run(7).unwrap();
        let b = net.run(7).unwrap();
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.output.values(), b.output.values());
    }
}
