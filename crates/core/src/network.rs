//! Whole-network deployment: describe a quantized network as a sequence
//! of layers, compile every layer to a simulator kernel, and run
//! inference end to end on the simulated SoC — each layer verified
//! against its golden model on the way.
//!
//! This is the downstream-user API the kernel library exists for: the
//! `cnn_inference` and `mobilenet_block` examples are hand-rolled
//! versions of what [`Network::run`] automates.
//!
//! # Graceful degradation
//!
//! An always-on inference deployment cannot crash because one kernel
//! invocation misbehaved. [`Network::run`] therefore never propagates a
//! raw [`Trap`]: every layer executes under a watchdog cycle budget,
//! failures (trap, watchdog, or output/golden divergence) trigger a
//! bounded rollback-retry from the layer's pre-fault checkpoint, and if
//! retries are exhausted the layer falls back to its golden software
//! model so inference still completes — with the degradation recorded
//! in the per-layer [`LayerOutcome`]. [`Network::run_with_policy`] can
//! additionally arm seeded transient-fault injection
//! ([`faultsim::FaultPlan`]) to exercise exactly these paths.
//!
//! # Example
//!
//! ```no_run
//! use xpulpnn::network::{Layer, Network};
//! use xpulpnn::qnn::conv::ConvShape;
//! use xpulpnn::qnn::pool::PoolShape;
//! use xpulpnn::BitWidth;
//!
//! # fn main() -> Result<(), xpulpnn::network::NetworkError> {
//! let net = Network::new(vec![
//!     Layer::conv(
//!         ConvShape { in_h: 8, in_w: 8, in_c: 8, out_c: 16, k_h: 3, k_w: 3, stride: 1, pad: 1 },
//!         BitWidth::W8,
//!         BitWidth::W4,
//!     ),
//!     Layer::maxpool(PoolShape { in_h: 8, in_w: 8, c: 16, k: 2, stride: 2 }, BitWidth::W4),
//! ])?;
//! let result = net.run(42)?;
//! println!("{} cycles total", result.total_cycles());
//! # Ok(())
//! # }
//! ```

use faultsim::{run_armed, ArmConfig, FaultDomain, FaultPlan, MemRegion, TargetSpace};
use pulp_kernels::depthwise::{DepthwiseKernelConfig, DepthwiseTestbench};
use pulp_kernels::linear::{LinearKernelConfig, LinearTestbench};
use pulp_kernels::pool::{PoolKernelConfig, PoolOp, PoolTestbench};
use pulp_kernels::runner::BuildError;
use pulp_kernels::{ConvKernelConfig, ConvTestbench, LayerLayout, QuantMode};
use pulp_soc::{RunReport, Soc};
use qnn::conv::ConvShape;
use qnn::depthwise::DepthwiseShape;
use qnn::linear::LinearShape;
use qnn::pool::PoolShape;
use qnn::rng::TensorRng;
use qnn::tensor::QuantTensor;
use qnn::BitWidth;
use riscv_core::Trap;
use std::fmt;

/// One layer of a network description.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Standard convolution (`bits`-wide operands, `out_bits`-wide
    /// outputs; `pv.qnt` / shift+clip on the extended core).
    Conv {
        /// Geometry.
        shape: ConvShape,
        /// Operand width.
        bits: BitWidth,
        /// Output width.
        out_bits: BitWidth,
    },
    /// Depthwise convolution (8-bit only; see
    /// [`pulp_kernels::depthwise`]).
    Depthwise {
        /// Geometry.
        shape: DepthwiseShape,
        /// Re-quantization shift.
        shift: u32,
    },
    /// Max pooling (packed SIMD).
    MaxPool {
        /// Geometry.
        shape: PoolShape,
        /// Activation width.
        bits: BitWidth,
    },
    /// Fully connected layer.
    Linear {
        /// Geometry.
        shape: LinearShape,
        /// Operand (and output) width.
        bits: BitWidth,
    },
}

impl Layer {
    /// Convolution layer shorthand.
    pub fn conv(shape: ConvShape, bits: BitWidth, out_bits: BitWidth) -> Layer {
        Layer::Conv {
            shape,
            bits,
            out_bits,
        }
    }

    /// Depthwise layer shorthand (8-bit, shift 7).
    pub fn depthwise(shape: DepthwiseShape) -> Layer {
        Layer::Depthwise { shape, shift: 7 }
    }

    /// Max-pooling layer shorthand.
    pub fn maxpool(shape: PoolShape, bits: BitWidth) -> Layer {
        Layer::MaxPool { shape, bits }
    }

    /// Linear layer shorthand.
    pub fn linear(shape: LinearShape, bits: BitWidth) -> Layer {
        Layer::Linear { shape, bits }
    }

    /// `(input elements, input width)` this layer consumes.
    pub fn input_spec(&self) -> (usize, BitWidth) {
        match *self {
            Layer::Conv { shape, bits, .. } => (shape.input_len(), bits),
            Layer::Depthwise { shape, .. } => (shape.input_len(), BitWidth::W8),
            Layer::MaxPool { shape, bits } => (shape.input_len(), bits),
            Layer::Linear { shape, bits } => (shape.in_features, bits),
        }
    }

    /// `(output elements, output width)` this layer produces.
    pub fn output_spec(&self) -> (usize, BitWidth) {
        match *self {
            Layer::Conv {
                shape, out_bits, ..
            } => (shape.output_len(), out_bits),
            Layer::Depthwise { shape, .. } => (shape.output_len(), BitWidth::W8),
            Layer::MaxPool { shape, bits } => (shape.output_len(), bits),
            Layer::Linear { shape, bits } => (shape.out_features, bits),
        }
    }

    /// MACs (pooling counts zero).
    pub fn macs(&self) -> u64 {
        match *self {
            Layer::Conv { shape, .. } => shape.macs(),
            Layer::Depthwise { shape, .. } => shape.macs(),
            Layer::MaxPool { .. } => 0,
            Layer::Linear { shape, .. } => shape.macs(),
        }
    }

    /// Short description.
    pub fn describe(&self) -> String {
        match *self {
            Layer::Conv {
                shape,
                bits,
                out_bits,
            } => format!(
                "conv {}x{} {}ch->{}ch {}->{}",
                shape.k_h, shape.k_w, shape.in_c, shape.out_c, bits, out_bits
            ),
            Layer::Depthwise { shape, .. } => {
                format!("depthwise {}x{} {}ch 8-bit", shape.k, shape.k, shape.c)
            }
            Layer::MaxPool { shape, bits } => {
                format!("maxpool {}x{}/s{} {}", shape.k, shape.k, shape.stride, bits)
            }
            Layer::Linear { shape, bits } => {
                format!(
                    "linear {}->{} {}",
                    shape.in_features, shape.out_features, bits
                )
            }
        }
    }
}

/// A network whose layer interfaces have been checked for consistency.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Layer>,
}

/// A broken network description or an unbuildable layer.
///
/// Runtime misbehaviour (traps, watchdog expiry, golden divergence) is
/// *not* an error: [`Network::run`] absorbs it through
/// retry-from-checkpoint and golden fallback, recording the
/// [`LayerOutcome`] instead.
#[derive(Debug)]
pub enum NetworkError {
    /// The network has no layers.
    Empty,
    /// Layer `index`'s input does not match the previous layer's output.
    InterfaceMismatch {
        /// 0-based layer index.
        index: usize,
        /// What the previous layer produces.
        produced: (usize, BitWidth),
        /// What this layer expects.
        expected: (usize, BitWidth),
    },
    /// A layer kernel failed to build (zero-sized shapes, alignment
    /// rules, oversized tensors — all surfaced as typed
    /// [`BuildError`]s, never panics).
    Build {
        /// 0-based layer index.
        index: usize,
        /// Underlying error.
        source: BuildError,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::Empty => f.write_str("network has no layers"),
            NetworkError::InterfaceMismatch {
                index,
                produced,
                expected,
            } => write!(
                f,
                "layer {index}: expects {} × {}, previous layer produces {} × {}",
                expected.0, expected.1, produced.0, produced.1
            ),
            NetworkError::Build { index, source } => write!(f, "layer {index}: {source}"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// How a layer failure was noticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDetection {
    /// The core trapped (bus error, illegal instruction, watchdog, ...).
    Trap(Trap),
    /// The run halted but its output diverged from the golden model.
    Sdc,
}

impl fmt::Display for FaultDetection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultDetection::Trap(t) => write!(f, "trap: {t}"),
            FaultDetection::Sdc => f.write_str("silent data corruption vs golden model"),
        }
    }
}

/// What happened to one layer under the run policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerOutcome {
    /// Clean first-attempt run, output verified against the golden
    /// model, no faults injected.
    Ok,
    /// Faults were injected but the verified output is still correct —
    /// the flips were architecturally masked.
    Masked {
        /// Bit flips applied.
        flips: usize,
    },
    /// A failure was detected and a rollback-retry from the pre-fault
    /// checkpoint produced a verified output.
    Recovered {
        /// How the failure was noticed.
        detection: FaultDetection,
        /// Retries spent (1-based; bounded by
        /// [`RunPolicy::max_retries`]).
        retries: u32,
    },
    /// Retries were exhausted (or disabled); the layer's output is the
    /// golden software model's, computed on the host.
    Degraded {
        /// How the failure was noticed.
        detection: FaultDetection,
    },
}

impl LayerOutcome {
    /// True when the device produced the layer's output (possibly after
    /// retries); false when the golden fallback did.
    pub fn device_output(&self) -> bool {
        !matches!(self, LayerOutcome::Degraded { .. })
    }
}

impl fmt::Display for LayerOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayerOutcome::Ok => f.write_str("ok"),
            LayerOutcome::Masked { flips } => write!(f, "masked ({flips} flips)"),
            LayerOutcome::Recovered { detection, retries } => {
                write!(f, "recovered after {retries} retry(s) [{detection}]")
            }
            LayerOutcome::Degraded { detection } => {
                write!(f, "degraded to golden fallback [{detection}]")
            }
        }
    }
}

/// Seeded fault arming for [`Network::run_with_policy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultArming {
    /// Master seed; layer `i` uses plan seed `seed + i`.
    pub seed: u64,
    /// Transient flips scheduled per layer.
    pub flips_per_layer: usize,
    /// Cycles between rolling pre-fault checkpoints.
    pub checkpoint_interval: u64,
}

impl Default for FaultArming {
    fn default() -> FaultArming {
        FaultArming {
            seed: 1,
            flips_per_layer: 1,
            checkpoint_interval: 2_000,
        }
    }
}

/// Execution policy of a network run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunPolicy {
    /// Rollback retries per layer before degrading to the golden
    /// fallback (default 1).
    pub max_retries: u32,
    /// Per-layer watchdog cycle budget; `None` uses each testbench's
    /// default.
    pub cycle_budget: Option<u64>,
    /// Arm seeded transient-fault injection.
    pub faults: Option<FaultArming>,
}

impl RunPolicy {
    /// The default policy: no injected faults, one rollback retry.
    pub fn resilient() -> RunPolicy {
        RunPolicy {
            max_retries: 1,
            cycle_budget: None,
            faults: None,
        }
    }
}

/// Per-layer outcome of a network run.
#[derive(Debug, Clone)]
pub struct LayerRun {
    /// The layer.
    pub layer: Layer,
    /// Simulated cycles spent on the layer, including failed attempts
    /// and retries (0 when only the host-side fallback ran).
    pub cycles: u64,
    /// MACs.
    pub macs: u64,
    /// What happened under the policy.
    pub outcome: LayerOutcome,
}

/// Outcome of a full network inference.
///
/// Always structurally complete: a degraded layer contributes its
/// golden-model output instead of failing the run.
#[derive(Debug, Clone)]
pub struct NetworkRun {
    /// One entry per layer, in order.
    pub layers: Vec<LayerRun>,
    /// The final activation tensor.
    pub output: QuantTensor,
}

impl NetworkRun {
    /// Total cycles over all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total MACs over all layers.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs).sum()
    }

    /// Layers that fell back to the golden software model.
    pub fn degraded_layers(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| !l.outcome.device_output())
            .count()
    }

    /// True when every layer's output came from the device and verified
    /// against its golden model on the first or a retried attempt.
    pub fn fully_on_device(&self) -> bool {
        self.degraded_layers() == 0
    }

    /// Inference latency in milliseconds at the 250 MHz operating point.
    pub fn latency_ms(&self) -> f64 {
        self.total_cycles() as f64 / 250e3
    }
}

impl fmt::Display for NetworkRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.layers.iter().enumerate() {
            let rate = if l.macs > 0 && l.cycles > 0 {
                format!("{:5.2} MAC/cycle", l.macs as f64 / l.cycles as f64)
            } else {
                "     —       ".to_string()
            };
            let note = match l.outcome {
                LayerOutcome::Ok => String::new(),
                ref o => format!("  [{o}]"),
            };
            writeln!(
                f,
                "layer {:>2}: {:<36} {:>9} cycles  {rate}{note}",
                i + 1,
                l.layer.describe(),
                l.cycles
            )?;
        }
        write!(
            f,
            "total: {} cycles, {} MACs, {:.2} ms @ 250 MHz",
            self.total_cycles(),
            self.total_macs(),
            self.latency_ms()
        )?;
        if self.degraded_layers() > 0 {
            write!(f, " ({} layer(s) degraded)", self.degraded_layers())?;
        }
        Ok(())
    }
}

/// A staged, runnable layer: testbench plus the activations to feed it.
enum Bench {
    Conv(Box<ConvTestbench>),
    Depthwise(Box<DepthwiseTestbench>, Vec<i16>),
    Pool(Box<PoolTestbench>, Vec<i16>),
    Linear(Box<LinearTestbench>, Vec<i16>),
}

impl Bench {
    fn stage(&self) -> Result<Soc, BuildError> {
        match self {
            Bench::Conv(tb) => Ok(tb.stage()),
            Bench::Depthwise(tb, input) => tb.stage_with_input(input),
            Bench::Pool(tb, input) => tb.stage_with_input(input),
            Bench::Linear(tb, input) => tb.stage_with_input(input),
        }
    }

    fn budget(&self) -> u64 {
        match self {
            Bench::Conv(tb) => tb.cycle_budget(),
            Bench::Depthwise(tb, _) => tb.cycle_budget(),
            Bench::Pool(tb, _) => tb.cycle_budget(),
            Bench::Linear(tb, _) => tb.cycle_budget(),
        }
    }

    /// `(cycles, output, matches-golden)` of a finished staged run.
    fn collect(&self, soc: &Soc, report: RunReport) -> (u64, Vec<i16>, bool) {
        match self {
            Bench::Conv(tb) => {
                let r = tb.collect(soc, report);
                (r.cycles(), r.output.clone(), r.matches())
            }
            Bench::Depthwise(tb, input) => {
                let r = tb.collect(soc, report, input);
                (r.cycles(), r.output.clone(), r.matches())
            }
            Bench::Pool(tb, input) => {
                let r = tb.collect(soc, report, input);
                (r.cycles(), r.output.clone(), r.matches())
            }
            Bench::Linear(tb, input) => {
                let r = tb.collect(soc, report, input);
                (r.cycles(), r.output.clone(), r.matches())
            }
        }
    }

    fn golden(&self) -> Vec<i16> {
        match self {
            Bench::Conv(tb) => tb.golden(),
            Bench::Depthwise(tb, input) => tb.golden(input),
            Bench::Pool(tb, input) => tb.golden(input),
            Bench::Linear(tb, input) => tb.golden(input),
        }
    }

    /// The fault target space of this layer: its tensors at the shared
    /// [`LayerLayout`] plus the register file, windowed to the
    /// fault-free runtime.
    fn target_space(&self, layer: &Layer, clean_cycles: u64) -> TargetSpace {
        let layout = LayerLayout::default_for_l2();
        let (in_len, in_bits) = layer.input_spec();
        let (out_len, out_bits) = layer.output_spec();
        let bytes =
            |elems: usize, bits: BitWidth| ((elems * bits.bits() as usize) / 8).max(1) as u32;
        let mut regions = vec![
            MemRegion {
                domain: FaultDomain::DataMemory,
                base: layout.input,
                len: bytes(in_len, in_bits),
            },
            MemRegion {
                domain: FaultDomain::DataMemory,
                base: layout.output,
                len: bytes(out_len, out_bits),
            },
        ];
        if let Layer::Conv { shape, bits, .. } = layer {
            regions.push(MemRegion {
                domain: FaultDomain::DataMemory,
                base: layout.weights,
                len: bytes(shape.weight_len(), *bits),
            });
            if out_bits.is_sub_byte() {
                let levels = (1usize << out_bits.bits()) - 1;
                regions.push(MemRegion {
                    domain: FaultDomain::ThresholdTree,
                    base: layout.thresholds,
                    len: (shape.out_c * levels * 2) as u32,
                });
            }
        }
        TargetSpace {
            window: (1, clean_cycles.max(2)),
            regions,
            registers: true,
        }
    }
}

impl Network {
    /// Builds a network, checking that every layer's input interface
    /// matches the previous layer's output.
    ///
    /// # Errors
    ///
    /// [`NetworkError::Empty`] or [`NetworkError::InterfaceMismatch`].
    pub fn new(layers: Vec<Layer>) -> Result<Network, NetworkError> {
        if layers.is_empty() {
            return Err(NetworkError::Empty);
        }
        for i in 1..layers.len() {
            let produced = layers[i - 1].output_spec();
            let expected = layers[i].input_spec();
            if produced != expected {
                return Err(NetworkError::InterfaceMismatch {
                    index: i,
                    produced,
                    expected,
                });
            }
        }
        Ok(Network { layers })
    }

    /// The layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Runs inference over deterministic synthetic weights and input
    /// (derived from `seed`) under the default resilient policy: every
    /// layer verified against its golden model, one rollback retry,
    /// golden fallback on persistent failure. Never propagates a trap.
    ///
    /// # Errors
    ///
    /// Only description/build problems ([`NetworkError`]); runtime
    /// failures degrade gracefully and are recorded per layer.
    pub fn run(&self, seed: u64) -> Result<NetworkRun, NetworkError> {
        self.run_with_policy(seed, &RunPolicy::resilient())
    }

    /// [`Network::run`] under an explicit [`RunPolicy`] — watchdog
    /// budget, retry bound, and optional seeded fault injection.
    ///
    /// # Errors
    ///
    /// See [`Network::run`].
    pub fn run_with_policy(
        &self,
        seed: u64,
        policy: &RunPolicy,
    ) -> Result<NetworkRun, NetworkError> {
        let mut rng = TensorRng::new(seed);
        let (in_len, in_bits) = self.layers[0].input_spec();
        let mut activations = rng.activations(in_bits, in_len);
        let mut runs = Vec::with_capacity(self.layers.len());

        for (index, layer) in self.layers.iter().enumerate() {
            let bench = build_bench(layer, activations.clone(), &mut rng)
                .map_err(|source| NetworkError::Build { index, source })?;
            let (cycles, output, outcome) = run_layer(&bench, layer, index, policy)?;
            runs.push(LayerRun {
                layer: *layer,
                cycles,
                macs: layer.macs(),
                outcome,
            });
            let (_, out_bits) = layer.output_spec();
            // Outputs came from a golden-verified device run or from the
            // golden model itself; both are in range by construction.
            activations = QuantTensor::activations(out_bits, output)
                .expect("verified layer outputs are in range");
        }
        Ok(NetworkRun {
            layers: runs,
            output: activations,
        })
    }
}

/// Compiles one layer into a staged bench around `activations`.
fn build_bench(
    layer: &Layer,
    activations: QuantTensor,
    rng: &mut TensorRng,
) -> Result<Bench, BuildError> {
    Ok(match *layer {
        Layer::Conv {
            shape,
            bits,
            out_bits,
        } => {
            let cfg = ConvKernelConfig::mixed(shape, bits, out_bits);
            let weights = rng.weights(bits, shape.weight_len());
            let thresholds = if out_bits.is_sub_byte() {
                Some(rng.thresholds(out_bits, shape.out_c, -1800, 1800))
            } else {
                None
            };
            Bench::Conv(Box::new(ConvTestbench::from_parts(
                cfg,
                activations,
                weights,
                thresholds,
            )?))
        }
        Layer::Depthwise { shape, shift } => {
            let cfg = DepthwiseKernelConfig { shape, shift };
            let tb = DepthwiseTestbench::new(cfg, 1234)?;
            Bench::Depthwise(Box::new(tb), activations.values().to_vec())
        }
        Layer::MaxPool { shape, bits } => {
            let cfg = PoolKernelConfig {
                shape,
                bits,
                op: PoolOp::Max,
                simd: true,
            };
            let tb = PoolTestbench::new(cfg, 1234)?;
            Bench::Pool(Box::new(tb), activations.values().to_vec())
        }
        Layer::Linear { shape, bits } => {
            let quant = match bits {
                BitWidth::W8 => QuantMode::Shift8 { shift: 8 },
                _ => QuantMode::HardwareQnt,
            };
            let cfg = LinearKernelConfig { shape, bits, quant };
            let tb = LinearTestbench::new(cfg, 1234)?;
            Bench::Linear(Box::new(tb), activations.values().to_vec())
        }
    })
}

/// Executes one layer under the policy. Never returns a trap: detected
/// failures roll back to the pre-fault checkpoint (bounded by
/// `max_retries`), then degrade to the golden model.
fn run_layer(
    bench: &Bench,
    layer: &Layer,
    index: usize,
    policy: &RunPolicy,
) -> Result<(u64, Vec<i16>, LayerOutcome), NetworkError> {
    let build = |source| NetworkError::Build { index, source };
    let budget = policy.cycle_budget.unwrap_or_else(|| bench.budget());

    let arming = policy.faults;
    let (plan, interval) = match arming {
        None => (FaultPlan::none(), budget),
        Some(fa) => {
            // A clean pre-run bounds the injection window to cycles the
            // kernel actually executes (and doubles as a sanity check
            // that the layer is healthy before faults are armed).
            let mut soc = bench.stage().map_err(build)?;
            let clean_cycles = match soc.run(budget) {
                Ok(r) => r.perf.cycles,
                Err(_) => budget,
            };
            let space = bench.target_space(layer, clean_cycles);
            (
                FaultPlan::generate(
                    fa.seed.wrapping_add(index as u64),
                    &space,
                    fa.flips_per_layer,
                ),
                fa.checkpoint_interval,
            )
        }
    };

    let mut soc = bench.stage().map_err(build)?;
    let armed = run_armed(
        &mut soc,
        &plan,
        &ArmConfig {
            budget,
            checkpoint_interval: interval,
            trace_depth: 64,
        },
    );
    let mut spent = armed.perf.cycles;
    let detection = match armed.exit {
        Ok(exit) => {
            let report = RunReport {
                exit,
                perf: armed.perf,
            };
            let (cycles, output, matches) = bench.collect(&soc, report);
            if matches {
                let outcome = if armed.injections.is_empty() {
                    LayerOutcome::Ok
                } else {
                    LayerOutcome::Masked {
                        flips: armed.injections.len(),
                    }
                };
                return Ok((cycles, output, outcome));
            }
            FaultDetection::Sdc
        }
        Err(trap) => FaultDetection::Trap(trap),
    };

    // Rollback-retry: restore the newest checkpoint taken before the
    // first flip and re-run disarmed. Under the transient fault model
    // this deterministic re-execution completes cleanly.
    for attempt in 1..=policy.max_retries {
        let mut retry = bench.stage().map_err(build)?;
        retry.restore(&armed.pre_fault);
        match retry.run(budget) {
            Ok(report) => {
                spent += report.perf.cycles;
                let (_, output, matches) = bench.collect(&retry, report);
                if matches {
                    return Ok((
                        spent,
                        output,
                        LayerOutcome::Recovered {
                            detection,
                            retries: attempt,
                        },
                    ));
                }
            }
            Err(_) => spent += budget,
        }
    }

    // Retries exhausted (or disabled): golden software fallback keeps
    // the inference alive; the degradation is recorded, not raised.
    Ok((spent, bench.golden(), LayerOutcome::Degraded { detection }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_conv() -> Layer {
        Layer::conv(
            ConvShape {
                in_h: 4,
                in_w: 4,
                in_c: 8,
                out_c: 8,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W4,
            BitWidth::W4,
        )
    }

    #[test]
    fn interface_checking() {
        assert!(matches!(Network::new(vec![]), Err(NetworkError::Empty)));
        let bad = Network::new(vec![
            small_conv(),
            // expects 16 channels, gets 8
            Layer::maxpool(
                PoolShape {
                    in_h: 4,
                    in_w: 4,
                    c: 16,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W4,
            ),
        ]);
        assert!(matches!(
            bad,
            Err(NetworkError::InterfaceMismatch { index: 1, .. })
        ));
        // Width mismatch is also caught.
        let bad = Network::new(vec![
            small_conv(),
            Layer::maxpool(
                PoolShape {
                    in_h: 4,
                    in_w: 4,
                    c: 8,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W8,
            ),
        ]);
        assert!(matches!(bad, Err(NetworkError::InterfaceMismatch { .. })));
    }

    #[test]
    fn zero_sized_shapes_are_build_errors_not_panics() {
        let net = Network::new(vec![Layer::conv(
            ConvShape {
                in_h: 0,
                in_w: 4,
                in_c: 8,
                out_c: 8,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            BitWidth::W4,
            BitWidth::W4,
        )])
        .expect("single-layer network always has consistent interfaces");
        assert!(matches!(
            net.run(1),
            Err(NetworkError::Build { index: 0, .. })
        ));

        let net = Network::new(vec![Layer::maxpool(
            PoolShape {
                in_h: 4,
                in_w: 4,
                c: 8,
                k: 0,
                stride: 2,
            },
            BitWidth::W8,
        )])
        .expect("consistent");
        assert!(matches!(
            net.run(1),
            Err(NetworkError::Build { index: 0, .. })
        ));
    }

    #[test]
    fn small_network_runs_verified() {
        let net = Network::new(vec![
            Layer::conv(
                ConvShape {
                    in_h: 8,
                    in_w: 8,
                    in_c: 8,
                    out_c: 16,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                BitWidth::W8,
                BitWidth::W4,
            ),
            Layer::maxpool(
                PoolShape {
                    in_h: 8,
                    in_w: 8,
                    c: 16,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W4,
            ),
            Layer::conv(
                ConvShape {
                    in_h: 4,
                    in_w: 4,
                    in_c: 16,
                    out_c: 16,
                    k_h: 3,
                    k_w: 3,
                    stride: 1,
                    pad: 1,
                },
                BitWidth::W4,
                BitWidth::W4,
            ),
            Layer::linear(
                LinearShape {
                    in_features: 4 * 4 * 16,
                    out_features: 10 * 2,
                },
                BitWidth::W4,
            ),
        ])
        .expect("consistent network");
        let run = net.run(42).expect("verified inference");
        assert_eq!(run.layers.len(), 4);
        assert!(run.total_cycles() > 0);
        assert_eq!(run.output.len(), 20);
        assert!(run.fully_on_device());
        assert!(run.layers.iter().all(|l| l.outcome == LayerOutcome::Ok));
        let text = run.to_string();
        assert!(text.contains("maxpool"));
        assert!(text.contains("linear"));
        assert!(!text.contains("degraded"));
    }

    #[test]
    fn depthwise_separable_network() {
        let net = Network::new(vec![
            Layer::depthwise(DepthwiseShape {
                in_h: 8,
                in_w: 8,
                c: 16,
                k: 3,
                stride: 1,
                pad: 1,
            }),
            Layer::conv(
                ConvShape {
                    in_h: 8,
                    in_w: 8,
                    in_c: 16,
                    out_c: 16,
                    k_h: 1,
                    k_w: 1,
                    stride: 1,
                    pad: 0,
                },
                BitWidth::W8,
                BitWidth::W8,
            ),
        ])
        .expect("consistent network");
        let run = net.run(9).expect("verified inference");
        assert_eq!(run.layers.len(), 2);
        // Depthwise contributes far fewer MACs per cycle.
        let dw_rate = run.layers[0].macs as f64 / run.layers[0].cycles as f64;
        let pw_rate = run.layers[1].macs as f64 / run.layers[1].cycles as f64;
        assert!(pw_rate > dw_rate);
    }

    #[test]
    fn deterministic_across_runs() {
        let net = Network::new(vec![small_conv()]).unwrap();
        let a = net.run(7).unwrap();
        let b = net.run(7).unwrap();
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(a.output.values(), b.output.values());
    }

    #[test]
    fn watchdog_budget_degrades_gracefully() {
        let net = Network::new(vec![small_conv()]).unwrap();
        // A 50-cycle budget cannot finish the kernel: the watchdog fires,
        // the (equally budgeted) retry fires too, and the layer must
        // degrade to the golden fallback instead of erroring out.
        let policy = RunPolicy {
            max_retries: 1,
            cycle_budget: Some(50),
            faults: None,
        };
        let run = net.run_with_policy(7, &policy).expect("still completes");
        assert_eq!(run.degraded_layers(), 1);
        match run.layers[0].outcome {
            LayerOutcome::Degraded {
                detection: FaultDetection::Trap(Trap::Watchdog { budget: 50, .. }),
            } => {}
            ref o => panic!("expected watchdog degradation, got {o}"),
        }
        // The output equals the clean run's: golden fallback is correct.
        let clean = net.run(7).unwrap();
        assert_eq!(run.output.values(), clean.output.values());
    }

    #[test]
    fn injected_faults_recover_or_mask_and_never_change_the_output() {
        let net = Network::new(vec![
            small_conv(),
            Layer::maxpool(
                PoolShape {
                    in_h: 4,
                    in_w: 4,
                    c: 8,
                    k: 2,
                    stride: 2,
                },
                BitWidth::W4,
            ),
        ])
        .unwrap();
        let clean = net.run(11).expect("clean run");
        // Sweep a few fault seeds; whatever mix of masked / recovered /
        // degraded outcomes shows up, the final tensor must always equal
        // the clean one, and nothing may escape as an error.
        let mut non_ok = 0;
        for fault_seed in 0..6 {
            let policy = RunPolicy {
                max_retries: 2,
                cycle_budget: None,
                faults: Some(FaultArming {
                    seed: fault_seed,
                    flips_per_layer: 1,
                    checkpoint_interval: 500,
                }),
            };
            let run = net
                .run_with_policy(11, &policy)
                .expect("faulted run still completes");
            assert_eq!(run.output.values(), clean.output.values());
            non_ok += run
                .layers
                .iter()
                .filter(|l| l.outcome != LayerOutcome::Ok)
                .count();
        }
        assert!(
            non_ok > 0,
            "six seeded single-flip runs must perturb at least one layer"
        );
    }

    #[test]
    fn fault_runs_are_deterministic() {
        let net = Network::new(vec![small_conv()]).unwrap();
        let policy = RunPolicy {
            max_retries: 1,
            cycle_budget: None,
            faults: Some(FaultArming::default()),
        };
        let a = net.run_with_policy(3, &policy).unwrap();
        let b = net.run_with_policy(3, &policy).unwrap();
        assert_eq!(a.output.values(), b.output.values());
        assert_eq!(a.total_cycles(), b.total_cycles());
        assert_eq!(
            a.layers.iter().map(|l| l.outcome).collect::<Vec<_>>(),
            b.layers.iter().map(|l| l.outcome).collect::<Vec<_>>()
        );
    }
}
