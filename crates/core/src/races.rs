//! Static/dynamic race-detector cross-validation.
//!
//! The SPMD race verifier ([`xcheck::analyze_spmd`]) and the cluster
//! merge's conflict detector ([`pulp_cluster::ClusterStats`]) are two
//! independent implementations of the same data-race-freedom judgment:
//! one proves it over abstract per-hart footprints before anything
//! runs, the other observes it on concrete byte ranges while the
//! kernels execute. This module asserts they agree in both directions:
//!
//! * **Clean side** — every shipped cluster convolution variant, on
//!   every supported cluster size, is proved race-free statically *and*
//!   runs with zero dynamic conflict bytes (and still matches the
//!   golden model).
//! * **Racy side** — hand-broken kernels (a tampered dispatch table
//!   whose output rows overlap, a reduction missing its barrier, a DMA
//!   band scheduled over live compute addresses) are caught by *both*
//!   detectors, and the static finding's address range overlaps the
//!   dynamic conflict record's range.
//!
//! Driven by `xpulpnn conformance --races` and the corresponding
//! `ci.sh` stage.

use std::fmt;

use pulp_asm::Asm;
use pulp_cluster::{ClusterConvTestbench, ClusterSim, ConflictKind, ConflictRec};
use pulp_isa::{Instr, Reg};
use pulp_kernels::{ConvKernelConfig, KernelIsa};
use pulp_soc::cluster::{ClusterMem, DmaTransfer, EU_BARRIER, TCDM_BASE};
use pulp_soc::{CODE_BASE, L2_BASE};
use qnn::conv::ConvShape;
use qnn::BitWidth;
use riscv_core::IsaConfig;
use xcheck::{analyze_spmd, DmaBand, RaceFinding, Region, Rule, SpmdConfig};

use crate::lint::spmd_config;

/// Harness failure (not a detector disagreement — those are recorded
/// in the report and fail [`RacesReport::passed`]).
#[derive(Debug)]
pub enum RacesError {
    /// A kernel or plan could not be built.
    Build(String),
    /// A cluster run trapped.
    Run(String),
}

impl fmt::Display for RacesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RacesError::Build(e) => write!(f, "build failed: {e}"),
            RacesError::Run(e) => write!(f, "cluster run failed: {e}"),
        }
    }
}

/// One clean-matrix cell: a shipped variant on one cluster size,
/// judged by both detectors.
#[derive(Debug, Clone)]
pub struct CleanOutcome {
    /// Kernel variant name.
    pub name: String,
    /// Cluster size.
    pub n_harts: usize,
    /// The static verifier proved the kernel race-free.
    pub static_clean: bool,
    /// The run finished with zero dynamic conflict bytes.
    pub dynamic_clean: bool,
    /// The run's output matched the golden model.
    pub matches: bool,
}

impl CleanOutcome {
    /// Both detectors agree the kernel is race-free and the output is
    /// correct.
    pub fn ok(&self) -> bool {
        self.static_clean && self.dynamic_clean && self.matches
    }
}

/// One injected-race case: both detectors must fire, on overlapping
/// address ranges.
#[derive(Debug, Clone)]
pub struct InjectedOutcome {
    /// Case name.
    pub name: String,
    /// The DRF rule the static verifier is expected to fire.
    pub rule: Rule,
    /// Static finding range `[lo, hi)`, when the expected rule fired.
    pub static_range: Option<(u32, u32)>,
    /// Dynamic conflict-record range `[lo, hi)`, when the matching
    /// conflict kind was observed.
    pub dynamic_range: Option<(u32, u32)>,
}

impl InjectedOutcome {
    /// Both detectors fired and their reported ranges overlap.
    pub fn agree(&self) -> bool {
        match (self.static_range, self.dynamic_range) {
            (Some((sl, sh)), Some((dl, dh))) => sl < dh && dl < sh,
            _ => false,
        }
    }
}

/// Result of the full cross-validation run.
#[derive(Debug)]
pub struct RacesReport {
    /// Clean-matrix outcomes (variant × cluster size).
    pub clean: Vec<CleanOutcome>,
    /// Injected-race outcomes.
    pub injected: Vec<InjectedOutcome>,
}

impl RacesReport {
    /// True when every clean cell is race-free on both sides and every
    /// injected race was caught by both, at overlapping addresses.
    pub fn passed(&self) -> bool {
        self.clean.iter().all(CleanOutcome::ok) && self.injected.iter().all(InjectedOutcome::agree)
    }

    /// Human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for c in &self.clean {
            out.push_str(&format!(
                "{:<28} n={} static={} dynamic={} golden={}\n",
                c.name,
                c.n_harts,
                if c.static_clean { "clean" } else { "RACY" },
                if c.dynamic_clean { "clean" } else { "RACY" },
                if c.matches { "ok" } else { "MISMATCH" },
            ));
        }
        for i in &self.injected {
            let fmt_range = |r: Option<(u32, u32)>| match r {
                Some((lo, hi)) => format!("[{lo:#010x},{hi:#010x})"),
                None => "MISSED".to_string(),
            };
            out.push_str(&format!(
                "inject {:<24} {} static={} dynamic={} {}\n",
                i.name,
                i.rule.id(),
                fmt_range(i.static_range),
                fmt_range(i.dynamic_range),
                if i.agree() { "agree" } else { "DISAGREE" },
            ));
        }
        let clean_ok = self.clean.iter().filter(|c| c.ok()).count();
        let inj_ok = self.injected.iter().filter(|i| i.agree()).count();
        out.push_str(&format!(
            "races crossval: {clean_ok}/{} clean configs agree, {inj_ok}/{} injected races caught by both detectors\n",
            self.clean.len(),
            self.injected.len(),
        ));
        out
    }
}

/// The small fault-campaign layer: padded, several channel blocks,
/// word-aligned at every width — big enough to exercise the full
/// dispatch/DMA schedule, small enough to run the whole matrix fast.
fn small_variants() -> Vec<ConvKernelConfig> {
    let mk = |bits: BitWidth, isa, hw| {
        let mut cfg = ConvKernelConfig::paper(bits, isa, hw);
        cfg.shape = ConvShape {
            in_h: 4,
            in_w: 4,
            in_c: (32 / bits.bits() as usize) * 2,
            out_c: 8,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        cfg
    };
    vec![
        mk(BitWidth::W8, KernelIsa::XpulpV2, false),
        mk(BitWidth::W8, KernelIsa::XpulpNN, false),
        mk(BitWidth::W4, KernelIsa::XpulpV2, false),
        mk(BitWidth::W4, KernelIsa::XpulpNN, false),
        mk(BitWidth::W4, KernelIsa::XpulpNN, true),
        mk(BitWidth::W2, KernelIsa::XpulpV2, false),
        mk(BitWidth::W2, KernelIsa::XpulpNN, false),
        mk(BitWidth::W2, KernelIsa::XpulpNN, true),
    ]
}

/// First static finding of `rule` as an address range.
fn finding_range(findings: &[RaceFinding], rule: Rule) -> Option<(u32, u32)> {
    findings
        .iter()
        .find(|f| f.rule == rule)
        .map(|f| (f.lo, f.hi))
}

/// First dynamic conflict record of `kind` as an address range.
fn conflict_range(log: &[ConflictRec], kind: ConflictKind) -> Option<(u32, u32)> {
    log.iter().find(|r| r.kind == kind).map(|r| (r.lo, r.hi))
}

fn csrr_mhartid(a: &mut Asm, rd: Reg) {
    a.i(Instr::Csr {
        op: 1,
        rd,
        rs1: Reg::Zero,
        csr: pulp_isa::csr::MHARTID,
    });
}

/// A 2-hart config over the TCDM for the hand-built injected kernels.
fn tcdm_cfg() -> SpmdConfig {
    let mut c = SpmdConfig::new(2, EU_BARRIER);
    c.regions = vec![Region::new("tcdm", TCDM_BASE, 0x1_0000)];
    c
}

/// Runs a hand-built program on a 2-hart cluster, one region at a
/// time, returning the finished sim.
fn run_raw(
    prog: &pulp_asm::Program,
    replay_reads: bool,
    overlap: Option<&DmaTransfer>,
    stage: impl FnOnce(&mut ClusterMem),
) -> Result<ClusterSim, RacesError> {
    let mut mem = ClusterMem::new();
    mem.load(prog);
    stage(&mut mem);
    let mut sim = ClusterSim::new(IsaConfig::xpulpnn(), 2, mem);
    sim.set_read_replay(replay_reads);
    sim.start(prog.base);
    while !sim
        .run_region(100_000, overlap)
        .map_err(|e| RacesError::Run(e.to_string()))?
    {}
    Ok(sim)
}

/// Injected race 1 — DRF-01 / write-write: tamper the dispatch table
/// so hart 1's first output row aliases hart 0's tile-0 output.
fn inject_tampered_out_ptr(seed: u64) -> Result<InjectedOutcome, RacesError> {
    let cfg = small_variants()[4]; // W4 / XpulpNN / pv.qnt
    let mut tb =
        ClusterConvTestbench::new(cfg, 2, seed).map_err(|e| RacesError::Build(e.to_string()))?;
    let tiles = tb.plan.tcdm.tiles;
    tb.plan.records[tiles + 1].out_ptr = tb.plan.records[0].out_ptr;

    let report = analyze_spmd(&tb.program, &spmd_config(&tb.plan));
    let mut sim = tb.stage();
    tb.drive(&mut sim)
        .map_err(|e| RacesError::Run(e.to_string()))?;
    Ok(InjectedOutcome {
        name: "tampered-out-ptr".to_string(),
        rule: Rule::DrfWriteOverlap,
        static_range: finding_range(&report.findings, Rule::DrfWriteOverlap),
        dynamic_range: conflict_range(&sim.conflict_log, ConflictKind::WriteWrite),
    })
}

/// Injected race 2 — DRF-02 / read-write: each hart publishes a word
/// then reads its neighbour's slot with no barrier in between.
fn inject_missing_barrier() -> Result<InjectedOutcome, RacesError> {
    let mut a = Asm::new(CODE_BASE);
    csrr_mhartid(&mut a, Reg::T0);
    a.slli(Reg::T1, Reg::T0, 2);
    a.li(Reg::T2, TCDM_BASE as i32);
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.sw(Reg::T0, 0, Reg::T1); // mine[id] = id — no barrier!
    a.addi(Reg::T4, Reg::T0, 1);
    a.li(Reg::T5, 2);
    a.bne(Reg::T4, Reg::T5, "no_wrap");
    a.li(Reg::T4, 0);
    a.label("no_wrap");
    a.slli(Reg::T4, Reg::T4, 2);
    a.add(Reg::T4, Reg::T4, Reg::T2);
    a.lw(Reg::A0, 0, Reg::T4); // neighbour's slot, same region
    a.ecall();
    let prog = a.assemble().map_err(|e| RacesError::Build(e.to_string()))?;

    let report = analyze_spmd(&prog, &tcdm_cfg());
    let sim = run_raw(&prog, true, None, |_| {})?;
    Ok(InjectedOutcome {
        name: "missing-barrier-read".to_string(),
        rule: Rule::DrfReadOfPeerWrite,
        static_range: finding_range(&report.findings, Rule::DrfReadOfPeerWrite),
        dynamic_range: conflict_range(&sim.conflict_log, ConflictKind::ReadWrite),
    })
}

/// Injected race 3 — DRF-03 / DMA overlap: an input band lands on the
/// words the harts are writing in the same region.
fn inject_dma_band_overlap() -> Result<InjectedOutcome, RacesError> {
    const SCRATCH: u32 = TCDM_BASE + 0x400;
    let mut a = Asm::new(CODE_BASE);
    csrr_mhartid(&mut a, Reg::T0);
    a.slli(Reg::T1, Reg::T0, 2);
    a.li(Reg::T2, SCRATCH as i32);
    a.add(Reg::T1, Reg::T1, Reg::T2);
    a.sw(Reg::T0, 0, Reg::T1);
    a.li(Reg::A0, 0);
    a.ecall();
    let prog = a.assemble().map_err(|e| RacesError::Build(e.to_string()))?;

    let mut cfg = tcdm_cfg();
    cfg.dma.push(DmaBand {
        name: "band 1".to_string(),
        region: 0,
        base: SCRATCH,
        len: 64,
    });
    let report = analyze_spmd(&prog, &cfg);

    let band = DmaTransfer {
        src: L2_BASE + 0x4000,
        dst: SCRATCH,
        bytes: 64,
    };
    let sim = run_raw(&prog, false, Some(&band), |mem| {
        mem.write_bytes(band.src, &[0xa5; 64]);
    })?;
    Ok(InjectedOutcome {
        name: "dma-band-overlap".to_string(),
        rule: Rule::DrfDmaOverlap,
        static_range: finding_range(&report.findings, Rule::DrfDmaOverlap),
        dynamic_range: conflict_range(&sim.conflict_log, ConflictKind::DmaOverlap),
    })
}

/// Runs the full cross-validation: the clean variant × cluster-size
/// matrix, then the injected races.
///
/// # Errors
///
/// [`RacesError`] only for harness failures (a kernel that fails to
/// build or a run that traps). Detector disagreements are *results*,
/// reported via [`RacesReport::passed`].
pub fn run_races(seed: u64) -> Result<RacesReport, RacesError> {
    let mut clean = Vec::new();
    for cfg in small_variants() {
        for n in [1, 2, 4, 8] {
            let tb = ClusterConvTestbench::new(cfg, n, seed)
                .map_err(|e| RacesError::Build(e.to_string()))?;
            let report = analyze_spmd(&tb.program, &spmd_config(&tb.plan));
            let r = tb.run(2).map_err(|e| RacesError::Run(e.to_string()))?;
            clean.push(CleanOutcome {
                name: format!("cluster-conv/{}", cfg.name()),
                n_harts: n,
                static_clean: report.race_clean(),
                dynamic_clean: r.stats.conflict_bytes() == 0,
                matches: r.matches(),
            });
        }
    }
    let injected = vec![
        inject_tampered_out_ptr(seed)?,
        inject_missing_barrier()?,
        inject_dma_band_overlap()?,
    ];
    Ok(RacesReport { clean, injected })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossval_agrees_on_clean_and_injected_kernels() {
        let report = run_races(42).unwrap();
        assert_eq!(report.clean.len(), 8 * 4);
        assert_eq!(report.injected.len(), 3);
        assert!(report.passed(), "{}", report.render());
        assert!(report.render().contains("32/32 clean configs agree"));
        assert!(report.render().contains("3/3 injected races"));
    }

    #[test]
    fn injected_ranges_overlap_exactly_where_expected() {
        let report = run_races(42).unwrap();
        for i in &report.injected {
            let (sl, sh) = i
                .static_range
                .unwrap_or_else(|| panic!("{}: static missed", i.name));
            let (dl, dh) = i
                .dynamic_range
                .unwrap_or_else(|| panic!("{}: dynamic missed", i.name));
            assert!(sl < dh && dl < sh, "{}: ranges disjoint", i.name);
        }
    }
}
