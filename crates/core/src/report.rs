//! Minimal fixed-width table formatting for experiment reports.

use std::fmt;

/// A simple text table: headers plus rows, padded per column.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, " ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:<width$}", width = w[i])?;
                if i + 1 < cells.len() {
                    write!(f, " |")?;
                }
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 3 * w.len() + 1;
        writeln!(f, " {}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_padded_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x", "1"]);
        t.row(&["long-name", "23"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: every data line has the separator in the same
        // position.
        let pos1 = lines[2].find('|').unwrap();
        let pos2 = lines[3].find('|').unwrap();
        assert_eq!(pos1, pos2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
