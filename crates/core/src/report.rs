//! Minimal fixed-width table formatting for experiment reports, plus the
//! JSON hotspot profile emitted by `cli profile`.
//!
//! JSON is emitted by hand: the offline build carries no serde, and the
//! profile is a small, flat structure.

use riscv_core::{Hotspot, PerfCounters};
use std::fmt;

/// A kernel's attributed cycle profile: full performance counters
/// (including the per-class cycle ledger) plus the hot-PC histogram from
/// a traced run.
#[derive(Debug, Clone)]
pub struct HotspotProfile {
    /// Name of the profiled kernel configuration.
    pub kernel: String,
    /// Per-run performance counters; `perf.ledger` carries the per-class
    /// cycle attribution.
    pub perf: PerfCounters,
    /// Hottest static instructions, descending by attributed cycles.
    pub hotspots: Vec<Hotspot>,
}

impl HotspotProfile {
    /// Serializes the profile as a self-contained JSON object.
    ///
    /// The `ledger` object maps each cycle-class name to its cycle
    /// count and includes the sum under `"total"`; by the core's retire
    /// invariant that total equals `"cycles"`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!(
            "  \"kernel\": \"{}\",\n",
            escape_json(&self.kernel)
        ));
        s.push_str(&format!("  \"cycles\": {},\n", self.perf.cycles));
        s.push_str(&format!("  \"instret\": {},\n", self.perf.instret));
        s.push_str(&format!("  \"macs\": {},\n", self.perf.total_macs()));
        s.push_str("  \"ledger\": {\n");
        for (class, cycles) in self.perf.ledger.entries() {
            s.push_str(&format!("    \"{}\": {},\n", class.name(), cycles));
        }
        s.push_str(&format!("    \"total\": {}\n", self.perf.ledger.total()));
        s.push_str("  },\n");
        s.push_str("  \"hotspots\": [\n");
        for (i, h) in self.hotspots.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"pc\": \"{:#010x}\", \"disasm\": \"{}\", \"cycles\": {}, \"count\": {}}}{}\n",
                h.pc,
                escape_json(&h.instr.to_string()),
                h.cycles,
                h.count,
                if i + 1 < self.hotspots.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}");
        s
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// A simple text table: headers plus rows, padded per column.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header count.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, " ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {c:<width$}", width = w[i])?;
                if i + 1 < cells.len() {
                    write!(f, " |")?;
                }
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 3 * w.len() + 1;
        writeln!(f, " {}", "-".repeat(total))?;
        for r in &self.rows {
            line(f, r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_padded_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["x", "1"]);
        t.row(&["long-name", "23"]);
        let s = t.to_string();
        assert!(s.contains("name"));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Columns align: every data line has the separator in the same
        // position.
        let pos1 = lines[2].find('|').unwrap();
        let pos2 = lines[3].find('|').unwrap();
        assert_eq!(pos1, pos2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn profile_json_is_well_formed() {
        use pulp_isa::instr::{AluOp, Instr};
        use pulp_isa::Reg;
        use riscv_core::CycleClass;

        let mut perf = PerfCounters::new();
        perf.cycles = 12;
        perf.instret = 10;
        perf.ledger.charge(CycleClass::Alu, 9);
        perf.ledger.charge(CycleClass::Load, 3);
        let profile = HotspotProfile {
            kernel: "conv-test\"quoted\"".to_string(),
            perf,
            hotspots: vec![Hotspot {
                pc: 0x1c00_8000,
                cycles: 7,
                count: 7,
                instr: Instr::AluImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    imm: 1,
                },
            }],
        };
        let json = profile.to_json();
        assert!(json.contains("\"cycles\": 12"));
        assert!(json.contains("\"alu\": 9"));
        assert!(json.contains("\"total\": 12"));
        assert!(json.contains("\"pc\": \"0x1c008000\""));
        assert!(json.contains("conv-test\\\"quoted\\\""));
        // Balanced braces/brackets and no trailing commas before closers.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  }"));
        assert!(!json.contains(",\n  ]"));
    }
}
