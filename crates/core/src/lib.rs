#![warn(missing_docs)]

//! # xpulpnn — a full-system reproduction of *XpulpNN: Accelerating
//! Quantized Neural Networks on RISC-V Processors Through ISA
//! Extensions* (DATE 2020)
//!
//! This crate is the façade over the whole reproduction stack and the
//! home of the experiment harness that regenerates every table and
//! figure of the paper's evaluation:
//!
//! | layer | crate |
//! |---|---|
//! | ISA definitions, encoder/decoder, SIMD semantics | [`pulp_isa`] |
//! | assembler / program builder | [`pulp_asm`] |
//! | cycle-approximate extended-RI5CY core model | [`riscv_core`] |
//! | PULPissimo SoC model (L2, console) | [`pulp_soc`] |
//! | golden QNN math (conv, pooling, quantizers) | [`qnn`] |
//! | generated PULP-NN-style kernels | [`pulp_kernels`] |
//! | multi-core cluster (banked TCDM, DMA, parallel kernels) | [`pulp_cluster`] |
//! | Cortex-M4/M7 CMSIS-NN cost models | [`cortexm_model`] |
//! | Table III area/power models | [`pulp_power`] |
//! | differential ISA conformance fuzzing | [`conformance`] |
//! | transient-fault injection, AVF campaigns, replay | [`faultsim`] |
//! | static program verification (CFG, dataflow, abstract interp) | [`xcheck`] |
//!
//! # Quickstart
//!
//! ```no_run
//! use xpulpnn::measure::measure_paper_layer;
//! use xpulpnn::{BitWidth, KernelIsa};
//!
//! # fn main() -> Result<(), xpulpnn::Error> {
//! // Run the paper's 16×16×32 → 64×3×3×32 conv layer, 4-bit, on the
//! // extended core with the hardware quantizer.
//! let m = measure_paper_layer(BitWidth::W4, KernelIsa::XpulpNN, true, 42)?;
//! println!("{} cycles, {:.2} MAC/cycle", m.cycles, m.macs_per_cycle());
//! # Ok(())
//! # }
//! ```
//!
//! See [`experiments`] for the per-figure entry points
//! ([`experiments::figure6`], [`experiments::figure8`], …),
//! [`experiments::run_all`] for the full paper-vs-measured report, and
//! [`network`] for whole-network deployment (describe a quantized
//! network as layers, run verified inference end to end on the SoC).

pub mod bench;
pub mod experiments;
pub mod lint;
pub mod measure;
pub mod network;
pub mod races;
pub mod report;

pub use measure::{measure_paper_layer, profile_paper_layer, Error, LayerMeasurement};
pub use pulp_kernels::{ConvKernelConfig, ConvTestbench, KernelIsa, QuantMode};
pub use qnn::BitWidth;
pub use report::HotspotProfile;

// Re-export the stack for downstream users of the façade.
pub use conformance;
pub use cortexm_model;
pub use faultsim;
pub use pulp_asm;
pub use pulp_cluster;
pub use pulp_isa;
pub use pulp_kernels;
pub use pulp_power;
pub use pulp_soc;
pub use qnn;
pub use riscv_core;
pub use serve;
pub use xcheck;
