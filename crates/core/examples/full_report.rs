fn main() {
    let r = xpulpnn::experiments::run_all(42).expect("report");
    println!("{r}");
}
