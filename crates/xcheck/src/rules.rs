//! XpulpNN-specific legality rules: RI5CY hardware-loop constraints,
//! SIMD format consistency, and instruction-level validity.
//!
//! These are structural checks over the stream and the CFG's loop
//! regions — no fixpoint needed. The address-dependent rules (regions,
//! alignment, threshold trees) live in [`crate::absint`].

use pulp_isa::Instr;

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Rule};
use crate::LintConfig;

/// Runs the structural rule checks.
pub fn check(stream: &[(u32, u32, Instr)], cfg: &Cfg, config: &LintConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // FMT-02: every instruction must satisfy the ISA's field rules.
    for &(pc, _, instr) in stream {
        if let Err(e) = instr.validate() {
            diags.push(Diagnostic {
                rule: Rule::FmtInvalidInstr,
                pc,
                instr: instr.to_string(),
                message: format!("illegal field combination: {e:?}"),
            });
        }
    }

    // FMT-01: one quantization output format per program.
    if config.check_qnt_fmt {
        let mut first: Option<(u32, pulp_isa::simd::SimdFmt)> = None;
        for &(pc, _, instr) in stream {
            if let Instr::PvQnt { fmt, .. } = instr {
                match first {
                    None => first = Some((pc, fmt)),
                    Some((fpc, ffmt)) if ffmt != fmt => {
                        diags.push(Diagnostic {
                            rule: Rule::FmtQntMix,
                            pc,
                            instr: instr.to_string(),
                            message: format!(
                                "quantizes to {fmt:?} but the program also quantizes \
                                 to {ffmt:?} at {fpc:#010x}"
                            ),
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }

    // VEC-01/VEC-02: vector configuration discipline. Kernels set
    // `vl`/`sew` with `vsetvli` before every vector strip, so the
    // address-ordered scan tracks the nearest preceding configuration.
    let mut last_sew: Option<pulp_isa::vec::VecSew> = None;
    for &(pc, _, instr) in stream {
        if let Instr::VSetvli { sew, .. } = instr {
            last_sew = Some(sew);
        } else if instr.requires_rvv() {
            match last_sew {
                None => diags.push(Diagnostic {
                    rule: Rule::VecNoVsetvli,
                    pc,
                    instr: instr.to_string(),
                    message: "vector instruction with no preceding vsetvli: vl and sew \
                              are still the reset state (vl = 0)"
                        .to_string(),
                }),
                Some(sew) => {
                    if matches!(instr, Instr::VQnt { .. }) && sew != pulp_isa::vec::VecSew::E16 {
                        diags.push(Diagnostic {
                            rule: Rule::VecQntSew,
                            pc,
                            instr: instr.to_string(),
                            message: format!(
                                "vqnt requires SEW = e16 but the nearest preceding \
                                 vsetvli selects {sew}; this traps at runtime"
                            ),
                        });
                    }
                }
            }
        }
    }

    // CFG-01: control transfers must land on instruction boundaries.
    for &(pc, target) in &cfg.bad_targets {
        let instr = instr_at(stream, pc);
        diags.push(Diagnostic {
            rule: Rule::CfgBadTarget,
            pc,
            instr,
            message: format!("target {target:#010x} is not an instruction of this program"),
        });
    }

    // HWL-06: manual loop setups that never became complete.
    for &(pc, l) in &cfg.incomplete_loops {
        diags.push(Diagnostic {
            rule: Rule::HwlIncompleteSetup,
            pc,
            instr: instr_at(stream, pc),
            message: format!(
                "hardware loop {} setup is incomplete: start, end and count \
                 must all be programmed",
                l.index()
            ),
        });
    }

    check_loop_regions(stream, cfg, &mut diags);

    diags.sort_by_key(|a| (a.pc, a.rule));
    diags.dedup();
    diags
}

fn instr_at(stream: &[(u32, u32, Instr)], pc: u32) -> String {
    stream
        .iter()
        .find(|&&(p, _, _)| p == pc)
        .map_or_else(|| "<none>".to_string(), |&(_, _, i)| i.to_string())
}

fn check_loop_regions(stream: &[(u32, u32, Instr)], cfg: &Cfg, diags: &mut Vec<Diagnostic>) {
    // HWL-04 first: degenerate regions are excluded from the boundary
    // rules so one defect does not cascade.
    let mut sound = Vec::new();
    for lp in &cfg.loops {
        let boundaries_ok = lp.end > lp.start
            && cfg.idx_of(lp.start).is_some()
            && stream
                .iter()
                .any(|&(pc, len, _)| pc + len == lp.end && pc >= lp.start);
        if boundaries_ok {
            sound.push(*lp);
        } else {
            diags.push(Diagnostic {
                rule: Rule::HwlBadBody,
                pc: lp.setup_pc,
                instr: instr_at(stream, lp.setup_pc),
                message: format!(
                    "loop body [{:#010x}, {:#010x}) is empty or not delimited by \
                     instruction boundaries",
                    lp.start, lp.end
                ),
            });
        }
    }

    // HWL-03: regions must nest properly and L0 must be innermost.
    for (i, a) in sound.iter().enumerate() {
        for b in sound.iter().skip(i + 1) {
            let disjoint = a.end <= b.start || b.end <= a.start;
            let a_in_b = a.start >= b.start && a.end <= b.end;
            let b_in_a = b.start >= a.start && b.end <= a.end;
            let (outer, inner) = if a_in_b { (b, a) } else { (a, b) };
            if disjoint {
                continue;
            }
            if !(a_in_b || b_in_a) {
                diags.push(Diagnostic {
                    rule: Rule::HwlBadNesting,
                    pc: inner.setup_pc,
                    instr: instr_at(stream, inner.setup_pc),
                    message: format!(
                        "loop bodies [{:#010x}, {:#010x}) and [{:#010x}, {:#010x}) \
                         overlap without nesting",
                        a.start, a.end, b.start, b.end
                    ),
                });
            } else if inner.l.index() > outer.l.index()
                || (inner.l == outer.l && inner.start != outer.start)
            {
                diags.push(Diagnostic {
                    rule: Rule::HwlBadNesting,
                    pc: inner.setup_pc,
                    instr: instr_at(stream, inner.setup_pc),
                    message: format!(
                        "loop L{} nests inside loop L{}: L0 must be the innermost \
                         hardware loop",
                        outer.l.index(),
                        inner.l.index()
                    ),
                });
            }
        }
    }

    // HWL-01/02: control flow across a body boundary; HWL-05: a
    // control-flow or loop-setup instruction as the last body
    // instruction (the core's end-of-body check is bypassed).
    for lp in &sound {
        for (i, &(pc, len, instr)) in stream.iter().enumerate() {
            let inside = lp.contains(pc);
            if pc + len == lp.end && pc >= lp.start {
                let is_setup = matches!(
                    instr,
                    Instr::LpStarti { .. }
                        | Instr::LpEndi { .. }
                        | Instr::LpCount { .. }
                        | Instr::LpCounti { .. }
                        | Instr::LpSetup { .. }
                        | Instr::LpSetupi { .. }
                );
                if instr.is_control_flow() || is_setup {
                    diags.push(Diagnostic {
                        rule: Rule::HwlLastInsnControlFlow,
                        pc,
                        instr: instr.to_string(),
                        message: format!(
                            "last instruction of loop body [{:#010x}, {:#010x}) is a \
                             control-flow or loop-setup instruction; the end-of-body \
                             check would be bypassed",
                            lp.start, lp.end
                        ),
                    });
                }
            }
            if !instr.is_control_flow() {
                continue;
            }
            // `ret`/unresolved indirect jumps inside a body always
            // leave it; resolved targets are checked individually.
            let targets = cfg.explicit_targets(stream, i);
            if inside && targets.is_empty() && matches!(instr, Instr::Jalr { .. }) {
                diags.push(Diagnostic {
                    rule: Rule::HwlBranchOut,
                    pc,
                    instr: instr.to_string(),
                    message: format!(
                        "indirect jump inside loop body [{:#010x}, {:#010x}) leaves it",
                        lp.start, lp.end
                    ),
                });
                continue;
            }
            for t in targets {
                let t_inside = lp.contains(t);
                if inside && !t_inside {
                    diags.push(Diagnostic {
                        rule: Rule::HwlBranchOut,
                        pc,
                        instr: instr.to_string(),
                        message: format!(
                            "branches out of loop body [{:#010x}, {:#010x}) to {t:#010x}",
                            lp.start, lp.end
                        ),
                    });
                } else if !inside && t_inside {
                    diags.push(Diagnostic {
                        rule: Rule::HwlBranchIn,
                        pc,
                        instr: instr.to_string(),
                        message: format!(
                            "branches into loop body [{:#010x}, {:#010x}) at {t:#010x} \
                             without executing its setup",
                            lp.start, lp.end
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_isa::instr::{AluOp, BranchCond, LoopIdx};
    use pulp_isa::Reg;

    fn stream(instrs: &[Instr]) -> Vec<(u32, u32, Instr)> {
        instrs
            .iter()
            .enumerate()
            .map(|(i, &ins)| (0x1000 + 4 * i as u32, 4, ins))
            .collect()
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        }
    }

    fn run(instrs: &[Instr]) -> Vec<Diagnostic> {
        let s = stream(instrs);
        let cfg = Cfg::build(&s, 0x1000);
        check(&s, &cfg, &LintConfig::default())
    }

    #[test]
    fn branch_into_loop_body_is_flagged() {
        let d = run(&[
            Instr::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: 12,
            }, // 0x1000 -> 0x100c (inside body)
            Instr::LpSetupi {
                l: LoopIdx::L0,
                imm: 4,
                offset: 12,
            }, // body [0x1008, 0x1010)
            addi(Reg::A0, Reg::A0, 1), // 0x1008
            addi(Reg::A1, Reg::A1, 1), // 0x100c
            Instr::Ecall,
        ]);
        assert!(d.iter().any(|d| d.rule == Rule::HwlBranchIn));
    }

    #[test]
    fn branch_out_of_loop_body_is_flagged() {
        let d = run(&[
            Instr::LpSetupi {
                l: LoopIdx::L0,
                imm: 4,
                offset: 12,
            }, // body [0x1004, 0x100c)
            Instr::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: 12,
            }, // 0x1004 -> 0x1010, outside
            addi(Reg::A0, Reg::A0, 1), // 0x1008
            Instr::Ecall,              // 0x100c
            Instr::Ecall,              // 0x1010
        ]);
        assert!(d.iter().any(|d| d.rule == Rule::HwlBranchOut));
    }

    #[test]
    fn l1_inside_l0_is_flagged() {
        let d = run(&[
            Instr::LpSetupi {
                l: LoopIdx::L0,
                imm: 4,
                offset: 16,
            }, // body [0x1004, 0x1014)
            Instr::LpSetupi {
                l: LoopIdx::L1,
                imm: 4,
                offset: 8,
            }, // body [0x1008, 0x100c) inside L0's
            addi(Reg::A0, Reg::A0, 1),
            addi(Reg::A1, Reg::A1, 1),
            Instr::Ecall,
        ]);
        assert!(d.iter().any(|d| d.rule == Rule::HwlBadNesting));
    }

    #[test]
    fn proper_l0_inside_l1_is_clean() {
        let d = run(&[
            Instr::LpSetupi {
                l: LoopIdx::L1,
                imm: 4,
                offset: 16,
            }, // body [0x1004, 0x1014)
            Instr::LpSetupi {
                l: LoopIdx::L0,
                imm: 4,
                offset: 8,
            }, // body [0x1008, 0x100c)
            addi(Reg::A0, Reg::A0, 1),
            addi(Reg::A1, Reg::A1, 1),
            Instr::Ecall,
        ]);
        assert!(!d.iter().any(|d| d.rule == Rule::HwlBadNesting), "{d:?}");
    }

    #[test]
    fn incomplete_manual_setup_is_flagged() {
        let d = run(&[
            Instr::LpEndi {
                l: LoopIdx::L0,
                offset: 8,
            },
            addi(Reg::A0, Reg::A0, 1),
            Instr::Ecall,
        ]);
        assert!(d.iter().any(|d| d.rule == Rule::HwlIncompleteSetup));
    }

    #[test]
    fn control_flow_as_last_body_instruction_is_flagged() {
        let d = run(&[
            Instr::LpSetupi {
                l: LoopIdx::L0,
                imm: 4,
                offset: 12,
            }, // body [0x1004, 0x1010)
            addi(Reg::A0, Reg::A0, 1),
            Instr::Jal {
                rd: Reg::Zero,
                offset: -4,
            }, // jump as last body instruction
            Instr::Ecall,
        ]);
        assert!(d.iter().any(|d| d.rule == Rule::HwlLastInsnControlFlow));
    }
}
