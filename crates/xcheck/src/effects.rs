//! Per-instruction effect metadata: which registers an instruction
//! reads and writes, and how it touches memory.
//!
//! This is the single source of truth shared by the dataflow passes,
//! the abstract interpreter and the conformance dynamic oracles — the
//! same `uses`/`defs` sets drive both the static reaching-definitions
//! check and the shadow read-before-write tracking at runtime.

use pulp_isa::instr::SimdOperand;
use pulp_isa::simd::SimdFmt;
use pulp_isa::{Instr, Reg};

/// A small bitmask set of architectural registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RegSet(pub u32);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// Every architectural register (including `x0`).
    pub const ALL: RegSet = RegSet(u32::MAX);

    /// Inserts `r` (inserting `x0` is a no-op: it never carries state).
    pub fn insert(&mut self, r: Reg) {
        if r != Reg::Zero {
            self.0 |= 1 << r.index();
        }
    }

    /// Membership test. `x0` is always considered present (it always
    /// reads as a defined zero).
    pub fn contains(self, r: Reg) -> bool {
        r == Reg::Zero || self.0 & (1 << r.index()) != 0
    }

    /// Set union.
    #[must_use]
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    #[must_use]
    pub fn inter(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference.
    #[must_use]
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// True when no register is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        pulp_isa::reg::ALL_REGS
            .into_iter()
            .filter(move |r| self.0 & (1 << r.index()) != 0)
    }

    /// Builds a set from a slice of registers.
    pub fn of(regs: &[Reg]) -> RegSet {
        let mut s = RegSet::EMPTY;
        for &r in regs {
            s.insert(r);
        }
        s
    }
}

/// How an instruction addresses memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Base address register.
    pub base: Reg,
    /// Optional register offset (`p.lw rd, rs2(rs1)` forms).
    pub index: Option<Reg>,
    /// Immediate offset added to the base.
    pub offset: i32,
    /// Bytes touched starting at the effective address.
    pub size: u32,
    /// Required address alignment in bytes.
    pub align: u32,
    /// True for stores, false for loads (and for the `pv.qnt` tree
    /// walk, which only reads).
    pub is_store: bool,
}

/// The complete register/memory effect of one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effects {
    /// Registers read.
    pub uses: RegSet,
    /// Registers written (never contains `x0`).
    pub defs: RegSet,
    /// Memory behaviour, if the instruction touches memory.
    pub mem: Option<MemRef>,
    /// True when the only observable effect is the register write:
    /// such a definition with no live reader is a dead store.
    pub pure_def: bool,
}

fn op2_reg(op2: &SimdOperand) -> Option<Reg> {
    match op2 {
        SimdOperand::Vector(r) | SimdOperand::Scalar(r) => Some(*r),
        SimdOperand::Imm(_) => None,
    }
}

/// Span of the two threshold trees `pv.qnt` walks: the low-halfword
/// tree at the base plus the paired high-halfword tree one stride
/// further.
pub fn qnt_span(fmt: SimdFmt) -> u32 {
    2 * qnt_stride(fmt)
}

/// Byte stride between the per-halfword threshold trees.
pub fn qnt_stride(fmt: SimdFmt) -> u32 {
    match fmt {
        SimdFmt::Crumb => 8,
        // Nibble stride; other formats are rejected by `validate()`.
        _ => 32,
    }
}

/// Number of real thresholds in one `pv.qnt` tree.
pub fn qnt_thresholds(fmt: SimdFmt) -> u32 {
    match fmt {
        SimdFmt::Crumb => 3,
        _ => 15,
    }
}

/// Computes the register/memory effects of `instr`.
pub fn effects(instr: &Instr) -> Effects {
    let mut e = Effects::default();
    let mut uses = |rs: &[Reg]| {
        for &r in rs {
            e.uses.insert(r);
        }
    };
    match *instr {
        Instr::Lui { rd, .. } | Instr::Auipc { rd, .. } => {
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::Jal { rd, .. } => e.defs.insert(rd),
        Instr::Jalr { rd, rs1, .. } => {
            uses(&[rs1]);
            e.defs.insert(rd);
        }
        Instr::Branch { rs1, rs2, .. } => uses(&[rs1, rs2]),
        Instr::Load {
            kind,
            rd,
            rs1,
            offset,
        } => {
            uses(&[rs1]);
            e.defs.insert(rd);
            e.mem = Some(MemRef {
                base: rs1,
                index: None,
                offset,
                size: kind.size(),
                align: kind.size(),
                is_store: false,
            });
        }
        Instr::Store {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            uses(&[rs1, rs2]);
            e.mem = Some(MemRef {
                base: rs1,
                index: None,
                offset,
                size: kind.size(),
                align: kind.size(),
                is_store: true,
            });
        }
        Instr::Alu { rd, rs1, rs2, .. } | Instr::MulDiv { rd, rs1, rs2, .. } => {
            uses(&[rs1, rs2]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::AluImm { rd, rs1, .. } => {
            uses(&[rs1]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::Fence | Instr::Ebreak | Instr::Nop => {}
        // The SoC halts on `ecall` with the exit code in `a0`.
        Instr::Ecall => uses(&[Reg::A0]),
        Instr::Csr { rd, rs1, .. } => {
            uses(&[rs1]);
            e.defs.insert(rd);
        }
        Instr::PulpAlu { rd, rs1, rs2, .. } => {
            uses(&[rs1, rs2]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::PClip { rd, rs1, .. }
        | Instr::PClipU { rd, rs1, .. }
        | Instr::PBit { rd, rs1, .. }
        | Instr::PExtract { rd, rs1, .. }
        | Instr::PExtractU { rd, rs1, .. } => {
            uses(&[rs1]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        // Read-modify-write scalar ops: the old `rd` is a source.
        Instr::PMac { rd, rs1, rs2 } | Instr::PMsu { rd, rs1, rs2 } => {
            uses(&[rd, rs1, rs2]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::PInsert { rd, rs1, .. } => {
            uses(&[rd, rs1]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::LoadPostInc {
            kind,
            rd,
            rs1,
            offset,
        } => {
            uses(&[rs1]);
            e.defs.insert(rd);
            e.defs.insert(rs1);
            e.mem = Some(MemRef {
                base: rs1,
                index: None,
                offset: 0,
                size: kind.size(),
                align: kind.size(),
                is_store: false,
            });
            let _ = offset;
        }
        Instr::LoadPostIncReg { kind, rd, rs1, rs2 } => {
            uses(&[rs1, rs2]);
            e.defs.insert(rd);
            e.defs.insert(rs1);
            e.mem = Some(MemRef {
                base: rs1,
                index: None,
                offset: 0,
                size: kind.size(),
                align: kind.size(),
                is_store: false,
            });
        }
        Instr::LoadRegOff { kind, rd, rs1, rs2 } => {
            uses(&[rs1, rs2]);
            e.defs.insert(rd);
            e.mem = Some(MemRef {
                base: rs1,
                index: Some(rs2),
                offset: 0,
                size: kind.size(),
                align: kind.size(),
                is_store: false,
            });
        }
        Instr::StorePostInc {
            kind,
            rs1,
            rs2,
            offset,
        } => {
            uses(&[rs1, rs2]);
            e.defs.insert(rs1);
            e.mem = Some(MemRef {
                base: rs1,
                index: None,
                offset: 0,
                size: kind.size(),
                align: kind.size(),
                is_store: true,
            });
            let _ = offset;
        }
        Instr::StorePostIncReg {
            kind,
            rs1,
            rs2,
            rs3,
        } => {
            uses(&[rs1, rs2, rs3]);
            e.defs.insert(rs1);
            e.mem = Some(MemRef {
                base: rs1,
                index: None,
                offset: 0,
                size: kind.size(),
                align: kind.size(),
                is_store: true,
            });
        }
        Instr::LpStarti { .. }
        | Instr::LpEndi { .. }
        | Instr::LpCounti { .. }
        | Instr::LpSetupi { .. } => {}
        Instr::LpCount { rs1, .. } | Instr::LpSetup { rs1, .. } => uses(&[rs1]),
        Instr::PvAlu { rd, rs1, op2, .. } => {
            uses(&[rs1]);
            if let Some(r) = op2_reg(&op2) {
                uses(&[r]);
            }
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::PvAbs { rd, rs1, .. } | Instr::PvExtract { rd, rs1, .. } => {
            uses(&[rs1]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::PvInsert { rd, rs1, .. } => {
            uses(&[rd, rs1]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        // The old `rd` is the second shuffle source (CV32E40P semantics).
        Instr::PvShuffle2 { rd, rs1, rs2, .. } => {
            uses(&[rd, rs1, rs2]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::PvDot { rd, rs1, op2, .. } => {
            uses(&[rs1]);
            if let Some(r) = op2_reg(&op2) {
                uses(&[r]);
            }
            e.defs.insert(rd);
            e.pure_def = true;
        }
        // Sum-of-dot-products accumulates into `rd`.
        Instr::PvSdot { rd, rs1, op2, .. } => {
            uses(&[rd, rs1]);
            if let Some(r) = op2_reg(&op2) {
                uses(&[r]);
            }
            e.defs.insert(rd);
            e.pure_def = true;
        }
        Instr::PvQnt { fmt, rd, rs1, rs2 } => {
            uses(&[rs1, rs2]);
            e.defs.insert(rd);
            e.mem = Some(MemRef {
                base: rs2,
                index: None,
                offset: 0,
                size: qnt_span(fmt),
                align: 2,
                is_store: false,
            });
        }
        // Vector (Xrvv) instructions. Vector registers live outside the
        // scalar `RegSet`; only the scalar operands participate in the
        // dataflow passes. The spans of vector memory accesses depend on
        // the configured VLEN, so they carry no static `MemRef` — the
        // abstract interpreter checks them directly (VEC-03).
        Instr::VSetvli { rd, rs1, .. } => {
            uses(&[rs1]);
            e.defs.insert(rd);
            // Not a pure def: `vl`/`sew` change even if `rd` is dead.
        }
        Instr::VLoad { rs1, .. } | Instr::VStore { rs1, .. } => uses(&[rs1]),
        Instr::VLoadStrided { rs1, rs2, .. } | Instr::VStoreStrided { rs1, rs2, .. } => {
            uses(&[rs1, rs2]);
        }
        // Scalar accumulator: `rd += dot(vs1, vs2)`.
        Instr::VDot { rd, .. } => {
            uses(&[rd]);
            e.defs.insert(rd);
            e.pure_def = true;
        }
        // Walks `vl` threshold trees starting at `rs1`; tree spans are
        // VL-dependent, so like the loads above it has no static MemRef.
        Instr::VQnt { rs1, .. } => uses(&[rs1]),
        Instr::VSlide1 { rs1, .. } => uses(&[rs1]),
        Instr::VMvXS { rd, .. } => {
            e.defs.insert(rd);
            e.pure_def = true;
        }
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_isa::instr::LoadKind;

    #[test]
    fn regset_basics() {
        let mut s = RegSet::EMPTY;
        s.insert(Reg::A0);
        s.insert(Reg::Zero);
        assert!(s.contains(Reg::A0));
        assert!(s.contains(Reg::Zero), "x0 is always defined");
        assert!(!s.contains(Reg::A1));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![Reg::A0]);
    }

    #[test]
    fn post_increment_defines_base() {
        let e = effects(&Instr::LoadPostInc {
            kind: LoadKind::Word,
            rd: Reg::T0,
            rs1: Reg::A1,
            offset: 4,
        });
        assert!(e.defs.contains(Reg::T0));
        assert!(e.defs.contains(Reg::A1));
        assert!(e.uses.contains(Reg::A1));
        assert!(!e.pure_def);
        assert_eq!(e.mem.unwrap().size, 4);
    }

    #[test]
    fn sdot_reads_its_accumulator() {
        let e = effects(&Instr::PvSdot {
            fmt: SimdFmt::Nibble,
            sign: pulp_isa::simd::DotSign::UnsignedSigned,
            rd: Reg::S4,
            rs1: Reg::T0,
            op2: SimdOperand::Vector(Reg::T1),
        });
        assert!(e.uses.contains(Reg::S4));
        assert!(e.defs.contains(Reg::S4));
    }

    #[test]
    fn writes_to_x0_are_not_defs() {
        let e = effects(&Instr::Jal {
            rd: Reg::Zero,
            offset: 8,
        });
        assert!(e.defs.is_empty());
    }
}
