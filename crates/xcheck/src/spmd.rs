//! SPMD race/disjointness verification for cluster kernels (DRF-01..05).
//!
//! Cluster kernels are SPMD: every hart runs the same program and
//! diverges only on `csrr mhartid`, with work assignment driven by
//! per-hart dispatch records in TCDM. The cluster simulator executes
//! each barrier region on private memory clones and merges per-hart
//! write logs in hart-id order — deterministic, but a real data race
//! would be silently resolved by merge order instead of detected. This
//! module makes write-disjointness a *proved theorem* over the emitted
//! program, the way `absint` proves memory safety.
//!
//! ## The symbolic-`mhartid` domain
//!
//! The analysis runs the interval × congruence abstract interpreter
//! ([`crate::absint::AbsVal`]) once **per hart**, pinning `mhartid` to
//! the constant `h` for each `h ∈ [0, ncores)`. This is the
//! hart-indexed instantiation of the affine `base + h·stride` domain:
//! rather than carrying a symbolic `h` through the arithmetic (which
//! cannot represent the ±1 remainder chunks the work splitter
//! produces), each instance evaluates the affine expressions at its
//! own `h` and the cross-hart rules compare the resulting footprints
//! pairwise. Dispatch-table loads resolve against the staged parameter
//! image declared in [`SpmdConfig::memory`] (plus a per-hart store
//! overlay, so cursor bumps persist across regions); tensor-data loads
//! return ⊤ — kernel control flow never depends on them, which the
//! analysis enforces by failing with a typed [`Unproven`] record on
//! any branch or address it cannot resolve to a constant.
//!
//! ## Rules
//!
//! Execution is partitioned into **barrier regions** (a store to the
//! event-unit barrier address ends a region). Per region, per hart,
//! the analysis collects byte-granular read/write footprints and
//! checks:
//!
//! - **DRF-01** — two harts write overlapping bytes in one region.
//! - **DRF-02** — a hart reads bytes another hart writes in the same
//!   region (the read must be barrier-separated to see the merge).
//! - **DRF-03** — a DMA band declared to overlap a compute region
//!   touches bytes some hart reads or writes in that region.
//! - **DRF-04** — barrier-protocol violations: harts reach different
//!   barrier sequences, a barrier store inside a hardware-loop body,
//!   or a hart that never halts.
//! - **DRF-05** — an access inside the dispatch slab leaves the
//!   per-hart cursor word / parameter-record rows declared for it.
//!
//! Verdicts are cross-validated dynamically: `pulp-cluster`'s merge
//! carries a conflict detector, and the conformance `races` stage
//! asserts both sides agree on shipped kernels (clean/clean) and on
//! hand-broken racy kernels (same address range reported).

use std::collections::HashMap;

use pulp_isa::csr::MHARTID;
use pulp_isa::instr::{AluOp, LoadKind, LoopIdx, MulDivOp};
use pulp_isa::{Instr, Reg};

use crate::absint::AbsVal;
use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Rule};
use crate::effects::effects;
use crate::Region;

/// A DMA transfer band scheduled to overlap one compute region: while
/// the harts execute barrier region `region`, the DMA engine writes
/// `[base, base + len)`.
#[derive(Debug, Clone)]
pub struct DmaBand {
    /// Human-readable band name (`"band 2"`, ...).
    pub name: String,
    /// Index of the barrier region the transfer overlaps.
    pub region: usize,
    /// First byte the DMA writes.
    pub base: u32,
    /// Bytes written.
    pub len: u32,
}

/// A shared slab with declared per-hart ownership: any access that
/// lands inside `[base, base + len)` must stay within one of the
/// accessing hart's `allowed` ranges. Used for the dispatch table
/// (per-hart cursor words + parameter-record rows).
#[derive(Debug, Clone)]
pub struct DispatchSlab {
    /// Human-readable slab name (`"dispatch"`).
    pub name: String,
    /// First byte of the slab.
    pub base: u32,
    /// Slab length in bytes.
    pub len: u32,
    /// `allowed[h]` = the `(base, len)` ranges hart `h` may touch
    /// inside the slab.
    pub allowed: Vec<Vec<(u32, u32)>>,
}

/// What to verify and what to assume about the SPMD execution
/// environment.
#[derive(Debug, Clone)]
pub struct SpmdConfig {
    /// Number of harts executing the program (`mhartid ∈ [0, ncores)`).
    pub ncores: usize,
    /// Address of the event-unit barrier: a store here ends the
    /// current barrier region.
    pub barrier_addr: u32,
    /// Console address, if stores there should be ignored (not part
    /// of any footprint).
    pub console_addr: Option<u32>,
    /// Named address regions used to label findings.
    pub regions: Vec<Region>,
    /// Known initial memory (`(base, bytes)` chunks): the staged
    /// dispatch image (cursors, parameter records, descriptors).
    /// Loads outside these chunks return ⊤.
    pub memory: Vec<(u32, Vec<u8>)>,
    /// DMA bands overlapping compute regions (DRF-03).
    pub dma: Vec<DmaBand>,
    /// Shared slabs with per-hart ownership (DRF-05).
    pub slabs: Vec<DispatchSlab>,
    /// Per-hart step budget; exceeding it yields a typed
    /// [`Unproven`] record instead of a verdict.
    pub max_steps: u64,
}

impl SpmdConfig {
    /// A config with no knowledge beyond the hart count and barrier
    /// address.
    pub fn new(ncores: usize, barrier_addr: u32) -> SpmdConfig {
        SpmdConfig {
            ncores,
            barrier_addr,
            console_addr: None,
            regions: Vec::new(),
            memory: Vec::new(),
            dma: Vec::new(),
            slabs: Vec::new(),
            max_steps: 50_000_000,
        }
    }
}

/// A byte-granular footprint: sorted, disjoint `[start, end)` ranges,
/// each remembering the PC of the first access that contributed to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Footprint {
    ranges: Vec<(u32, u32, u32)>, // (start, end, first pc)
}

impl Footprint {
    /// Records an access of `size` bytes at `addr` issued at `pc`.
    /// Overlapping and byte-adjacent ranges coalesce; a merged range
    /// keeps the PC of its lowest-address contributor.
    pub fn insert(&mut self, addr: u32, size: u32, pc: u32) {
        if size == 0 {
            return;
        }
        let end = addr.saturating_add(size);
        let i = self.ranges.partition_point(|&(s, _, _)| s <= addr);
        let first = if i > 0 && self.ranges[i - 1].1 >= addr {
            i - 1
        } else {
            i
        };
        let (mut lo, mut hi, mut kept_pc) = (addr, end, pc);
        let mut j = first;
        while j < self.ranges.len() && self.ranges[j].0 <= hi {
            if self.ranges[j].0 < lo {
                lo = self.ranges[j].0;
                kept_pc = self.ranges[j].2;
            }
            hi = hi.max(self.ranges[j].1);
            j += 1;
        }
        if first == j {
            self.ranges.insert(first, (lo, hi, kept_pc));
        } else {
            self.ranges[first] = (lo, hi, kept_pc);
            self.ranges.drain(first + 1..j);
        }
    }

    /// The sorted, disjoint `[start, end)` ranges.
    pub fn ranges(&self) -> &[(u32, u32, u32)] {
        &self.ranges
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.ranges.iter().map(|&(s, e, _)| u64::from(e - s)).sum()
    }

    /// True when no access was recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Overlapping sub-ranges between `self` and `other`, each with
    /// the contributing PCs `(lo, hi, pc_self, pc_other)`.
    pub fn intersect(&self, other: &Footprint) -> Vec<(u32, u32, u32, u32)> {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.ranges.len() && j < other.ranges.len() {
            let (a0, a1, pa) = self.ranges[i];
            let (b0, b1, pb) = other.ranges[j];
            let lo = a0.max(b0);
            let hi = a1.min(b1);
            if lo < hi {
                out.push((lo, hi, pa, pb));
            }
            if a1 <= b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        out
    }

    /// Overlap with a single `[base, base + len)` range.
    fn intersect_range(&self, base: u32, len: u32) -> Vec<(u32, u32, u32)> {
        let end = u64::from(base) + u64::from(len);
        let end = u32::try_from(end.min(u64::from(u32::MAX))).expect("clamped");
        self.ranges
            .iter()
            .filter_map(|&(s, e, pc)| {
                let lo = s.max(base);
                let hi = e.min(end);
                (lo < hi).then_some((lo, hi, pc))
            })
            .collect()
    }

    /// Portions of `self` inside `[base, base+len)` not covered by any
    /// of `allowed` (each `(base, len)`).
    fn escapes(&self, base: u32, len: u32, allowed: &[(u32, u32)]) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for (mut lo, hi, pc) in self.intersect_range(base, len) {
            // Walk the allowed ranges in address order, emitting gaps.
            let mut spans: Vec<(u32, u32)> = allowed
                .iter()
                .map(|&(b, l)| (b, b.saturating_add(l)))
                .collect();
            spans.sort_unstable();
            for (s, e) in spans {
                if lo >= hi {
                    break;
                }
                if s > lo {
                    out.push((lo, s.min(hi), pc));
                }
                lo = lo.max(e);
            }
            if lo < hi {
                out.push((lo, hi, pc));
            }
        }
        out
    }
}

/// Read/write footprints of one hart in one barrier region.
#[derive(Debug, Clone, Default)]
pub struct HartRegion {
    /// Bytes read.
    pub reads: Footprint,
    /// Bytes written.
    pub writes: Footprint,
}

/// A structured race finding: the machine-checkable core of a DRF
/// diagnostic, used by the static-vs-dynamic crossval to match
/// address ranges.
#[derive(Debug, Clone)]
pub struct RaceFinding {
    /// Which rule fired.
    pub rule: Rule,
    /// Barrier region index.
    pub region: usize,
    /// First involved hart.
    pub hart_a: usize,
    /// Second involved hart (equal to `hart_a` for single-hart
    /// findings such as DRF-03/05).
    pub hart_b: usize,
    /// First overlapping byte.
    pub lo: u32,
    /// One past the last overlapping byte.
    pub hi: u32,
}

impl RaceFinding {
    /// True when `addr` falls inside the finding's byte range.
    pub fn contains(&self, addr: u32) -> bool {
        (self.lo..self.hi).contains(&addr)
    }
}

/// A typed "could not prove" record: the analysis aborted a hart
/// because a branch, address or loop count did not resolve to a
/// constant (or the step budget ran out). A program with unproven
/// records is *not* race-clean — the verifier refuses to guess.
#[derive(Debug, Clone)]
pub struct Unproven {
    /// The hart whose analysis aborted.
    pub hart: usize,
    /// PC of the unresolvable instruction.
    pub pc: u32,
    /// Disassembly of that instruction.
    pub instr: String,
    /// Why the analysis could not continue.
    pub reason: String,
}

/// Everything one SPMD analysis run produced.
#[derive(Debug)]
pub struct SpmdReport {
    /// DRF findings rendered as diagnostics (stable rule IDs).
    pub diagnostics: Vec<Diagnostic>,
    /// The structured findings behind the diagnostics.
    pub findings: Vec<RaceFinding>,
    /// Typed can't-prove records (non-empty ⇒ not race-clean).
    pub unproven: Vec<Unproven>,
    /// Harts analyzed.
    pub harts: usize,
    /// Barrier regions compared (max over harts).
    pub regions_run: usize,
    /// Abstract steps executed across all harts.
    pub steps: u64,
    /// Total bytes written (union per hart region, summed).
    pub write_bytes: u64,
    /// Total bytes read (union per hart region, summed).
    pub read_bytes: u64,
}

impl SpmdReport {
    /// True when the program is *proved* race-free: no DRF finding
    /// and nothing left unproven.
    pub fn race_clean(&self) -> bool {
        self.diagnostics.is_empty() && self.unproven.is_empty()
    }

    /// Renders the report the way `xpulpnn lint --races` prints it.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        for u in &self.unproven {
            out.push_str(&format!(
                "unproven @{:#010x} `{}`: hart {}: {}\n",
                u.pc, u.instr, u.hart, u.reason
            ));
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line machine-greppable summary.
    pub fn summary(&self) -> String {
        format!(
            "spmd: {} diagnostics, {} unproven; {} harts, {} barrier regions, {} steps; \
             footprints {} bytes written, {} bytes read",
            self.diagnostics.len(),
            self.unproven.len(),
            self.harts,
            self.regions_run,
            self.steps,
            self.write_bytes,
            self.read_bytes,
        )
    }
}

// ---------------------------------------------------------------------------
// The per-hart abstract executor.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct HwLoop {
    start: u32,
    end: u32,
    count: u32,
}

/// Per-hart execution result.
struct HartRun {
    regions: Vec<HartRegion>,
    /// PCs of the barrier stores, in execution order.
    barriers: Vec<u32>,
    halted: bool,
    steps: u64,
    unproven: Option<Unproven>,
    /// PCs of barrier stores that executed inside a hardware-loop
    /// body (DRF-04 structural violation).
    barrier_in_loop: Vec<u32>,
}

struct Exec<'a> {
    stream: &'a [(u32, u32, Instr)],
    index: &'a HashMap<u32, usize>,
    cfg: &'a Cfg,
    config: &'a SpmdConfig,
    entry: u32,
    hart: usize,
    regs: [AbsVal; 32],
    hwloops: [HwLoop; 2],
    /// Bytes this hart has stored: `Some(b)` known, `None` unknown.
    overlay: HashMap<u32, Option<u8>>,
}

impl Exec<'_> {
    fn get(&self, r: Reg) -> AbsVal {
        if r == Reg::Zero {
            AbsVal::constant(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn set(&mut self, r: Reg, v: AbsVal) {
        if r != Reg::Zero {
            self.regs[r.index()] = v;
        }
    }

    fn known_byte(&self, addr: u32) -> Option<u8> {
        if let Some(&b) = self.overlay.get(&addr) {
            return b;
        }
        for (base, bytes) in &self.config.memory {
            if addr >= *base {
                if let Some(&b) = bytes.get((addr - base) as usize) {
                    return Some(b);
                }
            }
        }
        None
    }

    /// Loads `size` known bytes at `addr`, little-endian; `None` when
    /// any byte is unknown (⊤ data).
    fn load(&self, addr: u32, size: u32) -> Option<u32> {
        let mut v = 0u32;
        for i in 0..size {
            v |= u32::from(self.known_byte(addr.wrapping_add(i))?) << (8 * i);
        }
        Some(v)
    }

    fn store(&mut self, addr: u32, size: u32, value: Option<u32>) {
        for i in 0..size {
            let b = value.map(|v| (v >> (8 * i)) as u8);
            self.overlay.insert(addr.wrapping_add(i), b);
        }
    }

    /// Mirrors `riscv-core`'s end-of-body check: loop 0 is checked
    /// first; a loop fires when its count is live and the retired
    /// instruction is the last of the body.
    fn hwloop_next_pc(&mut self, retired_pc: u32, len: u32) -> Option<u32> {
        for i in 0..2 {
            let lp = &mut self.hwloops[i];
            if lp.count > 0 && retired_pc.wrapping_add(len) == lp.end {
                if lp.count > 1 {
                    lp.count -= 1;
                    return Some(lp.start);
                }
                lp.count = 0;
            }
        }
        None
    }

    fn disasm(&self, pc: u32) -> String {
        match self.index.get(&pc) {
            Some(&i) => self.stream[i].2.to_string(),
            None => "-".to_string(),
        }
    }

    fn run(&mut self) -> HartRun {
        let mut run = HartRun {
            regions: vec![HartRegion::default()],
            barriers: Vec::new(),
            halted: false,
            steps: 0,
            unproven: None,
            barrier_in_loop: Vec::new(),
        };
        let mut pc = self.entry;
        macro_rules! give_up {
            ($pc:expr, $($why:tt)*) => {{
                run.unproven = Some(Unproven {
                    hart: self.hart,
                    pc: $pc,
                    instr: self.disasm($pc),
                    reason: format!($($why)*),
                });
                return run;
            }};
        }
        loop {
            if run.steps >= self.config.max_steps {
                give_up!(pc, "step budget of {} exhausted", self.config.max_steps);
            }
            let Some(&i) = self.index.get(&pc) else {
                give_up!(pc, "control flow left the program");
            };
            let (_, len, instr) = self.stream[i];
            run.steps += 1;
            let mut next = pc.wrapping_add(len);
            let mut jumped = false;
            match instr {
                Instr::Lui { rd, imm } => self.set(rd, AbsVal::constant(imm)),
                Instr::Auipc { rd, imm } => {
                    self.set(rd, AbsVal::constant(pc.wrapping_add(imm)));
                }
                Instr::Jal { rd, offset } => {
                    self.set(rd, AbsVal::constant(pc.wrapping_add(len)));
                    next = pc.wrapping_add(offset as u32);
                    jumped = true;
                }
                Instr::Jalr { rd, rs1, offset } => {
                    let Some(base) = self.get(rs1).as_const() else {
                        give_up!(pc, "indirect jump through unknown {rs1}");
                    };
                    self.set(rd, AbsVal::constant(pc.wrapping_add(len)));
                    next = base.wrapping_add(offset as u32) & !1;
                    jumped = true;
                }
                Instr::Branch {
                    cond,
                    rs1,
                    rs2,
                    offset,
                } => {
                    let (a, b) = (self.get(rs1).as_const(), self.get(rs2).as_const());
                    let (Some(a), Some(b)) = (a, b) else {
                        give_up!(pc, "branch on unknown operands ({rs1}, {rs2})");
                    };
                    if cond.eval(a, b) {
                        next = pc.wrapping_add(offset as u32);
                        jumped = true;
                    }
                }
                Instr::AluImm { op, rd, rs1, imm } => {
                    let a = self.get(rs1);
                    let v = match (op, a.as_const()) {
                        (AluOp::Add, _) => a.addi(imm),
                        (AluOp::Sll, _) => a.shl(imm as u32 & 31),
                        (op, Some(a)) => AbsVal::constant(alu_eval(op, a, imm as u32)),
                        _ => AbsVal::TOP,
                    };
                    self.set(rd, v);
                }
                Instr::Alu { op, rd, rs1, rs2 } => {
                    let (a, b) = (self.get(rs1), self.get(rs2));
                    let v = match (op, a.as_const(), b.as_const()) {
                        (AluOp::Add, _, _) => a.add(b),
                        (AluOp::Sub, _, _) => a.sub(b),
                        (op, Some(a), Some(b)) => AbsVal::constant(alu_eval(op, a, b)),
                        // A comparison on unknown data is still bounded
                        // — the bit that keeps the branchless
                        // threshold-tree walk's index interval finite.
                        (AluOp::Slt | AluOp::Sltu, _, _) => {
                            AbsVal::constant(0).join(AbsVal::constant(1))
                        }
                        _ => AbsVal::TOP,
                    };
                    self.set(rd, v);
                }
                Instr::MulDiv { op, rd, rs1, rs2 } => {
                    let v = match (op, self.get(rs1).as_const(), self.get(rs2).as_const()) {
                        (MulDivOp::Mul, Some(a), Some(b)) => AbsVal::constant(a.wrapping_mul(b)),
                        _ => AbsVal::TOP,
                    };
                    self.set(rd, v);
                }
                Instr::Csr { rd, csr, .. } => {
                    if csr == MHARTID {
                        self.set(rd, AbsVal::constant(self.hart as u32));
                    } else {
                        self.set(rd, AbsVal::TOP);
                    }
                }
                Instr::LpSetup { l, rs1, offset } => {
                    let Some(count) = self.get(rs1).as_const() else {
                        give_up!(pc, "hardware-loop count in {rs1} is unknown");
                    };
                    self.hwloops[lp_index(l)] = HwLoop {
                        start: pc.wrapping_add(4),
                        end: pc.wrapping_add(offset as u32),
                        count,
                    };
                }
                Instr::LpSetupi { l, imm, offset } => {
                    self.hwloops[lp_index(l)] = HwLoop {
                        start: pc.wrapping_add(4),
                        end: pc.wrapping_add(offset as u32),
                        count: imm,
                    };
                }
                Instr::LpStarti { l, offset } => {
                    self.hwloops[lp_index(l)].start = pc.wrapping_add(offset as u32);
                }
                Instr::LpEndi { l, offset } => {
                    self.hwloops[lp_index(l)].end = pc.wrapping_add(offset as u32);
                }
                Instr::LpCount { l, rs1 } => {
                    let Some(count) = self.get(rs1).as_const() else {
                        give_up!(pc, "hardware-loop count in {rs1} is unknown");
                    };
                    self.hwloops[lp_index(l)].count = count;
                }
                Instr::LpCounti { l, imm } => {
                    self.hwloops[lp_index(l)].count = imm;
                }
                Instr::Ecall | Instr::Ebreak => {
                    run.halted = true;
                    return run;
                }
                _ => {
                    // Memory ops are handled below (via effects());
                    // any other register write degrades to ⊤.
                    if effects(&instr).mem.is_none() {
                        for r in effects(&instr).defs.iter() {
                            self.set(r, AbsVal::TOP);
                        }
                    }
                }
            }

            // Memory access, uniformly through the effects table.
            if let Some(mem) = effects(&instr).mem {
                let mut aval = self.get(mem.base);
                if let Some(idx) = mem.index {
                    aval = aval.add(self.get(idx));
                }
                let aval = aval.addi(mem.offset);
                match aval.as_const() {
                    Some(addr) => {
                        let is_barrier = mem.is_store && addr == self.config.barrier_addr;
                        let is_console = mem.is_store && Some(addr) == self.config.console_addr;
                        if is_barrier {
                            run.barriers.push(pc);
                            run.regions.push(HartRegion::default());
                            if self.cfg.loops.iter().any(|l| l.contains(pc))
                                || self
                                    .hwloops
                                    .iter()
                                    .any(|lp| lp.count > 0 && (lp.start..lp.end).contains(&pc))
                            {
                                run.barrier_in_loop.push(pc);
                            }
                        } else if !is_console {
                            let region = run.regions.last_mut().expect("one region always open");
                            if mem.is_store {
                                region.writes.insert(addr, mem.size, pc);
                            } else {
                                region.reads.insert(addr, mem.size, pc);
                            }
                        }
                        // Value semantics of the access.
                        match instr {
                            Instr::Load { kind, rd, .. }
                            | Instr::LoadPostInc { kind, rd, .. }
                            | Instr::LoadPostIncReg { kind, rd, .. }
                            | Instr::LoadRegOff { kind, rd, .. } => {
                                let v = self
                                    .load(addr, mem.size)
                                    .map(|raw| sign_extend(kind, raw))
                                    .map_or(AbsVal::TOP, AbsVal::constant);
                                self.set(rd, v);
                            }
                            Instr::Store { rs2, .. }
                            | Instr::StorePostInc { rs2, .. }
                            | Instr::StorePostIncReg { rs2, .. } => {
                                if !is_barrier && !is_console {
                                    let v = self.get(rs2).as_const();
                                    self.store(addr, mem.size, v);
                                }
                            }
                            _ => {
                                // pv.qnt-style read: result already ⊤ via defs.
                                for r in effects(&instr).defs.iter() {
                                    self.set(r, AbsVal::TOP);
                                }
                            }
                        }
                    }
                    None => {
                        // Data-dependent address. A *load* whose interval
                        // is provably bounded (the branchless
                        // threshold-tree walk: index built from `slt`
                        // bits) is footprinted over the whole interval —
                        // a sound over-approximation of the bytes it may
                        // read. Stores and unbounded addresses abort.
                        let (lo, hi) = aval.range();
                        let spread = hi.wrapping_sub(lo);
                        if mem.is_store || spread >= INTERVAL_LOAD_SPREAD {
                            give_up!(pc, "memory access through unknown address");
                        }
                        let region = run.regions.last_mut().expect("one region always open");
                        region.reads.insert(lo, spread.saturating_add(mem.size), pc);
                        for r in effects(&instr).defs.iter() {
                            self.set(r, AbsVal::TOP);
                        }
                    }
                }
                // Post-increment base bump (the address register stays
                // abstract even when the access itself did not resolve
                // to a constant).
                match instr {
                    Instr::LoadPostInc { rs1, offset, .. }
                    | Instr::StorePostInc { rs1, offset, .. } => {
                        let bumped = self.get(rs1).addi(offset);
                        self.set(rs1, bumped);
                    }
                    Instr::LoadPostIncReg { rs1, rs2, .. } => {
                        let bumped = self.get(rs1).add(self.get(rs2));
                        self.set(rs1, bumped);
                    }
                    Instr::StorePostIncReg { rs1, rs3, .. } => {
                        let bumped = self.get(rs1).add(self.get(rs3));
                        self.set(rs1, bumped);
                    }
                    _ => {}
                }
            }

            if !jumped {
                if let Some(start) = self.hwloop_next_pc(pc, len) {
                    next = start;
                }
            }
            pc = next;
        }
    }
}

/// Largest interval spread (in bytes) a data-dependent *load* may have
/// and still be footprinted conservatively instead of aborting the
/// hart. Generous relative to a threshold tree (≤ 2^(Q+1) halfwords)
/// while still rejecting wild pointers.
const INTERVAL_LOAD_SPREAD: u32 = 4096;

fn lp_index(l: LoopIdx) -> usize {
    match l {
        LoopIdx::L0 => 0,
        LoopIdx::L1 => 1,
    }
}

fn sign_extend(kind: LoadKind, raw: u32) -> u32 {
    match kind {
        LoadKind::Byte => raw as u8 as i8 as i32 as u32,
        LoadKind::Half => raw as u16 as i16 as i32 as u32,
        LoadKind::ByteU | LoadKind::HalfU | LoadKind::Word => raw,
    }
}

fn alu_eval(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 31),
        AluOp::Srl => a.wrapping_shr(b & 31),
        AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
    }
}

// ---------------------------------------------------------------------------
// The cross-hart checks.
// ---------------------------------------------------------------------------

fn region_name(regions: &[Region], addr: u32) -> &str {
    regions
        .iter()
        .find(|r| addr >= r.base && u64::from(addr) < u64::from(r.base) + u64::from(r.len))
        .map_or("unmapped", |r| r.name.as_str())
}

/// Analyzes a decoded instruction stream as an SPMD program executed
/// by `config.ncores` harts. `stream` must be in address order;
/// `entry` is the first executed instruction's address.
pub fn analyze_spmd_stream(
    entry: u32,
    stream: &[(u32, u32, Instr)],
    config: &SpmdConfig,
) -> SpmdReport {
    // A single hart cannot race with itself, and with no DMA bands or
    // ownership slabs declared there is nothing else to check: the
    // cross-hart rules are all trivially satisfied.
    if config.ncores <= 1 && config.dma.is_empty() && config.slabs.is_empty() {
        return SpmdReport {
            diagnostics: Vec::new(),
            findings: Vec::new(),
            unproven: Vec::new(),
            harts: config.ncores,
            regions_run: 0,
            steps: 0,
            write_bytes: 0,
            read_bytes: 0,
        };
    }

    let cfg = Cfg::build(stream, entry);
    let index: HashMap<u32, usize> = stream
        .iter()
        .enumerate()
        .map(|(i, &(pc, _, _))| (pc, i))
        .collect();

    let mut runs = Vec::with_capacity(config.ncores);
    let mut steps = 0u64;
    for hart in 0..config.ncores {
        let mut exec = Exec {
            stream,
            index: &index,
            cfg: &cfg,
            config,
            entry,
            hart,
            regs: [AbsVal::TOP; 32],
            hwloops: [HwLoop::default(); 2],
            overlay: HashMap::new(),
        };
        let run = exec.run();
        steps += run.steps;
        runs.push(run);
    }

    let disasm = |pc: u32| -> String {
        index
            .get(&pc)
            .map_or_else(|| "-".to_string(), |&i| stream[i].2.to_string())
    };

    let mut findings: Vec<RaceFinding> = Vec::new();
    let mut diagnostics: Vec<Diagnostic> = Vec::new();
    let mut unproven: Vec<Unproven> = Vec::new();
    for run in &runs {
        unproven.extend(run.unproven.clone());
    }

    // DRF-04: structural (barrier inside a hardware loop), liveness
    // (every hart halts), and protocol (identical barrier sequences).
    let mut in_loop_pcs: Vec<u32> = runs
        .iter()
        .flat_map(|r| r.barrier_in_loop.clone())
        .collect();
    in_loop_pcs.sort_unstable();
    in_loop_pcs.dedup();
    for pc in in_loop_pcs {
        diagnostics.push(Diagnostic {
            rule: Rule::DrfBarrierProtocol,
            pc,
            instr: disasm(pc),
            message: "barrier store inside a hardware-loop body".to_string(),
        });
    }
    for (h, run) in runs.iter().enumerate() {
        if !run.halted && run.unproven.is_none() {
            diagnostics.push(Diagnostic {
                rule: Rule::DrfBarrierProtocol,
                pc: entry,
                instr: disasm(entry),
                message: format!("hart {h} never halts"),
            });
        }
    }
    /// Render a barrier-store PC sequence as `[0x1c008010, ...]`.
    fn fmt_pcs(pcs: &[u32]) -> String {
        let hex: Vec<String> = pcs.iter().map(|pc| format!("{pc:#010x}")).collect();
        format!("[{}]", hex.join(", "))
    }
    for (h, run) in runs.iter().enumerate().skip(1) {
        if run.unproven.is_some() || runs[0].unproven.is_some() {
            continue;
        }
        if run.barriers != runs[0].barriers {
            let k = run
                .barriers
                .iter()
                .zip(&runs[0].barriers)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| run.barriers.len().min(runs[0].barriers.len()));
            let pc = *run
                .barriers
                .get(k)
                .or_else(|| runs[0].barriers.get(k))
                .unwrap_or(&entry);
            diagnostics.push(Diagnostic {
                rule: Rule::DrfBarrierProtocol,
                pc,
                instr: disasm(pc),
                message: format!(
                    "hart {h} reaches barrier sequence {} where hart 0 reaches {}",
                    fmt_pcs(&run.barriers),
                    fmt_pcs(&runs[0].barriers)
                ),
            });
        }
    }

    let nregions = runs.iter().map(|r| r.regions.len()).max().unwrap_or(0);
    let common = runs.iter().map(|r| r.regions.len()).min().unwrap_or(0);
    let empty = HartRegion::default();
    let at = |h: usize, r: usize| runs[h].regions.get(r).unwrap_or(&empty);

    // DRF-01 / DRF-02: pairwise footprint overlap within each region.
    for r in 0..common {
        for i in 0..runs.len() {
            for j in 0..runs.len() {
                if i == j {
                    continue;
                }
                if i < j {
                    for (lo, hi, pa, _) in at(i, r).writes.intersect(&at(j, r).writes) {
                        findings.push(RaceFinding {
                            rule: Rule::DrfWriteOverlap,
                            region: r,
                            hart_a: i,
                            hart_b: j,
                            lo,
                            hi,
                        });
                        diagnostics.push(Diagnostic {
                            rule: Rule::DrfWriteOverlap,
                            pc: pa,
                            instr: disasm(pa),
                            message: format!(
                                "harts {i} and {j} both write [{lo:#010x}, {hi:#010x}) \
                                 ({}) in barrier region {r}",
                                region_name(&config.regions, lo)
                            ),
                        });
                    }
                }
                for (lo, hi, pa, _) in at(i, r).reads.intersect(&at(j, r).writes) {
                    findings.push(RaceFinding {
                        rule: Rule::DrfReadOfPeerWrite,
                        region: r,
                        hart_a: i,
                        hart_b: j,
                        lo,
                        hi,
                    });
                    diagnostics.push(Diagnostic {
                        rule: Rule::DrfReadOfPeerWrite,
                        pc: pa,
                        instr: disasm(pa),
                        message: format!(
                            "hart {i} reads [{lo:#010x}, {hi:#010x}) ({}) which hart {j} \
                             writes in the same barrier region {r}",
                            region_name(&config.regions, lo)
                        ),
                    });
                }
            }
        }
    }

    // DRF-03: DMA bands vs the compute footprints they overlap.
    for band in &config.dma {
        for (h, run) in runs.iter().enumerate() {
            let Some(region) = run.regions.get(band.region) else {
                continue;
            };
            for (kind, fp) in [("writes", &region.writes), ("reads", &region.reads)] {
                for (lo, hi, pc) in fp.intersect_range(band.base, band.len) {
                    findings.push(RaceFinding {
                        rule: Rule::DrfDmaOverlap,
                        region: band.region,
                        hart_a: h,
                        hart_b: h,
                        lo,
                        hi,
                    });
                    diagnostics.push(Diagnostic {
                        rule: Rule::DrfDmaOverlap,
                        pc,
                        instr: disasm(pc),
                        message: format!(
                            "dma {} [{:#010x}, {:#010x}) overlaps hart {h}'s {kind} \
                             [{lo:#010x}, {hi:#010x}) ({}) in overlapped region {}",
                            band.name,
                            band.base,
                            u64::from(band.base) + u64::from(band.len),
                            region_name(&config.regions, lo),
                            band.region
                        ),
                    });
                }
            }
        }
    }

    // DRF-05: accesses inside a declared slab must stay in the
    // accessing hart's ranges.
    for slab in &config.slabs {
        for (h, run) in runs.iter().enumerate() {
            let allowed: &[(u32, u32)] = slab.allowed.get(h).map_or(&[], |v| v.as_slice());
            for (r, region) in run.regions.iter().enumerate() {
                for (kind, fp) in [("writes", &region.writes), ("reads", &region.reads)] {
                    for (lo, hi, pc) in fp.escapes(slab.base, slab.len, allowed) {
                        findings.push(RaceFinding {
                            rule: Rule::DrfDispatchSlab,
                            region: r,
                            hart_a: h,
                            hart_b: h,
                            lo,
                            hi,
                        });
                        diagnostics.push(Diagnostic {
                            rule: Rule::DrfDispatchSlab,
                            pc,
                            instr: disasm(pc),
                            message: format!(
                                "hart {h} {kind} [{lo:#010x}, {hi:#010x}) in slab {} \
                                 outside its declared per-hart ranges (region {r})",
                                slab.name
                            ),
                        });
                    }
                }
            }
        }
    }

    diagnostics.sort_by(|a, b| (a.pc, a.rule, &a.message).cmp(&(b.pc, b.rule, &b.message)));
    diagnostics.dedup();

    let write_bytes = runs
        .iter()
        .flat_map(|r| r.regions.iter())
        .map(|r| r.writes.bytes())
        .sum();
    let read_bytes = runs
        .iter()
        .flat_map(|r| r.regions.iter())
        .map(|r| r.reads.bytes())
        .sum();
    SpmdReport {
        diagnostics,
        findings,
        unproven,
        harts: config.ncores,
        regions_run: nregions,
        steps,
        write_bytes,
        read_bytes,
    }
}

/// Analyzes an assembled [`pulp_asm::Program`] as an SPMD program; the
/// program's own data segments join the known memory image.
pub fn analyze_spmd(prog: &pulp_asm::Program, config: &SpmdConfig) -> SpmdReport {
    let stream: Vec<(u32, u32, Instr)> = prog
        .instrs
        .iter()
        .enumerate()
        .map(|(i, &instr)| (prog.base + 4 * i as u32, 4, instr))
        .collect();
    let mut config = config.clone();
    for (addr, bytes) in &prog.data {
        config.memory.push((*addr, bytes.clone()));
    }
    analyze_spmd_stream(prog.base, &stream, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_asm::Asm;

    const BARRIER: u32 = 0x1b20_0000;
    const BASE: u32 = 0x1000_0000;

    fn cfg(ncores: usize) -> SpmdConfig {
        let mut c = SpmdConfig::new(ncores, BARRIER);
        c.regions = vec![Region::new("tcdm", BASE, 0x1_0000)];
        c
    }

    fn csrr_mhartid(a: &mut Asm, rd: Reg) {
        a.i(Instr::Csr {
            op: 1,
            rd,
            rs1: Reg::Zero,
            csr: MHARTID,
        });
    }

    /// Each hart stores one word at `BASE + stride*mhartid`, then
    /// exits; `stride == 0` makes every hart hit the same word.
    fn per_hart_store(stride: i32) -> pulp_asm::Program {
        let mut a = Asm::new(0x1c00_8000);
        csrr_mhartid(&mut a, Reg::T0);
        a.li(Reg::T1, stride);
        a.i(Instr::MulDiv {
            op: MulDivOp::Mul,
            rd: Reg::T0,
            rs1: Reg::T0,
            rs2: Reg::T1,
        });
        a.li(Reg::T2, BASE as i32);
        a.add(Reg::T0, Reg::T0, Reg::T2);
        a.sw(Reg::T3, 0, Reg::T0);
        a.li(Reg::A0, 0);
        a.ecall();
        a.assemble().unwrap()
    }

    #[test]
    fn disjoint_per_hart_stores_are_race_clean() {
        let r = analyze_spmd(&per_hart_store(4), &cfg(4));
        assert!(r.race_clean(), "{}", r.render());
        assert_eq!(r.regions_run, 1);
        assert_eq!(r.write_bytes, 16);
    }

    #[test]
    fn overlapping_stores_fire_drf01() {
        let r = analyze_spmd(&per_hart_store(0), &cfg(4));
        assert!(!r.race_clean());
        assert!(r
            .diagnostics
            .iter()
            .all(|d| d.rule == Rule::DrfWriteOverlap));
        let f = &r.findings[0];
        assert_eq!((f.lo, f.hi), (BASE, BASE + 4));
    }

    #[test]
    fn single_hart_short_circuits_clean() {
        let r = analyze_spmd(&per_hart_store(0), &cfg(1));
        assert!(r.race_clean());
        assert_eq!(r.steps, 0);
    }

    #[test]
    fn barrier_separates_write_from_read() {
        // Hart h writes slot h, barrier, reads slot (h+1)%n — clean.
        // Without the barrier the read races (DRF-02).
        for (with_barrier, want_clean) in [(true, true), (false, false)] {
            let mut a = Asm::new(0x1c00_8000);
            csrr_mhartid(&mut a, Reg::T0);
            a.slli(Reg::T0, Reg::T0, 2);
            a.li(Reg::T2, BASE as i32);
            a.add(Reg::T0, Reg::T0, Reg::T2);
            a.sw(Reg::T3, 0, Reg::T0);
            if with_barrier {
                a.li(Reg::T4, BARRIER as i32);
                a.sw(Reg::Zero, 0, Reg::T4);
            }
            // Read the next hart's slot (wrapping via modulo mask is
            // overkill for the test: hart n-1 reads hart 0's slot by
            // subtracting (n-1)*4).
            a.lw(Reg::T5, 4, Reg::T0);
            a.li(Reg::A0, 0);
            a.ecall();
            let prog = a.assemble().unwrap();
            let r = analyze_spmd(&prog, &cfg(2));
            assert_eq!(r.race_clean(), want_clean, "{}", r.render());
            if !want_clean {
                assert!(r
                    .diagnostics
                    .iter()
                    .any(|d| d.rule == Rule::DrfReadOfPeerWrite));
            }
        }
    }

    #[test]
    fn dma_band_overlap_fires_drf03() {
        let mut c = cfg(2);
        c.dma.push(DmaBand {
            name: "band 0".to_string(),
            region: 0,
            base: BASE,
            len: 64,
        });
        let r = analyze_spmd(&per_hart_store(4), &c);
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::DrfDmaOverlap));
    }

    #[test]
    fn slab_escape_fires_drf05() {
        let mut c = cfg(2);
        c.slabs.push(DispatchSlab {
            name: "dispatch".to_string(),
            base: BASE,
            len: 64,
            // Hart h owns only its own word.
            allowed: (0..2).map(|h| vec![(BASE + 4 * h, 4)]).collect(),
        });
        // stride 8: hart 1 writes BASE+8, outside its slot BASE+4..8.
        let r = analyze_spmd(&per_hart_store(8), &c);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::DrfDispatchSlab));
    }

    #[test]
    fn dispatch_cursor_walk_resolves_through_known_memory() {
        // Hart h loads a pointer from its cursor word, bumps it by 4,
        // stores it back, and writes through the loaded pointer —
        // the canonical dispatch pattern. Clean for distinct targets.
        let cursors = BASE;
        let mut mem = Vec::new();
        for h in 0..2u32 {
            mem.extend_from_slice(&(BASE + 0x100 + 16 * h).to_le_bytes());
        }
        let mut c = cfg(2);
        c.memory.push((cursors, mem));
        let mut a = Asm::new(0x1c00_8000);
        csrr_mhartid(&mut a, Reg::T0);
        a.slli(Reg::T0, Reg::T0, 2);
        a.li(Reg::T1, cursors as i32);
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.lw(Reg::T2, 0, Reg::T0); // pointer from cursor
        a.addi(Reg::T3, Reg::T2, 4);
        a.sw(Reg::T3, 0, Reg::T0); // bump cursor
        a.sw(Reg::Zero, 0, Reg::T2); // write through pointer
        a.lw(Reg::T4, 0, Reg::T0); // re-load: sees own bump
        a.sw(Reg::Zero, 0, Reg::T4); // second write, +4
        a.li(Reg::A0, 0);
        a.ecall();
        let prog = a.assemble().unwrap();
        let r = analyze_spmd(&prog, &c);
        assert!(r.race_clean(), "{}", r.render());
        // Each hart wrote its cursor word + two 4-byte targets.
        assert_eq!(r.write_bytes, 2 * 12);
    }

    #[test]
    fn unknown_branch_is_typed_unproven() {
        let mut a = Asm::new(0x1c00_8000);
        a.li(Reg::T1, BASE as i32);
        a.lw(Reg::T0, 0, Reg::T1); // ⊤: no known memory declared
        a.beq(Reg::T0, Reg::Zero, "out");
        a.label("out");
        a.li(Reg::A0, 0);
        a.ecall();
        let prog = a.assemble().unwrap();
        let r = analyze_spmd(&prog, &cfg(2));
        assert!(!r.race_clean());
        assert_eq!(r.unproven.len(), 2);
        assert!(r.unproven[0].reason.contains("branch"));
    }

    #[test]
    fn hardware_loop_stores_stay_disjoint() {
        // Hart h fills 8 words at BASE + 32h via lp.setupi — the loop
        // must iterate exactly 8 times per hart.
        let mut a = Asm::new(0x1c00_8000);
        csrr_mhartid(&mut a, Reg::T0);
        a.slli(Reg::T0, Reg::T0, 5);
        a.li(Reg::T1, BASE as i32);
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.lp_setupi(LoopIdx::L0, 8, "loop_end");
        a.p_sw_postinc(Reg::Zero, 4, Reg::T0);
        a.label("loop_end");
        a.li(Reg::A0, 0);
        a.ecall();
        let prog = a.assemble().unwrap();
        let r = analyze_spmd(&prog, &cfg(4));
        assert!(r.race_clean(), "{}", r.render());
        assert_eq!(r.write_bytes, 4 * 32);
    }

    #[test]
    fn report_renders_summary_line() {
        let r = analyze_spmd(&per_hart_store(4), &cfg(2));
        assert!(r.render().contains("spmd: 0 diagnostics"));
    }
}
