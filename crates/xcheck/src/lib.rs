#![warn(missing_docs)]

//! # xcheck — static verification of emitted XpulpNN programs
//!
//! Every cycle number the reproduction reports comes from programs
//! *generated* by the `pulp-kernels` emitters and executed on
//! `riscv-core`. The dynamic checks (golden outputs, conformance
//! lockstep) only see the paths a given input exercises; this crate is
//! the static side of the argument. It analyzes a [`pulp_asm::Program`]
//! or any decoded `(pc, len, Instr)` stream (16-bit compressed parcels
//! included) and proves structural well-formedness:
//!
//! 1. **CFG** ([`cfg`]) — branch/jump/call edges plus the RI5CY
//!    hardware-loop back-edges derived from `lp.setup*` regions, with
//!    the emitters' leaf-call discipline matched call/return.
//! 2. **Dataflow** ([`dataflow`]) — interprocedural reaching
//!    definitions and liveness: uninitialized register reads (DF-01),
//!    dead stores (DF-02), reserved-register clobbers (DF-03).
//! 3. **Abstract interpretation** ([`absint`]) — an interval ×
//!    power-of-two congruence domain over address arithmetic: memory
//!    accesses provably outside the declared tensor regions (MEM-01),
//!    provable SIMD misalignment (MEM-02), and Eytzinger threshold-tree
//!    well-formedness for constant-based `pv.qnt` (QNT-01).
//! 4. **Legality rules** ([`rules`]) — hardware-loop boundary/nesting
//!    constraints (HWL-01..06), quantization format consistency
//!    (FMT-01), ISA field validity (FMT-02), control transfers onto
//!    non-instruction addresses (CFG-01).
//!
//! Diagnostics fire only on *proved* violations; everything the
//! abstract domains cannot decide is counted in [`MemStats`] and
//! reported as documented imprecision. That is what lets every shipped
//! kernel lint clean while hand-broken fixtures pin each rule ID.
//!
//! ```
//! use pulp_asm::Asm;
//! use pulp_isa::Reg;
//! use xcheck::{analyze_program, LintConfig};
//!
//! let mut a = Asm::new(0x1c00_8000);
//! a.li(Reg::A0, 0);
//! a.ecall();
//! let prog = a.assemble().unwrap();
//! let report = analyze_program(&prog, &LintConfig::default());
//! assert!(report.clean());
//! ```

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod diag;
pub mod effects;
pub mod rules;
pub mod spmd;

use pulp_asm::Program;
use pulp_isa::{Instr, Reg};

pub use absint::MemStats;
pub use cfg::Cfg;
pub use diag::{Diagnostic, Rule};
pub use effects::{effects, Effects, RegSet};
pub use spmd::{
    analyze_spmd, analyze_spmd_stream, DispatchSlab, DmaBand, RaceFinding, SpmdConfig, SpmdReport,
};

/// A named address region memory accesses are allowed to touch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Human-readable name (`"weights"`, `"im2col"`, ...).
    pub name: String,
    /// First byte of the region.
    pub base: u32,
    /// Length in bytes.
    pub len: u32,
}

impl Region {
    /// Convenience constructor.
    pub fn new(name: &str, base: u32, len: u32) -> Region {
        Region {
            name: name.to_string(),
            base,
            len,
        }
    }
}

/// What to check and what to assume. Two profiles matter in practice:
/// [`LintConfig::kernel`] for emitted kernel programs and
/// [`LintConfig::generated`] for conformance-generator output.
/// `Default` enables every check with nothing assumed and no regions
/// declared.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Regions memory accesses must stay inside. Empty disables
    /// MEM-01 (every access is "unproven" rather than flagged).
    pub regions: Vec<Region>,
    /// Registers assumed initialized at entry. Kernel programs are
    /// self-contained (empty set); the conformance profile assumes the
    /// core's reset-to-zero register file.
    pub assume_init: RegSet,
    /// Registers the program must never write (DF-03).
    pub reserved: RegSet,
    /// Enable the DF-01 uninitialized-read check.
    pub check_uninit: bool,
    /// Enable the DF-02 dead-store check.
    pub check_dead_stores: bool,
    /// Enable the FMT-01 single-quantization-format check.
    pub check_qnt_fmt: bool,
    /// Enable MEM-02 misalignment diagnostics. The extended core never
    /// traps on misalignment (it charges a stall cycle), so this is a
    /// performance contract for emitted kernels, not a soundness rule;
    /// the `generated` profile turns it off.
    pub check_alignment: bool,
    /// Known initial memory contents (`(base, bytes)` chunks) for
    /// threshold-tree checking. [`analyze_program`] adds the program's
    /// own data segments automatically.
    pub memory: Vec<(u32, Vec<u8>)>,
    /// Modeled vector length in bits for the VEC-03 span checks: a
    /// unit-stride vector access touches at most `vlen_bits / 8` bytes.
    /// Matches the core's default vector unit when not overridden.
    pub vlen_bits: u32,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        LintConfig {
            regions: Vec::new(),
            assume_init: RegSet::EMPTY,
            reserved: RegSet::EMPTY,
            check_uninit: true,
            check_dead_stores: true,
            check_qnt_fmt: true,
            check_alignment: true,
            memory: Vec::new(),
            vlen_bits: 128,
        }
    }
}

impl LintConfig {
    /// Profile for emitted kernel programs: everything on, nothing
    /// assumed initialized, `tp` reserved (no emitter may touch it).
    pub fn kernel(regions: Vec<Region>) -> LintConfig {
        LintConfig {
            regions,
            assume_init: RegSet::EMPTY,
            reserved: RegSet::of(&[Reg::Tp]),
            check_uninit: true,
            check_dead_stores: true,
            check_qnt_fmt: true,
            check_alignment: true,
            memory: Vec::new(),
            vlen_bits: 128,
        }
    }

    /// Profile for emitted *vector* kernel programs: identical to
    /// [`LintConfig::kernel`] but with the modeled vector length pinned
    /// to the VLEN the kernel was emitted for, so the VEC-03 span
    /// checks use the exact unit-stride footprint.
    pub fn vector(regions: Vec<Region>, vlen_bits: u32) -> LintConfig {
        LintConfig {
            vlen_bits,
            ..LintConfig::kernel(regions)
        }
    }

    /// Profile for emitted *cluster* kernel programs: identical to
    /// [`LintConfig::kernel`] except that `tp` is not reserved — the
    /// cluster dispatch prologue legitimately loads each tile's im2col
    /// base into `tp` from its parameter record (the single-core
    /// reservation exists precisely so the register is free for this).
    pub fn cluster(regions: Vec<Region>) -> LintConfig {
        LintConfig {
            reserved: RegSet::EMPTY,
            ..LintConfig::kernel(regions)
        }
    }

    /// Profile for conformance-generated programs: the core resets
    /// every register to zero (so nothing is "uninitialized"), random
    /// programs legitimately produce dead values, mix SIMD formats and
    /// make (stalling, but legal) misaligned scalar accesses, and the
    /// memory image is the generated data segment.
    pub fn generated(regions: Vec<Region>, memory: Vec<(u32, Vec<u8>)>) -> LintConfig {
        LintConfig {
            regions,
            assume_init: RegSet::ALL,
            reserved: RegSet::EMPTY,
            check_uninit: true,
            check_dead_stores: false,
            check_qnt_fmt: false,
            check_alignment: false,
            memory,
            vlen_bits: 128,
        }
    }
}

/// Everything one analysis run found.
#[derive(Debug)]
pub struct LintReport {
    /// All findings, sorted by PC then rule.
    pub diagnostics: Vec<Diagnostic>,
    /// Instructions analyzed.
    pub instrs: usize,
    /// Basic blocks in the CFG.
    pub blocks: usize,
    /// Hardware-loop regions found.
    pub hw_loops: usize,
    /// Procedures in the call partition.
    pub procs: usize,
    /// Indirect jumps the CFG could not resolve (imprecision, not an
    /// error).
    pub unresolved_jumps: usize,
    /// Memory/alignment/tree verdict counters.
    pub mem: MemStats,
}

impl LintReport {
    /// True when no rule fired.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the report the way `xpulpnn lint` prints it: one line
    /// per diagnostic, then the summary line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&self.summary());
        out.push('\n');
        out
    }

    /// The one-line machine-greppable summary.
    pub fn summary(&self) -> String {
        format!(
            "summary: {} diagnostics; {} instrs, {} blocks, {} hw-loops, {} procs; \
             mem {}/{} proved (rest unproven), align {}/{} proved; \
             qnt trees {} checked, {} unresolved; {} unresolved jumps",
            self.diagnostics.len(),
            self.instrs,
            self.blocks,
            self.hw_loops,
            self.procs,
            self.mem.proved_in,
            self.mem.accesses,
            self.mem.align_proved,
            self.mem.accesses,
            self.mem.qnt_checked,
            self.mem.qnt_unresolved,
            self.unresolved_jumps,
        )
    }
}

/// Analyzes a decoded instruction stream. `stream` must be in address
/// order; `entry` is the first executed instruction's address.
pub fn analyze_stream(entry: u32, stream: &[(u32, u32, Instr)], config: &LintConfig) -> LintReport {
    let cfg = Cfg::build(stream, entry);
    let mut diagnostics = rules::check(stream, &cfg, config);
    diagnostics.extend(dataflow::check(stream, &cfg, config).diagnostics);
    let abs = absint::check(stream, &cfg, config);
    diagnostics.extend(abs.diagnostics);
    diagnostics.sort_by(|a, b| (a.pc, a.rule, &a.message).cmp(&(b.pc, b.rule, &b.message)));
    diagnostics.dedup();
    LintReport {
        diagnostics,
        instrs: stream.len(),
        blocks: cfg.blocks,
        hw_loops: cfg.loops.len(),
        procs: cfg.procs.len(),
        unresolved_jumps: cfg.unresolved.len(),
        mem: abs.stats,
    }
}

/// Analyzes an assembled [`Program`]: all instructions are 4-byte
/// words starting at `prog.base`, and the program's own data segments
/// join the known memory image (threshold trees shipped in `.data`
/// become checkable).
pub fn analyze_program(prog: &Program, config: &LintConfig) -> LintReport {
    let stream: Vec<(u32, u32, Instr)> = prog
        .instrs
        .iter()
        .enumerate()
        .map(|(i, &instr)| (prog.base + 4 * i as u32, 4, instr))
        .collect();
    let mut config = config.clone();
    for (addr, bytes) in &prog.data {
        config.memory.push((*addr, bytes.clone()));
    }
    analyze_stream(prog.base, &stream, &config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_asm::Asm;

    #[test]
    fn trivial_program_is_clean() {
        let mut a = Asm::new(0x1c00_8000);
        a.li(Reg::A0, 0);
        a.ecall();
        let prog = a.assemble().unwrap();
        let r = analyze_program(&prog, &LintConfig::kernel(Vec::new()));
        assert!(r.clean(), "{}", r.render());
    }

    #[test]
    fn report_renders_summary() {
        let mut a = Asm::new(0x1c00_8000);
        a.li(Reg::A0, 0);
        a.ecall();
        let prog = a.assemble().unwrap();
        let r = analyze_program(&prog, &LintConfig::default());
        assert!(r.render().contains("summary: 0 diagnostics"));
    }
}
