//! Classic dataflow over the CFG: reaching definitions (must-init) for
//! uninitialized-read detection, liveness for dead-store detection,
//! and the reserved-register clobber scan.
//!
//! The emitters follow a strict leaf-call discipline (`jal ra, f` /
//! `jalr x0, ra, 0`), so both analyses are interprocedural via
//! procedure summaries instead of merging every return site into every
//! call site (which would manufacture infeasible paths and false
//! positives — e.g. the W2 conv kernel calls `mm_block` twice with
//! partial-quantization state defined between the calls):
//!
//! * bottom-up over the call DAG: per-procedure `may_def`, `must_def`
//!   (written on every path to a return) and `live_in` (possibly read
//!   before written) summaries;
//! * top-down: forward must-init with procedure entry states met over
//!   the real call sites, and backward liveness with return live-out
//!   joined over the real call continuations.
//!
//! A cyclic call graph (not produced by any in-tree emitter) degrades
//! to sound worst-case summaries rather than diverging.

use std::collections::HashMap;

use pulp_isa::Instr;

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Rule};
use crate::effects::{effects, Effects, RegSet};
use crate::LintConfig;

#[derive(Debug, Clone, Copy, Default)]
struct Summary {
    may_def: RegSet,
    must_def: RegSet,
    live_in: RegSet,
}

/// Per-procedure view used by both directions.
struct ProcView<'a> {
    cfg: &'a Cfg,
    stream: &'a [(u32, u32, Instr)],
    eff: &'a [Effects],
    /// idx -> position of the callee procedure, for call instructions.
    callee_of: HashMap<usize, usize>,
}

impl ProcView<'_> {
    /// Intra-procedure successors: calls continue at their return
    /// address, returns have none.
    fn local_succs(&self, p: usize, i: usize) -> Vec<usize> {
        let proc = &self.cfg.procs[p];
        if proc.rets.contains(&i) {
            return Vec::new();
        }
        if let Some(c) = self.cfg.calls.iter().find(|c| c.idx == i) {
            return self.cfg.idx_of(c.ret).into_iter().collect();
        }
        self.cfg.succs[i]
            .iter()
            .copied()
            .filter(|s| proc.members.binary_search(s).is_ok())
            .collect()
    }

    /// `(gen, kill)` in the forward (must-init) sense: registers
    /// certainly defined by executing instruction `i`, given callee
    /// summaries.
    fn fwd_defs(&self, i: usize, summaries: &[Summary]) -> RegSet {
        match self.callee_of.get(&i) {
            Some(&callee) => self.eff[i].defs.union(summaries[callee].must_def),
            None => self.eff[i].defs,
        }
    }
}

/// Result of the dataflow passes.
pub struct DataflowResult {
    /// DF-01/DF-02/DF-03 findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Runs every register dataflow check enabled in `config`.
pub fn check(stream: &[(u32, u32, Instr)], cfg: &Cfg, config: &LintConfig) -> DataflowResult {
    let eff: Vec<Effects> = stream.iter().map(|(_, _, i)| effects(i)).collect();
    let mut diagnostics = Vec::new();

    // DF-03 is a plain scan: no flow needed to see a reserved write.
    if !config.reserved.is_empty() {
        for (i, e) in eff.iter().enumerate() {
            let hit = e.defs.inter(config.reserved);
            for r in hit.iter() {
                diagnostics.push(diag(
                    stream,
                    i,
                    Rule::DfReservedClobber,
                    format!("writes {r}, which the lint profile reserves"),
                ));
            }
        }
    }

    if !config.check_uninit && !config.check_dead_stores {
        return DataflowResult { diagnostics };
    }

    let callee_of: HashMap<usize, usize> = cfg
        .calls
        .iter()
        .filter_map(|c| {
            cfg.procs
                .iter()
                .position(|p| p.entry == c.target)
                .map(|p| (c.idx, p))
        })
        .collect();
    let view = ProcView {
        cfg,
        stream,
        eff: &eff,
        callee_of,
    };

    // Recursion yields no order: fall back to worst-case summaries for
    // every procedure and analyze only the entry procedure's own code.
    let order = topo_order(cfg, &view).unwrap_or_default();
    let mut summaries = vec![
        Summary {
            may_def: RegSet::EMPTY,
            must_def: RegSet::EMPTY,
            live_in: RegSet::EMPTY,
        };
        cfg.procs.len()
    ];

    // ---- bottom-up: summaries (callees before callers) ----
    for &p in order.iter().rev() {
        summaries[p] = summarize(&view, p, &summaries);
    }

    // ---- top-down: real entry states / return live-outs ----
    // Procedure entry init-state = meet over call sites; the entry
    // procedure starts from the profile's assumed-initialized set.
    let mut entry_init: Vec<Option<RegSet>> = vec![None; cfg.procs.len()];
    let mut ret_live: Vec<RegSet> = vec![RegSet::EMPTY; cfg.procs.len()];
    if let Some(&first) = order.first() {
        entry_init[first] = Some(config.assume_init);
    }
    for &p in &order {
        let Some(init) = entry_init[p] else { continue };
        let states = forward_init(&view, p, init, &summaries);
        if config.check_uninit {
            for &i in &cfg.procs[p].members {
                let Some(inb) = states[i] else { continue };
                // Reads feeding a call also include the callee's
                // requirements, checked at the callee's own entry.
                for r in eff[i].uses.minus(inb).iter() {
                    diagnostics.push(diag(
                        stream,
                        i,
                        Rule::DfUninitRead,
                        format!("reads {r}, which may be uninitialized here"),
                    ));
                }
            }
        }
        // Propagate to callees: meet of the state *after* the link
        // register write but before the callee runs.
        for &c in &cfg.procs[p].calls {
            if let Some(&callee) = view.callee_of.get(&c) {
                if let Some(at_call) = states[c] {
                    let passed = at_call.union(eff[c].defs);
                    entry_init[callee] = Some(match entry_init[callee] {
                        Some(prev) => prev.inter(passed),
                        None => passed,
                    });
                }
            }
        }
    }

    if config.check_dead_stores {
        // Callers first so return live-outs are known before the
        // callee's liveness runs.
        for &p in &order {
            let live = backward_live(&view, p, ret_live[p], &summaries);
            for &i in &cfg.procs[p].members {
                let e = &eff[i];
                if !e.pure_def || e.defs.is_empty() {
                    continue;
                }
                // A store is dead when its definitions are not in the
                // live-OUT (an instruction kills its own defs out of
                // its live-in, so live-in would flag everything).
                let mut out = if cfg.procs[p].rets.contains(&i) {
                    ret_live[p]
                } else {
                    RegSet::EMPTY
                };
                for s in view.local_succs(p, i) {
                    out = out.union(live[s]);
                }
                if e.defs.inter(out).is_empty() {
                    let regs: Vec<String> = e.defs.iter().map(|r| r.to_string()).collect();
                    diagnostics.push(diag(
                        stream,
                        i,
                        Rule::DfDeadStore,
                        format!("defines {} but the value is never read", regs.join(", ")),
                    ));
                }
            }
            for &c in &cfg.procs[p].calls {
                if let Some(&callee) = view.callee_of.get(&c) {
                    // Live-out of the callee's returns = what is live
                    // after this call site.
                    let after: RegSet = view
                        .local_succs(p, c)
                        .iter()
                        .map(|&s| live[s])
                        .fold(RegSet::EMPTY, RegSet::union);
                    ret_live[callee] = ret_live[callee].union(after);
                }
            }
        }
    }

    dedup(&mut diagnostics);
    DataflowResult { diagnostics }
}

fn diag(stream: &[(u32, u32, Instr)], i: usize, rule: Rule, message: String) -> Diagnostic {
    Diagnostic {
        rule,
        pc: stream[i].0,
        instr: stream[i].2.to_string(),
        message,
    }
}

fn dedup(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| (a.pc, a.rule, &a.message).cmp(&(b.pc, b.rule, &b.message)));
    diags.dedup();
}

/// Topological order of procedures, callers first. `None` on a cyclic
/// call graph.
fn topo_order(cfg: &Cfg, view: &ProcView<'_>) -> Option<Vec<usize>> {
    let n = cfg.procs.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (p, proc) in cfg.procs.iter().enumerate() {
        for &c in &proc.calls {
            if let Some(&callee) = view.callee_of.get(&c) {
                if !edges[p].contains(&callee) {
                    edges[p].push(callee);
                }
            }
        }
    }
    let mut indeg = vec![0usize; n];
    for es in &edges {
        for &e in es {
            indeg[e] += 1;
        }
    }
    let mut work: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::new();
    while let Some(p) = work.pop() {
        order.push(p);
        for &e in &edges[p] {
            indeg[e] -= 1;
            if indeg[e] == 0 {
                work.push(e);
            }
        }
    }
    (order.len() == n).then_some(order)
}

fn summarize(view: &ProcView<'_>, p: usize, summaries: &[Summary]) -> Summary {
    let proc = &view.cfg.procs[p];
    let mut may_def = RegSet::EMPTY;
    for &i in &proc.members {
        may_def = may_def.union(view.eff[i].defs);
        if let Some(&callee) = view.callee_of.get(&i) {
            may_def = may_def.union(summaries[callee].may_def);
        }
    }

    // must_def: forward must-analysis from an empty entry state; the
    // summary is the meet over the out-states of every return.
    let entry_idx = view.cfg.idx_of(proc.entry).expect("proc entry decoded");
    let states = forward_init_from(view, p, entry_idx, RegSet::EMPTY, summaries);
    let mut must_def = RegSet::ALL;
    let mut saw_ret = false;
    for &r in &proc.rets {
        if let Some(inb) = states[r] {
            saw_ret = true;
            must_def = must_def.inter(inb.union(view.fwd_defs(r, summaries)));
        }
    }
    if !saw_ret {
        // No reachable return: callers never resume, the summary is
        // vacuous.
        must_def = RegSet::ALL;
    }

    let live = backward_live(view, p, RegSet::EMPTY, summaries);
    let live_in = live[entry_idx];

    Summary {
        may_def,
        must_def,
        live_in,
    }
}

/// Forward must-init states (None = unreachable) for procedure `p`
/// starting from `init` at its entry.
fn forward_init(
    view: &ProcView<'_>,
    p: usize,
    init: RegSet,
    summaries: &[Summary],
) -> Vec<Option<RegSet>> {
    let entry_idx = view.cfg.idx_of(view.cfg.procs[p].entry).expect("entry");
    forward_init_from(view, p, entry_idx, init, summaries)
}

fn forward_init_from(
    view: &ProcView<'_>,
    p: usize,
    entry_idx: usize,
    init: RegSet,
    summaries: &[Summary],
) -> Vec<Option<RegSet>> {
    let n = view.stream.len();
    let mut state: Vec<Option<RegSet>> = vec![None; n];
    state[entry_idx] = Some(init);
    let mut work = vec![entry_idx];
    while let Some(i) = work.pop() {
        let inb = state[i].expect("queued with a state");
        let out = inb.union(view.fwd_defs(i, summaries));
        for s in view.local_succs(p, i) {
            let next = match state[s] {
                Some(prev) => prev.inter(out),
                None => out,
            };
            if state[s] != Some(next) {
                state[s] = Some(next);
                work.push(s);
            }
        }
    }
    state
}

/// Backward liveness for procedure `p`, with `ret_out` live at every
/// return.
fn backward_live(
    view: &ProcView<'_>,
    p: usize,
    ret_out: RegSet,
    summaries: &[Summary],
) -> Vec<RegSet> {
    let proc = &view.cfg.procs[p];
    let n = view.stream.len();
    let mut live_in: Vec<RegSet> = vec![RegSet::EMPTY; n];
    let mut work: Vec<usize> = proc.members.clone();
    while let Some(i) = work.pop() {
        let mut out = if proc.rets.contains(&i) {
            ret_out
        } else {
            RegSet::EMPTY
        };
        for s in view.local_succs(p, i) {
            out = out.union(live_in[s]);
        }
        let (gen, kill) = match view.callee_of.get(&i) {
            Some(&callee) => (
                // The link register is written by the `jal` before the
                // callee reads anything.
                summaries[callee].live_in.minus(view.eff[i].defs),
                view.eff[i].defs.union(summaries[callee].must_def),
            ),
            None => (view.eff[i].uses, view.eff[i].defs),
        };
        let inb = gen.union(out.minus(kill));
        if inb != live_in[i] {
            live_in[i] = inb;
            for &q in &view.cfg.preds[i] {
                if proc.members.binary_search(&q).is_ok() {
                    work.push(q);
                }
            }
        }
    }
    live_in
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintConfig;
    use pulp_isa::instr::AluOp;
    use pulp_isa::Reg;

    fn stream(instrs: &[Instr]) -> Vec<(u32, u32, Instr)> {
        instrs
            .iter()
            .enumerate()
            .map(|(i, &ins)| (0x1000 + 4 * i as u32, 4, ins))
            .collect()
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        }
    }

    fn run(instrs: &[Instr], config: &LintConfig) -> Vec<Diagnostic> {
        let s = stream(instrs);
        let cfg = Cfg::build(&s, 0x1000);
        check(&s, &cfg, config).diagnostics
    }

    #[test]
    fn uninit_read_is_flagged() {
        let d = run(
            &[
                addi(Reg::A1, Reg::T3, 1), // t3 never written
                addi(Reg::A0, Reg::Zero, 0),
                Instr::Ecall,
            ],
            &LintConfig::default(),
        );
        assert!(d
            .iter()
            .any(|d| d.rule == Rule::DfUninitRead && d.message.contains("t3")));
    }

    #[test]
    fn dead_store_is_flagged_and_live_value_is_not() {
        let d = run(
            &[
                addi(Reg::T0, Reg::Zero, 7), // dead: overwritten below
                addi(Reg::T0, Reg::Zero, 8),
                addi(Reg::A0, Reg::T0, 0),
                Instr::Ecall,
            ],
            &LintConfig::default(),
        );
        let dead: Vec<&Diagnostic> = d.iter().filter(|d| d.rule == Rule::DfDeadStore).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].pc, 0x1000);
    }

    #[test]
    fn value_defined_between_two_calls_is_not_a_false_positive() {
        // caller: call f; addi t1 (between calls); call f; read t1.
        // Merged-return CFGs report t1 as possibly uninit after the
        // second call; the summary-based analysis must not.
        let prog = [
            Instr::Jal {
                rd: Reg::Ra,
                offset: 24,
            }, // 0x1000 -> f at 0x1018
            addi(Reg::T1, Reg::Zero, 5), // 0x1004
            Instr::Jal {
                rd: Reg::Ra,
                offset: 16,
            }, // 0x1008 -> f
            addi(Reg::A0, Reg::T1, 0),   // 0x100c: t1 must be init
            Instr::Ecall,                // 0x1010
            Instr::Nop,                  // 0x1014
            addi(Reg::T2, Reg::Zero, 1), // 0x1018: f
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            }, // 0x101c: ret
        ];
        let d = run(&prog, &LintConfig::default());
        assert!(
            !d.iter()
                .any(|d| d.rule == Rule::DfUninitRead && d.message.contains("t1")),
            "summary-based analysis must not merge returns: {d:?}"
        );
    }

    #[test]
    fn reserved_clobber_is_flagged() {
        let config = LintConfig {
            reserved: RegSet::of(&[Reg::Tp]),
            ..LintConfig::default()
        };
        let d = run(
            &[
                addi(Reg::Tp, Reg::Zero, 1),
                addi(Reg::A0, Reg::Zero, 0),
                Instr::Ecall,
            ],
            &config,
        );
        assert!(d.iter().any(|d| d.rule == Rule::DfReservedClobber));
    }

    #[test]
    fn loop_carried_accumulator_is_live() {
        use pulp_isa::instr::LoopIdx;
        let d = run(
            &[
                addi(Reg::S4, Reg::Zero, 0), // accumulator init
                Instr::LpSetupi {
                    l: LoopIdx::L0,
                    imm: 4,
                    offset: 8,
                },
                addi(Reg::S4, Reg::S4, 1), // body: s4 += 1
                addi(Reg::A0, Reg::S4, 0),
                Instr::Ecall,
            ],
            &LintConfig::default(),
        );
        assert!(
            !d.iter().any(|d| d.rule == Rule::DfDeadStore),
            "loop-carried values must be live: {d:?}"
        );
    }
}
