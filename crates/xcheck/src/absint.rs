//! Abstract interpretation over address arithmetic.
//!
//! The domain is a product of a 32-bit unsigned interval and a
//! power-of-two congruence (`value ≡ res (mod 2^k)`). The interval
//! proves region containment; the congruence proves alignment and —
//! crucially — survives widening: a pointer bumped by a stride-4
//! post-increment inside a hardware loop widens its interval to ⊤ but
//! keeps `≡ 0 (mod 4)`, so SIMD alignment stays provable across whole
//! kernels.
//!
//! Every memory access gets a three-way verdict: *proved in bounds*
//! (the whole abstract address range fits one declared region),
//! *proved violation* (the range misses every region — only these
//! become MEM-01 diagnostics), or *unproven* (counted and reported as
//! documented imprecision, never a diagnostic). The same split applies
//! to alignment (MEM-02). `pv.qnt` instructions whose tree base
//! resolves to a constant additionally get their Eytzinger threshold
//! trees checked against the known initial memory image (QNT-01).

use pulp_isa::instr::AluOp;
use pulp_isa::simd::SimdFmt;
use pulp_isa::{Instr, Reg};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Rule};
use crate::effects::{effects, qnt_stride, qnt_thresholds};
use crate::{LintConfig, Region};

/// Abstract 32-bit value: `{ x | lo <= x <= hi, x ≡ res (mod align) }`
/// with `align` a power of two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    lo: u32,
    hi: u32,
    align: u32,
    res: u32,
}

/// Congruence precision cap: alignment facts beyond 256-byte
/// granularity buy nothing for 2/4-byte access checks.
const ALIGN_CAP: u32 = 256;

// `add`/`sub`/`shl` mirror the instruction semantics they model;
// implementing the std operator traits would hide that these are
// abstract (interval × congruence) transfers, not exact arithmetic.
#[allow(clippy::should_implement_trait)]
impl AbsVal {
    /// The unconstrained value.
    pub const TOP: AbsVal = AbsVal {
        lo: 0,
        hi: u32::MAX,
        align: 1,
        res: 0,
    };

    /// The exact constant `c`.
    pub fn constant(c: u32) -> AbsVal {
        AbsVal {
            lo: c,
            hi: c,
            align: ALIGN_CAP,
            res: c % ALIGN_CAP,
        }
    }

    /// The constant this value is proven to be, if singleton.
    pub fn as_const(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// The inclusive interval bounds `[lo, hi]` (`[0, u32::MAX]` for ⊤).
    pub fn range(self) -> (u32, u32) {
        (self.lo, self.hi)
    }

    /// Least upper bound of two values (interval hull, congruence
    /// weakened to the common power-of-two modulus).
    pub fn join(self, other: AbsVal) -> AbsVal {
        let g = gcd(gcd(self.align, other.align), self.res.abs_diff(other.res));
        let align = if g == 0 {
            ALIGN_CAP
        } else {
            1 << g.trailing_zeros()
        };
        AbsVal {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            align,
            res: self.res % align,
        }
    }

    /// Interval widening: any bound still moving goes straight to its
    /// extreme. The congruence component needs no widening (its chains
    /// are finite).
    fn widen(self, next: AbsVal) -> AbsVal {
        AbsVal {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: if next.hi > self.hi { u32::MAX } else { self.hi },
            align: next.align,
            res: next.res,
        }
    }

    /// Abstract wrapping addition.
    pub fn add(self, other: AbsVal) -> AbsVal {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return AbsVal::constant(a.wrapping_add(b));
        }
        let align = self.align.min(other.align);
        let res = (self.res + other.res) % align.max(1);
        let lo = u64::from(self.lo) + u64::from(other.lo);
        let hi = u64::from(self.hi) + u64::from(other.hi);
        if hi > u64::from(u32::MAX) {
            // A possible wrap destroys the interval but not the
            // congruence (all moduli divide 2^32).
            AbsVal {
                lo: 0,
                hi: u32::MAX,
                align,
                res,
            }
        } else {
            AbsVal {
                lo: lo as u32,
                hi: hi as u32,
                align,
                res,
            }
        }
    }

    /// Abstract wrapping subtraction.
    pub fn sub(self, other: AbsVal) -> AbsVal {
        if let (Some(a), Some(b)) = (self.as_const(), other.as_const()) {
            return AbsVal::constant(a.wrapping_sub(b));
        }
        let align = self.align.min(other.align);
        let res = (self.res.wrapping_sub(other.res)) % align.max(1);
        let lo = i64::from(self.lo) - i64::from(other.hi);
        let hi = i64::from(self.hi) - i64::from(other.lo);
        if lo < 0 {
            AbsVal {
                lo: 0,
                hi: u32::MAX,
                align,
                res,
            }
        } else {
            AbsVal {
                lo: lo as u32,
                hi: hi as u32,
                align,
                res,
            }
        }
    }

    /// Abstract addition of a (sign-extended) immediate.
    pub fn addi(self, imm: i32) -> AbsVal {
        if imm >= 0 {
            self.add(AbsVal::constant(imm as u32))
        } else {
            self.sub(AbsVal::constant(imm.unsigned_abs()))
        }
    }

    /// Abstract left shift by a constant amount.
    pub fn shl(self, k: u32) -> AbsVal {
        if let Some(c) = self.as_const() {
            return AbsVal::constant(c.wrapping_shl(k));
        }
        let align = (self.align << k.min(8)).min(ALIGN_CAP);
        let res = (self.res << k.min(8)) % align;
        let hi = u64::from(self.hi) << k;
        if hi > u64::from(u32::MAX) {
            AbsVal {
                lo: 0,
                hi: u32::MAX,
                align,
                res,
            }
        } else {
            AbsVal {
                lo: self.lo << k,
                hi: hi as u32,
                align,
                res,
            }
        }
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

type State = [AbsVal; 32];

fn get(state: &State, r: Reg) -> AbsVal {
    if r == Reg::Zero {
        AbsVal::constant(0)
    } else {
        state[r.index()]
    }
}

fn set(state: &mut State, r: Reg, v: AbsVal) {
    if r != Reg::Zero {
        state[r.index()] = v;
    }
}

/// Transfer function: the register effects of one instruction on the
/// abstract state. Only the operations the emitters use for address
/// arithmetic are modeled precisely; everything else degrades to ⊤.
fn transfer(state: &State, pc: u32, len: u32, instr: &Instr) -> State {
    let mut out = *state;
    match *instr {
        Instr::Lui { rd, imm } => set(&mut out, rd, AbsVal::constant(imm)),
        Instr::Auipc { rd, imm } => set(&mut out, rd, AbsVal::constant(pc.wrapping_add(imm))),
        Instr::Jal { rd, .. } | Instr::Jalr { rd, .. } => {
            set(&mut out, rd, AbsVal::constant(pc.wrapping_add(len)));
        }
        Instr::AluImm { op, rd, rs1, imm } => {
            let v = match op {
                AluOp::Add => get(state, rs1).addi(imm),
                AluOp::Sll => get(state, rs1).shl(imm as u32 & 31),
                _ => match (get(state, rs1).as_const(), op) {
                    (Some(a), AluOp::And) => AbsVal::constant(a & imm as u32),
                    (Some(a), AluOp::Or) => AbsVal::constant(a | imm as u32),
                    (Some(a), AluOp::Xor) => AbsVal::constant(a ^ imm as u32),
                    (Some(a), AluOp::Srl) => AbsVal::constant(a >> (imm as u32 & 31)),
                    _ => AbsVal::TOP,
                },
            };
            set(&mut out, rd, v);
        }
        Instr::Alu { op, rd, rs1, rs2 } => {
            let v = match op {
                AluOp::Add => get(state, rs1).add(get(state, rs2)),
                AluOp::Sub => get(state, rs1).sub(get(state, rs2)),
                _ => AbsVal::TOP,
            };
            set(&mut out, rd, v);
        }
        Instr::LoadPostInc {
            rd, rs1, offset, ..
        } => {
            set(&mut out, rd, AbsVal::TOP);
            let bumped = get(state, rs1).addi(offset);
            set(&mut out, rs1, bumped);
        }
        Instr::LoadPostIncReg { rd, rs1, rs2, .. } => {
            set(&mut out, rd, AbsVal::TOP);
            let bumped = get(state, rs1).add(get(state, rs2));
            set(&mut out, rs1, bumped);
        }
        Instr::StorePostInc { rs1, offset, .. } => {
            let bumped = get(state, rs1).addi(offset);
            set(&mut out, rs1, bumped);
        }
        Instr::StorePostIncReg { rs1, rs3, .. } => {
            let bumped = get(state, rs1).add(get(state, rs3));
            set(&mut out, rs1, bumped);
        }
        _ => {
            // Any other register write is unknown.
            for r in effects(instr).defs.iter() {
                set(&mut out, r, AbsVal::TOP);
            }
        }
    }
    out
}

/// Per-access verdict counters, reported as the analyzer's documented
/// imprecision record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Memory-touching instructions reached by the analysis.
    pub accesses: usize,
    /// Accesses proved inside a declared region.
    pub proved_in: usize,
    /// Accesses neither proved in nor proved out.
    pub unproven: usize,
    /// Accesses with alignment proved correct.
    pub align_proved: usize,
    /// Accesses whose alignment could not be decided.
    pub align_unproven: usize,
    /// `pv.qnt` trees fully checked against the memory image.
    pub qnt_checked: usize,
    /// `pv.qnt` trees whose base or bytes were not statically known.
    pub qnt_unresolved: usize,
}

/// Result of the abstract-interpretation pass.
pub struct AbsResult {
    /// MEM-01/MEM-02/QNT-01 findings.
    pub diagnostics: Vec<Diagnostic>,
    /// Verdict counters.
    pub stats: MemStats,
}

const WIDEN_AFTER: usize = 12;

/// A hardware loop eligible for affine back-edge summarization: the
/// body is one straight line entered only from its `lp.setup` and its
/// own back-edge, and some registers advance by a fixed byte step per
/// iteration (post-increment accesses, `addi r, r, imm`).
///
/// For such a loop the back-edge value of an affine register is
/// `entry + k·step` with `k ∈ [1, count-1]`, so a known trip count
/// bounds the pointer exactly instead of letting the interval widen to
/// ⊤ — this is what lets strided kernel loops keep their in-region
/// proofs.
struct LoopSummary {
    /// Index of the first body instruction (the back-edge target).
    head: usize,
    /// Index of the last body instruction (the back-edge source).
    back_src: usize,
    /// Index of the `lp.setup`/`lp.setupi` instruction.
    setup: usize,
    /// Count register for the `lp.setup rs1` form.
    count_reg: Option<Reg>,
    /// Upper bound on the trip count (immediate, or grown from the
    /// abstract count-register value observed at the setup).
    count_hi: u32,
    /// Per-iteration byte step of each affine register.
    steps: Vec<(Reg, i32)>,
}

fn loop_summaries(stream: &[(u32, u32, Instr)], cfg: &Cfg) -> Vec<LoopSummary> {
    let mut out = Vec::new();
    'next: for (ri, region) in cfg.loops.iter().enumerate() {
        let Some(setup) = cfg.idx_of(region.setup_pc) else {
            continue;
        };
        let (count_reg, count_hi) = match stream[setup].2 {
            Instr::LpSetupi { imm, .. } => (None, imm),
            Instr::LpSetup { rs1, .. } => (Some(rs1), 0),
            // Manual lp.start/lp.end/lp.count setups are not summarized.
            _ => continue,
        };
        // Overlapping regions (nested loops sharing instructions) would
        // give the body a second back-edge.
        for (rj, other) in cfg.loops.iter().enumerate() {
            if rj != ri && other.start < region.end && region.start < other.end {
                continue 'next;
            }
        }
        // The body must be a straight line of plain instructions.
        let mut body = Vec::new();
        for (i, &(pc, _, instr)) in stream.iter().enumerate() {
            if !region.contains(pc) {
                continue;
            }
            let is_plain = !instr.is_control_flow()
                && !matches!(
                    instr,
                    Instr::LpSetup { .. }
                        | Instr::LpSetupi { .. }
                        | Instr::LpStarti { .. }
                        | Instr::LpEndi { .. }
                        | Instr::LpCount { .. }
                        | Instr::LpCounti { .. }
                        | Instr::Ecall
                        | Instr::Ebreak
                );
            if !is_plain {
                continue 'next;
            }
            body.push(i);
        }
        let Some(&head) = body.first() else { continue };
        let &back_src = body.last().expect("non-empty");
        // The body must span the region exactly...
        let (last_pc, last_len, _) = stream[back_src];
        if stream[head].0 != region.start || last_pc + last_len != region.end {
            continue;
        }
        // ...and be entered only via the setup or its own back-edge,
        // with every interior instruction reached sequentially.
        if cfg.preds[head].iter().any(|&p| p != setup && p != back_src) {
            continue;
        }
        for w in body.windows(2) {
            if cfg.preds[w[1]].iter().any(|&p| p != w[0]) {
                continue 'next;
            }
        }
        // Per-register affine step: post-increment offsets and
        // `addi r, r, imm` accumulate; any other definition of the
        // register disqualifies it.
        let mut delta: [Option<i64>; 32] = [Some(0); 32];
        let kill = |delta: &mut [Option<i64>; 32], r: Reg| {
            delta[r.index()] = None;
        };
        let bump = |delta: &mut [Option<i64>; 32], r: Reg, by: i32| {
            if let Some(d) = &mut delta[r.index()] {
                *d += i64::from(by);
            }
        };
        for &i in &body {
            match stream[i].2 {
                Instr::LoadPostInc {
                    rd, rs1, offset, ..
                } => {
                    kill(&mut delta, rd);
                    if rd != rs1 {
                        bump(&mut delta, rs1, offset);
                    }
                }
                Instr::StorePostInc { rs1, offset, .. } => bump(&mut delta, rs1, offset),
                Instr::AluImm {
                    op: AluOp::Add,
                    rd,
                    rs1,
                    imm,
                } if rd == rs1 => bump(&mut delta, rd, imm),
                ref instr => {
                    for r in effects(instr).defs.iter() {
                        kill(&mut delta, r);
                    }
                }
            }
        }
        let steps: Vec<(Reg, i32)> = pulp_isa::reg::ALL_REGS
            .iter()
            .filter(|&&r| r != Reg::Zero)
            .filter_map(|&r| match delta[r.index()] {
                Some(d) if d != 0 => i32::try_from(d).ok().map(|s| (r, s)),
                _ => None,
            })
            .collect();
        if steps.is_empty() {
            continue;
        }
        out.push(LoopSummary {
            head,
            back_src,
            setup,
            count_reg,
            count_hi,
            steps,
        });
    }
    out
}

/// The abstract value of an affine register on the hardware-loop
/// back-edge: `entry + k·step` for `k ∈ [1, k_hi]`. `None` when the
/// bound is unrepresentable (unknown count, possible u32 wrap) — the
/// caller then falls back to the plain transfer result.
fn affine_backedge(entry: AbsVal, step: i32, k_hi: u32) -> Option<AbsVal> {
    let mag = u64::from(step.unsigned_abs());
    let total = mag.checked_mul(u64::from(k_hi))?;
    if total > u64::from(u32::MAX) {
        return None;
    }
    // `step` contributes alignment 2^tz; the entry residue carries
    // through modulo the weaker of the two (both are powers of two).
    let tz = step.unsigned_abs().trailing_zeros().min(8);
    let align = (1u32 << tz).min(entry.align);
    let res = entry.res % align;
    let (lo, hi) = if step >= 0 {
        let lo = u64::from(entry.lo) + mag;
        let hi = u64::from(entry.hi) + total;
        if hi > u64::from(u32::MAX) {
            return None;
        }
        (lo as u32, hi as u32)
    } else {
        let lo = i64::from(entry.lo) - total as i64;
        let hi = i64::from(entry.hi) - mag as i64;
        if lo < 0 {
            return None;
        }
        (lo as u32, hi as u32)
    };
    Some(AbsVal { lo, hi, align, res })
}

/// Runs the interval/congruence analysis and checks every reachable
/// memory access against `config.regions` and its alignment rule.
pub fn check(stream: &[(u32, u32, Instr)], cfg: &Cfg, config: &LintConfig) -> AbsResult {
    let n = stream.len();
    let mut inb: Vec<Option<State>> = vec![None; n];
    let mut visits = vec![0usize; n];
    let mut summaries = loop_summaries(stream, cfg);
    let mut head_entry: Vec<Option<State>> = vec![None; summaries.len()];
    inb[cfg.entry] = Some([AbsVal::TOP; 32]);
    let mut work = vec![cfg.entry];
    while let Some(i) = work.pop() {
        let state = inb[i].expect("queued with a state");
        let (pc, len, instr) = stream[i];
        let out = transfer(&state, pc, len, &instr);
        // Grow the trip-count bound of `lp.setup rs1` loops from the
        // count register's value here; the back-edge must re-fire so
        // its clamp is recomputed from the wider bound.
        for sm in &mut summaries {
            if sm.setup != i {
                continue;
            }
            if let Some(r) = sm.count_reg {
                let hi = get(&state, r).hi;
                if hi > sm.count_hi {
                    sm.count_hi = hi;
                    if inb[sm.back_src].is_some() && !work.contains(&sm.back_src) {
                        work.push(sm.back_src);
                    }
                }
            }
        }
        for &s in &cfg.succs[i] {
            let mut edge_out = out;
            if let Some(k) = summaries.iter().position(|sm| sm.head == s) {
                if i == summaries[k].back_src {
                    // Hardware-loop back-edge: an affine register is
                    // `entry + k·step`, `k ∈ [1, count-1]`.
                    if let Some(entry) = &head_entry[k] {
                        let k_hi = summaries[k].count_hi.max(2) - 1;
                        for &(r, step) in &summaries[k].steps {
                            if let Some(v) = affine_backedge(get(entry, r), step, k_hi) {
                                set(&mut edge_out, r, v);
                            }
                        }
                    }
                } else {
                    // Entry edge: record (join) the loop-entry state.
                    // If it grows after the back-edge already fired,
                    // re-fire it — the clamp depends on this state.
                    let changed = match &mut head_entry[k] {
                        Some(e) => {
                            let mut any = false;
                            for r in 0..32 {
                                let j = e[r].join(out[r]);
                                if j != e[r] {
                                    e[r] = j;
                                    any = true;
                                }
                            }
                            any
                        }
                        slot => {
                            *slot = Some(out);
                            true
                        }
                    };
                    if changed
                        && inb[summaries[k].back_src].is_some()
                        && !work.contains(&summaries[k].back_src)
                    {
                        work.push(summaries[k].back_src);
                    }
                }
            }
            let merged = match &inb[s] {
                Some(prev) => {
                    let mut m = *prev;
                    let mut changed = false;
                    for r in 0..32 {
                        let j = prev[r].join(edge_out[r]);
                        let j = if visits[s] > WIDEN_AFTER {
                            prev[r].widen(j)
                        } else {
                            j
                        };
                        if j != m[r] {
                            m[r] = j;
                            changed = true;
                        }
                    }
                    if !changed {
                        continue;
                    }
                    m
                }
                None => edge_out,
            };
            visits[s] += 1;
            inb[s] = Some(merged);
            work.push(s);
        }
    }

    let mut diagnostics = Vec::new();
    let mut stats = MemStats::default();
    let mut last_sew: Option<pulp_isa::vec::VecSew> = None;
    for (i, &(pc, _, instr)) in stream.iter().enumerate() {
        let Some(state) = &inb[i] else { continue };
        if let Instr::VSetvli { sew, .. } = instr {
            last_sew = Some(sew);
        }
        if instr.requires_rvv() {
            check_vec_mem(
                pc,
                &instr,
                state,
                last_sew,
                config,
                &mut diagnostics,
                &mut stats,
            );
            continue;
        }
        let Some(mem) = effects(&instr).mem else {
            continue;
        };
        stats.accesses += 1;
        let mut addr = get(state, mem.base);
        if let Some(idx) = mem.index {
            addr = addr.add(get(state, idx));
        }
        addr = addr.addi(mem.offset);

        // Region containment.
        match region_verdict(addr, mem.size, &config.regions) {
            Verdict::In => stats.proved_in += 1,
            Verdict::Unproven => stats.unproven += 1,
            Verdict::Out => diagnostics.push(Diagnostic {
                rule: Rule::MemOutOfRegion,
                pc,
                instr: instr.to_string(),
                message: format!(
                    "{} of {} bytes at {} is provably outside every declared region",
                    if mem.is_store { "store" } else { "load" },
                    mem.size,
                    fmt_addr(addr),
                ),
            }),
        }

        // Alignment. Byte accesses are trivially aligned.
        if mem.align <= 1 {
            stats.align_proved += 1;
        } else {
            match align_verdict(addr, mem.align) {
                Verdict::In => stats.align_proved += 1,
                Verdict::Unproven => stats.align_unproven += 1,
                Verdict::Out if !config.check_alignment => stats.align_unproven += 1,
                Verdict::Out => diagnostics.push(Diagnostic {
                    rule: Rule::MemMisaligned,
                    pc,
                    instr: instr.to_string(),
                    message: format!(
                        "address {} is provably misaligned for a {}-byte access",
                        fmt_addr(addr),
                        mem.align,
                    ),
                }),
            }
        }

        // Threshold-tree well-formedness for resolvable `pv.qnt`.
        if let Instr::PvQnt { fmt, .. } = instr {
            match addr.as_const() {
                Some(base) => {
                    check_trees(pc, &instr, fmt, base, config, &mut diagnostics, &mut stats);
                }
                None => stats.qnt_unresolved += 1,
            }
        }
    }

    diagnostics.sort_by_key(|a| (a.pc, a.rule));
    diagnostics.dedup();
    AbsResult { diagnostics, stats }
}

/// VEC-03: vector memory accesses (including the `vqnt` tree walk).
/// The unit-stride footprint comes from the modeled VLEN
/// (`config.vlen_bits`); strided spans additionally need a constant
/// stride and the SEW of the nearest preceding `vsetvli`. Proved-only:
/// everything undecidable is counted as documented imprecision.
fn check_vec_mem(
    pc: u32,
    instr: &Instr,
    state: &State,
    last_sew: Option<pulp_isa::vec::VecSew>,
    config: &LintConfig,
    diagnostics: &mut Vec<Diagnostic>,
    stats: &mut MemStats,
) {
    let vlen_bytes = config.vlen_bits / 8;
    // Worst-case byte span of a strided access: `stride·(VLMAX-1)` plus
    // one element. `None` when the stride or element width is unknown
    // or the walk could wrap the address space.
    let strided_span = |stride_reg: Reg| -> Option<u32> {
        let stride = get(state, stride_reg).as_const()?;
        let sew = last_sew?;
        if !sew.is_byte_multiple() {
            return None; // traps at runtime (IllegalInstruction)
        }
        let elems = config.vlen_bits / sew.bits();
        let span = u64::from(stride) * u64::from(elems - 1) + u64::from(sew.bits() / 8);
        u32::try_from(span).ok()
    };
    let (base_reg, span, align, what) = match *instr {
        Instr::VLoad { rs1, .. } => (rs1, Some(vlen_bytes), 4, "unit-stride load"),
        Instr::VStore { rs1, .. } => (rs1, Some(vlen_bytes), 4, "unit-stride store"),
        Instr::VLoadStrided { rs1, rs2, .. } => (rs1, strided_span(rs2), 1, "strided load"),
        Instr::VStoreStrided { rs1, rs2, .. } => (rs1, strided_span(rs2), 1, "strided store"),
        Instr::VQnt { fmt, rs1, .. } => {
            // One tree of `qnt_thresholds` halfwords per element, one
            // stride apart, for at most VLMAX e16 elements.
            let elems = config.vlen_bits / 16;
            let span = (elems - 1) * qnt_stride(fmt) + 2 * qnt_thresholds(fmt);
            (rs1, Some(span), 2, "threshold-tree walk")
        }
        _ => return,
    };
    stats.accesses += 1;
    let addr = get(state, base_reg);
    match span.map(|s| region_verdict(addr, s, &config.regions)) {
        Some(Verdict::In) => stats.proved_in += 1,
        Some(Verdict::Out) => diagnostics.push(Diagnostic {
            rule: Rule::VecMemUnsafe,
            pc,
            instr: instr.to_string(),
            message: format!(
                "vector {} of {} bytes at {} is provably outside every declared region",
                what,
                span.expect("Out implies known span"),
                fmt_addr(addr),
            ),
        }),
        Some(Verdict::Unproven) | None => stats.unproven += 1,
    }
    match align_verdict(addr, align) {
        Verdict::In => stats.align_proved += 1,
        Verdict::Unproven => stats.align_unproven += 1,
        Verdict::Out if !config.check_alignment => stats.align_unproven += 1,
        Verdict::Out => diagnostics.push(Diagnostic {
            rule: Rule::VecMemUnsafe,
            pc,
            instr: instr.to_string(),
            message: format!(
                "vector {} base {} is provably not {}-byte aligned; every beat \
                 pays a misalignment stall",
                what,
                fmt_addr(addr),
                align,
            ),
        }),
    }
}

enum Verdict {
    In,
    Out,
    Unproven,
}

fn region_verdict(addr: AbsVal, size: u32, regions: &[Region]) -> Verdict {
    if regions.is_empty() {
        return Verdict::Unproven;
    }
    let last = u64::from(addr.hi) + u64::from(size) - 1;
    for r in regions {
        let r_end = u64::from(r.base) + u64::from(r.len);
        if u64::from(addr.lo) >= u64::from(r.base) && last < r_end {
            return Verdict::In;
        }
    }
    // Proved out only when the whole possible range misses every
    // region.
    let any_overlap = regions.iter().any(|r| {
        let r_end = u64::from(r.base) + u64::from(r.len);
        u64::from(addr.lo) < r_end && last >= u64::from(r.base)
    });
    if any_overlap {
        Verdict::Unproven
    } else {
        Verdict::Out
    }
}

fn align_verdict(addr: AbsVal, align: u32) -> Verdict {
    if let Some(c) = addr.as_const() {
        return if c % align == 0 {
            Verdict::In
        } else {
            Verdict::Out
        };
    }
    if addr.align.is_multiple_of(align) {
        if addr.res.is_multiple_of(align) {
            Verdict::In
        } else {
            Verdict::Out
        }
    } else {
        Verdict::Unproven
    }
}

fn fmt_addr(addr: AbsVal) -> String {
    match addr.as_const() {
        Some(c) => format!("{c:#010x}"),
        None => format!("[{:#010x}, {:#010x}]", addr.lo, addr.hi),
    }
}

fn read_i16(memory: &[(u32, Vec<u8>)], addr: u32) -> Option<i16> {
    for (base, bytes) in memory {
        if addr >= *base && (addr + 1) < base + bytes.len() as u32 + 1 {
            let off = (addr - base) as usize;
            if off + 2 <= bytes.len() {
                return Some(i16::from_le_bytes([bytes[off], bytes[off + 1]]));
            }
        }
    }
    None
}

/// Checks both threshold trees (low halfword at `base`, high halfword
/// one stride further) for Eytzinger well-formedness: the in-order
/// traversal of the implicit heap must be non-decreasing.
fn check_trees(
    pc: u32,
    instr: &Instr,
    fmt: SimdFmt,
    base: u32,
    config: &LintConfig,
    diagnostics: &mut Vec<Diagnostic>,
    stats: &mut MemStats,
) {
    let n = qnt_thresholds(fmt);
    let stride = qnt_stride(fmt);
    for t in 0..2u32 {
        let tree_base = base + t * stride;
        let mut entries = Vec::with_capacity(n as usize);
        for k in 0..n {
            match read_i16(&config.memory, tree_base + 2 * k) {
                Some(v) => entries.push(v),
                None => {
                    stats.qnt_unresolved += 1;
                    return;
                }
            }
        }
        let mut in_order = Vec::with_capacity(n as usize);
        walk_in_order(&entries, 1, &mut in_order);
        if let Some(w) = in_order.windows(2).find(|w| w[0] > w[1]) {
            diagnostics.push(Diagnostic {
                rule: Rule::QntMalformedTree,
                pc,
                instr: instr.to_string(),
                message: format!(
                    "threshold tree at {tree_base:#010x} is not heap-ordered: \
                     in-order traversal yields {} before {}",
                    w[0], w[1]
                ),
            });
            return;
        }
    }
    stats.qnt_checked += 1;
}

fn walk_in_order(entries: &[i16], k: usize, out: &mut Vec<i16>) {
    if k <= entries.len() {
        walk_in_order(entries, 2 * k, out);
        out.push(entries[k - 1]);
        walk_in_order(entries, 2 * k + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_isa::instr::{LoadKind, LoopIdx, StoreKind};

    fn stream(instrs: &[Instr]) -> Vec<(u32, u32, Instr)> {
        instrs
            .iter()
            .enumerate()
            .map(|(i, &ins)| (0x1000 + 4 * i as u32, 4, ins))
            .collect()
    }

    fn li(rd: Reg, value: u32) -> [Instr; 2] {
        let lo = ((value as i32) << 20) >> 20;
        let hi = value.wrapping_sub(lo as u32) & 0xffff_f000;
        [
            Instr::Lui { rd, imm: hi },
            Instr::AluImm {
                op: AluOp::Add,
                rd,
                rs1: rd,
                imm: lo,
            },
        ]
    }

    fn analyze(instrs: &[Instr], regions: Vec<Region>) -> AbsResult {
        let s = stream(instrs);
        let cfg = Cfg::build(&s, 0x1000);
        let config = LintConfig {
            regions,
            ..LintConfig::default()
        };
        check(&s, &cfg, &config)
    }

    fn data_region() -> Region {
        Region {
            name: "data".to_string(),
            base: 0x2000,
            len: 0x100,
        }
    }

    #[test]
    fn in_bounds_constant_store_is_proved() {
        let mut prog = li(Reg::A0, 0x2010).to_vec();
        prog.push(Instr::Store {
            kind: StoreKind::Word,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: 4,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.stats.proved_in, 1);
        assert_eq!(r.stats.align_proved, 1);
    }

    #[test]
    fn out_of_region_store_is_a_violation() {
        let mut prog = li(Reg::A0, 0x3000).to_vec();
        prog.push(Instr::Store {
            kind: StoreKind::Word,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: 0,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].rule, Rule::MemOutOfRegion);
    }

    #[test]
    fn misaligned_word_load_is_a_violation() {
        let mut prog = li(Reg::A0, 0x2002).to_vec();
        prog.push(Instr::Load {
            kind: LoadKind::Word,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 0,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert!(r.diagnostics.iter().any(|d| d.rule == Rule::MemMisaligned));
    }

    #[test]
    fn congruence_survives_loop_widening() {
        // p = 0x2000; loop { lw t0, 0(p!); p += 4 } — the interval
        // widens but alignment stays provably 4.
        let mut prog = li(Reg::A0, 0x2000).to_vec();
        prog.push(Instr::LpSetupi {
            l: LoopIdx::L0,
            imm: 8,
            offset: 8,
        });
        prog.push(Instr::LoadPostInc {
            kind: LoadKind::Word,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 4,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert!(
            !r.diagnostics.iter().any(|d| d.rule == Rule::MemMisaligned),
            "{:?}",
            r.diagnostics
        );
        assert_eq!(r.stats.align_proved, 1, "stats: {:?}", r.stats);
    }

    #[test]
    fn constant_trip_count_bounds_loop_pointer() {
        // lp.setupi count 8 over `lw t0, 0(a0!)` stride 4 touches
        // exactly 0x2000..0x2020 — summarization keeps the proof.
        let mut prog = li(Reg::A0, 0x2000).to_vec();
        prog.push(Instr::LpSetupi {
            l: LoopIdx::L0,
            imm: 8,
            offset: 8,
        });
        prog.push(Instr::LoadPostInc {
            kind: LoadKind::Word,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 4,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.stats.proved_in, 1, "stats: {:?}", r.stats);
        assert_eq!(r.stats.unproven, 0);
    }

    #[test]
    fn register_trip_count_bounds_loop_pointer() {
        // Same loop, count from a register (`lp.setup L0, t1, 8`).
        let mut prog = li(Reg::A0, 0x2000).to_vec();
        prog.extend(li(Reg::T1, 8));
        prog.push(Instr::LpSetup {
            l: LoopIdx::L0,
            rs1: Reg::T1,
            offset: 8,
        });
        prog.push(Instr::StorePostInc {
            kind: StoreKind::Word,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: 4,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.stats.proved_in, 1, "stats: {:?}", r.stats);
    }

    #[test]
    fn trip_count_past_region_end_stays_unproven() {
        // Count 100 walks 400 bytes through a 0x100-byte region: the
        // pointer bound now overlaps the region end, so the access is
        // neither proved in nor flagged (documented imprecision).
        let mut prog = li(Reg::A0, 0x2000).to_vec();
        prog.push(Instr::LpSetupi {
            l: LoopIdx::L0,
            imm: 100,
            offset: 8,
        });
        prog.push(Instr::LoadPostInc {
            kind: LoadKind::Word,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 4,
        });
        prog.push(Instr::Ecall);
        let r = analyze(&prog, vec![data_region()]);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.stats.proved_in, 0, "stats: {:?}", r.stats);
        assert_eq!(r.stats.unproven, 1);
    }

    #[test]
    fn malformed_tree_is_flagged_and_sorted_tree_passes() {
        // Sorted tree in Eytzinger order (1..=15 sorted -> heap).
        let good: [i16; 15] = [8, 4, 12, 2, 6, 10, 14, 1, 3, 5, 7, 9, 11, 13, 15];
        let mut bytes = Vec::new();
        for tree in 0..2 {
            for v in &good {
                let v = if tree == 0 { *v } else { *v + 100 };
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            bytes.extend_from_slice(&[0, 0]); // pad to 32-byte stride
        }
        let mut prog = li(Reg::A1, 0x2000).to_vec();
        prog.extend(li(Reg::T0, 0x1234_5678));
        prog.push(Instr::PvQnt {
            fmt: SimdFmt::Nibble,
            rd: Reg::T1,
            rs1: Reg::T0,
            rs2: Reg::A1,
        });
        prog.push(Instr::Ecall);
        let s = stream(&prog);
        let cfg = Cfg::build(&s, 0x1000);
        let config = LintConfig {
            regions: vec![data_region()],
            memory: vec![(0x2000, bytes.clone())],
            ..LintConfig::default()
        };
        let r = check(&s, &cfg, &config);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert_eq!(r.stats.qnt_checked, 1);

        // Corrupt the root: in-order traversal now decreases.
        bytes[0] = 0xff;
        bytes[1] = 0x7f;
        let config = LintConfig {
            regions: vec![data_region()],
            memory: vec![(0x2000, bytes)],
            ..LintConfig::default()
        };
        let r = check(&s, &cfg, &config);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::QntMalformedTree));
    }
}
