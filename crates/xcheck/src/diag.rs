//! Diagnostic types: the rule catalog and the findings the analyzer
//! reports.
//!
//! Every rule has a stable ID (`HWL-01`, `DF-02`, ...) so golden tests,
//! CI greps and the DESIGN.md rule catalog can refer to findings
//! without depending on message wording.

use std::fmt;

/// The rule catalog. IDs are stable; see DESIGN.md §9 for the full
/// description of each rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Control flow enters a hardware-loop body from outside it.
    HwlBranchIn,
    /// Control flow leaves a hardware-loop body from inside it.
    HwlBranchOut,
    /// Hardware-loop regions overlap without proper nesting, or L1 is
    /// nested inside L0 (L0 must be the innermost loop on RI5CY).
    HwlBadNesting,
    /// Degenerate loop body: end not after start, or a boundary that is
    /// not an instruction boundary of the program.
    HwlBadBody,
    /// The last instruction of a loop body is a control-flow or
    /// loop-setup instruction; the core's end-of-body check is bypassed
    /// by taken jumps, so the loop silently stops iterating.
    HwlLastInsnControlFlow,
    /// A manual `lp.starti`/`lp.endi`/`lp.count` setup never became
    /// complete (one of the three CSRs is never written).
    HwlIncompleteSetup,
    /// `pv.qnt` is used with more than one output format in the same
    /// program (a kernel quantizes to exactly one width).
    FmtQntMix,
    /// An instruction fails [`pulp_isa::Instr::validate`] (illegal
    /// field combination such as a sub-byte `.sci` operand).
    FmtInvalidInstr,
    /// A register may be read before any definition reaches it.
    DfUninitRead,
    /// A register definition with no side effects is never read.
    DfDeadStore,
    /// An instruction writes a register the profile reserves.
    DfReservedClobber,
    /// A memory access is provably outside every declared region.
    MemOutOfRegion,
    /// A memory access address is provably misaligned for its width.
    MemMisaligned,
    /// A `pv.qnt` threshold tree resolved to a constant base is not a
    /// well-formed Eytzinger tree (in-order traversal must be
    /// non-decreasing).
    QntMalformedTree,
    /// A branch or jump targets an address that is not an instruction
    /// boundary of the program.
    CfgBadTarget,
    /// Two harts write overlapping bytes within the same barrier
    /// region (cross-hart write/write race).
    DrfWriteOverlap,
    /// A hart reads bytes another hart writes in the same barrier
    /// region (the read must be separated from the write by a
    /// barrier to observe the merged value).
    DrfReadOfPeerWrite,
    /// A DMA band scheduled to overlap a compute region touches bytes
    /// some hart reads or writes in that region.
    DrfDmaOverlap,
    /// Barrier-protocol violation: harts reach different barrier
    /// sequences, or a barrier store sits inside a hardware-loop body.
    DrfBarrierProtocol,
    /// A hart's access inside the dispatch slab leaves the per-hart
    /// cursor word / parameter-record rows declared for it.
    DrfDispatchSlab,
    /// A vector instruction executes but no `vsetvli` appears earlier
    /// in the program: `vl`/`sew` would still be the reset state.
    VecNoVsetvli,
    /// A `vqnt.*.v` whose nearest preceding `vsetvli` selects an
    /// element width other than e16 (the quantizer consumes halfword
    /// accumulators and traps on any other SEW).
    VecQntSew,
    /// A vector memory access (including the `vqnt` tree walk) is
    /// provably outside every declared region, or its base address is
    /// provably not word-aligned (each misaligned beat costs a stall).
    VecMemUnsafe,
}

impl Rule {
    /// Every rule in the catalog, in stable-ID order. Coverage tests
    /// iterate this to prove each rule family has a firing fixture.
    pub const ALL: [Rule; 23] = [
        Rule::HwlBranchIn,
        Rule::HwlBranchOut,
        Rule::HwlBadNesting,
        Rule::HwlBadBody,
        Rule::HwlLastInsnControlFlow,
        Rule::HwlIncompleteSetup,
        Rule::FmtQntMix,
        Rule::FmtInvalidInstr,
        Rule::DfUninitRead,
        Rule::DfDeadStore,
        Rule::DfReservedClobber,
        Rule::MemOutOfRegion,
        Rule::MemMisaligned,
        Rule::QntMalformedTree,
        Rule::CfgBadTarget,
        Rule::DrfWriteOverlap,
        Rule::DrfReadOfPeerWrite,
        Rule::DrfDmaOverlap,
        Rule::DrfBarrierProtocol,
        Rule::DrfDispatchSlab,
        Rule::VecNoVsetvli,
        Rule::VecQntSew,
        Rule::VecMemUnsafe,
    ];

    /// Stable rule identifier.
    pub fn id(self) -> &'static str {
        match self {
            Rule::HwlBranchIn => "HWL-01",
            Rule::HwlBranchOut => "HWL-02",
            Rule::HwlBadNesting => "HWL-03",
            Rule::HwlBadBody => "HWL-04",
            Rule::HwlLastInsnControlFlow => "HWL-05",
            Rule::HwlIncompleteSetup => "HWL-06",
            Rule::FmtQntMix => "FMT-01",
            Rule::FmtInvalidInstr => "FMT-02",
            Rule::DfUninitRead => "DF-01",
            Rule::DfDeadStore => "DF-02",
            Rule::DfReservedClobber => "DF-03",
            Rule::MemOutOfRegion => "MEM-01",
            Rule::MemMisaligned => "MEM-02",
            Rule::QntMalformedTree => "QNT-01",
            Rule::CfgBadTarget => "CFG-01",
            Rule::DrfWriteOverlap => "DRF-01",
            Rule::DrfReadOfPeerWrite => "DRF-02",
            Rule::DrfDmaOverlap => "DRF-03",
            Rule::DrfBarrierProtocol => "DRF-04",
            Rule::DrfDispatchSlab => "DRF-05",
            Rule::VecNoVsetvli => "VEC-01",
            Rule::VecQntSew => "VEC-02",
            Rule::VecMemUnsafe => "VEC-03",
        }
    }

    /// The rule family: the ID prefix before the dash (`"HWL"`,
    /// `"DRF"`, ...). Families group rules that share a fixture
    /// harness; coverage tests enumerate them via [`Rule::ALL`].
    pub fn family(self) -> &'static str {
        let id = self.id();
        let dash = id.find('-').expect("rule IDs are FAMILY-NN");
        &id[..dash]
    }

    /// Every distinct rule family, in first-appearance order over
    /// [`Rule::ALL`].
    pub fn families() -> Vec<&'static str> {
        let mut out: Vec<&'static str> = Vec::new();
        for r in Rule::ALL {
            if !out.contains(&r.family()) {
                out.push(r.family());
            }
        }
        out
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: which rule fired, where, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub rule: Rule,
    /// PC of the offending instruction (or of the loop setup for
    /// region-level hardware-loop findings).
    pub pc: u32,
    /// Disassembly of the offending instruction.
    pub instr: String,
    /// Human-readable explanation with the concrete evidence.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{:#010x} `{}`: {}",
            self.rule, self.pc, self.instr, self.message
        )
    }
}
