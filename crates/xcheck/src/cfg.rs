//! Control-flow graph over a decoded instruction stream.
//!
//! The stream is a list of `(pc, len, instr)` tuples in address order;
//! `len` carries the encoded size so 16-bit compressed parcels and
//! 32-bit instructions mix freely (the conformance generator emits
//! both). On top of the ordinary branch/jump edges the graph models
//! the RI5CY zero-overhead hardware loops: every `lp.setup`-family
//! region contributes a back-edge from its last body instruction to
//! the body start.
//!
//! Calls follow the emitters' leaf-call discipline: `jal ra, f` is a
//! call, `jalr x0, ra, 0` is a return. Returns get edges to the
//! continuation of every call site that targets their procedure, and
//! the procedure partition (entry, members, calls) is exported for the
//! interprocedural dataflow in [`crate::dataflow`]. Indirect jumps
//! through a register are resolved when the preceding instruction is
//! the `auipc`that materialized the target (the conformance
//! generator's `jalr` idiom); anything else is recorded as an
//! unresolved jump rather than guessed at.

use std::collections::HashMap;

use pulp_isa::instr::LoopIdx;
use pulp_isa::{Instr, Reg};

/// One hardware-loop body region `[start, end)` (the end address is
/// exclusive, matching the core: the body's last instruction is the
/// one whose `pc + len == end`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwLoopRegion {
    /// Which loop register set.
    pub l: LoopIdx,
    /// PC of the instruction that completed the loop setup.
    pub setup_pc: u32,
    /// First body address.
    pub start: u32,
    /// First address after the body.
    pub end: u32,
}

impl HwLoopRegion {
    /// True when `pc` is inside the body.
    pub fn contains(&self, pc: u32) -> bool {
        self.start <= pc && pc < self.end
    }
}

/// A `jal ra, target` call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    /// Instruction index of the `jal`.
    pub idx: usize,
    /// Callee entry address.
    pub target: u32,
    /// Continuation address (`pc + len` of the `jal`).
    pub ret: u32,
}

/// A procedure: an entry point and the instructions reachable from it
/// without descending into callees (calls continue at their return
/// address, returns stop the walk).
#[derive(Debug, Clone)]
pub struct Proc {
    /// Entry address.
    pub entry: u32,
    /// Member instruction indices (sorted).
    pub members: Vec<usize>,
    /// Indices of call instructions inside this procedure.
    pub calls: Vec<usize>,
    /// Indices of return instructions inside this procedure.
    pub rets: Vec<usize>,
}

/// The control-flow graph plus everything derived structurally from
/// the stream: hardware-loop regions, the call/procedure partition,
/// and the jumps that could not be resolved statically.
pub struct Cfg {
    /// Successor instruction indices (interprocedural: calls edge into
    /// their callee, returns edge back to the matching call sites).
    pub succs: Vec<Vec<usize>>,
    /// Predecessors, inverted from `succs`.
    pub preds: Vec<Vec<usize>>,
    /// Index of the entry instruction.
    pub entry: usize,
    /// Hardware-loop body regions in setup order.
    pub loops: Vec<HwLoopRegion>,
    /// `jal ra` call sites.
    pub calls: Vec<CallSite>,
    /// Procedure partition (the procedure at index 0 is the program
    /// entry's).
    pub procs: Vec<Proc>,
    /// PCs of indirect jumps whose target could not be resolved.
    pub unresolved: Vec<u32>,
    /// `(pc, target)` of control transfers to addresses that are not
    /// instruction boundaries of the stream.
    pub bad_targets: Vec<(u32, u32)>,
    /// `(pc, loop)` of manual loop setups that never became complete.
    pub incomplete_loops: Vec<(u32, LoopIdx)>,
    /// Number of basic blocks (for reporting).
    pub blocks: usize,
    idx_of: HashMap<u32, usize>,
}

/// How one instruction transfers control, before loop back-edges.
enum Flow {
    Fall,
    Jump(u32),
    Branch(u32),
    Call { target: u32 },
    Ret,
    Halt,
    Unresolved,
}

fn flow(stream: &[(u32, u32, Instr)], i: usize) -> Flow {
    let (pc, _, instr) = stream[i];
    match instr {
        Instr::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u32);
            if rd == Reg::Ra {
                Flow::Call { target }
            } else {
                Flow::Jump(target)
            }
        }
        Instr::Branch { offset, .. } => Flow::Branch(pc.wrapping_add(offset as u32)),
        Instr::Jalr { rd, rs1, offset } => {
            if rd == Reg::Zero && rs1 == Reg::Ra && offset == 0 {
                return Flow::Ret;
            }
            // The `auipc t, imm; jalr rd, t, off` pair has a static
            // target; anything else stays unresolved.
            if i > 0 {
                let (ppc, plen, pinstr) = stream[i - 1];
                if let Instr::Auipc { rd: prd, imm } = pinstr {
                    if prd == rs1 && ppc + plen == pc {
                        return Flow::Jump(ppc.wrapping_add(imm).wrapping_add(offset as u32));
                    }
                }
            }
            Flow::Unresolved
        }
        Instr::Ecall | Instr::Ebreak => Flow::Halt,
        _ => Flow::Fall,
    }
}

impl Cfg {
    /// Builds the graph for `stream` (address-ordered `(pc, len,
    /// instr)` tuples) starting execution at `entry`.
    ///
    /// # Panics
    /// Panics when the stream is empty or `entry` is not an
    /// instruction boundary.
    pub fn build(stream: &[(u32, u32, Instr)], entry: u32) -> Cfg {
        assert!(!stream.is_empty(), "cannot analyze an empty program");
        let idx_of: HashMap<u32, usize> = stream
            .iter()
            .enumerate()
            .map(|(i, &(pc, _, _))| (pc, i))
            .collect();
        let entry_idx = *idx_of.get(&entry).expect("entry not on an instruction");

        let (loops, incomplete_loops) = scan_loops(stream);

        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); stream.len()];
        let mut calls = Vec::new();
        let mut unresolved = Vec::new();
        let mut bad_targets = Vec::new();
        let mut rets = Vec::new();

        for i in 0..stream.len() {
            let (pc, len, _) = stream[i];
            let fall = pc + len;
            let mut push = |succs: &mut Vec<Vec<usize>>, target: u32, record_bad: bool| {
                if let Some(&t) = idx_of.get(&target) {
                    if !succs[i].contains(&t) {
                        succs[i].push(t);
                    }
                } else if record_bad {
                    bad_targets.push((pc, target));
                }
            };
            match flow(stream, i) {
                Flow::Fall => push(&mut succs, fall, false),
                Flow::Jump(t) => push(&mut succs, t, true),
                Flow::Branch(t) => {
                    push(&mut succs, t, true);
                    push(&mut succs, fall, false);
                }
                Flow::Call { target } => {
                    calls.push(CallSite {
                        idx: i,
                        target,
                        ret: fall,
                    });
                    push(&mut succs, target, true);
                }
                Flow::Ret => rets.push(i),
                Flow::Halt => {}
                Flow::Unresolved => unresolved.push(pc),
            }
            // Hardware-loop back edge: the body's last instruction also
            // continues at the body start. Control-flow instructions
            // bypass the end-of-body check in the core, so they get no
            // back edge (the HWL-05 rule flags them instead).
            if !stream[i].2.is_control_flow() {
                for lp in &loops {
                    if fall == lp.end {
                        push(&mut succs, lp.start, false);
                    }
                }
            }
        }

        // Procedure partition: walk from each entry, treating calls as
        // straight-line (continue at the return address) and stopping
        // at returns.
        let mut entries = vec![entry];
        for c in &calls {
            if idx_of.contains_key(&c.target) && !entries.contains(&c.target) {
                entries.push(c.target);
            }
        }
        let procs: Vec<Proc> = entries
            .iter()
            .map(|&e| proc_members(stream, &idx_of, &succs, &calls, &rets, e))
            .collect();

        // Return edges: a `ret` in procedure P continues at every call
        // site targeting P's entry.
        for p in &procs {
            for &r in &p.rets {
                for c in &calls {
                    if c.target == p.entry {
                        if let Some(&t) = idx_of.get(&c.ret) {
                            if !succs[r].contains(&t) {
                                succs[r].push(t);
                            }
                        }
                    }
                }
            }
        }

        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); stream.len()];
        for (i, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(i);
            }
        }

        let blocks = count_blocks(stream, &succs, entry_idx);

        Cfg {
            succs,
            preds,
            entry: entry_idx,
            loops,
            calls,
            procs,
            unresolved,
            bad_targets,
            incomplete_loops,
            blocks,
            idx_of,
        }
    }

    /// Instruction index at `pc`, if `pc` is an instruction boundary.
    pub fn idx_of(&self, pc: u32) -> Option<usize> {
        self.idx_of.get(&pc).copied()
    }

    /// The static control-transfer targets of instruction `i` (taken
    /// branch, jump or resolved indirect target — not fallthrough, not
    /// loop back-edges), used by the hardware-loop boundary rules.
    pub fn explicit_targets(&self, stream: &[(u32, u32, Instr)], i: usize) -> Vec<u32> {
        match flow(stream, i) {
            Flow::Jump(t) | Flow::Branch(t) => vec![t],
            Flow::Call { target } => vec![target],
            _ => Vec::new(),
        }
    }
}

/// Linear scan for loop regions. `lp.setup`/`lp.setupi` complete a
/// region on their own; the manual `lp.starti`/`lp.endi`/`lp.count*`
/// form completes one as soon as all three components have been
/// written for a loop index.
fn scan_loops(stream: &[(u32, u32, Instr)]) -> (Vec<HwLoopRegion>, Vec<(u32, LoopIdx)>) {
    #[derive(Default, Clone, Copy)]
    struct Partial {
        start: Option<u32>,
        end: Option<u32>,
        count: bool,
        last_pc: u32,
        completed: bool,
        touched: bool,
    }
    let mut state = [Partial::default(), Partial::default()];
    let mut regions = Vec::new();
    for &(pc, len, instr) in stream {
        let l = match instr {
            Instr::LpSetup { l, offset, .. } | Instr::LpSetupi { l, offset, .. } => {
                regions.push(HwLoopRegion {
                    l,
                    setup_pc: pc,
                    start: pc + len,
                    end: pc.wrapping_add(offset as u32),
                });
                state[l.index()].completed = true;
                continue;
            }
            Instr::LpStarti { l, offset } => {
                state[l.index()].start = Some(pc.wrapping_add(offset as u32));
                l
            }
            Instr::LpEndi { l, offset } => {
                state[l.index()].end = Some(pc.wrapping_add(offset as u32));
                l
            }
            Instr::LpCount { l, .. } | Instr::LpCounti { l, .. } => {
                state[l.index()].count = true;
                l
            }
            _ => continue,
        };
        let s = &mut state[l.index()];
        s.touched = true;
        s.last_pc = pc;
        if let (Some(start), Some(end), true) = (s.start, s.end, s.count) {
            regions.push(HwLoopRegion {
                l,
                setup_pc: pc,
                start,
                end,
            });
            s.completed = true;
            s.start = None;
            s.end = None;
            s.count = false;
            s.touched = false;
        }
    }
    let mut incomplete = Vec::new();
    for (i, s) in state.iter().enumerate() {
        if s.touched && !s.completed {
            let l = if i == 0 { LoopIdx::L0 } else { LoopIdx::L1 };
            incomplete.push((s.last_pc, l));
        }
    }
    (regions, incomplete)
}

fn proc_members(
    stream: &[(u32, u32, Instr)],
    idx_of: &HashMap<u32, usize>,
    succs: &[Vec<usize>],
    calls: &[CallSite],
    rets: &[usize],
    entry: u32,
) -> Proc {
    let mut members = Vec::new();
    let mut seen = vec![false; stream.len()];
    let mut work = vec![idx_of[&entry]];
    let mut proc_calls = Vec::new();
    let mut proc_rets = Vec::new();
    while let Some(i) = work.pop() {
        if seen[i] {
            continue;
        }
        seen[i] = true;
        members.push(i);
        if let Some(c) = calls.iter().find(|c| c.idx == i) {
            proc_calls.push(i);
            // Do not descend into the callee: continue at the return.
            if let Some(&t) = idx_of.get(&c.ret) {
                work.push(t);
            }
            continue;
        }
        if rets.contains(&i) {
            proc_rets.push(i);
            continue;
        }
        for &s in &succs[i] {
            work.push(s);
        }
    }
    members.sort_unstable();
    proc_calls.sort_unstable();
    proc_rets.sort_unstable();
    Proc {
        entry,
        members,
        calls: proc_calls,
        rets: proc_rets,
    }
}

fn count_blocks(stream: &[(u32, u32, Instr)], succs: &[Vec<usize>], entry: usize) -> usize {
    let mut leader = vec![false; stream.len()];
    leader[entry] = true;
    for (i, ss) in succs.iter().enumerate() {
        // Any instruction with multiple successors or a non-fallthrough
        // successor starts new blocks at each target and after itself.
        let fall = stream[i].0 + stream[i].1;
        let diverts = ss.len() != 1 || stream.get(i + 1).map(|n| n.0) != Some(fall);
        if diverts || ss.iter().any(|&s| stream[s].0 != fall) {
            for &s in ss {
                leader[s] = true;
            }
            if i + 1 < stream.len() {
                leader[i + 1] = true;
            }
        }
    }
    leader.iter().filter(|&&l| l).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pulp_isa::instr::AluOp;

    fn stream(instrs: &[Instr]) -> Vec<(u32, u32, Instr)> {
        instrs
            .iter()
            .enumerate()
            .map(|(i, &ins)| (0x1000 + 4 * i as u32, 4, ins))
            .collect()
    }

    fn addi(rd: Reg, rs1: Reg, imm: i32) -> Instr {
        Instr::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        }
    }

    #[test]
    fn straight_line_is_one_block() {
        let s = stream(&[addi(Reg::A0, Reg::Zero, 1), Instr::Ecall]);
        let cfg = Cfg::build(&s, 0x1000);
        assert_eq!(cfg.blocks, 1);
        assert_eq!(cfg.succs[0], vec![1]);
        assert!(cfg.succs[1].is_empty());
    }

    #[test]
    fn hw_loop_gets_back_edge() {
        let s = stream(&[
            Instr::LpSetupi {
                l: LoopIdx::L0,
                imm: 4,
                offset: 12,
            },
            addi(Reg::A0, Reg::A0, 1),
            addi(Reg::A1, Reg::A1, 2),
            Instr::Ecall,
        ]);
        let cfg = Cfg::build(&s, 0x1000);
        assert_eq!(cfg.loops.len(), 1);
        assert_eq!(cfg.loops[0].start, 0x1004);
        assert_eq!(cfg.loops[0].end, 0x100c);
        // Body tail (index 2) flows both to the loop start and onward.
        assert!(cfg.succs[2].contains(&1));
        assert!(cfg.succs[2].contains(&3));
    }

    #[test]
    fn call_and_ret_are_matched() {
        let s = stream(&[
            Instr::Jal {
                rd: Reg::Ra,
                offset: 12,
            }, // 0x1000: call 0x100c
            addi(Reg::A0, Reg::A0, 1), // 0x1004: return site
            Instr::Ecall,              // 0x1008
            addi(Reg::A1, Reg::A1, 1), // 0x100c: callee
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            }, // 0x1010: ret
        ]);
        let cfg = Cfg::build(&s, 0x1000);
        assert_eq!(cfg.calls.len(), 1);
        assert_eq!(cfg.procs.len(), 2);
        // ret edges back to the call continuation only.
        assert_eq!(cfg.succs[4], vec![1]);
        // The caller procedure treats the call as straight-line.
        assert_eq!(cfg.procs[0].members, vec![0, 1, 2]);
        assert_eq!(cfg.procs[1].members, vec![3, 4]);
    }

    #[test]
    fn auipc_jalr_pair_is_resolved() {
        let s = stream(&[
            Instr::Auipc {
                rd: Reg::T0,
                imm: 0,
            },
            Instr::Jalr {
                rd: Reg::T1,
                rs1: Reg::T0,
                offset: 12,
            }, // target = 0x1000 + 12 = 0x100c
            addi(Reg::A0, Reg::A0, 1),
            Instr::Ecall,
        ]);
        let cfg = Cfg::build(&s, 0x1000);
        assert!(cfg.unresolved.is_empty());
        assert_eq!(cfg.succs[1], vec![3]);
    }

    #[test]
    fn unknown_jalr_is_recorded() {
        let s = stream(&[
            Instr::Jalr {
                rd: Reg::Zero,
                rs1: Reg::T2,
                offset: 0,
            },
            Instr::Ecall,
        ]);
        let cfg = Cfg::build(&s, 0x1000);
        assert_eq!(cfg.unresolved, vec![0x1000]);
    }
}
