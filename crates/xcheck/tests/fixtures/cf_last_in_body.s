# HWL-05: the last instruction of a hardware-loop body is a branch,
# which RI5CY forbids (the implicit back-edge and the branch collide).
    li a0, 0
    li t0, 4
    lp.setup x0, t0, end
body:
    addi a0, a0, 1
    bne a0, t0, body
end:
    ecall
