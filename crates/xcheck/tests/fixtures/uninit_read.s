# DF-01: a2 and a3 are read without ever being written on any path.
    add a0, a2, a3
    ecall
