# FMT-01: one program quantizes to two different output widths —
# a kernel quantizes to exactly one format, so mixing pv.qnt.n
# (nibble) and pv.qnt.c (crumb) is an emitter bug.
    li a1, 0x1c010000
    li a0, 7
    li a2, 9
    pv.qnt.n t0, a0, a1
    pv.qnt.c t1, a2, a1
    li a0, 0
    ecall
