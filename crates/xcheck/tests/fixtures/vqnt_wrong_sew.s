# VEC-02: the quantizer consumes halfword accumulators (SEW = e16),
# but the nearest preceding vsetvli selects e8 — this traps at runtime.
    li t0, 2
    li a1, 0x1c010000
    vsetvli zero, t0, e8
    vqnt.n.v v2, a1, v0
    li a0, 0
    ecall
