# CFG-01: a branch whose target is not an instruction boundary of the
# program — the offset lands mid-instruction, so the "target" would be
# decoded garbage.
    li t0, 1
    beq t0, x0, 6
    li a0, 0
    ecall
