# MEM-02: a post-increment word load from a provably 2-mod-4 address.
    li a2, 0x1c020002
    p.lw a1, 4(a2!)
    add a0, a1, a2
    ecall
