# DF-03: the kernel profile reserves tp; writing it is a clobber (and
# the written value is dead on top of it).
    li tp, 4
    li a0, 0
    ecall
