# VEC-03 twice: the first unit-stride load spans 16 bytes (VLEN = 128)
# starting exactly one-past-the-end of the declared input region; the
# second load stays inside the region but its base is provably
# 2 mod 4, so every beat pays a misalignment stall.
    li t0, 16
    vsetvli zero, t0, e8
    li a1, 0x1c010040
    vle.v v0, (a1)
    li a2, 0x1c010002
    vle.v v1, (a2)
    li a0, 0
    ecall
