# HWL-01: a branch from outside a hardware loop targets the middle of
# its body, bypassing the loop-setup (RI5CY forbids jumping into an
# active loop body).
    li a0, 0
    li t0, 4
    bne a0, zero, inside
    lp.setup x0, t0, end
    addi a0, a0, 1
inside:
    addi a0, a0, 2
end:
    ecall
