# MEM-01: the store lands at 0x1c070000, provably outside the single
# declared output region (0x1c068000 + 0x100).
    li a0, 0x1c070000
    li a1, 7
    sw a1, 0(a0)
    li a0, 0
    ecall
