# QNT-01: the first threshold tree's root (0) is smaller than its
# in-order predecessor (7), so the Eytzinger heap is not sorted.
# Layout: two nibble trees of 15 halfwords each, 32-byte stride.
    li t0, 0x01020304
    la a1, trees
    pv.qnt.n a0, t0, a1
    ecall
    .half trees, 0, 4, 12, 2, 6, 10, 14, 1, 3, 5, 7, 9, 11, 13, 15, 0, 108, 104, 112, 102, 106, 110, 114, 101, 103, 105, 107, 109, 111, 113, 115, 0
