# VEC-01: the vector load executes with vl/sew still at the reset
# state (vl = 0) because no vsetvli appears anywhere before it.
    li a1, 0x1c010000
    vle.v v0, (a1)
    li a0, 0
    ecall
