//! Negative-diagnostic golden tests: each hand-broken program under
//! `tests/fixtures/*.s` must produce exactly the diagnostics pinned in
//! `tests/golden/<name>.txt` — the rule ID, PC, decoded instruction
//! and message are all part of the contract, so a rule that silently
//! stops firing (or starts over-firing) shows up as a readable diff.
//!
//! To re-bless after an intentional analyzer change:
//!
//! ```text
//! XPULPNN_BLESS=1 cargo test -p xcheck --test broken_golden
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use xcheck::{LintConfig, Region};

const BLESS_ENV: &str = "XPULPNN_BLESS";

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The lint profile each fixture is checked under. Most run the
/// default profile; region- and reservation-sensitive fixtures use the
/// kernel profile with a deliberately tight contract.
fn config_for(name: &str) -> LintConfig {
    match name {
        "out_of_region_store" => {
            LintConfig::kernel(vec![Region::new("output", 0x1c06_8000, 0x100)])
        }
        "reserved_clobber" => LintConfig::kernel(Vec::new()),
        "vector_out_of_region" => {
            LintConfig::vector(vec![Region::new("input", 0x1c01_0000, 0x40)], 128)
        }
        _ => LintConfig::default(),
    }
}

fn fixture_names() -> Vec<String> {
    let mut names: Vec<String> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "s"))
        .map(|p| p.file_stem().expect("stem").to_string_lossy().into_owned())
        .collect();
    names.sort();
    names
}

#[test]
fn broken_fixtures_match_golden_diagnostics() {
    let bless = std::env::var(BLESS_ENV).is_ok();
    let mut mismatches = Vec::new();
    for name in fixture_names() {
        let src_path = fixtures_dir().join(format!("{name}.s"));
        let source = std::fs::read_to_string(&src_path).expect("read fixture");
        let prog = pulp_asm::text::parse(&source)
            .unwrap_or_else(|e| panic!("{}: {e}", src_path.display()));
        let report = xcheck::analyze_program(&prog, &config_for(&name));
        assert!(
            !report.clean(),
            "{name}: a broken fixture must produce diagnostics"
        );
        let got = report.render();
        let path = golden_dir().join(format!("{name}.txt"));
        if bless {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&path, &got).expect("write snapshot");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {}: {e}\nre-bless with {BLESS_ENV}=1 cargo test -p xcheck --test broken_golden",
                path.display()
            )
        });
        if want != got {
            mismatches.push(format!("{name}:\n--- want\n{want}--- got\n{got}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden diagnostics diverged (re-bless with {BLESS_ENV}=1 if intentional):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_dir_matches_fixtures_exactly() {
    let fixtures: BTreeSet<String> = fixture_names().into_iter().collect();
    let snapshots: BTreeSet<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .map(|p| p.file_stem().expect("stem").to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        fixtures, snapshots,
        "every fixture needs a snapshot and vice versa"
    );
}

#[test]
fn fixtures_cover_every_rule_family() {
    let mut families = BTreeSet::new();
    for name in fixture_names() {
        let source = std::fs::read_to_string(fixtures_dir().join(format!("{name}.s"))).unwrap();
        let prog = pulp_asm::text::parse(&source).unwrap();
        for d in xcheck::analyze_program(&prog, &config_for(&name)).diagnostics {
            families.insert(d.rule.family());
        }
    }
    // Every family the catalog enumerates must have a firing fixture.
    // DRF is the one exception: SPMD race rules need multi-hart
    // configs and staged dispatch images, so they live in their own
    // fixture suite (`spmd_golden.rs`), which has its own coverage
    // test.
    for family in xcheck::Rule::families() {
        if family == "DRF" {
            continue;
        }
        assert!(
            families.contains(family),
            "no fixture fires a {family} rule; got {families:?}"
        );
    }
}
