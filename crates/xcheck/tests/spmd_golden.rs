//! SPMD race-diagnostic golden tests: each hand-broken racy kernel
//! below must produce exactly the DRF diagnostics pinned in
//! `tests/spmd_golden/<name>.txt`. Unlike the single-hart fixtures in
//! `broken_golden.rs`, SPMD fixtures need a multi-hart [`SpmdConfig`]
//! (barrier address, DMA bands, dispatch-slab ownership) next to the
//! program, so they are built in Rust rather than parsed from `.s`.
//!
//! To re-bless after an intentional analyzer change:
//!
//! ```text
//! XPULPNN_BLESS=1 cargo test -p xcheck --test spmd_golden
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use pulp_asm::Asm;
use pulp_isa::csr::MHARTID;
use pulp_isa::instr::{LoopIdx, MulDivOp};
use pulp_isa::{Instr, Reg};
use xcheck::{analyze_spmd, DispatchSlab, DmaBand, Region, Rule, SpmdConfig, SpmdReport};

const BLESS_ENV: &str = "XPULPNN_BLESS";

/// Event-unit barrier address used by every fixture.
const BARRIER: u32 = 0x1b20_0000;
/// TCDM window the fixtures compute in.
const BASE: u32 = 0x1000_0000;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/spmd_golden")
}

fn cfg(ncores: usize) -> SpmdConfig {
    let mut c = SpmdConfig::new(ncores, BARRIER);
    c.regions = vec![Region::new("tcdm", BASE, 0x1_0000)];
    c
}

fn csrr_mhartid(a: &mut Asm, rd: Reg) {
    a.i(Instr::Csr {
        op: 1,
        rd,
        rs1: Reg::Zero,
        csr: MHARTID,
    });
}

/// Each hart stores one word at `BASE + stride * mhartid`.
fn per_hart_store(stride: i32) -> pulp_asm::Program {
    let mut a = Asm::new(0x1c00_8000);
    csrr_mhartid(&mut a, Reg::T0);
    a.li(Reg::T1, stride);
    a.i(Instr::MulDiv {
        op: MulDivOp::Mul,
        rd: Reg::T0,
        rs1: Reg::T0,
        rs2: Reg::T1,
    });
    a.li(Reg::T2, BASE as i32);
    a.add(Reg::T0, Reg::T0, Reg::T2);
    a.sw(Reg::T3, 0, Reg::T0);
    a.li(Reg::A0, 0);
    a.ecall();
    a.assemble().unwrap()
}

/// DRF-01: every hart stores the same output word — the classic
/// "forgot to offset by mhartid" channel-split bug.
fn same_word_stores() -> (pulp_asm::Program, SpmdConfig) {
    (per_hart_store(0), cfg(4))
}

/// DRF-02: hart h publishes its partial sum in slot h then reads its
/// neighbour's slot with no barrier in between — the read races with
/// the peer's unmerged write.
fn missing_barrier_reduction() -> (pulp_asm::Program, SpmdConfig) {
    let mut a = Asm::new(0x1c00_8000);
    csrr_mhartid(&mut a, Reg::T0);
    a.slli(Reg::T0, Reg::T0, 2);
    a.li(Reg::T2, BASE as i32);
    a.add(Reg::T0, Reg::T0, Reg::T2);
    a.sw(Reg::T3, 0, Reg::T0);
    a.lw(Reg::T5, 4, Reg::T0);
    a.li(Reg::A0, 0);
    a.ecall();
    (a.assemble().unwrap(), cfg(2))
}

/// DRF-03: a double-buffering DMA band is scheduled over the same
/// region the harts are still computing into.
fn dma_band_under_compute() -> (pulp_asm::Program, SpmdConfig) {
    let mut c = cfg(2);
    c.dma.push(DmaBand {
        name: "band 1".to_string(),
        region: 0,
        base: BASE,
        len: 64,
    });
    (per_hart_store(4), c)
}

/// DRF-04 (structural): a barrier store inside a hardware-loop body.
fn barrier_inside_hwloop() -> (pulp_asm::Program, SpmdConfig) {
    let mut a = Asm::new(0x1c00_8000);
    a.li(Reg::T4, BARRIER as i32);
    a.lp_setupi(LoopIdx::L0, 2, "loop_end");
    a.sw(Reg::Zero, 0, Reg::T4);
    a.label("loop_end");
    a.li(Reg::A0, 0);
    a.ecall();
    (a.assemble().unwrap(), cfg(2))
}

/// DRF-04 (protocol): hart 0 takes a barrier the other hart skips, so
/// the harts reach different barrier sequences.
fn divergent_barrier_paths() -> (pulp_asm::Program, SpmdConfig) {
    let mut a = Asm::new(0x1c00_8000);
    csrr_mhartid(&mut a, Reg::T0);
    a.bne(Reg::T0, Reg::Zero, "skip");
    a.li(Reg::T4, BARRIER as i32);
    a.sw(Reg::Zero, 0, Reg::T4);
    a.label("skip");
    a.li(Reg::A0, 0);
    a.ecall();
    (a.assemble().unwrap(), cfg(2))
}

/// DRF-05: hart 1's store lands inside the dispatch slab but outside
/// the cursor word it owns.
fn cursor_slab_escape() -> (pulp_asm::Program, SpmdConfig) {
    let mut c = cfg(2);
    c.slabs.push(DispatchSlab {
        name: "dispatch".to_string(),
        base: BASE,
        len: 64,
        allowed: (0..2u32).map(|h| vec![(BASE + 4 * h, 4)]).collect(),
    });
    (per_hart_store(8), c)
}

/// Name → fixture, sorted by name so renders are order-stable.
fn fixtures() -> Vec<(&'static str, pulp_asm::Program, SpmdConfig)> {
    let mut out = vec![
        ("same_word_stores", same_word_stores()),
        ("missing_barrier_reduction", missing_barrier_reduction()),
        ("dma_band_under_compute", dma_band_under_compute()),
        ("barrier_inside_hwloop", barrier_inside_hwloop()),
        ("divergent_barrier_paths", divergent_barrier_paths()),
        ("cursor_slab_escape", cursor_slab_escape()),
    ]
    .into_iter()
    .map(|(name, (prog, cfg))| (name, prog, cfg))
    .collect::<Vec<_>>();
    out.sort_by_key(|(name, _, _)| *name);
    out
}

fn reports() -> Vec<(&'static str, SpmdReport)> {
    fixtures()
        .into_iter()
        .map(|(name, prog, cfg)| (name, analyze_spmd(&prog, &cfg)))
        .collect()
}

#[test]
fn racy_fixtures_match_golden_diagnostics() {
    let bless = std::env::var(BLESS_ENV).is_ok();
    let mut mismatches = Vec::new();
    for (name, report) in reports() {
        assert!(
            !report.race_clean(),
            "{name}: a racy fixture must produce DRF diagnostics"
        );
        assert!(
            report.unproven.is_empty(),
            "{name}: fixtures must be decidable, not unproven: {}",
            report.render()
        );
        let got = report.render();
        let path = golden_dir().join(format!("{name}.txt"));
        if bless {
            std::fs::create_dir_all(golden_dir()).expect("create golden dir");
            std::fs::write(&path, &got).expect("write snapshot");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing snapshot {}: {e}\nre-bless with {BLESS_ENV}=1 cargo test -p xcheck --test spmd_golden",
                path.display()
            )
        });
        if want != got {
            mismatches.push(format!("{name}:\n--- want\n{want}--- got\n{got}"));
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden SPMD diagnostics diverged (re-bless with {BLESS_ENV}=1 if intentional):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_dir_matches_fixtures_exactly() {
    let names: BTreeSet<String> = fixtures()
        .into_iter()
        .map(|(name, _, _)| name.to_string())
        .collect();
    let snapshots: BTreeSet<String> = std::fs::read_dir(golden_dir())
        .expect("golden dir")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "txt"))
        .map(|p| p.file_stem().expect("stem").to_string_lossy().into_owned())
        .collect();
    assert_eq!(
        names, snapshots,
        "every SPMD fixture needs a snapshot and vice versa"
    );
}

#[test]
fn fixtures_cover_every_drf_rule() {
    let mut fired = BTreeSet::new();
    for (_, report) in reports() {
        for d in &report.diagnostics {
            fired.insert(d.rule.id());
        }
    }
    for rule in Rule::ALL {
        if rule.family() != "DRF" {
            continue;
        }
        assert!(
            fired.contains(rule.id()),
            "no SPMD fixture fires {}; got {fired:?}",
            rule.id()
        );
    }
}
