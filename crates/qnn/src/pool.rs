//! Golden pooling and activation layers.
//!
//! The paper motivates the SIMD `pv.max`/`pv.min`/`pv.avg` instructions
//! with max/average pooling and ReLU (§III-A); these are the scalar
//! reference implementations the pooling kernels are checked against.

/// Geometry of a 2-D pooling layer over an HWC tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolShape {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels (unchanged by pooling).
    pub c: usize,
    /// Pooling window (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
}

impl PoolShape {
    /// Output height.
    pub const fn out_h(&self) -> usize {
        (self.in_h - self.k) / self.stride + 1
    }

    /// Output width.
    pub const fn out_w(&self) -> usize {
        (self.in_w - self.k) / self.stride + 1
    }

    /// Elements in the input tensor.
    pub const fn input_len(&self) -> usize {
        self.in_h * self.in_w * self.c
    }

    /// Elements in the output tensor.
    pub const fn output_len(&self) -> usize {
        self.out_h() * self.out_w() * self.c
    }
}

fn pool_with(
    shape: &PoolShape,
    input: &[i16],
    mut combine: impl FnMut(&mut Vec<i32>, usize, i16),
    mut finish: impl FnMut(i32, usize) -> i16,
) -> Vec<i16> {
    assert_eq!(input.len(), shape.input_len(), "input length mismatch");
    let mut out = Vec::with_capacity(shape.output_len());
    let window = shape.k * shape.k;
    for oy in 0..shape.out_h() {
        for ox in 0..shape.out_w() {
            let mut acc: Vec<i32> = Vec::new();
            for ky in 0..shape.k {
                for kx in 0..shape.k {
                    let y = oy * shape.stride + ky;
                    let x = ox * shape.stride + kx;
                    let base = (y * shape.in_w + x) * shape.c;
                    for c in 0..shape.c {
                        combine(&mut acc, c, input[base + c]);
                    }
                }
            }
            out.extend(acc.into_iter().map(|v| finish(v, window)));
        }
    }
    out
}

/// Max pooling (HWC, valid padding).
///
/// # Panics
///
/// Panics on a length mismatch.
pub fn maxpool(shape: &PoolShape, input: &[i16]) -> Vec<i16> {
    pool_with(
        shape,
        input,
        |acc, c, v| {
            if acc.len() <= c {
                acc.push(v as i32);
            } else {
                acc[c] = acc[c].max(v as i32);
            }
        },
        |v, _| v as i16,
    )
}

/// Average pooling with truncating division (HWC, valid padding), as the
/// integer kernels compute it.
///
/// # Panics
///
/// Panics on a length mismatch.
pub fn avgpool(shape: &PoolShape, input: &[i16]) -> Vec<i16> {
    pool_with(
        shape,
        input,
        |acc, c, v| {
            if acc.len() <= c {
                acc.push(v as i32);
            } else {
                acc[c] += v as i32;
            }
        },
        |v, window| (v / window as i32) as i16,
    )
}

/// Element-wise ReLU.
pub fn relu(input: &[i16]) -> Vec<i16> {
    input.iter().map(|&v| v.max(0)).collect()
}

/// 2×2/stride-2 average pooling computed as the SIMD kernels compute it:
/// a cascade of pairwise `(a + b) >> 1` averages (`pv.avgu`), i.e.
/// `avg(avg(a, b), avg(c, d))` per channel.
///
/// This differs from [`avgpool`]'s `sum/4` by at most 1 ULP (the
/// intermediate truncation), which is why the hardware kernels are
/// verified against *this* reference.
///
/// # Panics
///
/// Panics on a length mismatch or if the shape is not a 2×2/stride-2
/// pooling.
pub fn avgpool_2x2_cascaded(shape: &PoolShape, input: &[i16]) -> Vec<i16> {
    assert_eq!(shape.k, 2, "cascaded average pooling is 2x2 only");
    assert_eq!(shape.stride, 2, "cascaded average pooling is stride-2 only");
    assert_eq!(input.len(), shape.input_len(), "input length mismatch");
    let avg = |a: i16, b: i16| ((a as i32 + b as i32) >> 1) as i16;
    let mut out = Vec::with_capacity(shape.output_len());
    for oy in 0..shape.out_h() {
        for ox in 0..shape.out_w() {
            let at = |dy: usize, dx: usize, c: usize| {
                input[((oy * 2 + dy) * shape.in_w + (ox * 2 + dx)) * shape.c + c]
            };
            for c in 0..shape.c {
                out.push(avg(
                    avg(at(0, 0, c), at(0, 1, c)),
                    avg(at(1, 0, c), at(1, 1, c)),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2() {
        let s = PoolShape {
            in_h: 2,
            in_w: 2,
            c: 1,
            k: 2,
            stride: 2,
        };
        assert_eq!(maxpool(&s, &[1, 5, 3, 2]), vec![5]);
        let s2 = PoolShape {
            in_h: 4,
            in_w: 4,
            c: 1,
            k: 2,
            stride: 2,
        };
        let input: Vec<i16> = (1..=16).collect();
        assert_eq!(maxpool(&s2, &input), vec![6, 8, 14, 16]);
    }

    #[test]
    fn maxpool_multi_channel_independent() {
        let s = PoolShape {
            in_h: 2,
            in_w: 2,
            c: 2,
            k: 2,
            stride: 2,
        };
        // HWC: (y0x0: [1, -4]) (y0x1: [2, -3]) (y1x0: [3, -2]) (y1x1: [0, -1])
        let input = vec![1, -4, 2, -3, 3, -2, 0, -1];
        assert_eq!(maxpool(&s, &input), vec![3, -1]);
    }

    #[test]
    fn avgpool_truncates_like_kernels() {
        let s = PoolShape {
            in_h: 2,
            in_w: 2,
            c: 1,
            k: 2,
            stride: 2,
        };
        assert_eq!(avgpool(&s, &[1, 2, 3, 5]), vec![2]); // 11/4 = 2
        assert_eq!(avgpool(&s, &[-1, -2, -3, -5]), vec![-2]); // -11/4 -> -2 (trunc)
    }

    #[test]
    fn pool_with_stride_one_overlaps() {
        let s = PoolShape {
            in_h: 3,
            in_w: 3,
            c: 1,
            k: 2,
            stride: 1,
        };
        assert_eq!(s.out_h(), 2);
        let input = vec![1, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(maxpool(&s, &input), vec![5, 6, 8, 9]);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(&[-5, 0, 5, -1, 127]), vec![0, 0, 5, 0, 127]);
    }

    #[test]
    fn cascaded_avg_matches_exact_when_no_truncation() {
        let s = PoolShape {
            in_h: 2,
            in_w: 2,
            c: 1,
            k: 2,
            stride: 2,
        };
        assert_eq!(avgpool_2x2_cascaded(&s, &[4, 8, 12, 16]), vec![10]);
        assert_eq!(avgpool(&s, &[4, 8, 12, 16]), vec![10]);
    }

    #[test]
    fn cascaded_avg_truncates_pairwise() {
        let s = PoolShape {
            in_h: 2,
            in_w: 2,
            c: 1,
            k: 2,
            stride: 2,
        };
        // (1+2)>>1 = 1, (3+5)>>1 = 4, (1+4)>>1 = 2; exact sum/4 = 2 too.
        assert_eq!(avgpool_2x2_cascaded(&s, &[1, 2, 3, 5]), vec![2]);
        // (0+1)>>1 = 0, (1+1)>>1 = 1, (0+1)>>1 = 0; exact = 3/4 = 0.
        assert_eq!(avgpool_2x2_cascaded(&s, &[0, 1, 1, 1]), vec![0]);
        // A case where the two differ: (1+1, 0+1) -> (1, 0) -> 0 vs 3/4=0;
        // (3+1, 1+1) -> (2,1) -> 1 vs 6/4 = 1. Difference shows at:
        // (1+0, 1+1) -> (0, 1) -> 0 while (1+0+1+1)/4 = 0. Max deviation 1:
        let s2 = PoolShape {
            in_h: 2,
            in_w: 2,
            c: 1,
            k: 2,
            stride: 2,
        };
        for vals in [[3i16, 0, 0, 0], [1, 1, 1, 0], [7, 7, 7, 6]] {
            let casc = avgpool_2x2_cascaded(&s2, &vals)[0];
            let exact = avgpool(&s2, &vals)[0];
            assert!((casc - exact).abs() <= 1, "{vals:?}: {casc} vs {exact}");
        }
    }

    #[test]
    #[should_panic(expected = "2x2 only")]
    fn cascaded_avg_rejects_large_windows() {
        let s = PoolShape {
            in_h: 3,
            in_w: 3,
            c: 1,
            k: 3,
            stride: 1,
        };
        avgpool_2x2_cascaded(&s, &[0; 9]);
    }
}
