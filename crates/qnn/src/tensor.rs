//! Quantized tensors and their packed memory layout.
//!
//! Elements are held logically as `i16` (covering both unsigned
//! activations up to 255 and signed weights at every width) and packed into bytes
//! with **lane 0 in the least-significant bits** — the layout the
//! `pulp-isa` SIMD lane semantics read, and the layout the PULP-NN
//! kernels store tensors in.

use crate::bits::BitWidth;
use std::fmt;

/// A quantized tensor: logical `i16` values plus their bit width and
/// signedness.
///
/// Invariant: every value fits the declared range (unsigned
/// `0..=2^b − 1` or signed `−2^(b−1)..=2^(b−1) − 1`); constructors check
/// this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantTensor {
    bits: BitWidth,
    signed: bool,
    values: Vec<i16>,
}

/// An out-of-range element passed to a [`QuantTensor`] constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeError {
    /// Index of the offending element.
    pub index: usize,
    /// Its value.
    pub value: i16,
    /// The declared width.
    pub bits: BitWidth,
    /// The declared signedness.
    pub signed: bool,
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.signed { "signed" } else { "unsigned" };
        write!(
            f,
            "element {} = {} does not fit {kind} {}",
            self.index, self.value, self.bits
        )
    }
}

impl std::error::Error for RangeError {}

impl QuantTensor {
    /// Creates an unsigned (activation) tensor.
    ///
    /// # Errors
    ///
    /// [`RangeError`] if any element is outside `0..=2^b − 1`.
    pub fn activations(bits: BitWidth, values: Vec<i16>) -> Result<QuantTensor, RangeError> {
        for (index, &v) in values.iter().enumerate() {
            if (v as i32) < 0 || v as i32 > bits.unsigned_max() {
                return Err(RangeError {
                    index,
                    value: v,
                    bits,
                    signed: false,
                });
            }
        }
        Ok(QuantTensor {
            bits,
            signed: false,
            values,
        })
    }

    /// Creates a signed (weight) tensor.
    ///
    /// # Errors
    ///
    /// [`RangeError`] if any element is outside the signed range.
    pub fn weights(bits: BitWidth, values: Vec<i16>) -> Result<QuantTensor, RangeError> {
        for (index, &v) in values.iter().enumerate() {
            if (v as i32) < bits.signed_min() || v as i32 > bits.signed_max() {
                return Err(RangeError {
                    index,
                    value: v,
                    bits,
                    signed: true,
                });
            }
        }
        Ok(QuantTensor {
            bits,
            signed: true,
            values,
        })
    }

    /// The element width.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// True for weight (signed) tensors.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The logical element values.
    pub fn values(&self) -> &[i16] {
        &self.values
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Packed size in bytes (elements padded up to a whole byte).
    pub fn packed_len(&self) -> usize {
        packed_len(self.bits, self.values.len())
    }

    /// Packs the tensor into bytes, lane 0 in the least-significant bits
    /// of byte 0. Sub-byte tails are zero-padded.
    pub fn pack(&self) -> Vec<u8> {
        pack(self.bits, &self.values)
    }

    /// Unpacks `count` elements from packed bytes, reversing [`pack`].
    ///
    /// Unsigned tensors zero-extend each lane; signed tensors
    /// sign-extend.
    pub fn unpack(bits: BitWidth, signed: bool, bytes: &[u8], count: usize) -> QuantTensor {
        let values = unpack(bits, signed, bytes, count);
        QuantTensor {
            bits,
            signed,
            values,
        }
    }
}

/// Packed size in bytes for `count` elements of width `bits`.
pub fn packed_len(bits: BitWidth, count: usize) -> usize {
    (count * bits.bits() as usize).div_ceil(8)
}

/// Packs logical values (low `bits` of each) into bytes, lane 0 first.
pub fn pack(bits: BitWidth, values: &[i16]) -> Vec<u8> {
    let b = bits.bits() as usize;
    let mask = (1u32 << b) - 1;
    let mut out = vec![0u8; packed_len(bits, values.len())];
    for (i, &v) in values.iter().enumerate() {
        let bitpos = i * b;
        let byte = bitpos / 8;
        let shift = bitpos % 8;
        out[byte] |= (((v as u32) & mask) << shift) as u8;
    }
    out
}

/// Unpacks `count` elements, zero- or sign-extending each lane.
pub fn unpack(bits: BitWidth, signed: bool, bytes: &[u8], count: usize) -> Vec<i16> {
    let b = bits.bits() as usize;
    let mask = (1u32 << b) - 1;
    (0..count)
        .map(|i| {
            let bitpos = i * b;
            let byte = bitpos / 8;
            let shift = bitpos % 8;
            let raw = ((bytes[byte] as u32) >> shift) & mask;
            if signed {
                let sh = 16 - b;
                (((raw as u16) << sh) as i16) >> sh
            } else {
                raw as i16
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_nibbles_low_lane_first() {
        // values 1, 2 -> byte 0x21 (lane 0 in low nibble).
        let t = QuantTensor::activations(BitWidth::W4, vec![1, 2, 15]).unwrap();
        assert_eq!(t.pack(), vec![0x21, 0x0f]);
        assert_eq!(t.packed_len(), 2);
    }

    #[test]
    fn pack_crumbs() {
        // values 1, 2, 3, 0 -> 0b00_11_10_01 = 0x39.
        let t = QuantTensor::activations(BitWidth::W2, vec![1, 2, 3, 0]).unwrap();
        assert_eq!(t.pack(), vec![0x39]);
    }

    #[test]
    fn pack_bytes_is_identity_cast() {
        let t = QuantTensor::weights(BitWidth::W8, vec![-1, 2, -128]).unwrap();
        assert_eq!(t.pack(), vec![0xff, 0x02, 0x80]);
    }

    #[test]
    fn unpack_round_trip_all_widths() {
        for bits in crate::bits::ALL_WIDTHS {
            // signed round trip
            let vals: Vec<i16> = (0..37)
                .map(|i| ((i * 7) % bits.levels() as i32 + bits.signed_min()) as i16)
                .collect();
            let t = QuantTensor::weights(bits, vals.clone()).unwrap();
            let back = QuantTensor::unpack(bits, true, &t.pack(), vals.len());
            assert_eq!(back.values(), &vals[..], "{bits} signed");
            // unsigned round trip
            let vals: Vec<i16> = (0..37)
                .map(|i| ((i * 5) % bits.levels() as i32) as i16)
                .collect();
            let t = QuantTensor::activations(bits, vals.clone()).unwrap();
            let back = QuantTensor::unpack(bits, false, &t.pack(), vals.len());
            assert_eq!(back.values(), &vals[..], "{bits} unsigned");
        }
    }

    #[test]
    fn range_checking() {
        assert!(QuantTensor::activations(BitWidth::W4, vec![16]).is_err());
        assert!(QuantTensor::activations(BitWidth::W4, vec![-1]).is_err());
        assert!(QuantTensor::weights(BitWidth::W4, vec![8]).is_err());
        assert!(QuantTensor::weights(BitWidth::W4, vec![-8]).is_ok());
        assert!(QuantTensor::weights(BitWidth::W2, vec![2]).is_err());
        let e = QuantTensor::activations(BitWidth::W2, vec![0, 9]).unwrap_err();
        assert_eq!(e.index, 1);
        assert!(e.to_string().contains("does not fit"));
    }

    #[test]
    fn odd_counts_pad_with_zeros() {
        let t = QuantTensor::activations(BitWidth::W4, vec![5, 6, 7]).unwrap();
        let p = t.pack();
        assert_eq!(p, vec![0x65, 0x07]);
        assert_eq!(packed_len(BitWidth::W2, 5), 2);
        assert_eq!(packed_len(BitWidth::W8, 3), 3);
    }
}
