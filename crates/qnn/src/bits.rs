//! Quantization bit widths.

use std::fmt;

/// Bit width of a quantized tensor element: 8-bit (`byte`), 4-bit
/// (*nibble*) or 2-bit (*crumb*), matching the operand widths the
/// XpulpV2/XpulpNN SIMD datapaths support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BitWidth {
    /// 8-bit elements (XpulpV2 SIMD).
    W8,
    /// 4-bit elements (XpulpNN *nibble*).
    W4,
    /// 2-bit elements (XpulpNN *crumb*).
    W2,
}

/// All widths, widest first — the order the paper's figures sweep.
pub const ALL_WIDTHS: [BitWidth; 3] = [BitWidth::W8, BitWidth::W4, BitWidth::W2];

impl BitWidth {
    /// Number of bits per element.
    #[inline]
    pub const fn bits(self) -> u32 {
        match self {
            BitWidth::W8 => 8,
            BitWidth::W4 => 4,
            BitWidth::W2 => 2,
        }
    }

    /// Elements packed into one 32-bit word.
    #[inline]
    pub const fn elems_per_word(self) -> usize {
        (32 / self.bits()) as usize
    }

    /// Number of quantization levels (`2^bits`).
    #[inline]
    pub const fn levels(self) -> u32 {
        1 << self.bits()
    }

    /// Largest unsigned value (activation range is `0..=unsigned_max`).
    #[inline]
    pub const fn unsigned_max(self) -> i32 {
        (self.levels() - 1) as i32
    }

    /// Largest signed value (weight range is `signed_min..=signed_max`).
    #[inline]
    pub const fn signed_max(self) -> i32 {
        (self.levels() / 2 - 1) as i32
    }

    /// Smallest signed value.
    #[inline]
    pub const fn signed_min(self) -> i32 {
        -((self.levels() / 2) as i32)
    }

    /// Thresholds needed per output channel for staircase quantization
    /// (`2^bits − 1`, paper §II-2).
    #[inline]
    pub const fn threshold_count(self) -> usize {
        (self.levels() - 1) as usize
    }

    /// Parses `8`, `4` or `2`.
    pub fn from_bits(bits: u32) -> Option<BitWidth> {
        match bits {
            8 => Some(BitWidth::W8),
            4 => Some(BitWidth::W4),
            2 => Some(BitWidth::W2),
            _ => None,
        }
    }

    /// Whether this width needs the XpulpNN extension for native SIMD.
    #[inline]
    pub const fn is_sub_byte(self) -> bool {
        matches!(self, BitWidth::W4 | BitWidth::W2)
    }
}

impl fmt::Display for BitWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(BitWidth::W8.elems_per_word(), 4);
        assert_eq!(BitWidth::W4.elems_per_word(), 8);
        assert_eq!(BitWidth::W2.elems_per_word(), 16);
        for w in ALL_WIDTHS {
            assert_eq!(w.bits() * w.elems_per_word() as u32, 32);
            assert_eq!(BitWidth::from_bits(w.bits()), Some(w));
        }
        assert_eq!(BitWidth::from_bits(16), None);
    }

    #[test]
    fn ranges() {
        assert_eq!(BitWidth::W4.unsigned_max(), 15);
        assert_eq!(BitWidth::W4.signed_max(), 7);
        assert_eq!(BitWidth::W4.signed_min(), -8);
        assert_eq!(BitWidth::W2.unsigned_max(), 3);
        assert_eq!(BitWidth::W2.signed_min(), -2);
        assert_eq!(BitWidth::W8.unsigned_max(), 255);
    }

    #[test]
    fn threshold_counts_match_paper() {
        // "Each convolution layer requires 2^Q − 1 threshold values per
        // channel to produce a Q-bit output."
        assert_eq!(BitWidth::W4.threshold_count(), 15);
        assert_eq!(BitWidth::W2.threshold_count(), 3);
    }

    #[test]
    fn display_and_sub_byte() {
        assert_eq!(BitWidth::W4.to_string(), "4-bit");
        assert!(BitWidth::W4.is_sub_byte());
        assert!(!BitWidth::W8.is_sub_byte());
    }
}
