//! Golden fully-connected (linear) layer: the classifier head of a QNN.
//!
//! `out[j] = Σ_i weights[j·in + i] · input[i]`, re-quantized per output
//! channel like a 1×1 convolution.

use crate::quantizer::Quantizer;

/// Geometry of a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinearShape {
    /// Input features.
    pub in_features: usize,
    /// Output features (neurons).
    pub out_features: usize,
}

impl LinearShape {
    /// Elements in the weight matrix.
    pub const fn weight_len(&self) -> usize {
        self.in_features * self.out_features
    }

    /// Multiply-accumulates in the layer.
    pub const fn macs(&self) -> u64 {
        self.weight_len() as u64
    }
}

/// Matrix-vector product with `i32` accumulation.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn linear_i32(shape: &LinearShape, input: &[i16], weights: &[i16]) -> Vec<i32> {
    assert_eq!(input.len(), shape.in_features, "input length mismatch");
    assert_eq!(weights.len(), shape.weight_len(), "weight length mismatch");
    (0..shape.out_features)
        .map(|j| {
            weights[j * shape.in_features..(j + 1) * shape.in_features]
                .iter()
                .zip(input)
                .map(|(&w, &x)| w as i32 * x as i32)
                .sum()
        })
        .collect()
}

/// Quantized linear layer: accumulate then re-quantize per output.
pub fn linear_quantized(
    shape: &LinearShape,
    input: &[i16],
    weights: &[i16],
    quantizer: &Quantizer,
) -> Vec<i16> {
    linear_i32(shape, input, weights)
        .iter()
        .enumerate()
        .map(|(j, &acc)| quantizer.quantize(j, acc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::{Quantizer, ThresholdSet};
    use crate::BitWidth;

    #[test]
    fn identity_matrix() {
        let s = LinearShape {
            in_features: 3,
            out_features: 3,
        };
        let w = vec![1, 0, 0, 0, 1, 0, 0, 0, 1];
        assert_eq!(linear_i32(&s, &[5, -2, 7], &w), vec![5, -2, 7]);
        assert_eq!(s.macs(), 9);
    }

    #[test]
    fn known_product() {
        let s = LinearShape {
            in_features: 2,
            out_features: 2,
        };
        // W = [[1, 2], [3, 4]], x = [10, 20]
        let w = vec![1, 2, 3, 4];
        assert_eq!(linear_i32(&s, &[10, 20], &w), vec![50, 110]);
    }

    #[test]
    fn quantized_output_in_range() {
        let s = LinearShape {
            in_features: 8,
            out_features: 4,
        };
        let mut rng = crate::rng::TensorRng::new(1);
        let x = rng.activations(BitWidth::W4, s.in_features);
        let w = rng.weights(BitWidth::W4, s.weight_len());
        let q = Quantizer::Thresholds(ThresholdSet::uniform(
            BitWidth::W4,
            s.out_features,
            -100,
            100,
        ));
        let out = linear_quantized(&s, x.values(), w.values(), &q);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|&v| (0..16).contains(&v)));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_bad_lengths() {
        let s = LinearShape {
            in_features: 4,
            out_features: 2,
        };
        linear_i32(&s, &[1, 2], &[0; 8]);
    }
}
