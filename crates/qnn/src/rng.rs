//! Seeded synthetic tensor generation.
//!
//! The paper benchmarks on convolution layers whose *cost* depends only
//! on geometry and bit width, not on the trained values; synthetic
//! tensors from a seeded RNG therefore preserve every measured quantity
//! while keeping the reproduction self-contained (see DESIGN.md,
//! substitution table).

use crate::bits::BitWidth;
use crate::quantizer::ThresholdSet;
use crate::tensor::QuantTensor;
use xrand::Rng;

/// A deterministic generator of quantized tensors and threshold sets.
#[derive(Debug, Clone)]
pub struct TensorRng {
    rng: Rng,
}

impl TensorRng {
    /// Creates a generator from a seed; the same seed always produces the
    /// same tensors.
    pub fn new(seed: u64) -> TensorRng {
        TensorRng {
            rng: Rng::new(seed),
        }
    }

    /// Uniform unsigned activations over the full range of `bits`.
    pub fn activations(&mut self, bits: BitWidth, len: usize) -> QuantTensor {
        let values: Vec<i16> = (0..len)
            .map(|_| self.rng.range_i32(0, bits.unsigned_max()) as i16)
            .collect();
        QuantTensor::activations(bits, values).expect("generated in range")
    }

    /// Uniform signed weights over the full range of `bits`.
    pub fn weights(&mut self, bits: BitWidth, len: usize) -> QuantTensor {
        let values: Vec<i16> = (0..len)
            .map(|_| self.rng.range_i32(bits.signed_min(), bits.signed_max()) as i16)
            .collect();
        QuantTensor::weights(bits, values).expect("generated in range")
    }

    /// Per-channel sorted thresholds drawn uniformly from `[lo, hi]` —
    /// distinct per channel, like batch-norm-folded trained thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is not sub-byte.
    pub fn thresholds(
        &mut self,
        bits: BitWidth,
        channels: usize,
        lo: i16,
        hi: i16,
    ) -> ThresholdSet {
        let n = bits.threshold_count();
        let per_channel: Vec<Vec<i16>> = (0..channels)
            .map(|_| {
                let mut t: Vec<i16> = (0..n)
                    .map(|_| self.rng.range_i32(lo as i32, hi as i32) as i16)
                    .collect();
                t.sort_unstable();
                t
            })
            .collect();
        ThresholdSet::from_sorted(bits, per_channel).expect("sorted by construction")
    }

    /// A raw uniform value, exposed so callers can derive auxiliary
    /// parameters (e.g. biases) from the same seed stream.
    pub fn gen_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.rng.range_i32(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TensorRng::new(1);
        let mut b = TensorRng::new(1);
        assert_eq!(
            a.activations(BitWidth::W4, 100),
            b.activations(BitWidth::W4, 100)
        );
        let mut c = TensorRng::new(2);
        assert_ne!(a.weights(BitWidth::W8, 100), c.weights(BitWidth::W8, 100));
    }

    #[test]
    fn generated_tensors_respect_ranges() {
        let mut rng = TensorRng::new(9);
        for bits in crate::bits::ALL_WIDTHS {
            let a = rng.activations(bits, 1000);
            assert!(a
                .values()
                .iter()
                .all(|&v| v as i32 >= 0 && v as i32 <= bits.unsigned_max()));
            let w = rng.weights(bits, 1000);
            assert!(w
                .values()
                .iter()
                .all(|&v| v as i32 >= bits.signed_min() && v as i32 <= bits.signed_max()));
        }
    }

    #[test]
    fn generated_values_cover_range() {
        let mut rng = TensorRng::new(11);
        let a = rng.activations(BitWidth::W2, 400);
        for level in 0..=3i16 {
            assert!(a.values().contains(&level), "level {level} never generated");
        }
    }

    #[test]
    fn thresholds_sorted_and_distinct_channels() {
        let mut rng = TensorRng::new(5);
        let t = rng.thresholds(BitWidth::W4, 8, -500, 500);
        assert_eq!(t.channels(), 8);
        for ch in 0..8 {
            assert!(t.channel(ch).windows(2).all(|w| w[0] <= w[1]));
        }
        assert_ne!(
            t.channel(0),
            t.channel(1),
            "channels should differ with high probability"
        );
    }
}
