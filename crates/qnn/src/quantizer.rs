//! Re-quantization of convolution accumulators.
//!
//! Two paths, matching the paper's execution model (§II-2):
//!
//! * **8-bit outputs** use scale-and-clamp: `clamp((acc + bias) >> shift,
//!   0, 255)` — "for 8-bit operands scaling and clamp operations are used
//!   for compression";
//! * **sub-byte outputs** use the thresholding-based *staircase*
//!   function: the `Q`-bit result is the number of pre-trained
//!   thresholds strictly below the (16-bit saturated) accumulator. The
//!   thresholds absorb bias and batch normalization, `2^Q − 1` per
//!   output channel.

use crate::bits::BitWidth;
use std::fmt;

/// Per-channel sorted threshold tables for staircase quantization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdSet {
    bits: BitWidth,
    per_channel: Vec<Vec<i16>>,
}

/// An invalid threshold table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThresholdError {
    /// Wrong number of thresholds for the width.
    Count {
        /// Offending channel.
        channel: usize,
        /// Provided count.
        got: usize,
        /// Required count (`2^Q − 1`).
        want: usize,
    },
    /// Thresholds not in non-decreasing order.
    Unsorted {
        /// Offending channel.
        channel: usize,
    },
    /// Sub-byte widths only.
    Width(BitWidth),
}

impl fmt::Display for ThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThresholdError::Count { channel, got, want } => {
                write!(
                    f,
                    "channel {channel}: expected {want} thresholds, got {got}"
                )
            }
            ThresholdError::Unsorted { channel } => {
                write!(f, "channel {channel}: thresholds not sorted")
            }
            ThresholdError::Width(b) => {
                write!(f, "staircase quantization is for sub-byte outputs, got {b}")
            }
        }
    }
}

impl std::error::Error for ThresholdError {}

impl ThresholdSet {
    /// Builds a set from per-channel sorted thresholds.
    ///
    /// # Errors
    ///
    /// [`ThresholdError`] if `bits` is not sub-byte, any channel has the
    /// wrong count, or any channel is unsorted.
    pub fn from_sorted(
        bits: BitWidth,
        per_channel: Vec<Vec<i16>>,
    ) -> Result<ThresholdSet, ThresholdError> {
        if !bits.is_sub_byte() {
            return Err(ThresholdError::Width(bits));
        }
        let want = bits.threshold_count();
        for (channel, t) in per_channel.iter().enumerate() {
            if t.len() != want {
                return Err(ThresholdError::Count {
                    channel,
                    got: t.len(),
                    want,
                });
            }
            if t.windows(2).any(|w| w[0] > w[1]) {
                return Err(ThresholdError::Unsorted { channel });
            }
        }
        Ok(ThresholdSet { bits, per_channel })
    }

    /// Builds uniform thresholds splitting `[lo, hi]` into `2^Q` equal
    /// bins, identical for every channel — a convenient synthetic stand-in
    /// for trained batch-norm-folded thresholds.
    pub fn uniform(bits: BitWidth, channels: usize, lo: i16, hi: i16) -> ThresholdSet {
        assert!(
            bits.is_sub_byte(),
            "uniform thresholds are for sub-byte outputs"
        );
        assert!(lo < hi, "uniform threshold range must be non-empty");
        let n = bits.threshold_count();
        let span = (hi as i32 - lo as i32) as i64;
        let one: Vec<i16> = (1..=n as i64)
            .map(|i| (lo as i64 + span * i / (n as i64 + 1)) as i16)
            .collect();
        ThresholdSet {
            bits,
            per_channel: vec![one; channels],
        }
    }

    /// Output width.
    pub fn bits(&self) -> BitWidth {
        self.bits
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.per_channel.len()
    }

    /// Sorted thresholds of one channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn channel(&self, channel: usize) -> &[i16] {
        &self.per_channel[channel]
    }

    /// Quantizes an accumulator for `channel`: saturate to `i16`, then
    /// count thresholds strictly below it.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn quantize(&self, channel: usize, acc: i32) -> u8 {
        let x = acc.clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        self.per_channel[channel]
            .iter()
            .take_while(|t| **t < x)
            .count() as u8
    }
}

/// A complete re-quantization policy for one layer output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Quantizer {
    /// 8-bit scale-and-clamp: `clamp((acc + bias[ch]) >> shift, 0, 255)`.
    Shift8 {
        /// Right-shift amount (power-of-two output scale).
        shift: u32,
        /// Per-channel bias added before the shift (empty = zero bias).
        bias: Vec<i32>,
    },
    /// Sub-byte staircase quantization.
    Thresholds(ThresholdSet),
}

impl Quantizer {
    /// The output width this policy produces.
    pub fn output_bits(&self) -> BitWidth {
        match self {
            Quantizer::Shift8 { .. } => BitWidth::W8,
            Quantizer::Thresholds(t) => t.bits(),
        }
    }

    /// Quantizes one accumulator for one output channel, producing an
    /// unsigned activation (`0..=255` for 8-bit, `0..=2^Q − 1` below).
    pub fn quantize(&self, channel: usize, acc: i32) -> i16 {
        match self {
            Quantizer::Shift8 { shift, bias } => {
                let b = bias.get(channel).copied().unwrap_or(0);
                (acc.wrapping_add(b) >> shift).clamp(0, 255) as i16
            }
            Quantizer::Thresholds(t) => t.quantize(channel, acc) as i16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_thresholds_have_right_shape() {
        let t = ThresholdSet::uniform(BitWidth::W4, 64, -2000, 2000);
        assert_eq!(t.channels(), 64);
        assert_eq!(t.channel(0).len(), 15);
        assert!(t.channel(0).windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(t.channel(0), t.channel(63));
        let t2 = ThresholdSet::uniform(BitWidth::W2, 4, -100, 100);
        assert_eq!(t2.channel(0).len(), 3);
        assert_eq!(t2.channel(0)[1], 0);
    }

    #[test]
    fn staircase_is_monotone_and_covers_all_bins() {
        let t = ThresholdSet::uniform(BitWidth::W4, 1, -800, 800);
        let mut last = 0u8;
        let mut seen = std::collections::BTreeSet::new();
        for acc in (-1000..1000).step_by(7) {
            let q = t.quantize(0, acc);
            assert!(q >= last || acc < -800, "monotone");
            assert!(q <= 15);
            seen.insert(q);
            last = q;
        }
        assert_eq!(seen.len(), 16, "all 16 bins reachable");
    }

    #[test]
    fn saturation_to_i16_before_thresholding() {
        let t = ThresholdSet::uniform(BitWidth::W2, 1, -100, 100);
        assert_eq!(t.quantize(0, i32::MAX), 3);
        assert_eq!(t.quantize(0, i32::MIN), 0);
    }

    #[test]
    fn from_sorted_validation() {
        let ok = ThresholdSet::from_sorted(BitWidth::W2, vec![vec![-1, 0, 1]]);
        assert!(ok.is_ok());
        let bad_count = ThresholdSet::from_sorted(BitWidth::W2, vec![vec![0, 1]]);
        assert!(matches!(
            bad_count,
            Err(ThresholdError::Count { want: 3, .. })
        ));
        let unsorted = ThresholdSet::from_sorted(BitWidth::W2, vec![vec![1, 0, 2]]);
        assert!(matches!(
            unsorted,
            Err(ThresholdError::Unsorted { channel: 0 })
        ));
        let wide = ThresholdSet::from_sorted(BitWidth::W8, vec![]);
        assert!(matches!(wide, Err(ThresholdError::Width(BitWidth::W8))));
    }

    #[test]
    fn shift8_clamps_to_unsigned_byte() {
        let q = Quantizer::Shift8 {
            shift: 4,
            bias: vec![],
        };
        assert_eq!(q.quantize(0, 160), 10);
        assert_eq!(q.quantize(0, -5), 0);
        assert_eq!(q.quantize(0, 1 << 20), 255);
        let qb = Quantizer::Shift8 {
            shift: 0,
            bias: vec![100, -100],
        };
        assert_eq!(qb.quantize(0, 0), 100);
        assert_eq!(qb.quantize(1, 150), 50);
        assert_eq!(qb.quantize(2, 7), 7, "missing bias defaults to 0");
    }

    #[test]
    fn quantizer_output_bits() {
        let q8 = Quantizer::Shift8 {
            shift: 0,
            bias: vec![],
        };
        assert_eq!(q8.output_bits(), BitWidth::W8);
        let q4 = Quantizer::Thresholds(ThresholdSet::uniform(BitWidth::W4, 1, -1, 1));
        assert_eq!(q4.output_bits(), BitWidth::W4);
    }

    #[test]
    fn threshold_equality_uses_strict_less_than() {
        let t = ThresholdSet::from_sorted(BitWidth::W2, vec![vec![0, 10, 20]]).unwrap();
        assert_eq!(t.quantize(0, 0), 0); // not strictly above 0
        assert_eq!(t.quantize(0, 1), 1);
        assert_eq!(t.quantize(0, 10), 1);
        assert_eq!(t.quantize(0, 21), 3);
    }
}
