#![warn(missing_docs)]

//! Host-side quantized-neural-network mathematics for the XpulpNN
//! reproduction.
//!
//! The paper evaluates convolution kernels over low-bitwidth tensors
//! (8-, 4- and 2-bit). This crate provides everything those kernels need
//! *besides* the simulator:
//!
//! * [`BitWidth`] and [`tensor::QuantTensor`] — quantized tensors with
//!   the packed little-endian lane layout the SIMD datapath reads;
//! * [`quantizer`] — the staircase (threshold) re-quantization of
//!   Hubara et al. used for sub-byte outputs (paper §II-2), plus the
//!   shift-and-clip path used for 8-bit outputs;
//! * [`conv`] — golden `conv2d` / im2col / matmul reference
//!   implementations in plain `i32` arithmetic, the source of truth the
//!   simulator kernels are verified against;
//! * [`pool`] — golden max/average pooling and ReLU;
//! * [`rng`] — seeded synthetic tensor generation (the substitution for
//!   trained network weights — kernel cost depends only on geometry and
//!   bitwidth, not on learned values).
//!
//! # Example
//!
//! ```
//! use qnn::{BitWidth, conv::ConvShape, rng::TensorRng};
//!
//! let shape = ConvShape::paper_benchmark(); // 16×16×32 in, 64×3×3×32 filters
//! let mut rng = TensorRng::new(42);
//! let input = rng.activations(BitWidth::W4, shape.input_len());
//! let weights = rng.weights(BitWidth::W4, shape.weight_len());
//! let acc = qnn::conv::conv2d_i32(&shape, input.values(), weights.values());
//! assert_eq!(acc.len(), shape.output_len());
//! ```

pub mod bits;
pub mod conv;
pub mod depthwise;
pub mod linear;
pub mod pool;
pub mod quantizer;
pub mod rng;
pub mod tensor;

pub use bits::BitWidth;
pub use quantizer::{Quantizer, ThresholdSet};
pub use tensor::QuantTensor;
