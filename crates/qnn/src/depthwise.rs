//! Golden depthwise convolution — the other half of the depthwise-
//! separable blocks in MobileNetV1, the network the paper's introduction
//! uses to motivate 4-bit quantization (Rusci et al.: "a 4-bit
//! MobileNetV1 achieves an accuracy loss of only 4%").
//!
//! A depthwise convolution applies one `k×k` filter per channel, with no
//! cross-channel accumulation:
//! `out[y][x][c] = Σ_{ky,kx} in[y+ky][x+kx][c] · w[c][ky][kx]`.
//!
//! On a packed-SIMD machine this is the awkward case: the dot-product
//! unit reduces *across* lanes, but depthwise needs per-lane
//! independence, so the kernels fall back to scalar MACs over a
//! channel-major staging of the window — which is why depthwise layers
//! run far below the MatMul kernels' MAC/cycle (and why later PULP work
//! adds dedicated support).

use crate::quantizer::Quantizer;

/// Geometry of a depthwise convolution (channel count preserved).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DepthwiseShape {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Channels.
    pub c: usize,
    /// Kernel size (square).
    pub k: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
}

impl DepthwiseShape {
    /// Output height.
    pub const fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Output width.
    pub const fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k) / self.stride + 1
    }

    /// Elements in the input tensor.
    pub const fn input_len(&self) -> usize {
        self.in_h * self.in_w * self.c
    }

    /// Elements in the weight tensor (`c · k · k`, channel-major).
    pub const fn weight_len(&self) -> usize {
        self.c * self.k * self.k
    }

    /// Elements in the output tensor.
    pub const fn output_len(&self) -> usize {
        self.out_h() * self.out_w() * self.c
    }

    /// Multiply-accumulates in the layer.
    pub const fn macs(&self) -> u64 {
        (self.output_len() * self.k * self.k) as u64
    }
}

/// Direct depthwise convolution producing `i32` accumulators in HWC
/// order. Weights are channel-major: `w[c][ky][kx]`.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn depthwise_i32(shape: &DepthwiseShape, input: &[i16], weights: &[i16]) -> Vec<i32> {
    assert_eq!(input.len(), shape.input_len(), "input length mismatch");
    assert_eq!(weights.len(), shape.weight_len(), "weight length mismatch");
    let mut out = vec![0i32; shape.output_len()];
    for oy in 0..shape.out_h() {
        for ox in 0..shape.out_w() {
            for c in 0..shape.c {
                let mut acc = 0i32;
                for ky in 0..shape.k {
                    for kx in 0..shape.k {
                        let y = (oy * shape.stride + ky) as isize - shape.pad as isize;
                        let x = (ox * shape.stride + kx) as isize - shape.pad as isize;
                        if y < 0 || x < 0 || y >= shape.in_h as isize || x >= shape.in_w as isize {
                            continue;
                        }
                        let a = input[(y as usize * shape.in_w + x as usize) * shape.c + c];
                        let w = weights[(c * shape.k + ky) * shape.k + kx];
                        acc += a as i32 * w as i32;
                    }
                }
                out[(oy * shape.out_w() + ox) * shape.c + c] = acc;
            }
        }
    }
    out
}

/// Quantized depthwise convolution (per-channel re-quantization).
pub fn depthwise_quantized(
    shape: &DepthwiseShape,
    input: &[i16],
    weights: &[i16],
    quantizer: &Quantizer,
) -> Vec<i16> {
    depthwise_i32(shape, input, weights)
        .iter()
        .enumerate()
        .map(|(i, &acc)| quantizer.quantize(i % shape.c, acc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::{conv2d_i32, ConvShape};

    #[test]
    fn geometry() {
        let s = DepthwiseShape {
            in_h: 8,
            in_w: 8,
            c: 16,
            k: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(s.out_h(), 8);
        assert_eq!(s.weight_len(), 16 * 9);
        assert_eq!(s.macs(), (8 * 8 * 16 * 9) as u64);
    }

    #[test]
    fn identity_filter_passes_input_through() {
        let s = DepthwiseShape {
            in_h: 3,
            in_w: 3,
            c: 2,
            k: 3,
            stride: 1,
            pad: 1,
        };
        // Filter with 1 at the centre for both channels.
        let mut w = vec![0i16; s.weight_len()];
        w[4] = 1; // channel 0 centre
        w[9 + 4] = 1; // channel 1 centre
        let input: Vec<i16> = (0..s.input_len() as i16).collect();
        assert_eq!(
            depthwise_i32(&s, &input, &w),
            input.iter().map(|&v| v as i32).collect::<Vec<_>>()
        );
    }

    #[test]
    fn channels_do_not_mix() {
        let s = DepthwiseShape {
            in_h: 2,
            in_w: 2,
            c: 2,
            k: 1,
            stride: 1,
            pad: 0,
        };
        let input = vec![1, 100, 2, 100, 3, 100, 4, 100];
        let w = vec![5, 0]; // channel 0 scaled by 5, channel 1 zeroed
        let out = depthwise_i32(&s, &input, &w);
        assert_eq!(out, vec![5, 0, 10, 0, 15, 0, 20, 0]);
    }

    /// A depthwise conv equals a full conv whose weight matrix is
    /// diagonal across channels.
    #[test]
    fn equivalence_with_diagonal_full_convolution() {
        use crate::rng::TensorRng;
        use crate::BitWidth;
        let s = DepthwiseShape {
            in_h: 4,
            in_w: 5,
            c: 3,
            k: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = TensorRng::new(8);
        let input = rng.activations(BitWidth::W4, s.input_len());
        let dw_w = rng.weights(BitWidth::W4, s.weight_len());
        // Expand to a full conv weight tensor: out_c = c, zero except
        // where in-channel == out-channel.
        let full = ConvShape {
            in_h: s.in_h,
            in_w: s.in_w,
            in_c: s.c,
            out_c: s.c,
            k_h: s.k,
            k_w: s.k,
            stride: s.stride,
            pad: s.pad,
        };
        let mut full_w = vec![0i16; full.weight_len()];
        for c in 0..s.c {
            for ky in 0..s.k {
                for kx in 0..s.k {
                    let dst = c * full.col_len() + (ky * s.k + kx) * s.c + c;
                    full_w[dst] = dw_w.values()[(c * s.k + ky) * s.k + kx];
                }
            }
        }
        assert_eq!(
            depthwise_i32(&s, input.values(), dw_w.values()),
            conv2d_i32(&full, input.values(), &full_w)
        );
    }
}
