//! Golden convolution models: direct conv2d, im2col and MatMul.
//!
//! Layouts follow the PULP-NN/CMSIS-NN convention the paper's kernels
//! use (§II-2):
//!
//! * activations are **HWC**: `input[(y * in_w + x) * in_c + c]`;
//! * weights are one row per output channel, ordered `(ky, kx, ic)`:
//!   `weights[oc * col_len + (ky * k_w + kx) * in_c + ic]`;
//! * the im2col buffer of one output pixel is a column with the same
//!   `(ky, kx, ic)` order, zero-filled where the window leaves the
//!   (zero-padded) input;
//! * outputs are HWC over `(out_h, out_w, out_c)`.
//!
//! With these layouts `conv2d = matmul(weights, im2col)` exactly, which
//! the tests verify — and which is why the simulator kernels can
//! implement convolution as the two-phase im2col + MatMul the paper
//! describes.

use crate::quantizer::Quantizer;

/// Geometry of a 2-D convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Input channels.
    pub in_c: usize,
    /// Output channels (number of filters).
    pub out_c: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvShape {
    /// The layer benchmarked throughout the paper's §IV: a 16×16×32
    /// input tensor with 64 filters of 3×3×32, stride 1, padding 1.
    pub const fn paper_benchmark() -> ConvShape {
        ConvShape {
            in_h: 16,
            in_w: 16,
            in_c: 32,
            out_c: 64,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        }
    }

    /// Output height.
    pub const fn out_h(&self) -> usize {
        (self.in_h + 2 * self.pad - self.k_h) / self.stride + 1
    }

    /// Output width.
    pub const fn out_w(&self) -> usize {
        (self.in_w + 2 * self.pad - self.k_w) / self.stride + 1
    }

    /// Elements in the input tensor.
    pub const fn input_len(&self) -> usize {
        self.in_h * self.in_w * self.in_c
    }

    /// Elements in the weight tensor.
    pub const fn weight_len(&self) -> usize {
        self.out_c * self.col_len()
    }

    /// Elements in the output tensor.
    pub const fn output_len(&self) -> usize {
        self.out_h() * self.out_w() * self.out_c
    }

    /// Length of one im2col column (`k_h · k_w · in_c`).
    pub const fn col_len(&self) -> usize {
        self.k_h * self.k_w * self.in_c
    }

    /// Number of output pixels.
    pub const fn pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Multiply-accumulate operations in the layer.
    pub const fn macs(&self) -> u64 {
        (self.pixels() * self.out_c * self.col_len()) as u64
    }
}

/// Extracts the im2col column for output pixel `(out_y, out_x)`.
///
/// # Panics
///
/// Panics if `input.len() != shape.input_len()` or the pixel is out of
/// range.
pub fn im2col(shape: &ConvShape, input: &[i16], out_y: usize, out_x: usize) -> Vec<i16> {
    assert_eq!(input.len(), shape.input_len(), "input length mismatch");
    assert!(
        out_y < shape.out_h() && out_x < shape.out_w(),
        "pixel out of range"
    );
    let mut col: Vec<i16> = Vec::with_capacity(shape.col_len());
    for ky in 0..shape.k_h {
        for kx in 0..shape.k_w {
            let y = (out_y * shape.stride + ky) as isize - shape.pad as isize;
            let x = (out_x * shape.stride + kx) as isize - shape.pad as isize;
            if y < 0 || x < 0 || y >= shape.in_h as isize || x >= shape.in_w as isize {
                col.extend(std::iter::repeat_n(0, shape.in_c));
            } else {
                let base = (y as usize * shape.in_w + x as usize) * shape.in_c;
                col.extend_from_slice(&input[base..base + shape.in_c]);
            }
        }
    }
    col
}

/// All im2col columns, pixel-major (`pixels × col_len`).
pub fn im2col_all(shape: &ConvShape, input: &[i16]) -> Vec<i16> {
    let mut out = Vec::with_capacity(shape.pixels() * shape.col_len());
    for y in 0..shape.out_h() {
        for x in 0..shape.out_w() {
            out.extend(im2col(shape, input, y, x));
        }
    }
    out
}

/// Direct 2-D convolution producing `i32` accumulators in HWC order.
///
/// # Panics
///
/// Panics on length mismatches.
pub fn conv2d_i32(shape: &ConvShape, input: &[i16], weights: &[i16]) -> Vec<i32> {
    assert_eq!(input.len(), shape.input_len(), "input length mismatch");
    assert_eq!(weights.len(), shape.weight_len(), "weight length mismatch");
    let mut out = vec![0i32; shape.output_len()];
    let col_len = shape.col_len();
    for oy in 0..shape.out_h() {
        for ox in 0..shape.out_w() {
            let col = im2col(shape, input, oy, ox);
            for oc in 0..shape.out_c {
                let row = &weights[oc * col_len..(oc + 1) * col_len];
                let acc: i32 = row
                    .iter()
                    .zip(&col)
                    .map(|(&w, &a)| (w as i32) * (a as i32))
                    .sum();
                out[(oy * shape.out_w() + ox) * shape.out_c + oc] = acc;
            }
        }
    }
    out
}

/// MatMul over pre-computed im2col columns: `out[pixel][oc] =
/// dot(weights[oc], cols[pixel])`, returned in HWC order (pixel-major).
///
/// # Panics
///
/// Panics on length mismatches.
pub fn matmul_i32(shape: &ConvShape, weights: &[i16], cols: &[i16]) -> Vec<i32> {
    let col_len = shape.col_len();
    assert_eq!(weights.len(), shape.weight_len(), "weight length mismatch");
    assert_eq!(
        cols.len(),
        shape.pixels() * col_len,
        "column length mismatch"
    );
    let mut out = vec![0i32; shape.output_len()];
    for p in 0..shape.pixels() {
        let col = &cols[p * col_len..(p + 1) * col_len];
        for oc in 0..shape.out_c {
            let row = &weights[oc * col_len..(oc + 1) * col_len];
            out[p * shape.out_c + oc] = row
                .iter()
                .zip(col)
                .map(|(&w, &a)| (w as i32) * (a as i32))
                .sum();
        }
    }
    out
}

/// Full quantized convolution: conv2d accumulators re-quantized per
/// output channel with `quantizer`.
pub fn conv2d_quantized(
    shape: &ConvShape,
    input: &[i16],
    weights: &[i16],
    quantizer: &Quantizer,
) -> Vec<i16> {
    conv2d_i32(shape, input, weights)
        .iter()
        .enumerate()
        .map(|(i, &acc)| quantizer.quantize(i % shape.out_c, acc))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWidth;
    use crate::quantizer::ThresholdSet;
    use crate::rng::TensorRng;

    #[test]
    fn paper_benchmark_geometry() {
        let s = ConvShape::paper_benchmark();
        assert_eq!(s.out_h(), 16);
        assert_eq!(s.out_w(), 16);
        assert_eq!(s.col_len(), 288);
        assert_eq!(s.input_len(), 16 * 16 * 32);
        assert_eq!(s.weight_len(), 64 * 288);
        assert_eq!(s.output_len(), 16 * 16 * 64);
        // 16·16 pixels × 64 channels × 288 MACs
        assert_eq!(s.macs(), 16 * 16 * 64 * 288);
    }

    #[test]
    fn identity_kernel_1x1() {
        let s = ConvShape {
            in_h: 2,
            in_w: 2,
            in_c: 2,
            out_c: 2,
            k_h: 1,
            k_w: 1,
            stride: 1,
            pad: 0,
        };
        // weights = identity over channels
        let w = vec![1, 0, 0, 1];
        let input = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let out = conv2d_i32(&s, &input, &w);
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn known_3x3_sum_kernel_with_padding() {
        // 3×3 input, single channel, all-ones 3×3 kernel, pad 1:
        // centre output = sum of all inputs.
        let s = ConvShape {
            in_h: 3,
            in_w: 3,
            in_c: 1,
            out_c: 1,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let input = vec![1, 1, 1, 1, 1, 1, 1, 1, 1];
        let w = vec![1; 9];
        let out = conv2d_i32(&s, &input, &w);
        assert_eq!(out[4], 9); // centre
        assert_eq!(out[0], 4); // corner sees a 2×2 window
        assert_eq!(out[1], 6); // edge sees a 2×3 window
    }

    #[test]
    fn stride_two_halves_output() {
        let s = ConvShape {
            in_h: 4,
            in_w: 4,
            in_c: 1,
            out_c: 1,
            k_h: 2,
            k_w: 2,
            stride: 2,
            pad: 0,
        };
        assert_eq!(s.out_h(), 2);
        assert_eq!(s.out_w(), 2);
        let input: Vec<i16> = (1..=16).collect();
        let w = vec![1, 1, 1, 1];
        let out = conv2d_i32(&s, &input, &w);
        assert_eq!(
            out,
            vec![
                1 + 2 + 5 + 6,
                3 + 4 + 7 + 8,
                9 + 10 + 13 + 14,
                11 + 12 + 15 + 16
            ]
        );
    }

    #[test]
    fn im2col_matmul_equals_direct_conv() {
        let mut rng = TensorRng::new(7);
        for s in [
            ConvShape {
                in_h: 5,
                in_w: 4,
                in_c: 3,
                out_c: 4,
                k_h: 3,
                k_w: 3,
                stride: 1,
                pad: 1,
            },
            ConvShape {
                in_h: 6,
                in_w: 6,
                in_c: 8,
                out_c: 2,
                k_h: 1,
                k_w: 1,
                stride: 1,
                pad: 0,
            },
            ConvShape {
                in_h: 7,
                in_w: 5,
                in_c: 4,
                out_c: 3,
                k_h: 3,
                k_w: 2,
                stride: 2,
                pad: 1,
            },
        ] {
            let input = rng.activations(BitWidth::W4, s.input_len());
            let weights = rng.weights(BitWidth::W4, s.weight_len());
            let direct = conv2d_i32(&s, input.values(), weights.values());
            let cols = im2col_all(&s, input.values());
            let via_matmul = matmul_i32(&s, weights.values(), &cols);
            assert_eq!(direct, via_matmul, "{s:?}");
        }
    }

    #[test]
    fn quantized_conv_output_in_range() {
        let s = ConvShape {
            in_h: 4,
            in_w: 4,
            in_c: 4,
            out_c: 4,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let mut rng = TensorRng::new(3);
        let input = rng.activations(BitWidth::W2, s.input_len());
        let weights = rng.weights(BitWidth::W2, s.weight_len());
        let q = Quantizer::Thresholds(ThresholdSet::uniform(BitWidth::W2, s.out_c, -64, 64));
        let out = conv2d_quantized(&s, input.values(), weights.values(), &q);
        assert_eq!(out.len(), s.output_len());
        assert!(out.iter().all(|&v| (0..=3).contains(&v)));
    }

    #[test]
    fn im2col_zero_pads_borders() {
        let s = ConvShape {
            in_h: 2,
            in_w: 2,
            in_c: 1,
            out_c: 1,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        };
        let input = vec![5, 6, 7, 8];
        let col = im2col(&s, &input, 0, 0);
        // window centred at (0,0): first row and column are padding.
        assert_eq!(col, vec![0, 0, 0, 0, 5, 6, 0, 7, 8]);
    }
}
