#![warn(missing_docs)]

//! Cortex-M kernel cost model for the paper's commercial-MCU baselines.
//!
//! Figs. 8 and 9 of the paper compare the extended RISC-V core against
//! the STM32L476 (Cortex-M4) and STM32H743 (Cortex-M7) running 8-bit
//! CMSIS-NN convolutions and the sub-byte extension of Rusci et al.
//! Building a full ARMv7E-M simulator is out of scope; instead — per the
//! substitution table in DESIGN.md — this crate replays the *structure*
//! of those kernels as parametric instruction counts with documented
//! per-class cycle costs:
//!
//! * the CMSIS-NN execution model is the same im2col + MatMul used on
//!   RISC-V (§II-2 of the paper, which cites it as the origin of the
//!   model), with activations expanded to `q15` during im2col and a
//!   2-filters × 2-pixels inner loop built around `SMLAD` (2 MACs per
//!   instruction — the widest SIMD ARMv7E-M offers, which is exactly the
//!   limitation the paper attacks);
//! * sub-byte operands have no ISA support at all, so both the im2col
//!   expansion and the in-loop weight decompression pay mask/shift/or
//!   sequences per element (Rusci et al., CODES+ISSS 2018);
//! * the Cortex-M7 applies its dual-issue pipeline as a global issue
//!   factor plus single-cycle loads/branches.
//!
//! The absolute numbers are a first-order model; what the reproduction
//! relies on (and what the tests pin) is the *shape*: M-class cores pay
//! roughly an order of magnitude more cycles than the XpulpNN core on
//! sub-byte kernels, sub-byte runs *slower* than 8-bit on ARM (the
//! paper's central motivation), and the M7 outruns the M4 in cycles but
//! burns far more power.

use qnn::conv::ConvShape;
use qnn::BitWidth;

/// Which ARM core executes the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArmCore {
    /// Cortex-M4: single-issue, 2-cycle loads, 3-cycle taken branches.
    M4,
    /// Cortex-M7: dual-issue, single-cycle loads, branch prediction.
    M7,
}

/// Instruction-class counts of one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// 32-bit loads.
    pub ldr: u64,
    /// Stores.
    pub strs: u64,
    /// `SMLAD`-class dual-MAC instructions.
    pub mac: u64,
    /// Other DSP ops (`SXTB16`, `ROR`, `SSAT`, …).
    pub dsp: u64,
    /// Plain ALU / pointer bookkeeping.
    pub alu: u64,
    /// Loop branches (taken).
    pub branch: u64,
}

impl OpCounts {
    /// Element-wise sum.
    pub fn add(&self, o: &OpCounts) -> OpCounts {
        OpCounts {
            ldr: self.ldr + o.ldr,
            strs: self.strs + o.strs,
            mac: self.mac + o.mac,
            dsp: self.dsp + o.dsp,
            alu: self.alu + o.alu,
            branch: self.branch + o.branch,
        }
    }

    /// Total dynamic instructions.
    pub fn instructions(&self) -> u64 {
        self.ldr + self.strs + self.mac + self.dsp + self.alu + self.branch
    }
}

/// Per-class cycle costs plus the issue-width factor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per load.
    pub ldr: u64,
    /// Cycles per store.
    pub strs: u64,
    /// Cycles per MAC instruction.
    pub mac: u64,
    /// Cycles per DSP instruction.
    pub dsp: u64,
    /// Cycles per ALU instruction.
    pub alu: u64,
    /// Cycles per taken branch.
    pub branch: u64,
    /// Effective issue factor (1.0 single-issue; < 1 models the M7's
    /// partial dual-issue on dependent DSP code).
    pub issue_factor: f64,
}

impl CostModel {
    /// The Cortex-M4 model (ARMv7E-M single-issue timings).
    pub const fn m4() -> CostModel {
        CostModel {
            ldr: 2,
            strs: 1,
            mac: 1,
            dsp: 1,
            alu: 1,
            branch: 3,
            issue_factor: 1.0,
        }
    }

    /// The Cortex-M7 model (dual-issue, single-cycle loads, predicted
    /// branches).
    pub const fn m7() -> CostModel {
        CostModel {
            ldr: 1,
            strs: 1,
            mac: 1,
            dsp: 1,
            alu: 1,
            branch: 1,
            issue_factor: 0.65,
        }
    }

    /// For a core.
    pub const fn for_core(core: ArmCore) -> CostModel {
        match core {
            ArmCore::M4 => CostModel::m4(),
            ArmCore::M7 => CostModel::m7(),
        }
    }

    /// Cycles for a set of counts.
    pub fn cycles(&self, c: &OpCounts) -> u64 {
        let raw = c.ldr * self.ldr
            + c.strs * self.strs
            + c.mac * self.mac
            + c.dsp * self.dsp
            + c.alu * self.alu
            + c.branch * self.branch;
        (raw as f64 * self.issue_factor).ceil() as u64
    }
}

/// Cycle breakdown of one convolution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvCycles {
    /// im2col (+ `q15` expansion) cycles.
    pub im2col: u64,
    /// MatMul cycles.
    pub matmul: u64,
    /// Re-quantization / packing cycles.
    pub requant: u64,
    /// Per-pixel outer-loop bookkeeping.
    pub outer: u64,
}

impl ConvCycles {
    /// Total layer cycles.
    pub fn total(&self) -> u64 {
        self.im2col + self.matmul + self.requant + self.outer
    }
}

/// Instruction counts of the im2col-with-expansion phase.
///
/// CMSIS-NN expands `q7` activations to `q15` while building the column
/// (via `SXTB16`); the sub-byte extension additionally unmasks each
/// element with shift/and/or sequences.
fn im2col_counts(shape: &ConvShape, bits: BitWidth) -> OpCounts {
    let elems = (shape.pixels() * shape.col_len()) as u64;
    match bits {
        // Per 4 elements: 1 LDR + 2 SXTB16 + 2 STR + 1 pointer ALU.
        BitWidth::W8 => OpCounts {
            ldr: elems / 4,
            dsp: elems / 2,
            strs: elems / 2,
            alu: elems / 4,
            branch: elems / 16,
            ..OpCounts::default()
        },
        // Per 8 elements (one packed word): 1 LDR + 8 mask/shift/or +
        // 4 STR of expanded q15 pairs.
        BitWidth::W4 => OpCounts {
            ldr: elems / 8,
            alu: elems,
            strs: elems / 2,
            branch: elems / 16,
            ..OpCounts::default()
        },
        // Per 16 elements: 1 LDR + 20 mask/shift/or + 8 STR.
        BitWidth::W2 => OpCounts {
            ldr: elems / 16,
            alu: elems * 5 / 4,
            strs: elems / 2,
            branch: elems / 16,
            ..OpCounts::default()
        },
    }
}

/// Instruction counts of the 2×2 `SMLAD` MatMul.
fn matmul_counts(shape: &ConvShape, bits: BitWidth) -> OpCounts {
    // Inner iterations: 2 pixels × 2 filters per block, 4 elements per
    // iteration (one SMLAD pair per accumulator).
    let iters =
        (shape.pixels() / 2) as u64 * (shape.out_c / 2) as u64 * (shape.col_len() / 4) as u64;
    // Per iteration: 4 activation LDR (2 q15-words per pixel) + weight
    // fetch + expansion + 8 SMLAD + bookkeeping + loop branch. Weight
    // expansion: q7 uses SXTB16/ROR (3 ops per 4 weights); q4/q2 have no
    // ISA support, so each weight costs an extract + sign-extend + merge
    // sequence (≈3 ops per q4 weight, ≈4 per q2 weight, across the two
    // filters of the 2×2 block — Rusci et al.'s software decompression).
    let (w_ldr_num, w_ldr_den, w_expand) = match bits {
        BitWidth::W8 => (1, 1, 3),  // 1 LDR, SXTB16×2 + ROR
        BitWidth::W4 => (1, 2, 24), // ½ LDR per 4 weights, 3 ops/weight × 2 filters
        BitWidth::W2 => (1, 4, 32), // ¼ LDR, 4 ops/weight × 2 filters
    };
    OpCounts {
        ldr: iters * 4 + iters * w_ldr_num / w_ldr_den,
        mac: iters * 8,
        dsp: if bits == BitWidth::W8 {
            iters * w_expand
        } else {
            0
        },
        alu: iters * 3
            + if bits == BitWidth::W8 {
                0
            } else {
                iters * w_expand
            },
        branch: iters,
        ..OpCounts::default()
    }
}

/// Instruction counts of output re-quantization and packing.
fn requant_counts(shape: &ConvShape, bits: BitWidth) -> OpCounts {
    let outputs = shape.output_len() as u64;
    match bits {
        // SSAT-style shift/saturate/store per q7 output.
        BitWidth::W8 => OpCounts {
            dsp: outputs,
            alu: outputs * 2,
            strs: outputs,
            ..OpCounts::default()
        },
        // Threshold compare loops + nibble/crumb packing (software only —
        // the very bottleneck pv.qnt removes).
        BitWidth::W4 => OpCounts {
            ldr: outputs * 4,
            alu: outputs * 14,
            strs: outputs / 2,
            branch: outputs,
            ..OpCounts::default()
        },
        BitWidth::W2 => OpCounts {
            ldr: outputs * 2,
            alu: outputs * 8,
            strs: outputs / 4,
            branch: outputs,
            ..OpCounts::default()
        },
    }
}

/// Per-pixel outer-loop bookkeeping (pointer setup, bias reload, …).
fn outer_counts(shape: &ConvShape) -> OpCounts {
    let pixels = shape.pixels() as u64;
    OpCounts {
        alu: pixels * 30,
        branch: pixels * 2,
        ..OpCounts::default()
    }
}

/// Cycle breakdown of one CMSIS-NN(-extended) convolution layer.
pub fn conv_cycles(core: ArmCore, shape: &ConvShape, bits: BitWidth) -> ConvCycles {
    let m = CostModel::for_core(core);
    ConvCycles {
        im2col: m.cycles(&im2col_counts(shape, bits)),
        matmul: m.cycles(&matmul_counts(shape, bits)),
        requant: m.cycles(&requant_counts(shape, bits)),
        outer: m.cycles(&outer_counts(shape)),
    }
}

/// An off-the-shelf MCU operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mcu {
    /// Marketing name.
    pub name: &'static str,
    /// Core type.
    pub core: ArmCore,
    /// Clock frequency in MHz.
    pub freq_mhz: u32,
    /// Active-run power per MHz (datasheet typical run current × VDD).
    pub mw_per_mhz: f64,
}

/// STM32L476 (Cortex-M4 @ 80 MHz, ≈112 µA/MHz at 3.0 V).
pub const STM32L476: Mcu = Mcu {
    name: "STM32L4 (Cortex-M4)",
    core: ArmCore::M4,
    freq_mhz: 80,
    mw_per_mhz: 0.36,
};

/// STM32H743 (Cortex-M7 @ 400 MHz, ≈280 µA/MHz at 3.0 V).
pub const STM32H743: Mcu = Mcu {
    name: "STM32H7 (Cortex-M7)",
    core: ArmCore::M7,
    freq_mhz: 400,
    mw_per_mhz: 0.84,
};

impl Mcu {
    /// Active power at the operating point, in mW.
    pub fn power_mw(&self) -> f64 {
        self.freq_mhz as f64 * self.mw_per_mhz
    }

    /// Layer cycles on this MCU.
    pub fn conv_cycles(&self, shape: &ConvShape, bits: BitWidth) -> u64 {
        conv_cycles(self.core, shape, bits).total()
    }

    /// Layer latency in seconds.
    pub fn conv_seconds(&self, shape: &ConvShape, bits: BitWidth) -> f64 {
        self.conv_cycles(shape, bits) as f64 / (self.freq_mhz as f64 * 1e6)
    }

    /// Energy efficiency on the layer in GMAC/s/W.
    pub fn conv_gmac_per_s_per_w(&self, shape: &ConvShape, bits: BitWidth) -> f64 {
        let macs_per_s = shape.macs() as f64 / self.conv_seconds(shape, bits);
        macs_per_s / (self.power_mw() / 1e3) / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qnn::bits::ALL_WIDTHS;

    fn paper() -> ConvShape {
        ConvShape::paper_benchmark()
    }

    #[test]
    fn sub_byte_is_slower_than_8bit_on_arm() {
        // The paper's motivation: without ISA support, quantization
        // saves memory but costs cycles.
        for core in [ArmCore::M4, ArmCore::M7] {
            let c8 = conv_cycles(core, &paper(), BitWidth::W8).total();
            let c4 = conv_cycles(core, &paper(), BitWidth::W4).total();
            let c2 = conv_cycles(core, &paper(), BitWidth::W2).total();
            assert!(c4 > c8, "{core:?}: 4-bit must be slower than 8-bit");
            assert!(c2 > c8, "{core:?}: 2-bit must be slower than 8-bit");
        }
    }

    #[test]
    fn m7_is_faster_in_cycles_than_m4() {
        for bits in ALL_WIDTHS {
            let m4 = conv_cycles(ArmCore::M4, &paper(), bits).total();
            let m7 = conv_cycles(ArmCore::M7, &paper(), bits).total();
            assert!(m7 < m4, "{bits}: M7 should need fewer cycles");
            assert!(m7 * 3 > m4, "{bits}: M7 advantage should be bounded");
        }
    }

    #[test]
    fn m4_8bit_throughput_in_literature_band() {
        // CMSIS-NN q7 convolutions land around 0.3–0.8 MAC/cycle on
        // Cortex-M4 depending on geometry.
        let total = conv_cycles(ArmCore::M4, &paper(), BitWidth::W8).total();
        let mac_per_cycle = paper().macs() as f64 / total as f64;
        assert!(
            (0.3..0.8).contains(&mac_per_cycle),
            "M4 8-bit at {mac_per_cycle:.2} MAC/cycle"
        );
    }

    #[test]
    fn matmul_dominates() {
        let b = conv_cycles(ArmCore::M4, &paper(), BitWidth::W8);
        assert!(b.matmul > b.im2col + b.requant + b.outer);
        assert!(b.total() == b.im2col + b.matmul + b.requant + b.outer);
    }

    #[test]
    fn mcu_power_and_efficiency() {
        assert!((STM32L476.power_mw() - 28.8).abs() < 1e-9);
        assert!((STM32H743.power_mw() - 336.0).abs() < 1e-9);
        // The H7 finishes sooner but is far less efficient than the L4
        // (as in Fig. 9, where the L4 beats the H7 on efficiency).
        for bits in ALL_WIDTHS {
            let e_l4 = STM32L476.conv_gmac_per_s_per_w(&paper(), bits);
            let e_h7 = STM32H743.conv_gmac_per_s_per_w(&paper(), bits);
            assert!(e_l4 > e_h7, "{bits}");
            let t_l4 = STM32L476.conv_seconds(&paper(), bits);
            let t_h7 = STM32H743.conv_seconds(&paper(), bits);
            assert!(t_h7 < t_l4, "{bits}");
        }
    }

    #[test]
    fn op_counts_add_and_total() {
        let a = OpCounts {
            ldr: 1,
            strs: 2,
            mac: 3,
            dsp: 4,
            alu: 5,
            branch: 6,
        };
        let b = a.add(&a);
        assert_eq!(b.instructions(), 2 * a.instructions());
        assert_eq!(CostModel::m4().cycles(&a), 2 + 2 + 3 + 4 + 5 + 18);
    }
}
