//! Pinned cycle counts for the CMSIS-NN cost models on the paper's
//! benchmark layer (Fig. 8: 16×16×32 input, 64 3×3 filters).
//!
//! The M4/M7 numbers feed directly into the paper's cross-platform
//! energy-efficiency comparison, so any cost-model change — intentional
//! or not — must show up as an explicit diff here rather than silently
//! shifting Fig. 8.

use cortexm_model::{conv_cycles, ArmCore};
use qnn::conv::ConvShape;
use qnn::BitWidth;

const WIDTHS: [BitWidth; 3] = [BitWidth::W8, BitWidth::W4, BitWidth::W2];

#[test]
fn m4_cycles_on_paper_layer_are_pinned() {
    let s = ConvShape::paper_benchmark();
    let pinned = [
        (BitWidth::W8, 8_180_224u64),
        (BitWidth::W4, 14_430_720),
        (BitWidth::W2, 16_483_840),
    ];
    for (bits, want) in pinned {
        let got = conv_cycles(ArmCore::M4, &s, bits).total();
        assert_eq!(got, want, "M4 {bits} total cycles moved");
    }
}

#[test]
fn m7_cycles_on_paper_layer_are_pinned() {
    let s = ConvShape::paper_benchmark();
    let pinned = [
        (BitWidth::W8, 3_956_660u64),
        (BitWidth::W4, 8_057_423),
        (BitWidth::W2, 9_464_167),
    ];
    for (bits, want) in pinned {
        let got = conv_cycles(ArmCore::M7, &s, bits).total();
        assert_eq!(got, want, "M7 {bits} total cycles moved");
    }
}

/// Structural sanity on top of the exact pins: the dual-issue M7 beats
/// the M4 at every width, sub-byte software unpacking costs both cores
/// dearly (the effect XpulpNN removes), and the phase breakdown adds up.
#[test]
fn m7_outperforms_m4_and_sub_byte_regresses() {
    let s = ConvShape::paper_benchmark();
    for bits in WIDTHS {
        let m4 = conv_cycles(ArmCore::M4, &s, bits);
        let m7 = conv_cycles(ArmCore::M7, &s, bits);
        assert!(
            m7.total() < m4.total(),
            "{bits}: M7 ({}) should be faster than M4 ({})",
            m7.total(),
            m4.total()
        );
        for c in [m4, m7] {
            assert_eq!(c.total(), c.im2col + c.matmul + c.requant + c.outer);
        }
    }
    for core in [ArmCore::M4, ArmCore::M7] {
        let w8 = conv_cycles(core, &s, BitWidth::W8).total();
        let w4 = conv_cycles(core, &s, BitWidth::W4).total();
        let w2 = conv_cycles(core, &s, BitWidth::W2).total();
        assert!(
            w8 < w4 && w4 < w2,
            "{core:?}: sub-byte must cost more on ARM (w8 {w8}, w4 {w4}, w2 {w2})"
        );
    }
}
