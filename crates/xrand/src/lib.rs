#![warn(missing_docs)]

//! A self-contained, seedable PRNG for synthetic tensors and randomized
//! tests.
//!
//! The reproduction must build in offline environments with no registry
//! access (DESIGN.md substitution table), so this crate replaces the
//! external `rand`/`proptest` dependencies everywhere. Statistical
//! quality only needs to be good enough for test-input generation;
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) (Steele, Lea &
//! Flood, OOPSLA 2014) passes BigCrush and is trivially seedable, which
//! is exactly that bar. Nothing here is cryptographic.
//!
//! Determinism is a hard API guarantee: the same seed must produce the
//! same stream forever, because measured kernel inputs (and therefore
//! EXPERIMENTS.md's verified numbers) are derived from it. The
//! `stream_is_frozen` test pins the first outputs of seed 0.

/// A deterministic SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator; the same seed always yields the same stream.
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next raw 32-bit value (upper half of the 64-bit output).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)`.
    ///
    /// Uses 128-bit multiply-shift reduction; the modulo bias over a
    /// 64-bit source is below 2⁻⁶⁴ per draw — irrelevant for test-input
    /// generation.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform `i64` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        let off = (self.next_u64() as u128 * span) >> 64;
        (lo as i128 + off as i128) as i64
    }

    /// Uniform `i32` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        self.range_i64(lo as i64, hi as i64) as i32
    }

    /// Uniform `usize` in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// A fair coin.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Forks an independent child generator (for splitting one seed into
    /// per-purpose streams without correlating them).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_frozen() {
        // The seed-0 stream is part of the API contract: synthetic
        // tensors (and the measured numbers derived from them) depend on
        // it. If this test fails, the generator changed and every
        // recorded measurement must be regenerated.
        let mut r = Rng::new(0);
        assert_eq!(r.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(r.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(r.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_inclusive_and_cover() {
        let mut r = Rng::new(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.range_i32(-2, 2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(
            seen.iter().all(|s| *s),
            "all 5 values should appear in 500 draws"
        );
    }

    #[test]
    fn below_stays_below() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            assert!(r.below(3) < 3);
        }
        // Degenerate single-value ranges work.
        assert_eq!(r.range_i32(5, 5), 5);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn full_i64_range_does_not_overflow() {
        let mut r = Rng::new(1);
        for _ in 0..100 {
            let v = r.range_i64(i64::MIN, i64::MAX);
            // Any value is fine; the assertion is that we got here
            // without panicking and values vary.
            let w = r.range_i64(i64::MIN, i64::MAX);
            if v != w {
                return;
            }
        }
        panic!("range_i64 over the full domain returned a constant");
    }

    #[test]
    fn choose_and_flip_hit_all_outcomes() {
        let mut r = Rng::new(3);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        let mut heads = false;
        let mut tails = false;
        for _ in 0..200 {
            seen[*r.choose(&items) as usize - 1] = true;
            if r.flip() {
                heads = true;
            } else {
                tails = true;
            }
        }
        assert!(seen.iter().all(|s| *s));
        assert!(heads && tails);
    }

    #[test]
    fn forked_streams_differ() {
        let mut parent = Rng::new(5);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
