//! Deterministic load generator: a seeded open-loop request stream
//! (mixed variants, Poisson-ish arrival gaps from `xrand`) driven
//! through a [`ServePool`], folded into a scheduling-independent
//! digest plus latency/throughput statistics.
//!
//! Everything in the digest — request stream, outputs, outcomes,
//! simulated-cycle latencies — is a pure function of `(seed,
//! configuration)`. A fixed seed therefore replays bit-identically
//! across 1, 2 or 8 worker threads (pinned by property tests); only
//! host wall-clock numbers differ, and they are excluded.

use crate::pool::{PoolConfig, PoolReport, PoolStats, ServeFaults, ServePool};
use crate::request::{Request, Response, Variant};
use crate::template::{serving_config, ServeError};
use std::time::{Duration, Instant};
use xrand::Rng;

/// Loadgen run configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadgenConfig {
    /// Seed for the request stream (variant mix, inputs, arrivals).
    pub seed: u64,
    /// Number of requests to generate and submit.
    pub requests: u64,
    /// Worker threads.
    pub workers: usize,
    /// Bounded queue capacity (submits use backpressure, not shed).
    pub queue_capacity: usize,
    /// Max same-variant requests coalesced per queue pop.
    pub batch_max: usize,
    /// Template weight seed.
    pub weight_seed: u64,
    /// Warm reruns on consecutive same-variant requests.
    pub warm_reruns: bool,
    /// Chaos mode (per-request fault arming).
    pub faults: Option<ServeFaults>,
    /// Mean arrival gap in µs for Poisson-ish open-loop pacing;
    /// 0 submits at full throttle. Pacing changes wall-clock numbers
    /// only, never the digest.
    pub mean_gap_us: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            seed: 1,
            requests: 200,
            workers: 2,
            queue_capacity: 64,
            batch_max: 8,
            weight_seed: 42,
            warm_reruns: true,
            faults: None,
            mean_gap_us: 0,
        }
    }
}

/// Percentiles over a latency population (nearest-rank).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Maximum.
    pub max: u64,
}

impl LatencyStats {
    /// Nearest-rank percentiles of `values` (unsorted in, untouched).
    pub fn of(values: &[u64]) -> LatencyStats {
        if values.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |p: usize| sorted[(p * (sorted.len() - 1)).div_ceil(100).min(sorted.len() - 1)];
        LatencyStats {
            p50: rank(50),
            p99: rank(99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Everything one loadgen run produced.
#[derive(Debug)]
pub struct LoadReport {
    /// The configuration that ran.
    pub cfg: LoadgenConfig,
    /// All responses, sorted by request id.
    pub responses: Vec<Response>,
    /// Pool counters.
    pub stats: PoolStats,
    /// Scheduling-independent digest over the deterministic response
    /// fields (see [`Response::fold_digest`]).
    pub digest: u64,
    /// Per-request simulated-cycle latency (deterministic).
    pub sim_cycles: LatencyStats,
    /// Per-request host submit→completion latency in µs (wall clock).
    pub host_us: LatencyStats,
    /// Total simulated cycles across all requests.
    pub total_sim_cycles: u64,
    /// Host wall-clock seconds from first submit to full drain.
    pub wall_secs: f64,
    /// Sustained host throughput in requests/second.
    pub req_per_sec: f64,
}

impl LoadReport {
    /// Responses with the given outcome label.
    pub fn count(&self, label: &str) -> u64 {
        self.responses
            .iter()
            .filter(|r| r.outcome.label() == label)
            .count() as u64
    }
}

/// The deterministic request stream for `(seed, n)`: per request an
/// independent sub-generator picks a variant from the mix and fills a
/// range-valid input tensor, so the stream is identical no matter how
/// it is consumed.
pub fn generate_requests(seed: u64, n: u64) -> Vec<Request> {
    let lens: Vec<(usize, i16)> = Variant::ALL
        .iter()
        .map(|&v| {
            let cfg = serving_config(v);
            (cfg.shape.input_len(), (1i16 << cfg.bits.bits()) - 1)
        })
        .collect();
    (0..n)
        .map(|id| {
            let mut rng = Rng::new(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let variant = *rng.choose(&Variant::ALL);
            let (len, max) = lens[variant.index()];
            let input = (0..len)
                .map(|_| rng.below(u64::from(max as u16) + 1) as i16)
                .collect();
            Request { id, variant, input }
        })
        .collect()
}

/// Folds a response set into the scheduling-independent digest.
/// Responses are folded in id order regardless of input order.
pub fn digest(responses: &[Response]) -> u64 {
    let mut order: Vec<usize> = (0..responses.len()).collect();
    order.sort_by_key(|&i| responses[i].id);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in order {
        responses[i].fold_digest(&mut h);
    }
    h
}

/// Upper bound on one loadgen submit's wait for queue space. Far
/// above any healthy drain time; it exists so a wedged pool fails the
/// run with a typed error instead of hanging the generator forever.
const SUBMIT_BOUND: Duration = Duration::from_secs(30);

/// Runs one seeded open-loop load test: generates the stream, submits
/// it with backpressure (a bounded wait on a full queue, so no request
/// is shed), shuts the pool down and folds the statistics.
///
/// # Errors
///
/// [`ServeError`] when the pool cannot start. Submits cannot fail on a
/// healthy pool: generated payloads are valid by construction and the
/// bounded-wait submit only times out if the pool stops draining for
/// [`SUBMIT_BOUND`].
pub fn run_loadgen(cfg: LoadgenConfig) -> Result<LoadReport, ServeError> {
    let pool = ServePool::start(PoolConfig {
        workers: cfg.workers,
        queue_capacity: cfg.queue_capacity,
        batch_max: cfg.batch_max,
        weight_seed: cfg.weight_seed,
        warm_reruns: cfg.warm_reruns,
        faults: cfg.faults,
        ..PoolConfig::default()
    })?;
    let requests = generate_requests(cfg.seed, cfg.requests);
    let mut arrivals = Rng::new(cfg.seed ^ 0xa11a_a11a);
    let start = Instant::now();
    for req in requests {
        if cfg.mean_gap_us > 0 {
            // Poisson-ish inter-arrival: exponential via inverse CDF.
            let u = (arrivals.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let gap = -(1.0 - u).ln() * cfg.mean_gap_us as f64;
            std::thread::sleep(Duration::from_micros(gap as u64));
        }
        pool.submit_timeout(req, SUBMIT_BOUND)
            .expect("generated requests are valid and a live pool drains within the bound");
    }
    let PoolReport { responses, stats } = pool.shutdown();
    let wall_secs = start.elapsed().as_secs_f64();
    let sim: Vec<u64> = responses.iter().map(|r| r.cycles).collect();
    let host: Vec<u64> = responses.iter().map(|r| r.host_us).collect();
    let digest = digest(&responses);
    Ok(LoadReport {
        cfg,
        digest,
        sim_cycles: LatencyStats::of(&sim),
        host_us: LatencyStats::of(&host),
        total_sim_cycles: sim.iter().sum(),
        wall_secs,
        req_per_sec: if wall_secs > 0.0 {
            responses.len() as f64 / wall_secs
        } else {
            0.0
        },
        responses,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_stream_is_deterministic_and_mixed() {
        let a = generate_requests(9, 64);
        let b = generate_requests(9, 64);
        assert_eq!(a, b);
        let c = generate_requests(10, 64);
        assert_ne!(a, c);
        // All four variants appear in a modest stream.
        for v in Variant::ALL {
            assert!(a.iter().any(|r| r.variant == v), "missing {v}");
        }
        // Every payload is shape- and range-valid by construction.
        for r in &a {
            let cfg = serving_config(r.variant);
            assert_eq!(r.input.len(), cfg.shape.input_len());
            let max = (1i16 << cfg.bits.bits()) - 1;
            assert!(r.input.iter().all(|&v| (0..=max).contains(&v)));
        }
    }

    #[test]
    fn latency_stats_nearest_rank() {
        let s = LatencyStats::of(&[10, 20, 30, 40, 50]);
        assert_eq!(s.p50, 30);
        assert_eq!(s.p99, 50);
        assert_eq!(s.max, 50);
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
        let one = LatencyStats::of(&[7]);
        assert_eq!((one.p50, one.p99, one.max), (7, 7, 7));
        // p50 never exceeds p99 by construction (sorted ranks).
        let s = LatencyStats::of(&[5, 1, 9, 3, 7, 2, 8]);
        assert!(s.p50 <= s.p99 && s.p99 <= s.max);
    }
}
