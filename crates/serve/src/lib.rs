//! Inference-serving layer: snapshot-forked SoC worker pools under a
//! bounded MPMC queue, with a deterministic load-test harness.
//!
//! The simulated XpulpNN SoC becomes a servable inference worker:
//!
//! * [`WorkerTemplate`] — one pre-warmed, health-checked template per
//!   kernel [`Variant`]: program build, weight/threshold staging and
//!   golden-model wiring paid once; workers fork from its
//!   `SocSnapshot` in a single restore.
//! * [`BoundedQueue`] — bounded MPMC work queue with typed
//!   backpressure ([`SubmitError::Overloaded`]) and drain-on-close.
//! * [`ServePool`] — N worker threads, same-variant batching, warm
//!   reruns, per-request watchdog, and the `run_with_policy`-style
//!   degradation ladder ([`Outcome`]): a poisoned request never kills
//!   its worker, which re-forks from the template.
//! * [`run_loadgen`] — seeded open-loop generator plus a
//!   scheduling-independent response [`digest`]: a fixed `(seed,
//!   trace)` pair replays bit-identically across 1/2/8 workers.

mod loadgen;
mod pool;
mod queue;
mod request;
mod supervisor;
pub mod sync;
mod template;

pub use loadgen::{
    digest, generate_requests, run_loadgen, LatencyStats, LoadReport, LoadgenConfig,
};
pub use pool::{HangFaults, PoolConfig, PoolReport, PoolStats, ServeFaults, ServePool};
pub use queue::{BoundedQueue, PushError};
pub use request::{Detection, Outcome, Request, RequestError, Response, SubmitError, Variant};
pub use supervisor::{
    run_soak, soak_digest, Breaker, BreakerState, PhaseSummary, RejectReason, ServedVia,
    SoakConfig, SoakCounters, SoakPhase, SoakReport, Supervisor, SupervisorConfig,
    SupervisorOutcome, SupervisorResponse,
};
pub use template::{serving_config, ServeError, WorkerTemplate};
