//! The resilience supervisor: deadlines, retries, admission control
//! and per-variant circuit breakers layered over a [`ServePool`],
//! plus the multi-phase `soak` campaign that exercises all of it.
//!
//! The supervisor drives the pool **window by window**: it fixes all
//! routing decisions (shed, breaker fallback, half-open probe) at the
//! window boundary in request-id order, submits the admitted window,
//! waits for a full drain, resolves deadlines with bounded
//! retry-with-backoff, and only then folds outcomes back into the
//! breaker state machines — again in id order. Nothing on this path
//! consults the wall clock or live queue occupancy:
//!
//! * **Admission** sheds against the supervisor's own deterministic
//!   outstanding count and estimated-cycle pressure (an upper bound on
//!   real queue depth), never the racy live queue length.
//! * **Deadlines** are measured in *simulated* cycles against a
//!   per-request deadline seeded from the request id; retry backoff
//!   charges a deterministic simulated-cycle penalty, also seeded from
//!   the id and attempt.
//! * **Breakers** see outcomes at the drain barrier in id order, so
//!   trip/close points are identical no matter how many workers served
//!   the window.
//!
//! Every request therefore gets exactly one **typed**
//! [`SupervisorResponse`] — served, timed out, shed, or
//! breaker-fallback — and the digest over those responses replays
//! bit-identically across 1/2/8 workers.

use crate::loadgen::generate_requests;
use crate::pool::{HangFaults, PoolConfig, PoolStats, ServeFaults, ServePool};
use crate::request::{Outcome, Request, Response, Variant};
use crate::template::ServeError;
use std::collections::BTreeMap;
use std::time::Instant;
use xrand::Rng;

/// Why the admission controller shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The window's admitted count reached the queue-depth watermark.
    QueueFull,
    /// Admitting the request would push the window's estimated
    /// simulated-cycle backlog over the deadline-pressure watermark.
    DeadlinePressure,
}

impl RejectReason {
    /// Stable label used by reports.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::DeadlinePressure => "deadline-pressure",
        }
    }
}

/// How a request was ultimately resolved — every request gets exactly
/// one of these; nothing is ever silently dropped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorOutcome {
    /// The pool served it within its (possibly retried) deadline.
    Served(Outcome),
    /// The pool served it, but past its deadline even after every
    /// retry; the response still carries the (verified) late output.
    TimedOut {
        /// The base deadline that was missed, in simulated cycles.
        deadline_cycles: u64,
    },
    /// Shed at admission; the response carries the golden fallback.
    Rejected(RejectReason),
    /// The variant's circuit breaker was open (or half-open and this
    /// was not the probe); served by the golden software fallback.
    Fallback,
}

/// Whether the device pool or the golden software model produced the
/// response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedVia {
    /// The request went through the worker pool.
    Pool,
    /// The supervisor answered from the golden software model.
    GoldenFallback,
}

/// One request's typed resolution.
#[derive(Debug, Clone)]
pub struct SupervisorResponse {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Echo of [`Request::variant`].
    pub variant: Variant,
    /// How the request was resolved.
    pub outcome: SupervisorOutcome,
    /// Output tensor: the pool's verified output, or the golden model
    /// for shed/fallback resolutions.
    pub output: Vec<i16>,
    /// Total simulated cycles charged: every pool attempt plus the
    /// deterministic backoff penalties. 0 for shed/fallback.
    pub cycles: u64,
    /// Deadline retries consumed.
    pub retries: u32,
}

impl SupervisorResponse {
    /// Who produced the output.
    pub fn via(&self) -> ServedVia {
        match self.outcome {
            SupervisorOutcome::Served(_) | SupervisorOutcome::TimedOut { .. } => ServedVia::Pool,
            SupervisorOutcome::Rejected(_) | SupervisorOutcome::Fallback => {
                ServedVia::GoldenFallback
            }
        }
    }

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match &self.outcome {
            SupervisorOutcome::Served(o) => o.label(),
            SupervisorOutcome::TimedOut { .. } => "timed-out",
            SupervisorOutcome::Rejected(r) => r.label(),
            SupervisorOutcome::Fallback => "fallback",
        }
    }

    /// Folds the deterministic fields into an FNV-1a accumulator.
    /// Everything folded is a pure function of (seed, configuration):
    /// id, variant, typed resolution, output, simulated cycles and
    /// retry count — never worker identity or wall clock.
    pub fn fold_digest(&self, h: &mut u64) {
        let mut fold = |x: u64| {
            *h ^= x;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.id);
        fold(self.variant.index() as u64);
        match &self.outcome {
            SupervisorOutcome::Served(o) => {
                fold(1);
                match o {
                    Outcome::Ok => fold(1),
                    Outcome::Masked { flips } => {
                        fold(2);
                        fold(*flips as u64);
                    }
                    Outcome::Recovered { retries, .. } => {
                        fold(3);
                        fold(u64::from(*retries));
                    }
                    Outcome::Degraded { .. } => fold(4),
                }
            }
            SupervisorOutcome::TimedOut { deadline_cycles } => {
                fold(2);
                fold(*deadline_cycles);
            }
            SupervisorOutcome::Rejected(RejectReason::QueueFull) => fold(3),
            SupervisorOutcome::Rejected(RejectReason::DeadlinePressure) => fold(4),
            SupervisorOutcome::Fallback => fold(5),
        }
        fold(u64::from(self.retries));
        fold(self.output.len() as u64);
        for &v in &self.output {
            fold(v as u16 as u64);
        }
        fold(self.cycles);
    }
}

/// Folds a supervisor response set into a scheduling-independent
/// digest (id order, regardless of input order).
pub fn soak_digest(responses: &[SupervisorResponse]) -> u64 {
    let mut order: Vec<usize> = (0..responses.len()).collect();
    order.sort_by_key(|&i| responses[i].id);
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for i in order {
        responses[i].fold_digest(&mut h);
    }
    h
}

/// Per-window supervisor policy. Watermarks/deadlines default to off;
/// each soak phase overrides what it exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Seed for deadline jitter and backoff jitter.
    pub seed: u64,
    /// Max requests admitted to the pool per window before shedding
    /// with [`RejectReason::QueueFull`]. `usize::MAX` = off.
    pub shed_watermark: usize,
    /// Max estimated simulated-cycle backlog admitted per window
    /// before shedding with [`RejectReason::DeadlinePressure`]
    /// (estimates use the variant templates' fault-free runtimes).
    /// `u64::MAX` = off.
    pub pressure_watermark_cycles: u64,
    /// Base per-request deadline in simulated cycles; 0 = deadlines
    /// off. The effective deadline for attempt `a` is
    /// `deadline × (a + 1)` — backoff buys headroom.
    pub deadline_base_cycles: u64,
    /// Seeded per-request deadline jitter added to the base.
    pub deadline_jitter_cycles: u64,
    /// Deadline retries before a request is typed
    /// [`SupervisorOutcome::TimedOut`].
    pub max_retries: u32,
    /// Base backoff penalty charged per retry, in simulated cycles
    /// (doubles per attempt).
    pub backoff_base_cycles: u64,
    /// Seeded per-(id, attempt) backoff jitter.
    pub backoff_jitter_cycles: u64,
    /// Consecutive bad outcomes (Recovered/Degraded/timed-out) that
    /// trip a variant's breaker; 0 = breakers off.
    pub breaker_threshold: u32,
    /// Windows an open breaker waits before going half-open.
    pub breaker_cooldown_windows: u32,
    /// Release a held pool after this window's submits — the overload
    /// phase's discipline: submitting to a held pool makes the shed
    /// set a pure function of configuration.
    pub release_after_submit: bool,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            seed: 1,
            shed_watermark: usize::MAX,
            pressure_watermark_cycles: u64::MAX,
            deadline_base_cycles: 0,
            deadline_jitter_cycles: 0,
            max_retries: 1,
            backoff_base_cycles: 10_000,
            backoff_jitter_cycles: 2_000,
            breaker_threshold: 0,
            breaker_cooldown_windows: 1,
            release_after_submit: false,
        }
    }
}

impl SupervisorConfig {
    /// Request `id`'s base deadline: the configured base plus seeded
    /// jitter (pure function of `(seed, id)`).
    pub fn deadline_for(&self, id: u64) -> u64 {
        let mut rng = Rng::new(self.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x00de_ad11);
        self.deadline_base_cycles + rng.below(self.deadline_jitter_cycles + 1)
    }

    /// The simulated-cycle penalty retry `attempt` (≥ 1) charges:
    /// exponential base plus seeded jitter.
    pub fn backoff_penalty(&self, id: u64, attempt: u32) -> u64 {
        let base = self.backoff_base_cycles << (attempt - 1).min(16);
        let mut rng = Rng::new(
            self.seed
                ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                ^ u64::from(attempt).wrapping_mul(0x0b0f_0b0f_0b0f_0b0f),
        );
        base + rng.below(self.backoff_jitter_cycles + 1)
    }

    fn effective_deadline(&self, id: u64, attempt: u32) -> u64 {
        self.deadline_for(id).saturating_mul(u64::from(attempt) + 1)
    }
}

/// A variant circuit breaker's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow to the pool; consecutive bad outcomes counted.
    Closed,
    /// All requests for the variant go to the golden fallback for
    /// `remaining` more windows.
    Open {
        /// Windows left before the breaker goes half-open.
        remaining: u32,
    },
    /// One probe request per window goes to the pool; everything else
    /// stays on the fallback. A clean probe re-closes the breaker, a
    /// bad one re-opens it.
    HalfOpen,
}

/// One variant's circuit breaker: a pure, single-threaded state
/// machine (closed → open → half-open) fed outcomes in id order at the
/// drain barrier. Public so model-checking harnesses can drive it
/// through every interleaving of a scenario directly; the supervisor
/// owns one per [`Variant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breaker {
    state: BreakerState,
    consecutive_bad: u32,
}

impl Default for Breaker {
    fn default() -> Breaker {
        Breaker::new()
    }
}

impl Breaker {
    /// A closed breaker with no bad streak.
    pub fn new() -> Breaker {
        Breaker {
            state: BreakerState::Closed,
            consecutive_bad: 0,
        }
    }

    /// The externally visible state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Window-boundary tick: open breakers count down their cooldown
    /// and go half-open at zero.
    pub fn tick_window(&mut self) {
        if let BreakerState::Open { remaining } = self.state {
            self.state = if remaining <= 1 {
                BreakerState::HalfOpen
            } else {
                BreakerState::Open {
                    remaining: remaining - 1,
                }
            };
        }
    }

    /// Feeds one pool outcome (id order). Returns true when this
    /// outcome tripped the breaker.
    pub fn on_outcome(&mut self, bad: bool, threshold: u32, cooldown: u32) -> bool {
        if threshold == 0 || self.state != BreakerState::Closed {
            // Breakers off, or stragglers already in flight when the
            // breaker opened mid-window: no state change.
            return false;
        }
        if bad {
            self.consecutive_bad += 1;
            if self.consecutive_bad >= threshold {
                self.state = BreakerState::Open {
                    remaining: cooldown.max(1),
                };
                self.consecutive_bad = 0;
                return true;
            }
        } else {
            self.consecutive_bad = 0;
        }
        false
    }

    /// Feeds the half-open probe's outcome. Returns true when the
    /// probe re-tripped the breaker.
    pub fn on_probe(&mut self, bad: bool, cooldown: u32) -> bool {
        if bad {
            self.state = BreakerState::Open {
                remaining: cooldown.max(1),
            };
            self.consecutive_bad = 0;
            true
        } else {
            self.state = BreakerState::Closed;
            self.consecutive_bad = 0;
            false
        }
    }
}

/// Resilience counters accumulated across windows (observability and
/// soak assertions; not part of the digest, but every one of them is
/// deterministic for a fixed seed and configuration).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SoakCounters {
    /// Requests routed through the supervisor.
    pub requests: u64,
    /// Requests the pool served (first attempts).
    pub pool_served: u64,
    /// Requests shed with [`RejectReason::QueueFull`].
    pub shed_queue_full: u64,
    /// Requests shed with [`RejectReason::DeadlinePressure`].
    pub shed_pressure: u64,
    /// Retry resubmissions after a missed deadline.
    pub retried: u64,
    /// Requests typed [`SupervisorOutcome::TimedOut`].
    pub timed_out: u64,
    /// Breaker trips (closed→open and half-open→open).
    pub breaker_trips: u64,
    /// Half-open probes that re-closed a breaker.
    pub breaker_closes: u64,
    /// Requests served by the golden fallback because a breaker was
    /// open or half-open.
    pub fallback_served: u64,
}

impl SoakCounters {
    /// Total shed requests, both reasons.
    pub fn shed(&self) -> u64 {
        self.shed_queue_full + self.shed_pressure
    }
}

/// The resilience supervisor: owns a [`ServePool`] and drives it in
/// drain-bounded windows (see the module docs for the determinism
/// argument).
pub struct Supervisor {
    pool: ServePool,
    breakers: [Breaker; Variant::ALL.len()],
    counters: SoakCounters,
    /// Cumulative pool submissions, the drain-barrier target.
    submitted: u64,
}

impl Supervisor {
    /// Wraps a started pool.
    pub fn new(pool: ServePool) -> Supervisor {
        Supervisor {
            pool,
            breakers: [Breaker::new(); Variant::ALL.len()],
            counters: SoakCounters::default(),
            submitted: 0,
        }
    }

    /// The wrapped pool (template access, chaos hooks).
    pub fn pool(&self) -> &ServePool {
        &self.pool
    }

    /// Counters so far.
    pub fn counters(&self) -> SoakCounters {
        self.counters
    }

    /// The breaker state for `variant`.
    pub fn breaker(&self, variant: Variant) -> BreakerState {
        self.breakers[variant.index()].state
    }

    /// True when every variant's breaker is closed.
    pub fn all_breakers_closed(&self) -> bool {
        self.breakers
            .iter()
            .all(|b| b.state == BreakerState::Closed)
    }

    /// Runs one window: fixes routing at the boundary (id order),
    /// submits the admitted set, drains fully, resolves deadlines with
    /// bounded retries, and folds outcomes into the breakers. Returns
    /// exactly one typed response per request.
    ///
    /// Payloads must be valid for their variant (the soak generates
    /// them via [`generate_requests`]); an invalid payload is a caller
    /// bug and panics rather than being silently dropped.
    pub fn run_window(
        &mut self,
        requests: &[Request],
        cfg: &SupervisorConfig,
    ) -> Vec<SupervisorResponse> {
        let mut ordered: Vec<&Request> = requests.iter().collect();
        ordered.sort_by_key(|r| r.id);
        self.counters.requests += ordered.len() as u64;
        for b in &mut self.breakers {
            b.tick_window();
        }

        // Half-open probes: the lowest-id request of each half-open
        // variant in this window.
        let mut probe: [Option<u64>; Variant::ALL.len()] = [None; Variant::ALL.len()];
        for r in &ordered {
            let i = r.variant.index();
            if self.breakers[i].state == BreakerState::HalfOpen && probe[i].is_none() {
                probe[i] = Some(r.id);
            }
        }

        // Routing + admission, in id order.
        let mut responses: Vec<SupervisorResponse> = Vec::with_capacity(ordered.len());
        let mut admitted: Vec<Request> = Vec::new();
        let mut backlog_cycles = 0u64;
        for r in ordered {
            let i = r.variant.index();
            match self.breakers[i].state {
                BreakerState::Open { .. } => {
                    self.counters.fallback_served += 1;
                    responses.push(self.golden_response(r, SupervisorOutcome::Fallback));
                }
                BreakerState::HalfOpen if probe[i] == Some(r.id) => {
                    admitted.push(r.clone());
                }
                BreakerState::HalfOpen => {
                    self.counters.fallback_served += 1;
                    responses.push(self.golden_response(r, SupervisorOutcome::Fallback));
                }
                BreakerState::Closed => {
                    if admitted.len() >= cfg.shed_watermark {
                        self.counters.shed_queue_full += 1;
                        responses.push(self.golden_response(
                            r,
                            SupervisorOutcome::Rejected(RejectReason::QueueFull),
                        ));
                        continue;
                    }
                    let est = self.pool.template(r.variant).clean_cycles();
                    if backlog_cycles.saturating_add(est) > cfg.pressure_watermark_cycles {
                        self.counters.shed_pressure += 1;
                        responses.push(self.golden_response(
                            r,
                            SupervisorOutcome::Rejected(RejectReason::DeadlinePressure),
                        ));
                        continue;
                    }
                    backlog_cycles += est;
                    admitted.push(r.clone());
                }
            }
        }

        // Submit the admitted set, then barrier on a full drain.
        self.counters.pool_served += admitted.len() as u64;
        for r in &admitted {
            self.pool
                .submit_blocking(r.clone())
                .expect("window payloads are valid and the pool is live");
        }
        self.submitted += admitted.len() as u64;
        if cfg.release_after_submit {
            self.pool.release();
        }
        self.pool.wait_completed(self.submitted);
        // (response, retries consumed, cycles charged by prior
        // attempts + backoff penalties)
        let mut served: BTreeMap<u64, (Response, u32, u64)> = self
            .pool
            .drain_responses()
            .into_iter()
            .map(|r| (r.id, (r, 0, 0)))
            .collect();

        // Deadline resolution: drain-bounded retry rounds. Each round
        // resubmits every request whose latest attempt missed its
        // effective deadline; backoff relaxes the deadline and charges
        // a deterministic simulated-cycle penalty.
        if cfg.deadline_base_cycles > 0 {
            for attempt in 1..=cfg.max_retries {
                let missed: Vec<Request> = admitted
                    .iter()
                    .filter(|r| {
                        served.get(&r.id).is_some_and(|(resp, a, _)| {
                            *a == attempt - 1
                                && resp.cycles > cfg.effective_deadline(r.id, attempt - 1)
                        })
                    })
                    .cloned()
                    .collect();
                if missed.is_empty() {
                    break;
                }
                for r in &missed {
                    self.pool
                        .submit_blocking(r.clone())
                        .expect("window payloads are valid and the pool is live");
                }
                self.submitted += missed.len() as u64;
                self.counters.retried += missed.len() as u64;
                self.pool.wait_completed(self.submitted);
                for resp in self.pool.drain_responses() {
                    let slot = served
                        .get_mut(&resp.id)
                        .expect("a drained response matches a submitted retry");
                    slot.2 += slot.0.cycles + cfg.backoff_penalty(resp.id, attempt);
                    slot.0 = resp;
                    slot.1 = attempt;
                }
            }
        }

        // Final resolution + breaker folding, in id order.
        for r in &admitted {
            let (resp, retries, extra) = served
                .remove(&r.id)
                .expect("every admitted request drains exactly one response");
            let total_cycles = extra + resp.cycles;
            let deadline_ok = cfg.deadline_base_cycles == 0
                || resp.cycles <= cfg.effective_deadline(r.id, retries);
            let bad = !deadline_ok || !matches!(resp.outcome, Outcome::Ok | Outcome::Masked { .. });
            let i = r.variant.index();
            if probe[i] == Some(r.id) {
                if self.breakers[i].on_probe(bad, cfg.breaker_cooldown_windows) {
                    self.counters.breaker_trips += 1;
                } else {
                    self.counters.breaker_closes += 1;
                }
            } else if self.breakers[i].on_outcome(
                bad,
                cfg.breaker_threshold,
                cfg.breaker_cooldown_windows,
            ) {
                self.counters.breaker_trips += 1;
            }
            let outcome = if deadline_ok {
                SupervisorOutcome::Served(resp.outcome)
            } else {
                self.counters.timed_out += 1;
                SupervisorOutcome::TimedOut {
                    deadline_cycles: cfg.deadline_for(r.id),
                }
            };
            responses.push(SupervisorResponse {
                id: r.id,
                variant: r.variant,
                outcome,
                output: resp.output,
                cycles: total_cycles,
                retries,
            });
        }
        responses.sort_by_key(|r| r.id);
        responses
    }

    fn golden_response(&self, r: &Request, outcome: SupervisorOutcome) -> SupervisorResponse {
        SupervisorResponse {
            id: r.id,
            variant: r.variant,
            outcome,
            output: self.pool.template(r.variant).golden(&r.input),
            cycles: 0,
            retries: 0,
        }
    }

    /// Shuts the pool down and returns its lifetime counters.
    pub fn finish(self) -> (SoakCounters, PoolStats) {
        let counters = self.counters;
        let report = self.pool.shutdown();
        (counters, report.stats)
    }
}

/// One soak phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoakPhase {
    /// Held-pool burst past both watermarks: shedding, typed.
    Overload,
    /// Chaos-armed window with tight deadlines: retries, timeouts,
    /// breaker trips, fallback routing.
    FaultStorm,
    /// Hang-armed requests wedge workers; the monitor reaps and
    /// re-forks them.
    HangInjection,
    /// Templates struck in host memory; verified forks quarantine and
    /// rebuild them.
    TemplateCorruption,
    /// Clean windows: half-open probes re-close every breaker.
    Recovery,
}

impl SoakPhase {
    /// All phases, in campaign order.
    pub const ALL: [SoakPhase; 5] = [
        SoakPhase::Overload,
        SoakPhase::FaultStorm,
        SoakPhase::HangInjection,
        SoakPhase::TemplateCorruption,
        SoakPhase::Recovery,
    ];

    /// Stable name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            SoakPhase::Overload => "overload",
            SoakPhase::FaultStorm => "fault-storm",
            SoakPhase::HangInjection => "hang-injection",
            SoakPhase::TemplateCorruption => "template-corruption",
            SoakPhase::Recovery => "recovery",
        }
    }
}

/// Soak campaign configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoakConfig {
    /// Campaign seed: request stream, fault plans, hang arming,
    /// template strikes, deadline/backoff jitter.
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Per-phase request scale `n` (min 4). The campaign serves `8n`
    /// requests: one overload window of `n` per watermark kind, two
    /// fault-storm windows, one hang window, one corruption window and
    /// two recovery windows.
    pub scale: u64,
    /// Template weight seed.
    pub weight_seed: u64,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 1,
            workers: 2,
            scale: 16,
            weight_seed: 42,
        }
    }
}

/// Per-phase counter deltas for the soak report.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSummary {
    /// Which phase.
    pub phase: SoakPhase,
    /// Requests routed in the phase.
    pub requests: u64,
    /// Requests shed (both reasons).
    pub shed: u64,
    /// Retry resubmissions.
    pub retried: u64,
    /// Timed-out resolutions.
    pub timed_out: u64,
    /// Breaker trips.
    pub breaker_trips: u64,
    /// Golden-fallback serves (open/half-open breakers).
    pub fallback_served: u64,
}

/// Everything one soak campaign produced.
#[derive(Debug)]
pub struct SoakReport {
    /// The configuration that ran.
    pub cfg: SoakConfig,
    /// One typed response per generated request, sorted by id.
    pub responses: Vec<SupervisorResponse>,
    /// Final resilience counters.
    pub counters: SoakCounters,
    /// Pool lifetime counters (cold forks, reaps, quarantines, …).
    pub pool_stats: PoolStats,
    /// Per-phase counter deltas, in campaign order.
    pub phases: Vec<PhaseSummary>,
    /// Scheduling-independent digest over the typed responses.
    pub digest: u64,
    /// True when every breaker re-closed by the end of recovery.
    pub breakers_closed: bool,
    /// Host wall-clock seconds (excluded from the digest).
    pub wall_secs: f64,
}

impl SoakReport {
    /// Ids the campaign generated but never resolved — must be empty
    /// (the zero-lost-requests invariant).
    pub fn lost_ids(&self) -> Vec<u64> {
        let n = self.cfg.scale.max(4) * 8;
        let mut have = vec![false; usize::try_from(n).unwrap_or(usize::MAX)];
        for r in &self.responses {
            if let Ok(i) = usize::try_from(r.id) {
                if i < have.len() {
                    have[i] = true;
                }
            }
        }
        (0..n).filter(|&i| !have[i as usize]).collect()
    }

    /// Responses with the given [`SupervisorResponse::label`].
    pub fn count(&self, label: &str) -> u64 {
        self.responses.iter().filter(|r| r.label() == label).count() as u64
    }
}

/// Runs the seeded multi-phase soak campaign: overload burst → fault
/// storm → hang injection → template corruption → recovery. Every
/// phase is drain-bounded, every request resolves typed, and the
/// digest replays bit-identically across worker counts.
///
/// # Errors
///
/// [`ServeError`] when the pool cannot start.
pub fn run_soak(cfg: SoakConfig) -> Result<SoakReport, ServeError> {
    let n = cfg.scale.max(4);
    let total = n * 8;
    // Id layout: [0,n) overload-A, [n,2n) overload-B, [2n,4n) fault
    // storm, [4n,5n) hangs, [5n,6n) corruption, [6n,8n) recovery.
    let storm = (2 * n, 4 * n);
    let hang = (4 * n, 4 * n + 4);
    let pool = ServePool::start(PoolConfig {
        workers: cfg.workers,
        queue_capacity: usize::try_from(n).unwrap_or(usize::MAX).max(2),
        weight_seed: cfg.weight_seed,
        faults: Some(ServeFaults {
            seed: cfg.seed ^ 0x00fa_0fa0,
            rate_percent: 100,
            armed_from: storm.0,
            armed_below: storm.1,
        }),
        hangs: Some(HangFaults {
            seed: cfg.seed ^ 0x0a4a_0a4a,
            rate_percent: 100,
            lo: hang.0,
            hi: hang.1,
        }),
        heartbeat_horizon_ms: 25,
        hold_workers: true,
        ..PoolConfig::default()
    })?;
    // Deadline scale: the slowest variant's fault-free runtime. Fast
    // variants always make `deadline_base`; the slowest variant's
    // clean serves need one backoff-relaxed retry; its recovered
    // serves (≈ 2× clean, a failed attempt plus a verified re-run)
    // exceed even the relaxed deadline and resolve TimedOut.
    let max_clean = Variant::ALL
        .into_iter()
        .map(|v| pool.template(v).clean_cycles())
        .max()
        .unwrap_or(0);
    let mut sup = Supervisor::new(pool);
    let requests = generate_requests(cfg.seed, total);
    let slice =
        |lo: u64, hi: u64| &requests[usize::try_from(lo).unwrap()..usize::try_from(hi).unwrap()];
    let base = SupervisorConfig {
        seed: cfg.seed,
        ..SupervisorConfig::default()
    };
    let storm_cfg = SupervisorConfig {
        deadline_base_cycles: max_clean - max_clean / 8,
        deadline_jitter_cycles: max_clean / 16,
        max_retries: 1,
        backoff_base_cycles: max_clean / 2,
        backoff_jitter_cycles: max_clean / 16,
        breaker_threshold: 2,
        breaker_cooldown_windows: 2,
        ..base
    };
    let started = Instant::now();
    let mut responses: Vec<SupervisorResponse> = Vec::with_capacity(requests.len());
    let mut phases = Vec::new();
    let mut last = sup.counters();
    let mut summarize = |sup: &Supervisor, phase: SoakPhase, last: &mut SoakCounters| {
        let now = sup.counters();
        phases.push(PhaseSummary {
            phase,
            requests: now.requests - last.requests,
            shed: now.shed() - last.shed(),
            retried: now.retried - last.retried,
            timed_out: now.timed_out - last.timed_out,
            breaker_trips: now.breaker_trips - last.breaker_trips,
            fallback_served: now.fallback_served - last.fallback_served,
        });
        *last = now;
    };

    // Phase 1 — overload. Window A floods a *held* pool past the
    // queue-depth watermark (the shed set is a pure function of
    // configuration); window B floods the estimated-cycle pressure
    // watermark.
    responses.extend(sup.run_window(
        slice(0, n),
        &SupervisorConfig {
            shed_watermark: usize::try_from(n / 2).unwrap_or(usize::MAX),
            release_after_submit: true,
            ..base
        },
    ));
    let min_clean = Variant::ALL
        .into_iter()
        .map(|v| sup.pool().template(v).clean_cycles())
        .min()
        .unwrap_or(0);
    responses.extend(sup.run_window(
        slice(n, 2 * n),
        &SupervisorConfig {
            pressure_watermark_cycles: min_clean * (n / 4),
            ..base
        },
    ));
    summarize(&sup, SoakPhase::Overload, &mut last);

    // Phase 2 — fault storm: every request chaos-armed, tight
    // deadlines, breakers live. Two windows so a trip in the first
    // routes fallback in the second.
    responses.extend(sup.run_window(slice(storm.0, 3 * n), &storm_cfg));
    responses.extend(sup.run_window(slice(3 * n, storm.1), &storm_cfg));
    summarize(&sup, SoakPhase::FaultStorm, &mut last);

    // Phase 3 — hang injection: the first four ids wedge their worker;
    // the monitor reaps and re-forks them. Breakers stay live so
    // storm-opened breakers keep routing fallback.
    responses.extend(sup.run_window(
        slice(4 * n, 5 * n),
        &SupervisorConfig {
            breaker_threshold: 2,
            breaker_cooldown_windows: 2,
            ..base
        },
    ));
    summarize(&sup, SoakPhase::HangInjection, &mut last);

    // Phase 4 — template corruption: strike two templates in host
    // memory; the next verified forks must quarantine and rebuild.
    sup.pool().corrupt_template(Variant::W4, cfg.seed ^ 0xc0de);
    sup.pool().corrupt_template(Variant::W2, cfg.seed ^ 0xc0df);
    responses.extend(sup.run_window(
        slice(5 * n, 6 * n),
        &SupervisorConfig {
            breaker_threshold: 2,
            breaker_cooldown_windows: 2,
            ..base
        },
    ));
    summarize(&sup, SoakPhase::TemplateCorruption, &mut last);

    // Phase 5 — recovery: clean windows; half-open probes re-close
    // every breaker.
    let recover_cfg = SupervisorConfig {
        breaker_threshold: 2,
        breaker_cooldown_windows: 1,
        ..base
    };
    responses.extend(sup.run_window(slice(6 * n, 7 * n), &recover_cfg));
    responses.extend(sup.run_window(slice(7 * n, total), &recover_cfg));
    summarize(&sup, SoakPhase::Recovery, &mut last);

    let breakers_closed = sup.all_breakers_closed();
    let (counters, pool_stats) = sup.finish();
    responses.sort_by_key(|r| r.id);
    let digest = soak_digest(&responses);
    Ok(SoakReport {
        cfg,
        responses,
        counters,
        pool_stats,
        phases,
        digest,
        breakers_closed,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;

    fn small_pool(workers: usize) -> ServePool {
        ServePool::start(PoolConfig {
            workers,
            ..PoolConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn breaker_trips_cools_down_probes_and_recloses() {
        let mut b = Breaker::new();
        // Two consecutive bad outcomes trip at threshold 2.
        assert!(!b.on_outcome(true, 2, 2));
        assert!(b.on_outcome(true, 2, 2));
        assert_eq!(b.state, BreakerState::Open { remaining: 2 });
        // In-flight stragglers don't disturb an open breaker.
        assert!(!b.on_outcome(true, 2, 2));
        // Cooldown: two window ticks to half-open.
        b.tick_window();
        assert_eq!(b.state, BreakerState::Open { remaining: 1 });
        b.tick_window();
        assert_eq!(b.state, BreakerState::HalfOpen);
        // A bad probe re-opens; a clean probe re-closes.
        assert!(b.on_probe(true, 2));
        assert_eq!(b.state, BreakerState::Open { remaining: 2 });
        b.tick_window();
        b.tick_window();
        assert!(!b.on_probe(false, 2));
        assert_eq!(b.state, BreakerState::Closed);
        // A good outcome resets the consecutive counter.
        assert!(!b.on_outcome(true, 2, 2));
        assert!(!b.on_outcome(false, 2, 2));
        assert!(!b.on_outcome(true, 2, 2));
        assert_eq!(b.state, BreakerState::Closed);
    }

    #[test]
    fn admission_sheds_typed_beyond_the_count_watermark() {
        let mut sup = Supervisor::new(small_pool(1));
        let requests = generate_requests(5, 6);
        let cfg = SupervisorConfig {
            shed_watermark: 2,
            ..SupervisorConfig::default()
        };
        let rs = sup.run_window(&requests, &cfg);
        assert_eq!(rs.len(), 6);
        // Admission is id-ordered: the first two are served, the rest
        // shed typed with the golden output.
        for r in &rs[..2] {
            assert!(matches!(r.outcome, SupervisorOutcome::Served(_)), "{r:?}");
        }
        for (r, req) in rs[2..].iter().zip(&requests[2..]) {
            assert_eq!(
                r.outcome,
                SupervisorOutcome::Rejected(RejectReason::QueueFull)
            );
            assert_eq!(
                r.output,
                sup.pool().template(req.variant).golden(&req.input)
            );
            assert_eq!(r.cycles, 0);
        }
        let c = sup.counters();
        assert_eq!((c.shed_queue_full, c.pool_served), (4, 2));
        sup.finish();
    }

    #[test]
    fn admission_sheds_typed_on_deadline_pressure() {
        let mut sup = Supervisor::new(small_pool(1));
        let requests = generate_requests(5, 4);
        // A pressure watermark below one request's estimate sheds
        // everything with the pressure reason.
        let cfg = SupervisorConfig {
            pressure_watermark_cycles: 1,
            ..SupervisorConfig::default()
        };
        let rs = sup.run_window(&requests, &cfg);
        assert!(rs
            .iter()
            .all(|r| r.outcome == SupervisorOutcome::Rejected(RejectReason::DeadlinePressure)));
        assert_eq!(sup.counters().shed_pressure, 4);
        sup.finish();
    }

    #[test]
    fn impossible_deadlines_retry_then_time_out_typed() {
        let mut sup = Supervisor::new(small_pool(2));
        let requests = generate_requests(6, 5);
        let cfg = SupervisorConfig {
            // 1-cycle deadline: unmeetable even relaxed — every request
            // burns its retries and resolves TimedOut.
            deadline_base_cycles: 1,
            max_retries: 2,
            backoff_base_cycles: 100,
            ..SupervisorConfig::default()
        };
        let rs = sup.run_window(&requests, &cfg);
        assert_eq!(rs.len(), 5);
        for r in &rs {
            assert!(
                matches!(r.outcome, SupervisorOutcome::TimedOut { .. }),
                "{r:?}"
            );
            assert_eq!(r.retries, 2);
            // The late output is still the verified device output.
            assert!(!r.output.is_empty());
            assert!(r.cycles > 0);
        }
        let c = sup.counters();
        assert_eq!(c.retried, 10);
        assert_eq!(c.timed_out, 5);
        sup.finish();
    }

    #[test]
    fn generous_deadlines_never_retry() {
        let mut sup = Supervisor::new(small_pool(1));
        let requests = generate_requests(6, 5);
        let cfg = SupervisorConfig {
            deadline_base_cycles: u64::MAX / 4,
            ..SupervisorConfig::default()
        };
        let rs = sup.run_window(&requests, &cfg);
        assert!(rs
            .iter()
            .all(|r| matches!(r.outcome, SupervisorOutcome::Served(Outcome::Ok))));
        let c = sup.counters();
        assert_eq!((c.retried, c.timed_out), (0, 0));
        sup.finish();
    }

    #[test]
    fn window_digest_is_identical_across_worker_counts() {
        let digest_for = |workers: usize| {
            let mut sup = Supervisor::new(small_pool(workers));
            let requests = generate_requests(7, 24);
            let cfg = SupervisorConfig {
                shed_watermark: 20,
                deadline_base_cycles: 1,
                max_retries: 1,
                ..SupervisorConfig::default()
            };
            let rs = sup.run_window(&requests, &cfg);
            let c = sup.counters();
            sup.finish();
            (soak_digest(&rs), c)
        };
        let (d1, c1) = digest_for(1);
        let (d2, c2) = digest_for(2);
        assert_eq!(d1, d2);
        assert_eq!(c1, c2);
    }
}
