//! A bounded MPMC work queue on `Mutex` + `Condvar` (the workspace is
//! dependency-free, so no crossbeam): typed rejection when full, typed
//! close, and a batch pop that coalesces adjacent same-key items so a
//! staged worker can serve several same-variant requests without
//! re-forking.

use crate::sync;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push did not enqueue.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
    /// A bounded wait for space expired; the item is handed back.
    TimedOut(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        sync::lock(&self.state).items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: returns immediately with a typed error when
    /// the queue is full or closed. This is the backpressure edge —
    /// it never blocks and never panics on a full queue.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; both hand the item back.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = sync::lock(&self.state);
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space (the deterministic loadgen's
    /// submit discipline — no request is ever shed).
    ///
    /// # Errors
    ///
    /// Hands the item back if the queue closes while waiting.
    pub fn push_blocking(&self, item: T) -> Result<(), T> {
        let mut s = sync::lock(&self.state);
        loop {
            if s.closed {
                return Err(item);
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            s = sync::wait(&self.not_full, s);
        }
    }

    /// Bounded-wait push: like [`BoundedQueue::push_blocking`] but
    /// gives up after `timeout` instead of waiting forever — the
    /// submit-side liveness guarantee when consumers are wedged or
    /// gone.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] if the queue closes while waiting,
    /// [`PushError::TimedOut`] when the wait expires; both hand the
    /// item back.
    pub fn push_timeout(&self, item: T, timeout: Duration) -> Result<(), PushError<T>> {
        let deadline = Instant::now() + timeout;
        let mut s = sync::lock(&self.state);
        loop {
            if s.closed {
                return Err(PushError::Closed(item));
            }
            if s.items.len() < self.capacity {
                s.items.push_back(item);
                drop(s);
                self.not_empty.notify_one();
                return Ok(());
            }
            let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                return Err(PushError::TimedOut(item));
            };
            let (guard, wait) = sync::wait_timeout(&self.not_full, s, left);
            s = guard;
            if wait.timed_out() && s.items.len() >= self.capacity && !s.closed {
                return Err(PushError::TimedOut(item));
            }
        }
    }

    /// Blocking pop of a batch: waits for at least one item, then
    /// greedily takes up to `max` *already-queued* items from the head
    /// while `same(first, next)` holds (it never waits for more work
    /// to batch). Returns `None` only when the queue is closed *and*
    /// drained — in-flight items always reach a consumer.
    pub fn pop_batch(&self, max: usize, same: impl Fn(&T, &T) -> bool) -> Option<Vec<T>> {
        let mut s = sync::lock(&self.state);
        let first = loop {
            if let Some(item) = s.items.pop_front() {
                break item;
            }
            if s.closed {
                return None;
            }
            s = sync::wait(&self.not_empty, s);
        };
        let mut batch = vec![first];
        while batch.len() < max.max(1) {
            match s.items.front() {
                Some(next) if same(&batch[0], next) => {
                    let next = s.items.pop_front().expect("front was Some");
                    batch.push(next);
                }
                _ => break,
            }
        }
        drop(s);
        // Space was freed; wake one blocked producer per item taken
        // (notify_all keeps it simple and correct).
        self.not_full.notify_all();
        Some(batch)
    }

    /// Closes the queue: no further pushes succeed; consumers drain
    /// what is queued and then see `None`.
    pub fn close(&self) {
        let mut s = sync::lock(&self.state);
        s.closed = true;
        drop(s);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True after [`BoundedQueue::close`].
    pub fn is_closed(&self) -> bool {
        sync::lock(&self.state).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn try_push_full_is_typed_and_immediate() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        // At capacity: typed rejection, item handed back, no blocking.
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        // Popping frees a slot.
        assert_eq!(q.pop_batch(1, |_, _| false), Some(vec![1]));
        assert_eq!(q.try_push(3), Ok(()));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        // Push after close: typed, item handed back.
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.push_blocking(4), Err(4));
        // Queued items still drain, in order, before the end marker.
        assert_eq!(q.pop_batch(8, |_, _| true), Some(vec![1, 2]));
        assert_eq!(q.pop_batch(8, |_, _| true), None);
        assert_eq!(q.pop_batch(1, |_, _| true), None);
    }

    #[test]
    fn pop_batch_coalesces_same_key_head_run_only() {
        let q = BoundedQueue::new(8);
        for v in [1, 1, 1, 2, 1] {
            q.try_push(v).unwrap();
        }
        // Takes the head run of equal items, stops at the first
        // different one, and respects `max`.
        assert_eq!(q.pop_batch(2, |a, b| a == b), Some(vec![1, 1]));
        assert_eq!(q.pop_batch(8, |a, b| a == b), Some(vec![1]));
        assert_eq!(q.pop_batch(8, |a, b| a == b), Some(vec![2]));
        assert_eq!(q.pop_batch(8, |a, b| a == b), Some(vec![1]));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn blocking_push_waits_for_space_and_wakes() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer = thread::spawn(move || q2.push_blocking(2));
        // The consumer frees the slot; the blocked producer completes.
        loop {
            if let Some(batch) = q.pop_batch(1, |_, _| false) {
                if batch == vec![1] {
                    break;
                }
            }
        }
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1, |_, _| false), Some(vec![2]));
    }

    #[test]
    fn push_timeout_is_typed_and_bounded() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        // Full queue, no consumer: the wait expires with a typed error
        // and the item handed back, instead of blocking forever.
        let r = q.push_timeout(2, std::time::Duration::from_millis(10));
        assert_eq!(r, Err(PushError::TimedOut(2)));
        assert_eq!(q.len(), 1);
        // With space, it enqueues immediately.
        assert_eq!(q.pop_batch(1, |_, _| false), Some(vec![1]));
        assert_eq!(
            q.push_timeout(2, std::time::Duration::from_millis(10)),
            Ok(())
        );
        // Closed beats timed-out.
        q.close();
        let r = q.push_timeout(3, std::time::Duration::from_millis(10));
        assert_eq!(r, Err(PushError::Closed(3)));
    }

    #[test]
    fn push_timeout_succeeds_when_a_consumer_frees_space() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(1).unwrap();
        let q2 = Arc::clone(&q);
        let producer =
            thread::spawn(move || q2.push_timeout(2, std::time::Duration::from_secs(30)));
        loop {
            if let Some(batch) = q.pop_batch(1, |_, _| false) {
                if batch == vec![1] {
                    break;
                }
            }
        }
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop_batch(1, |_, _| false), Some(vec![2]));
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let consumer = thread::spawn(move || q2.pop_batch(4, |_, _| true));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
