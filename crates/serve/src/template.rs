//! Pre-warmed worker templates: one fully-staged [`SocSnapshot`] per
//! kernel variant.
//!
//! Building a template pays the expensive, request-independent work
//! exactly once: kernel generation/assembly, program load, weight and
//! threshold-tree staging. A worker then *forks* from the template —
//! `Soc::new` + `restore` — in one L2 memcpy, amortizing program build
//! and weight staging to zero per request. `Soc::restore` flushes the
//! decoded-block cache unconditionally (pinned by tests in `pulp-soc`
//! and this crate), so a fork can never replay blocks decoded from
//! another program or a poisoned predecessor.

use crate::request::{RequestError, Variant};
use faultsim::{FaultPlan, TargetSpace, TemplateStrike};
use pulp_kernels::{BuildError, ConvKernelConfig, ConvTestbench, KernelIsa, QuantMode};
use pulp_soc::{Soc, SocSnapshot, STACK_TOP};
use qnn::conv::ConvShape;
use qnn::BitWidth;
use std::fmt;

/// The serving layer failed to come up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// A variant's kernel/template could not be built.
    Template {
        /// The failing variant.
        variant: Variant,
        /// The underlying build failure.
        error: BuildError,
    },
    /// A variant's health-check run (clean fork, synthetic input) did
    /// not verify against the golden model.
    TemplateUnhealthy {
        /// The failing variant.
        variant: Variant,
    },
    /// A template's stored snapshot no longer matches the checksum
    /// recorded at build time — the template is corrupted and must be
    /// quarantined and rebuilt before any further fork.
    TemplateCorrupted {
        /// The corrupted variant.
        variant: Variant,
    },
    /// A pool was configured with zero workers.
    NoWorkers,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Template { variant, error } => {
                write!(f, "template {variant} failed to build: {error}")
            }
            ServeError::TemplateUnhealthy { variant } => {
                write!(f, "template {variant} failed its health-check run")
            }
            ServeError::TemplateCorrupted { variant } => {
                write!(f, "template {variant} failed its integrity checksum")
            }
            ServeError::NoWorkers => write!(f, "pool needs at least one worker"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The kernel configuration a variant serves: the `small_shape` family
/// (padding, multiple channel blocks, several pixel pairs; `in_c·bits`
/// word-aligned at every width) — small enough that one request costs
/// tens of thousands of simulated cycles, large enough to exercise the
/// whole kernel.
pub fn serving_config(variant: Variant) -> ConvKernelConfig {
    let (bits, quant) = match variant {
        Variant::W8 => (BitWidth::W8, QuantMode::Shift8 { shift: 8 }),
        Variant::W4 => (BitWidth::W4, QuantMode::HardwareQnt),
        Variant::W4Tree => (BitWidth::W4, QuantMode::SoftwareTree),
        Variant::W2 => (BitWidth::W2, QuantMode::HardwareQnt),
    };
    let in_c = (32 / bits.bits() as usize) * 2;
    ConvKernelConfig {
        shape: ConvShape {
            in_h: 4,
            in_w: 4,
            in_c,
            out_c: 8,
            k_h: 3,
            k_w: 3,
            stride: 1,
            pad: 1,
        },
        bits,
        out_bits: bits,
        isa: KernelIsa::XpulpNN,
        quant,
    }
}

/// A pre-warmed, health-checked template workers fork from.
#[derive(Debug, Clone)]
pub struct WorkerTemplate {
    variant: Variant,
    tb: ConvTestbench,
    /// Snapshot taken after `stage()`: program + weights + descriptors
    /// + threshold trees in L2, pc at the entry, cycle counter 0.
    snapshot: SocSnapshot,
    /// FNV checksum of `snapshot` recorded at build time; re-verified
    /// before every fork so a corrupted template is caught before it
    /// poisons a worker (see [`WorkerTemplate::verify`]).
    checksum: u64,
    /// Fault-free runtime of the health-check run; bounds chaos-mode
    /// injection windows.
    clean_cycles: u64,
}

impl WorkerTemplate {
    /// Builds, stages and health-checks one variant's template.
    ///
    /// # Errors
    ///
    /// [`ServeError::Template`] if the kernel cannot be built,
    /// [`ServeError::TemplateUnhealthy`] if the clean run does not
    /// verify.
    pub fn build(variant: Variant, weight_seed: u64) -> Result<WorkerTemplate, ServeError> {
        let cfg = serving_config(variant);
        let tb = ConvTestbench::new(cfg, weight_seed ^ variant.index() as u64)
            .map_err(|error| ServeError::Template { variant, error })?;
        let mut soc = tb.stage();
        let snapshot = soc.snapshot();
        // Health check: the template must serve its own synthetic
        // input cleanly before any worker forks from it. This also
        // measures the fault-free runtime used for chaos windows.
        soc.enable_fastpath();
        let report = soc
            .run(tb.cycle_budget())
            .map_err(|_| ServeError::TemplateUnhealthy { variant })?;
        let result = tb.collect(&soc, report);
        if !result.matches() || !result.report.exit.halted {
            return Err(ServeError::TemplateUnhealthy { variant });
        }
        let checksum = snapshot.checksum();
        Ok(WorkerTemplate {
            variant,
            tb,
            snapshot,
            checksum,
            clean_cycles: result.report.perf.cycles,
        })
    }

    /// The variant this template serves.
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Logical input length a request must carry.
    pub fn input_len(&self) -> usize {
        self.tb.cfg.shape.input_len()
    }

    /// Logical output length responses carry.
    pub fn output_len(&self) -> usize {
        self.tb.cfg.shape.output_len()
    }

    /// Largest representable activation value (`2^bits − 1`).
    pub fn max_activation(&self) -> i16 {
        (1i16 << self.tb.cfg.bits.bits()) - 1
    }

    /// Fault-free runtime of the serving kernel, in cycles.
    pub fn clean_cycles(&self) -> u64 {
        self.clean_cycles
    }

    /// Per-request watchdog budget (the testbench contract: exhausting
    /// it means a runaway kernel, not a slow one).
    pub fn budget(&self) -> u64 {
        self.tb.cycle_budget()
    }

    /// Validates a request payload: non-empty, exact length, every
    /// activation in unsigned range.
    ///
    /// # Errors
    ///
    /// The first violated [`RequestError`].
    pub fn validate(&self, input: &[i16]) -> Result<(), RequestError> {
        if input.is_empty() {
            return Err(RequestError::Empty);
        }
        let want = self.input_len();
        if input.len() != want {
            return Err(RequestError::WrongLength {
                got: input.len(),
                want,
            });
        }
        let max = self.max_activation();
        if let Some((index, &value)) = input.iter().enumerate().find(|(_, v)| **v < 0 || **v > max)
        {
            return Err(RequestError::OutOfRange { index, value, max });
        }
        Ok(())
    }

    /// Forks a fresh worker machine from the template: new SoC, fast
    /// path enabled, full state restored from the staged snapshot.
    pub fn fork(&self) -> Soc {
        let mut soc = Soc::new(self.tb.isa_config());
        soc.enable_fastpath();
        soc.restore(&self.snapshot);
        soc
    }

    /// Re-forks an existing machine in place (cold reset): restores the
    /// full template state and re-enables the fast path (an armed run
    /// disables it). `restore` flushes the decoded-block cache, so no
    /// stale block from the machine's previous life can replay.
    pub fn refork(&self, soc: &mut Soc) {
        soc.enable_fastpath();
        soc.restore(&self.snapshot);
    }

    /// The integrity checksum recorded when the template was built.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Re-verifies the stored snapshot against the build-time checksum.
    /// Called before every fork when the pool runs with fork
    /// verification on: a template whose host-memory image was struck
    /// (bit rot, a stray write, [`WorkerTemplate::corrupt`]) must be
    /// quarantined and rebuilt, never forked.
    ///
    /// # Errors
    ///
    /// [`ServeError::TemplateCorrupted`] on a checksum mismatch.
    pub fn verify(&self) -> Result<(), ServeError> {
        if self.snapshot.checksum() == self.checksum {
            Ok(())
        } else {
            Err(ServeError::TemplateCorrupted {
                variant: self.variant,
            })
        }
    }

    /// Fault-injection hook: applies a seeded [`TemplateStrike`] to the
    /// stored snapshot, leaving the build-time checksum untouched — the
    /// next [`WorkerTemplate::verify`] must fail. Exercises the
    /// quarantine-and-rebuild path; never used on the clean serving
    /// path.
    pub fn corrupt(&mut self, strike: TemplateStrike) {
        strike.apply(&mut self.snapshot);
    }

    /// Writes a request's packed input over the template's input
    /// region. The region holds data, not code, so the decoded-block
    /// cache needs no invalidation — the `[code_lo, code_hi)` store
    /// filter and the staleness pinning tests cover the code case.
    pub fn stage_input(&self, soc: &mut Soc, input: &[i16]) {
        let packed = qnn::tensor::pack(self.tb.cfg.bits, input);
        soc.mem.write_bytes(self.tb.layout.input, &packed);
    }

    /// Points a warm machine back at the kernel entry with a fresh
    /// stack, without touching memory. Valid only after a clean,
    /// disarmed run: the kernel is register-closed (xcheck's DF-01
    /// proves no possibly-uninit register reads) and fully rewrites
    /// its output/scratch regions, pinned by the warm-vs-cold
    /// bit-exactness test.
    pub fn rearm_entry(&self, soc: &mut Soc) {
        soc.core.pc = self.snapshot.pc();
        soc.core.set_reg(pulp_isa::Reg::Sp, STACK_TOP);
    }

    /// Golden output for a request input under this template's weights
    /// and quantizer — what the device must produce, and what a
    /// degraded response falls back to.
    pub fn golden(&self, input: &[i16]) -> Vec<i16> {
        self.tb.golden_for(input)
    }

    /// Unpacks the device output region.
    pub fn collect_output(&self, soc: &Soc) -> Vec<i16> {
        let out_len = self.output_len();
        let out_bytes = qnn::tensor::packed_len(self.tb.cfg.out_bits, out_len);
        let packed = soc.mem.read_bytes(self.tb.layout.output, out_bytes);
        qnn::tensor::unpack(self.tb.cfg.out_bits, false, packed, out_len)
    }

    /// The fault-target space for chaos mode: this layer's tensors,
    /// threshold trees and the register file, with the injection
    /// window bounded by the clean runtime.
    pub fn target_space(&self) -> TargetSpace {
        TargetSpace::conv_layer(&self.tb.cfg, &self.tb.layout, self.clean_cycles)
    }

    /// A one-flip fault plan for chaos mode, deterministic in `seed`.
    pub fn fault_plan(&self, seed: u64) -> FaultPlan {
        FaultPlan::generate(seed, &self.target_space(), 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_build_healthy_templates() {
        for v in Variant::ALL {
            let t = WorkerTemplate::build(v, 42).unwrap_or_else(|e| panic!("{v}: {e}"));
            assert!(t.clean_cycles() > 0, "{v}");
            assert!(t.budget() > t.clean_cycles(), "{v}");
            assert!(t.input_len() > 0 && t.output_len() > 0, "{v}");
        }
    }

    #[test]
    fn validate_rejects_typed_payload_errors() {
        let t = WorkerTemplate::build(Variant::W4, 42).unwrap();
        assert_eq!(t.validate(&[]), Err(RequestError::Empty));
        let want = t.input_len();
        assert_eq!(
            t.validate(&vec![0; want + 1]),
            Err(RequestError::WrongLength {
                got: want + 1,
                want
            })
        );
        assert_eq!(
            t.validate(&vec![0; want - 1]),
            Err(RequestError::WrongLength {
                got: want - 1,
                want
            })
        );
        let mut bad = vec![0i16; want];
        bad[7] = 16; // 4-bit range is 0..=15
        assert_eq!(
            t.validate(&bad),
            Err(RequestError::OutOfRange {
                index: 7,
                value: 16,
                max: 15
            })
        );
        bad[7] = -1;
        assert_eq!(
            t.validate(&bad),
            Err(RequestError::OutOfRange {
                index: 7,
                value: -1,
                max: 15
            })
        );
        assert_eq!(t.validate(&vec![15; want]), Ok(()));
    }

    #[test]
    fn corrupted_template_fails_verify_and_rebuild_restores_it() {
        let mut t = WorkerTemplate::build(Variant::W4, 42).unwrap();
        assert_eq!(t.verify(), Ok(()));
        t.corrupt(TemplateStrike::generate(5));
        assert_eq!(
            t.verify(),
            Err(ServeError::TemplateCorrupted {
                variant: Variant::W4
            })
        );
        // Rebuild is a pure function of (variant, seed): the fresh
        // template carries the identical checksum and verifies again.
        let rebuilt = WorkerTemplate::build(Variant::W4, 42).unwrap();
        assert_eq!(rebuilt.checksum(), t.checksum());
        assert_eq!(rebuilt.verify(), Ok(()));
    }

    #[test]
    fn fork_serves_a_request_and_matches_golden() {
        let t = WorkerTemplate::build(Variant::W4, 42).unwrap();
        let mut soc = t.fork();
        let input = vec![3i16; t.input_len()];
        t.stage_input(&mut soc, &input);
        let report = soc.run(t.budget()).expect("clean run");
        assert!(report.exit.halted);
        assert_eq!(t.collect_output(&soc), t.golden(&input));
    }
}
