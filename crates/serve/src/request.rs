//! Request/response types of the serving layer.
//!
//! A [`Request`] carries an input tensor plus a [`Variant`] selector
//! naming the kernel (precision + quantization path) that must serve
//! it; a [`Response`] carries the output tensor, a typed [`Outcome`]
//! mirroring the network layer's degradation ladder, and the
//! per-request cycle ledger. Every field a response digest covers is a
//! pure function of the request and the pool's template configuration
//! — never of scheduling — which is what makes a (seed, trace) pair
//! replay bit-identically across worker counts.

use riscv_core::{PerfCounters, Trap};
use std::fmt;

/// The kernel variant a request selects: operand precision plus the
/// quantization path, all on the XpulpNN ISA. One pre-staged
/// [`crate::WorkerTemplate`] exists per variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// 8-bit operands, shift quantization (no thresholds).
    W8,
    /// 4-bit operands, hardware `pv.qnt` threshold quantization.
    W4,
    /// 4-bit operands, software Eytzinger threshold tree.
    W4Tree,
    /// 2-bit operands, hardware `pv.qnt` threshold quantization.
    W2,
}

impl Variant {
    /// All servable variants, in template-index order.
    pub const ALL: [Variant; 4] = [Variant::W8, Variant::W4, Variant::W4Tree, Variant::W2];

    /// Dense index into the pool's template table.
    pub fn index(self) -> usize {
        match self {
            Variant::W8 => 0,
            Variant::W4 => 1,
            Variant::W4Tree => 2,
            Variant::W2 => 3,
        }
    }

    /// Stable name used by the CLI and reports.
    pub fn name(self) -> &'static str {
        match self {
            Variant::W8 => "w8",
            Variant::W4 => "w4",
            Variant::W4Tree => "w4-tree",
            Variant::W2 => "w2",
        }
    }

    /// Parses a [`Variant::name`] back.
    pub fn parse(s: &str) -> Option<Variant> {
        Variant::ALL.into_iter().find(|v| v.name() == s)
    }
}

impl fmt::Display for Variant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One inference request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned identifier; echoed in the response. The pool
    /// does not require uniqueness, but the loadgen digest assumes it.
    pub id: u64,
    /// Which kernel template serves this request.
    pub variant: Variant,
    /// Logical (unpacked) activation values, length and range valid
    /// for the variant's serving shape — validated at submit time.
    pub input: Vec<i16>,
}

/// Why a request payload was rejected at submit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// Zero-size payload.
    Empty,
    /// Payload length does not match the variant's serving shape.
    WrongLength {
        /// Submitted element count.
        got: usize,
        /// Element count the variant's shape requires.
        want: usize,
    },
    /// An activation value falls outside the variant's unsigned range.
    OutOfRange {
        /// Index of the first offending element.
        index: usize,
        /// Its value.
        value: i16,
        /// Largest representable activation (`2^bits - 1`).
        max: i16,
    },
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::Empty => write!(f, "empty input payload"),
            RequestError::WrongLength { got, want } => {
                write!(
                    f,
                    "input length {got} does not match serving shape ({want})"
                )
            }
            RequestError::OutOfRange { index, value, max } => {
                write!(
                    f,
                    "input[{index}] = {value} outside activation range 0..={max}"
                )
            }
        }
    }
}

impl std::error::Error for RequestError {}

/// Why a submit call did not enqueue the request. `Overloaded` is the
/// backpressure signal: the bounded queue is full and the caller must
/// retry/shed — the pool never blocks a `try`-submit and never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Payload validation failed (see [`RequestError`]).
    Invalid {
        /// The rejected request's id.
        id: u64,
        /// What was wrong with the payload.
        error: RequestError,
    },
    /// The bounded work queue is at capacity.
    Overloaded {
        /// The queue's capacity, for caller-side shed policies.
        capacity: usize,
    },
    /// A bounded wait for queue space expired before a slot freed up
    /// (see [`crate::ServePool::submit_timeout`]) — the liveness-safe
    /// alternative to blocking forever on a wedged pool.
    Timeout {
        /// How long the submitter waited, in milliseconds.
        waited_ms: u64,
    },
    /// The pool is shutting down and no longer accepts work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Invalid { id, error } => write!(f, "request {id} rejected: {error}"),
            SubmitError::Overloaded { capacity } => {
                write!(f, "queue at capacity ({capacity}); shed or retry")
            }
            SubmitError::Timeout { waited_ms } => {
                write!(f, "no queue space freed within {waited_ms} ms")
            }
            SubmitError::ShuttingDown => write!(f, "pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// How a fault was detected mid-request (the serving twin of the
/// network layer's `FaultDetection`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Detection {
    /// The run trapped (watchdog included).
    Trap(Trap),
    /// The run halted but the output mismatched the golden model.
    Sdc,
}

impl fmt::Display for Detection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Detection::Trap(t) => write!(f, "trap: {t}"),
            Detection::Sdc => write!(f, "silent data corruption"),
        }
    }
}

/// Per-request outcome, mirroring `Network::run_with_policy`'s ladder:
/// a poisoned request degrades to the golden-software fallback — it
/// never kills its worker, which re-forks from the template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Clean run, output verified against the golden model.
    Ok,
    /// Faults were injected but the verified output still matched.
    Masked {
        /// Number of flips applied.
        flips: usize,
    },
    /// A fault was detected; a cold re-fork + retry produced a
    /// verified output.
    Recovered {
        /// How the fault was detected.
        detection: Detection,
        /// Retries consumed (≥ 1).
        retries: u32,
    },
    /// Retries exhausted; the response carries the golden software
    /// output instead of a device run.
    Degraded {
        /// How the fault was detected.
        detection: Detection,
    },
}

impl Outcome {
    /// True when the device (not the software fallback) produced the
    /// output.
    pub fn device_served(&self) -> bool {
        !matches!(self, Outcome::Degraded { .. })
    }

    /// Stable label used by reports and the response digest.
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Masked { .. } => "masked",
            Outcome::Recovered { .. } => "recovered",
            Outcome::Degraded { .. } => "degraded",
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Ok => write!(f, "ok"),
            Outcome::Masked { flips } => write!(f, "masked ({flips} flips)"),
            Outcome::Recovered { detection, retries } => {
                write!(f, "recovered after {retries} retry(ies) [{detection}]")
            }
            Outcome::Degraded { detection } => {
                write!(f, "degraded to golden fallback [{detection}]")
            }
        }
    }
}

/// One served request's result.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echo of [`Request::id`].
    pub id: u64,
    /// Echo of [`Request::variant`].
    pub variant: Variant,
    /// How the request was served.
    pub outcome: Outcome,
    /// Output tensor (logical values). Verified against the golden
    /// model for every outcome; for `Degraded` it *is* the golden
    /// output.
    pub output: Vec<i16>,
    /// Cycle ledger of the attempt that produced the output (the last
    /// attempt for `Degraded`).
    pub perf: PerfCounters,
    /// Total simulated cycles spent on this request, failed attempts
    /// included — the deterministic latency measure.
    pub cycles: u64,
    /// Index of the worker that served the request. Observability
    /// only: excluded from the digest (it depends on scheduling).
    pub worker: usize,
    /// True when served by a warm rerun (no template re-restore).
    /// Observability only: excluded from the digest.
    pub warm: bool,
    /// Host-side submit→completion latency in microseconds. Wall
    /// clock, so excluded from the digest.
    pub host_us: u64,
}

impl Response {
    /// Folds every *deterministic* field into an FNV-1a style digest
    /// accumulator: id, variant, outcome, output tensor, simulated
    /// cycles, and the ledger's headline counters. Worker index, warm
    /// flag and host latency are deliberately excluded — they depend
    /// on scheduling, the digest must not.
    pub fn fold_digest(&self, h: &mut u64) {
        let mut fold = |x: u64| {
            *h ^= x;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.id);
        fold(self.variant.index() as u64);
        match &self.outcome {
            Outcome::Ok => fold(1),
            Outcome::Masked { flips } => {
                fold(2);
                fold(*flips as u64);
            }
            Outcome::Recovered { detection, retries } => {
                fold(3);
                fold(u64::from(*retries));
                fold_detection(detection, &mut fold);
            }
            Outcome::Degraded { detection } => {
                fold(4);
                fold_detection(detection, &mut fold);
            }
        }
        fold(self.output.len() as u64);
        for &v in &self.output {
            fold(v as u16 as u64);
        }
        fold(self.cycles);
        fold(self.perf.cycles);
        fold(self.perf.instret);
    }
}

fn fold_detection(d: &Detection, fold: &mut impl FnMut(u64)) {
    match d {
        Detection::Sdc => fold(0x5dc),
        Detection::Trap(t) => {
            // The trap's rendering is deterministic (pc, cause).
            fold(0x7247);
            for b in format!("{t}").bytes() {
                fold(u64::from(b));
            }
        }
    }
}
