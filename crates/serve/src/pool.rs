//! The worker pool: N snapshot-forked SoC workers draining a bounded
//! MPMC queue, watched over by a heartbeat monitor.
//!
//! Each worker owns one `Soc` machine forked from a per-variant
//! [`WorkerTemplate`]. Batching coalesces adjacent same-variant
//! requests so a staged machine serves them warm (entry re-arm, no L2
//! restore); a variant switch or any unclean outcome cold re-forks
//! from the template. Every request runs under the per-request
//! watchdog budget and the `run_with_policy`-style ladder: verified ok
//! → masked → cold-retry recovered → golden-software degraded. A
//! poisoned request never kills its worker.
//!
//! Robustness machinery (PR 8):
//!
//! * **Template integrity** — every cold fork re-verifies the
//!   template's FNV checksum ([`WorkerTemplate::verify`]); a corrupted
//!   template is quarantined and rebuilt from scratch before any
//!   worker forks from it (`quarantines` in [`PoolStats`]).
//! * **Heartbeats** — a monitor thread watches per-worker busy
//!   timestamps; a worker stuck past the watchdog horizon is *reaped*:
//!   its wedged machine is torn down and re-forked from the template,
//!   and the request it was holding is still served (`reaps` in
//!   [`PoolStats`]). [`HangFaults`] injects deterministic wedges to
//!   exercise exactly this path.
//! * **Poison recovery** — all pool locks go through [`crate::sync`]:
//!   one panicking worker can no longer cascade-poison the queue, the
//!   response sink or the final report.
//!
//! Determinism: a request's deterministic fields (output, outcome,
//! simulated cycles, ledger) are a pure function of the request and
//! the pool's template/fault configuration. Chaos-armed requests
//! always run on a fresh cold fork (cycle counter 0), so a fault
//! plan's absolute-cycle schedule lands identically no matter which
//! worker picks the request up; warm reruns are bit-exact with cold
//! forks (pinned); a reaped worker re-forks cold, so a hang-armed
//! request's response is bit-identical to a clean cold serve. Hence
//! any (seed, request-trace) pair replays bit-identically across
//! 1/2/8 workers.

use crate::queue::{BoundedQueue, PushError};
use crate::request::{Detection, Outcome, Request, Response, SubmitError, Variant};
use crate::sync;
use crate::template::{ServeError, WorkerTemplate};
use faultsim::{run_armed, ArmConfig, FaultPlan, TemplateStrike};
use pulp_soc::Soc;
use riscv_core::{PerfCounters, Trap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};
use xrand::Rng;

/// Seeded chaos mode: per-request fault arming through `faultsim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeFaults {
    /// Campaign seed; a request's plan depends only on this and its id.
    pub seed: u64,
    /// Percentage of eligible requests that get one flip (0–100).
    pub rate_percent: u8,
    /// Only requests with `armed_from <= id < armed_below` are
    /// eligible — lets a test bracket a chaos wave between clean waves
    /// on one pool (the soak's fault-storm phase).
    pub armed_from: u64,
    /// Exclusive upper bound of the armed id range.
    pub armed_below: u64,
}

impl ServeFaults {
    /// Arms every request with one flip.
    pub fn always(seed: u64) -> ServeFaults {
        ServeFaults {
            seed,
            rate_percent: 100,
            armed_from: 0,
            armed_below: u64::MAX,
        }
    }

    /// The fault plan for request `id`, if it is armed.
    fn plan_for(&self, template: &WorkerTemplate, id: u64) -> Option<FaultPlan> {
        if id < self.armed_from || id >= self.armed_below {
            return None;
        }
        let mut rng = Rng::new(self.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        if rng.below(100) >= u64::from(self.rate_percent) {
            return None;
        }
        Some(template.fault_plan(rng.next_u64()))
    }
}

/// Seeded hang injection: requests whose id is armed wedge their
/// worker mid-serve (the worker parks on its hang gate) until the
/// heartbeat monitor reaps it. Which ids hang is a pure function of
/// `(seed, id)`, so reap counts replay exactly; the reaped worker
/// re-forks cold and still serves the request, so response content is
/// bit-identical to a clean cold serve on any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HangFaults {
    /// Campaign seed.
    pub seed: u64,
    /// Percentage of eligible requests that wedge (0–100).
    pub rate_percent: u8,
    /// Only ids in `lo..hi` are eligible.
    pub lo: u64,
    /// Exclusive upper bound of the eligible id range.
    pub hi: u64,
}

impl HangFaults {
    /// Wedges every request in `lo..hi`.
    pub fn range(seed: u64, lo: u64, hi: u64) -> HangFaults {
        HangFaults {
            seed,
            rate_percent: 100,
            lo,
            hi,
        }
    }

    /// True when request `id` is armed to hang.
    pub fn armed(&self, id: u64) -> bool {
        if id < self.lo || id >= self.hi {
            return false;
        }
        let mut rng = Rng::new(self.seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        rng.below(100) < u64::from(self.rate_percent)
    }
}

/// Pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Worker threads (≥ 1).
    pub workers: usize,
    /// Bounded queue capacity; `try`-submits beyond it return
    /// [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
    /// Max same-variant requests a worker coalesces per queue pop.
    pub batch_max: usize,
    /// Seed for the per-variant template weights/thresholds.
    pub weight_seed: u64,
    /// Cold-retry attempts before degrading to the golden fallback.
    pub max_retries: u32,
    /// Serve consecutive same-variant requests warm (entry re-arm
    /// without an L2 restore). Off forces a cold fork per request;
    /// results are bit-identical either way (pinned).
    pub warm_reruns: bool,
    /// Chaos mode; `None` serves cleanly.
    pub faults: Option<ServeFaults>,
    /// Hang injection; `None` never wedges. Setting this implicitly
    /// enables the heartbeat monitor (a 50 ms horizon is used when
    /// [`PoolConfig::heartbeat_horizon_ms`] is 0).
    pub hangs: Option<HangFaults>,
    /// Watchdog horizon in host milliseconds: a worker busy on one
    /// request for longer is reaped by the monitor thread. 0 disables
    /// the monitor (unless hang injection forces it on). Pick a value
    /// far above the per-request host cost; reaping is for wedged
    /// workers, not slow ones.
    pub heartbeat_horizon_ms: u64,
    /// Re-verify the template checksum before every cold fork and
    /// quarantine-and-rebuild corrupted templates. Verification never
    /// changes response content, only whether corruption is caught at
    /// fork time or by the (golden-checked) degradation ladder.
    pub verify_forks: bool,
    /// Start workers parked until [`ServePool::release`] — lets tests
    /// fill the queue deterministically. `shutdown` releases
    /// implicitly, so held work always drains.
    pub hold_workers: bool,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            workers: 2,
            queue_capacity: 64,
            batch_max: 8,
            weight_seed: 42,
            max_retries: 1,
            warm_reruns: true,
            faults: None,
            hangs: None,
            heartbeat_horizon_ms: 0,
            verify_forks: true,
            hold_workers: false,
        }
    }
}

/// Aggregate pool counters (observability; not part of any digest).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Requests served (one response each).
    pub served: u64,
    /// Cold forks/re-forks from a template.
    pub cold_forks: u64,
    /// Requests served on a warm machine.
    pub warm_runs: u64,
    /// Responses by outcome.
    pub ok: u64,
    /// Masked responses.
    pub masked: u64,
    /// Recovered responses.
    pub recovered: u64,
    /// Degraded responses.
    pub degraded: u64,
    /// Workers reaped by the heartbeat monitor (wedged past the
    /// horizon, torn down and re-forked from their template).
    pub reaps: u64,
    /// Corrupted templates quarantined and rebuilt from scratch.
    pub quarantines: u64,
}

/// Everything a finished pool hands back. When
/// [`ServePool::drain_responses`] was used mid-run (the supervisor's
/// windowed mode), `responses` holds only what was recorded after the
/// last drain — the drainer owns the rest.
#[derive(Debug)]
pub struct PoolReport {
    /// Responses not yet drained, sorted by request id.
    pub responses: Vec<Response>,
    /// Aggregate counters over the pool's whole life.
    pub stats: PoolStats,
}

struct Job {
    req: Request,
    enqueued: Instant,
}

/// Per-worker health record for the heartbeat monitor.
///
/// Every SoC run is bounded by the per-request watchdog budget, so a
/// busy-but-progressing worker is provably live; the only way a worker
/// can stall forever is a wedge on its hang gate. The monitor
/// therefore reaps exactly the workers that are *wedged* past the
/// horizon (the horizon models detection latency) — a merely slow
/// request is never reaped, which keeps reap counts a pure function of
/// the hang configuration instead of host scheduling.
struct Health {
    /// `now_ms + 1` when the worker started its current request;
    /// 0 = idle. The `+1` keeps 0 unambiguous.
    busy_since_ms: AtomicU64,
    /// True while the worker is parked on its hang gate.
    wedged: AtomicBool,
    /// Set by the monitor when it reaps the worker; cleared by the
    /// worker after it re-forks.
    reaped: AtomicBool,
    /// Hang-injection gate: an armed request parks here until reaped.
    gate: Mutex<()>,
    gate_cv: Condvar,
}

impl Health {
    fn new() -> Health {
        Health {
            busy_since_ms: AtomicU64::new(0),
            wedged: AtomicBool::new(false),
            reaped: AtomicBool::new(false),
            gate: Mutex::new(()),
            gate_cv: Condvar::new(),
        }
    }
}

struct Shared {
    queue: BoundedQueue<Job>,
    /// One slot per variant; the `Arc` is swapped atomically under the
    /// slot lock when a corrupted template is quarantined and rebuilt.
    templates: Vec<Mutex<Arc<WorkerTemplate>>>,
    cfg: PoolConfig,
    /// Effective heartbeat horizon (0 = monitor off).
    horizon_ms: u64,
    responses: Mutex<Vec<Response>>,
    stats: Mutex<PoolStats>,
    gate: Mutex<bool>,
    gate_cv: Condvar,
    /// Cumulative responses recorded over the pool's life (never reset
    /// by drains) + its condvar, for [`ServePool::wait_completed`].
    done: Mutex<u64>,
    done_cv: Condvar,
    health: Vec<Health>,
    monitor_stop: AtomicBool,
    t0: Instant,
}

impl Shared {
    fn wait_released(&self) {
        let mut released = sync::lock(&self.gate);
        while !*released {
            released = sync::wait(&self.gate_cv, released);
        }
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.t0.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The current template for `variant` (cheap `Arc` clone).
    fn template_arc(&self, variant: Variant) -> Arc<WorkerTemplate> {
        Arc::clone(&sync::lock(&self.templates[variant.index()]))
    }

    /// The template for `variant`, integrity-checked when the pool is
    /// configured to verify forks. A corrupted template is quarantined
    /// and rebuilt under the slot lock; the first worker to notice
    /// pays the rebuild, later workers see the fresh template.
    fn checked_template(&self, variant: Variant) -> Arc<WorkerTemplate> {
        let t = self.template_arc(variant);
        if !self.cfg.verify_forks || t.verify().is_ok() {
            return t;
        }
        let mut slot = sync::lock(&self.templates[variant.index()]);
        // Re-check under the lock: another worker may have rebuilt
        // the slot between our verify and our lock.
        if slot.verify().is_ok() {
            return Arc::clone(&slot);
        }
        match WorkerTemplate::build(variant, self.cfg.weight_seed) {
            Ok(fresh) => {
                // The rebuild is a pure function of (variant, seed):
                // the fresh template is bit-identical to the one the
                // pool started with, so responses are unaffected.
                *slot = Arc::new(fresh);
                sync::lock(&self.stats).quarantines += 1;
                Arc::clone(&slot)
            }
            // A rebuild can only fail if startup would have failed;
            // keep the quarantined template — the golden-checked
            // degradation ladder still guarantees correct outputs.
            Err(_) => Arc::clone(&slot),
        }
    }

    /// Records a finished response and wakes completion waiters.
    fn record(&self, response: Response) {
        let mut stats = sync::lock(&self.stats);
        stats.served += 1;
        if response.warm {
            stats.warm_runs += 1;
        }
        match response.outcome {
            Outcome::Ok => stats.ok += 1,
            Outcome::Masked { .. } => stats.masked += 1,
            Outcome::Recovered { .. } => stats.recovered += 1,
            Outcome::Degraded { .. } => stats.degraded += 1,
        }
        drop(stats);
        sync::lock(&self.responses).push(response);
        let mut done = sync::lock(&self.done);
        *done += 1;
        drop(done);
        self.done_cv.notify_all();
    }
}

/// The serving pool. Dropping it without [`ServePool::shutdown`]
/// closes the queue and joins workers (in-flight work still drains).
pub struct ServePool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    monitor: Option<JoinHandle<()>>,
}

impl ServePool {
    /// Builds all variant templates (health-checked), spawns the
    /// worker threads and — when a heartbeat horizon or hang injection
    /// is configured — the monitor thread.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when misconfigured or a template fails to build
    /// or verify.
    pub fn start(cfg: PoolConfig) -> Result<ServePool, ServeError> {
        if cfg.workers == 0 {
            return Err(ServeError::NoWorkers);
        }
        let templates = Variant::ALL
            .into_iter()
            .map(|v| {
                Ok(Mutex::new(Arc::new(WorkerTemplate::build(
                    v,
                    cfg.weight_seed,
                )?)))
            })
            .collect::<Result<Vec<_>, ServeError>>()?;
        // Hang injection needs the monitor to make progress; give it a
        // default horizon when none was configured.
        let horizon_ms = if cfg.heartbeat_horizon_ms == 0 && cfg.hangs.is_some() {
            50
        } else {
            cfg.heartbeat_horizon_ms
        };
        let shared = Arc::new(Shared {
            queue: BoundedQueue::new(cfg.queue_capacity),
            templates,
            cfg,
            horizon_ms,
            responses: Mutex::new(Vec::new()),
            stats: Mutex::new(PoolStats::default()),
            gate: Mutex::new(!cfg.hold_workers),
            gate_cv: Condvar::new(),
            done: Mutex::new(0),
            done_cv: Condvar::new(),
            health: (0..cfg.workers).map(|_| Health::new()).collect(),
            monitor_stop: AtomicBool::new(false),
            t0: Instant::now(),
        });
        let handles = (0..cfg.workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                thread::spawn(move || worker_loop(&shared, idx))
            })
            .collect();
        let monitor = (horizon_ms > 0).then(|| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || monitor_loop(&shared))
        });
        Ok(ServePool {
            shared,
            handles,
            monitor,
        })
    }

    /// Validates and enqueues without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] on a bad payload,
    /// [`SubmitError::Overloaded`] when the bounded queue is full,
    /// [`SubmitError::ShuttingDown`] after shutdown began.
    pub fn submit(&self, req: Request) -> Result<(), SubmitError> {
        let job = self.validate(req)?;
        match self.shared.queue.try_push(job) {
            Ok(()) => Ok(()),
            Err(PushError::Full(_)) => Err(SubmitError::Overloaded {
                capacity: self.shared.queue.capacity(),
            }),
            Err(PushError::Closed(_) | PushError::TimedOut(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Validates and enqueues, waiting for queue space (the loadgen's
    /// lossless submit discipline).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] or [`SubmitError::ShuttingDown`].
    pub fn submit_blocking(&self, req: Request) -> Result<(), SubmitError> {
        let job = self.validate(req)?;
        self.shared
            .queue
            .push_blocking(job)
            .map_err(|_| SubmitError::ShuttingDown)
    }

    /// Validates and enqueues with a bounded wait for queue space —
    /// the liveness-safe submit discipline: a wedged or gone consumer
    /// side costs the submitter at most `timeout`, never forever.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`], [`SubmitError::ShuttingDown`], or
    /// [`SubmitError::Timeout`] when no slot freed up in time.
    pub fn submit_timeout(&self, req: Request, timeout: Duration) -> Result<(), SubmitError> {
        let job = self.validate(req)?;
        match self.shared.queue.push_timeout(job, timeout) {
            Ok(()) => Ok(()),
            Err(PushError::Closed(_)) => Err(SubmitError::ShuttingDown),
            Err(PushError::TimedOut(_) | PushError::Full(_)) => Err(SubmitError::Timeout {
                waited_ms: u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX),
            }),
        }
    }

    fn validate(&self, req: Request) -> Result<Job, SubmitError> {
        let template = self.shared.template_arc(req.variant);
        template
            .validate(&req.input)
            .map_err(|error| SubmitError::Invalid { id: req.id, error })?;
        Ok(Job {
            req,
            enqueued: Instant::now(),
        })
    }

    /// Unparks held workers (see [`PoolConfig::hold_workers`]).
    pub fn release(&self) {
        let mut released = sync::lock(&self.shared.gate);
        *released = true;
        drop(released);
        self.shared.gate_cv.notify_all();
    }

    /// Requests currently queued (not yet picked up).
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Responses completed over the pool's life (cumulative; not reset
    /// by [`ServePool::drain_responses`]).
    pub fn completed(&self) -> usize {
        usize::try_from(*sync::lock(&self.shared.done)).unwrap_or(usize::MAX)
    }

    /// Blocks until at least `n` responses have been recorded over the
    /// pool's life. The supervisor's window barrier.
    pub fn wait_completed(&self, n: u64) {
        let mut done = sync::lock(&self.shared.done);
        while *done < n {
            done = sync::wait(&self.shared.done_cv, done);
        }
    }

    /// Takes every response recorded so far (sorted by request id),
    /// leaving the sink empty for the next window. Used by the
    /// supervisor; a pool driven only through [`ServePool::shutdown`]
    /// never needs it.
    pub fn drain_responses(&self) -> Vec<Response> {
        let mut responses = std::mem::take(&mut *sync::lock(&self.shared.responses));
        responses.sort_by_key(|r| r.id);
        responses
    }

    /// Aggregate counters so far (a consistent snapshot).
    pub fn stats(&self) -> PoolStats {
        *sync::lock(&self.shared.stats)
    }

    /// The template serving `variant` (for request construction).
    pub fn template(&self, variant: Variant) -> Arc<WorkerTemplate> {
        self.shared.template_arc(variant)
    }

    /// Fault-injection hook: applies a seeded [`TemplateStrike`] to
    /// the stored template for `variant`, leaving its build-time
    /// checksum untouched. The next verified cold fork must detect
    /// the corruption and quarantine-and-rebuild the template.
    pub fn corrupt_template(&self, variant: Variant, strike_seed: u64) {
        let mut slot = sync::lock(&self.shared.templates[variant.index()]);
        let mut t = (**slot).clone();
        t.corrupt(TemplateStrike::generate(strike_seed));
        *slot = Arc::new(t);
    }

    /// Stops intake, drains in-flight requests, joins the workers and
    /// the monitor, and returns every undrained response (sorted by
    /// id) plus the counters.
    ///
    /// The shutdown path is loss-free by construction: responses are
    /// taken only after *every* worker thread has exited — including
    /// workers that were reaped and re-forked mid-shutdown — and a
    /// panicked worker costs its own in-flight request at most, never
    /// the report (joins ignore panics; locks recover from poison).
    pub fn shutdown(mut self) -> PoolReport {
        self.shared.queue.close();
        self.release();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.shared.monitor_stop.store(true, Ordering::Release);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
        let mut responses = std::mem::take(&mut *sync::lock(&self.shared.responses));
        responses.sort_by_key(|r| r.id);
        let stats = *sync::lock(&self.shared.stats);
        PoolReport { responses, stats }
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        self.shared.queue.close();
        self.release();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        self.shared.monitor_stop.store(true, Ordering::Release);
        if let Some(m) = self.monitor.take() {
            let _ = m.join();
        }
    }
}

/// The heartbeat monitor: reaps workers wedged past the horizon (see
/// [`Health`] for why only wedged — never slow — workers qualify). A
/// reap is one atomic flag flip + wakeup; the wedged worker itself
/// tears down its machine and re-forks from the template, so the
/// monitor can never race a healthy worker's machine state.
fn monitor_loop(shared: &Shared) {
    let poll = Duration::from_millis((shared.horizon_ms / 4).clamp(1, 10));
    while !shared.monitor_stop.load(Ordering::Acquire) {
        let now = shared.now_ms();
        for h in &shared.health {
            let since = h.busy_since_ms.load(Ordering::Acquire);
            if h.wedged.load(Ordering::Acquire)
                && since != 0
                && now.saturating_sub(since - 1) >= shared.horizon_ms
                && !h.reaped.swap(true, Ordering::AcqRel)
            {
                sync::lock(&shared.stats).reaps += 1;
                // Take the gate lock before notifying so a worker
                // between its reaped-check and its wait cannot miss
                // the wakeup.
                drop(sync::lock(&h.gate));
                h.gate_cv.notify_all();
            }
        }
        thread::sleep(poll);
    }
}

/// Parks a hang-armed worker on its gate until the monitor reaps it,
/// then restarts its horizon clock and clears the reap flag so the
/// recovery serve is not re-reaped.
fn hang_until_reaped(shared: &Shared, worker: usize) {
    let h = &shared.health[worker];
    let mut g = sync::lock(&h.gate);
    h.wedged.store(true, Ordering::Release);
    while !h.reaped.load(Ordering::Acquire) {
        g = sync::wait(&h.gate_cv, g);
    }
    drop(g);
    h.wedged.store(false, Ordering::Release);
    h.busy_since_ms
        .store(shared.now_ms() + 1, Ordering::Release);
    h.reaped.store(false, Ordering::Release);
}

/// One worker's staged machine.
struct Machine {
    soc: Soc,
    variant: Variant,
    /// True only after a clean, disarmed run — the precondition for a
    /// warm rerun.
    clean: bool,
}

fn worker_loop(shared: &Shared, worker: usize) {
    shared.wait_released();
    let mut machine: Option<Machine> = None;
    while let Some(batch) = shared
        .queue
        .pop_batch(shared.cfg.batch_max, |a, b| a.req.variant == b.req.variant)
    {
        for job in batch {
            let h = &shared.health[worker];
            h.busy_since_ms
                .store(shared.now_ms() + 1, Ordering::Release);
            let response = serve_one(shared, worker, &mut machine, job);
            h.busy_since_ms.store(0, Ordering::Release);
            shared.record(response);
        }
    }
    // A stale reap flag from the last served request must not leak
    // into a future life of this worker slot.
    shared.health[worker].reaped.store(false, Ordering::Release);
}

enum Attempt {
    // Boxed: PerfCounters dwarfs the trap variant otherwise.
    Halt {
        output: Vec<i16>,
        perf: Box<PerfCounters>,
    },
    Trapped(Trap),
}

fn serve_one(shared: &Shared, worker: usize, machine: &mut Option<Machine>, job: Job) -> Response {
    let Job { req, enqueued } = job;

    // Hang injection: an armed request wedges this worker until the
    // monitor reaps it. The wedged machine is torn down; the request
    // is then served on a fresh cold fork, so its response content is
    // bit-identical to a clean cold serve.
    if shared.cfg.hangs.is_some_and(|hf| hf.armed(req.id)) {
        *machine = None;
        hang_until_reaped(shared, worker);
    }

    let template = shared.checked_template(req.variant);
    let golden = template.golden(&req.input);
    let plan = shared
        .cfg
        .faults
        .as_ref()
        .and_then(|f| f.plan_for(&template, req.id));

    // Stage the machine. Armed requests must start from the template's
    // cycle counter (0): the fault plan schedules flips on absolute
    // cycles. Warm reruns are only taken on a clean machine of the
    // same variant, and only disarmed.
    let warm = plan.is_none()
        && shared.cfg.warm_reruns
        && machine
            .as_ref()
            .is_some_and(|m| m.variant == req.variant && m.clean);
    let mut m = match machine.take() {
        Some(mut m) if warm => {
            template.rearm_entry(&mut m.soc);
            m
        }
        Some(mut m) => {
            template.refork(&mut m.soc);
            sync::lock(&shared.stats).cold_forks += 1;
            m.variant = req.variant;
            m
        }
        None => {
            sync::lock(&shared.stats).cold_forks += 1;
            Machine {
                soc: template.fork(),
                variant: req.variant,
                clean: false,
            }
        }
    };
    template.stage_input(&mut m.soc, &req.input);

    // First attempt: armed (interpreter, flips applied) or plain
    // (fast path). Both run under the per-request watchdog budget.
    let mut total_cycles;
    let mut flips = 0usize;
    let attempt = if let Some(plan) = &plan {
        let armed = run_armed(
            &mut m.soc,
            plan,
            &ArmConfig {
                budget: template.budget(),
                checkpoint_interval: 10_000,
                trace_depth: 0,
            },
        );
        flips = armed.injections.len();
        total_cycles = armed.perf.cycles;
        match armed.exit {
            Ok(_) => Attempt::Halt {
                output: template.collect_output(&m.soc),
                perf: Box::new(armed.perf),
            },
            Err(trap) => Attempt::Trapped(trap),
        }
    } else {
        let before = m.soc.core.perf;
        match m.soc.run(template.budget()) {
            Ok(report) => {
                total_cycles = report.perf.cycles;
                Attempt::Halt {
                    output: template.collect_output(&m.soc),
                    perf: Box::new(report.perf),
                }
            }
            Err(trap) => {
                // `Soc::run` returns no report on a trap; the delta
                // against the pre-run counters is the attempt's cost.
                let perf = m.soc.core.perf.delta_since(&before);
                total_cycles = perf.cycles;
                Attempt::Trapped(trap)
            }
        }
    };

    // Classification ladder.
    let detection = match attempt {
        Attempt::Halt { output, perf } if output == golden => {
            let outcome = if flips > 0 {
                // Flips landed but the verified output survived.
                m.clean = false;
                Outcome::Masked { flips }
            } else {
                m.clean = true;
                Outcome::Ok
            };
            let response = Response {
                id: req.id,
                variant: req.variant,
                outcome,
                output,
                perf: *perf,
                cycles: total_cycles,
                worker,
                warm,
                host_us: elapsed_us(enqueued),
            };
            *machine = Some(m);
            return response;
        }
        Attempt::Halt { .. } => Detection::Sdc,
        Attempt::Trapped(trap) => Detection::Trap(trap),
    };

    // Detected: bounded cold-retry from the template. Transient-fault
    // model — a disarmed re-run from the pristine template is a full
    // recovery; the loop exists for policy parity with the network
    // layer (and guards against template-level SDC, which the
    // health check already rules out).
    for retry in 1..=shared.cfg.max_retries {
        template.refork(&mut m.soc);
        sync::lock(&shared.stats).cold_forks += 1;
        template.stage_input(&mut m.soc, &req.input);
        match m.soc.run(template.budget()) {
            Ok(report) => {
                total_cycles += report.perf.cycles;
                let output = template.collect_output(&m.soc);
                if output == golden {
                    m.clean = true;
                    let response = Response {
                        id: req.id,
                        variant: req.variant,
                        outcome: Outcome::Recovered {
                            detection,
                            retries: retry,
                        },
                        output,
                        perf: report.perf,
                        cycles: total_cycles,
                        worker,
                        warm,
                        host_us: elapsed_us(enqueued),
                    };
                    *machine = Some(m);
                    return response;
                }
            }
            Err(_) => {
                m.clean = false;
            }
        }
    }

    // Retries exhausted: golden software fallback; the worker machine
    // is marked unclean and will cold re-fork before its next request.
    m.clean = false;
    let response = Response {
        id: req.id,
        variant: req.variant,
        outcome: Outcome::Degraded { detection },
        output: golden,
        perf: PerfCounters::new(),
        cycles: total_cycles,
        worker,
        warm,
        host_us: elapsed_us(enqueued),
    };
    *machine = Some(m);
    response
}

fn elapsed_us(enqueued: Instant) -> u64 {
    u64::try_from(enqueued.elapsed().as_micros()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestError;

    fn valid_request(pool: &ServePool, id: u64, variant: Variant, fill: i16) -> Request {
        Request {
            id,
            variant,
            input: vec![fill; pool.template(variant).input_len()],
        }
    }

    #[test]
    fn zero_workers_is_a_typed_error() {
        let cfg = PoolConfig {
            workers: 0,
            ..PoolConfig::default()
        };
        assert_eq!(ServePool::start(cfg).err(), Some(ServeError::NoWorkers));
    }

    #[test]
    fn invalid_payloads_are_rejected_typed_at_submit() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        })
        .unwrap();
        // Zero-size payload.
        let r = pool.submit(Request {
            id: 1,
            variant: Variant::W4,
            input: vec![],
        });
        assert_eq!(
            r,
            Err(SubmitError::Invalid {
                id: 1,
                error: RequestError::Empty
            })
        );
        // Oversized payload.
        let want = pool.template(Variant::W4).input_len();
        let r = pool.submit(Request {
            id: 2,
            variant: Variant::W4,
            input: vec![0; want * 2],
        });
        assert_eq!(
            r,
            Err(SubmitError::Invalid {
                id: 2,
                error: RequestError::WrongLength {
                    got: want * 2,
                    want
                }
            })
        );
        // Out-of-range activation.
        let mut input = vec![0i16; want];
        input[0] = 99;
        let r = pool.submit(Request {
            id: 3,
            variant: Variant::W4,
            input,
        });
        assert!(matches!(
            r,
            Err(SubmitError::Invalid {
                id: 3,
                error: RequestError::OutOfRange { index: 0, .. }
            })
        ));
        // Nothing reached the queue; shutdown returns no responses.
        let report = pool.shutdown();
        assert!(report.responses.is_empty());
    }

    #[test]
    fn overload_is_typed_and_held_work_still_drains() {
        // Held workers make the overload deterministic: the queue
        // cannot drain until release.
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            queue_capacity: 2,
            hold_workers: true,
            ..PoolConfig::default()
        })
        .unwrap();
        pool.submit(valid_request(&pool, 0, Variant::W4, 1))
            .unwrap();
        pool.submit(valid_request(&pool, 1, Variant::W4, 2))
            .unwrap();
        let r = pool.submit(valid_request(&pool, 2, Variant::W4, 3));
        assert_eq!(r, Err(SubmitError::Overloaded { capacity: 2 }));
        // A bounded-wait submit times out typed instead of blocking
        // forever on the held (wedged) pool.
        let r = pool.submit_timeout(
            valid_request(&pool, 3, Variant::W4, 3),
            Duration::from_millis(15),
        );
        assert_eq!(r, Err(SubmitError::Timeout { waited_ms: 15 }));
        // Shutdown releases the held workers and drains in-flight
        // requests: exactly the two accepted responses come back.
        let report = pool.shutdown();
        assert_eq!(report.responses.len(), 2);
        assert_eq!(
            report.responses.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert!(report.responses.iter().all(|r| r.outcome == Outcome::Ok));
    }

    #[test]
    fn submit_after_shutdown_began_is_shutting_down() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        })
        .unwrap();
        let req = valid_request(&pool, 0, Variant::W8, 0);
        pool.shared.queue.close();
        assert_eq!(pool.submit(req), Err(SubmitError::ShuttingDown));
        let report = pool.shutdown();
        assert!(report.responses.is_empty());
    }

    #[test]
    fn warm_rerun_is_bit_exact_with_cold_fork() {
        // The same trace served twice — warm reruns allowed vs forced
        // cold forks — must produce identical deterministic fields.
        // This pins the warm-path contract (entry re-arm only, no L2
        // restore) against the cold-path ground truth.
        let serve = |warm_reruns: bool| {
            let pool = ServePool::start(PoolConfig {
                workers: 1,
                warm_reruns,
                ..PoolConfig::default()
            })
            .unwrap();
            let mut rng = Rng::new(7);
            for id in 0..12u64 {
                // Same-variant stretches so warm reruns actually occur.
                let variant = if id < 6 { Variant::W4 } else { Variant::W2 };
                let max = u64::from(pool.template(variant).max_activation() as u16);
                let input: Vec<i16> = (0..pool.template(variant).input_len())
                    .map(|_| rng.below(max + 1) as i16)
                    .collect();
                pool.submit_blocking(Request { id, variant, input })
                    .unwrap();
            }
            pool.shutdown()
        };
        let warm = serve(true);
        let cold = serve(false);
        assert!(warm.stats.warm_runs > 0, "warm path never exercised");
        assert_eq!(cold.stats.warm_runs, 0);
        for (w, c) in warm.responses.iter().zip(&cold.responses) {
            assert_eq!(w.id, c.id);
            assert_eq!(w.outcome, c.outcome, "request {}", w.id);
            assert_eq!(w.output, c.output, "request {}", w.id);
            assert_eq!(w.cycles, c.cycles, "request {}", w.id);
            assert_eq!(w.perf, c.perf, "request {}", w.id);
        }
    }

    #[test]
    fn hang_armed_request_is_reaped_and_still_served() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            hangs: Some(HangFaults::range(3, 1, 2)),
            heartbeat_horizon_ms: 20,
            ..PoolConfig::default()
        })
        .unwrap();
        for id in 0..4u64 {
            pool.submit_blocking(valid_request(&pool, id, Variant::W4, 2))
                .unwrap();
        }
        let report = pool.shutdown();
        // No request lost, the hang-armed one included; exactly one
        // reap was recorded.
        assert_eq!(report.responses.len(), 4);
        assert!(report.responses.iter().all(|r| r.outcome == Outcome::Ok));
        assert_eq!(report.stats.reaps, 1);
    }

    #[test]
    fn hang_injection_does_not_change_response_content() {
        // The same 6-request trace with and without a hang on id 2:
        // every deterministic response field must be identical — a
        // reaped worker re-forks cold, which is bit-exact with any
        // other cold serve.
        let serve = |hangs: Option<HangFaults>| {
            let pool = ServePool::start(PoolConfig {
                workers: 1,
                hangs,
                heartbeat_horizon_ms: if hangs.is_some() { 15 } else { 0 },
                ..PoolConfig::default()
            })
            .unwrap();
            for id in 0..6u64 {
                pool.submit_blocking(valid_request(&pool, id, Variant::W2, 1))
                    .unwrap();
            }
            pool.shutdown()
        };
        let wedged = serve(Some(HangFaults::range(9, 2, 3)));
        let clean = serve(None);
        assert_eq!(wedged.stats.reaps, 1);
        assert_eq!(clean.stats.reaps, 0);
        assert_eq!(wedged.responses.len(), clean.responses.len());
        for (a, b) in wedged.responses.iter().zip(&clean.responses) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.outcome, b.outcome, "request {}", a.id);
            assert_eq!(a.output, b.output, "request {}", a.id);
            assert_eq!(a.cycles, b.cycles, "request {}", a.id);
            assert_eq!(a.perf, b.perf, "request {}", a.id);
        }
    }

    #[test]
    fn corrupted_template_is_quarantined_rebuilt_and_serves_clean() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            ..PoolConfig::default()
        })
        .unwrap();
        pool.corrupt_template(Variant::W4, 77);
        // The first cold fork after the corruption must catch it,
        // rebuild the template, and serve every request cleanly.
        for id in 0..3u64 {
            pool.submit_blocking(valid_request(&pool, id, Variant::W4, 3))
                .unwrap();
        }
        let report = pool.shutdown();
        assert_eq!(report.responses.len(), 3);
        assert!(report.responses.iter().all(|r| r.outcome == Outcome::Ok));
        assert_eq!(report.stats.quarantines, 1);
    }

    #[test]
    fn unverified_forks_still_serve_golden_via_the_ladder() {
        // With fork verification off, a corrupted template is NOT
        // caught at fork time — the degradation ladder is the
        // backstop: outputs still verify against the golden model
        // (possibly as Recovered/Degraded), no worker dies, and no
        // quarantine is recorded.
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            verify_forks: false,
            ..PoolConfig::default()
        })
        .unwrap();
        pool.corrupt_template(Variant::W4, 77);
        let template = pool.template(Variant::W4);
        let input = vec![3i16; template.input_len()];
        let golden = template.golden(&input);
        pool.submit_blocking(Request {
            id: 0,
            variant: Variant::W4,
            input,
        })
        .unwrap();
        let report = pool.shutdown();
        assert_eq!(report.responses.len(), 1);
        assert_eq!(report.responses[0].output, golden);
        assert_eq!(report.stats.quarantines, 0);
    }

    /// Satellite pin: responses recorded between `close()` and the
    /// final drain survive a worker re-fork mid-shutdown. The worker
    /// is wedged on request 0 when shutdown begins; the monitor reaps
    /// it *during* shutdown, the worker re-forks and serves 0..3, and
    /// the report must carry all of them.
    #[test]
    fn mid_shutdown_refork_loses_no_response() {
        let pool = ServePool::start(PoolConfig {
            workers: 1,
            hangs: Some(HangFaults::range(11, 0, 1)),
            heartbeat_horizon_ms: 30,
            ..PoolConfig::default()
        })
        .unwrap();
        for id in 0..3u64 {
            pool.submit_blocking(valid_request(&pool, id, Variant::W8, 1))
                .unwrap();
        }
        // Shutdown begins while the worker is still wedged on id 0.
        let report = pool.shutdown();
        assert_eq!(
            report.responses.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(report.responses.iter().all(|r| r.outcome == Outcome::Ok));
        assert_eq!(report.stats.reaps, 1);
    }

    #[test]
    fn drain_responses_and_wait_completed_window_the_stream() {
        let pool = ServePool::start(PoolConfig {
            workers: 2,
            ..PoolConfig::default()
        })
        .unwrap();
        for id in 0..4u64 {
            pool.submit_blocking(valid_request(&pool, id, Variant::W8, 1))
                .unwrap();
        }
        pool.wait_completed(4);
        let first = pool.drain_responses();
        assert_eq!(
            first.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        // completed() is cumulative: the drain did not reset it.
        assert_eq!(pool.completed(), 4);
        for id in 4..6u64 {
            pool.submit_blocking(valid_request(&pool, id, Variant::W8, 1))
                .unwrap();
        }
        pool.wait_completed(6);
        let second = pool.drain_responses();
        assert_eq!(second.iter().map(|r| r.id).collect::<Vec<_>>(), vec![4, 5]);
        // Shutdown returns only what was recorded after the last drain.
        let report = pool.shutdown();
        assert!(report.responses.is_empty());
        assert_eq!(report.stats.served, 6);
    }
}
